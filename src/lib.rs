//! # dae — reproduction of *A Comparison of Data Prefetching on an Access
//! Decoupled and Superscalar Machine* (Jones & Topham, MICRO-30, 1997)
//!
//! This facade crate re-exports the whole workspace behind one dependency:
//!
//! * [`isa`] — operation kinds, latencies, static kernels and the kernel
//!   builder DSL;
//! * [`trace`] — dynamic trace expansion, dataflow analysis and the three
//!   machine lowerings (decoupled partition, SWSM prefetch expansion,
//!   scalar);
//! * [`workloads`] — the seven PERFECT Club workload models and synthetic
//!   extras;
//! * [`mem`] — the memory differential model, decoupled memory, prefetch
//!   buffer and cache hierarchy;
//! * [`ooo`] — the out-of-order unit simulator and the issue-logic
//!   complexity model;
//! * [`machines`] — the access decoupled machine (DM), the single-window
//!   superscalar (SWSM) and the scalar reference;
//! * [`core`] — metrics, sweeps and the per-table/figure experiment
//!   generators.
//!
//! The most common entry points are also re-exported at the crate root.
//!
//! ## Quickstart
//!
//! ```
//! use dae::prelude::*;
//!
//! // The paper's middle-band program, a realistic window, a 60-cycle
//! // memory differential.
//! let trace = PerfectProgram::Mdg.workload().trace(200);
//! let reference = scalar_cycles(&trace, 60);
//! let dm = speedup(reference, dm_cycles(&trace, WindowSpec::Entries(32), 60));
//! let swsm = speedup(reference, swsm_cycles(&trace, WindowSpec::Entries(32), 60));
//! assert!(dm > swsm, "the decoupled machine hides a 60-cycle latency better");
//! ```

pub use dae_core as core;
pub use dae_isa as isa;
pub use dae_machines as machines;
pub use dae_mem as mem;
pub use dae_ooo as ooo;
pub use dae_trace as trace;
pub use dae_workloads as workloads;

pub use dae_core::prelude;
pub use dae_core::{
    dm_cycles, equivalent_window_figure, scalar_cycles, speedup, speedup_figure, swsm_cycles,
    table1, window_ratio_claim, ExperimentConfig, Machine, WindowSpec,
};
pub use dae_machines::{
    DecoupledMachine, DmConfig, ScalarConfig, ScalarReference, SuperscalarMachine, SwsmConfig,
};
pub use dae_workloads::{PerfectProgram, Workload};
