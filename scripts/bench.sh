#!/usr/bin/env bash
# Records the simulator-throughput baseline.
#
# Runs the `cargo bench` suite (the criterion-stub harness dumps raw
# per-benchmark timings when CRITERION_STUB_JSON is set) and the dedicated
# event-vs-reference comparison binary, which writes
# BENCH_simulator_throughput.json at the repository root and fails if the
# DM speedup over the retained naive scheduler drops below 3x.
set -euo pipefail
cd "$(dirname "$0")/.."

export CRITERION_STUB_JSON="target/criterion-raw.jsonl"
rm -f "$CRITERION_STUB_JSON"
cargo bench -q -p dae-bench --bench simulator_throughput

cargo run --release -q -p dae-bench --bin bench_throughput
echo "raw criterion timings: $CRITERION_STUB_JSON"
