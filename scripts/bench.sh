#!/usr/bin/env bash
# Records the simulator-throughput baseline.
#
# Runs the `cargo bench` suite (the criterion-stub harness dumps raw
# per-benchmark timings when CRITERION_STUB_JSON is set) and the dedicated
# event-vs-reference comparison binary, which writes
# BENCH_simulator_throughput.json at the repository root (stamped with the
# commit hash it was measured at) and fails if any enforced speedup floor
# is broken: DM 3.4x pipeline / 2.4x scheduler-only, SWSM 3.0x / 2.5x,
# scalar 3.5x / 2.8x, 0.98x for both the pooled-sweep and the
# session-vs-per-call benchmarks, and 1.0x for the cache-warm-vs-cold
# benchmark (see the floor constants in
# crates/bench/src/bin/bench_throughput.rs).
set -euo pipefail
cd "$(dirname "$0")/.."

export CRITERION_STUB_JSON="target/criterion-raw.jsonl"
rm -f "$CRITERION_STUB_JSON"
cargo bench -q -p dae-bench --bench simulator_throughput

cargo run --release -q -p dae-bench --bin bench_throughput
echo "raw criterion timings: $CRITERION_STUB_JSON"
