#!/usr/bin/env bash
# Records the simulator-throughput baseline.
#
# Runs the `cargo bench` suite (the criterion-stub harness dumps raw
# per-benchmark timings when CRITERION_STUB_JSON is set) and the dedicated
# event-vs-reference comparison binary, which writes
# BENCH_simulator_throughput.json at the repository root (stamped with the
# commit hash it was measured at) and fails if any enforced speedup floor
# is broken: DM 3.4x pipeline / 2.4x scheduler-only, SWSM 3.0x / 2.5x,
# scalar 3.5x / 2.8x, 0.98x for both the pooled-sweep and the
# session-vs-per-call benchmarks, 1.0x for the cache-warm-vs-cold
# benchmark, 1.0x for the contention benchmark (an interactive-tagged
# probe's p99 latency under a refilled bulk backlog must never exceed the
# FIFO-shaped probe's p99), and 0.95x for the skewed-cost grid (work
# stealing vs the old fixed-chunk FIFO shape — a loss guard on one
# hardware thread, a real win on multi-core boxes where the expensive
# tail chunk serializes under FIFO).  See the floor constants in
# crates/bench/src/bin/bench_throughput.rs.
set -euo pipefail
cd "$(dirname "$0")/.."

export CRITERION_STUB_JSON="target/criterion-raw.jsonl"
rm -f "$CRITERION_STUB_JSON"
cargo bench -q -p dae-bench --bench simulator_throughput

cargo run --release -q -p dae-bench --bin bench_throughput
echo "raw criterion timings: $CRITERION_STUB_JSON"
