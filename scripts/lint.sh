#!/usr/bin/env bash
# Runs dae-lint, the workspace's own static analysis pass, over a clean
# tree: hot-path allocation guard, unsafe census + SAFETY audit,
# lock-order cycle detection, default-hasher mandate, and the serve
# panic-path rule.  Exits non-zero on any finding; the rule catalog and
# suppression syntax are documented in docs/LINTS.md.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -q -p dae-lint
