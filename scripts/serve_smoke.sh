#!/usr/bin/env bash
# Server smoke test: pipes a small request file into the dae-serve binary
# (the real stdin path, streamed/batched responses in completion order)
# and diffs the tagged point lines against the in-process session result
# (--local mode runs the same requests sequentially and prints canonical
# grid-order output).  Sorting both sides removes the completion-order
# nondeterminism; the cycles must match bit for bit.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q -p dae-serve
bin=target/release/dae-serve
req=target/serve-smoke-requests.txt

cat > "$req" <<'EOF'
sweep id=a trace=TRFD iterations=120 machines=dm,swsm windows=8,32 mds=0,60 mode=stream
sweep id=b trace=MDG iterations=120 machines=dm,scalar windows=16,inf mds=60 mode=batch
sweep id=c kernel=i;ld:%0;ld:%0;mul:%1,$0;add:%3,%2;st:%4,%0 iterations=150 machines=dm,swsm windows=8,32 mds=0,60 mode=stream
sweep id=d trace=TRFD iterations=120 machines=dm,swsm windows=8,32 mds=0,60 mode=stream
EOF

"$bin" --local "$req" | grep '^point' | sort > target/serve-smoke-expected.txt
"$bin" --stdin < "$req" > target/serve-smoke-raw.txt
grep '^point' target/serve-smoke-raw.txt | sort > target/serve-smoke-got.txt

diff -u target/serve-smoke-expected.txt target/serve-smoke-got.txt

# Every request must have completed with nothing dropped.
for id in a b c d; do
  grep -q "^done id=$id .*dropped=0.*status=ok" target/serve-smoke-raw.txt
done

# Robustness: malformed input and an oversized grid must each come back as
# a structured error — not a crash, not a hang — and must not stop the
# server answering a valid request on the same connection.
req_bad=target/serve-smoke-bad-requests.txt
{
  printf 'sweep id=bad trace=NOPE machines=dm windows=16 mds=60\n'
  printf 'warp id=x speed=9\n'
  printf '==== %% not even close\n'
  printf 'sweep id=huge trace=TRFD machines=dm,swsm,scalar windows=%s mds=%s\n' \
    "$(seq 1 200 | paste -sd, -)" "$(seq 0 149 | paste -sd, -)"
  printf 'sweep id=ok trace=TRFD iterations=120 machines=dm windows=16 mds=60 mode=stream\n'
} > "$req_bad"

"$bin" --stdin < "$req_bad" > target/serve-smoke-bad-raw.txt
n_errors=$(grep -c '^error' target/serve-smoke-bad-raw.txt)
[ "$n_errors" -eq 4 ] || {
  echo "expected 4 error lines, got $n_errors"; exit 1
}
grep -q '^error id=huge .*exceeds' target/serve-smoke-bad-raw.txt
grep -q '^done id=ok .*delivered=1.*status=ok' target/serve-smoke-bad-raw.txt

echo "serve smoke OK: $(wc -l < target/serve-smoke-got.txt) streamed points match the in-process results; malformed and oversized requests rejected cleanly"
