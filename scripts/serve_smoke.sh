#!/usr/bin/env bash
# Server smoke test: pipes a small request file into the dae-serve binary
# (the real stdin path, streamed/batched responses in completion order)
# and diffs the tagged point lines against the in-process session result
# (--local mode runs the same requests sequentially and prints canonical
# grid-order output).  Sorting both sides removes the completion-order
# nondeterminism; the cycles must match bit for bit.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q -p dae-serve
bin=target/release/dae-serve
req=target/serve-smoke-requests.txt

cat > "$req" <<'EOF'
sweep id=a trace=TRFD iterations=120 machines=dm,swsm windows=8,32 mds=0,60 mode=stream
sweep id=b trace=MDG iterations=120 machines=dm,scalar windows=16,inf mds=60 mode=batch
sweep id=c kernel=i;ld:%0;ld:%0;mul:%1,$0;add:%3,%2;st:%4,%0 iterations=150 machines=dm,swsm windows=8,32 mds=0,60 mode=stream
sweep id=d trace=TRFD iterations=120 machines=dm,swsm windows=8,32 mds=0,60 mode=stream
EOF

"$bin" --local "$req" | grep '^point' | sort > target/serve-smoke-expected.txt
"$bin" --stdin < "$req" > target/serve-smoke-raw.txt
grep '^point' target/serve-smoke-raw.txt | sort > target/serve-smoke-got.txt

diff -u target/serve-smoke-expected.txt target/serve-smoke-got.txt

# Every request must have completed with nothing dropped.
for id in a b c d; do
  grep -q "^done id=$id .*dropped=0" target/serve-smoke-raw.txt
done

echo "serve smoke OK: $(wc -l < target/serve-smoke-got.txt) streamed points match the in-process results"
