#!/usr/bin/env bash
# Server smoke test: pipes a small request file into the dae-serve binary
# (the real stdin path, streamed/batched responses in completion order)
# and diffs the tagged point lines against the in-process session result
# (--local mode runs the same requests sequentially and prints canonical
# grid-order output).  Sorting both sides removes the completion-order
# nondeterminism; the cycles must match bit for bit.
#
# Scripts index: bench.sh records the throughput baseline, lint.sh runs
# the dae-lint static analysis gate (docs/LINTS.md), and this file smokes
# the server; CI runs all three.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q -p dae-serve
bin=target/release/dae-serve
req=target/serve-smoke-requests.txt

cat > "$req" <<'EOF'
sweep id=a trace=TRFD iterations=120 machines=dm,swsm windows=8,32 mds=0,60 mode=stream
sweep id=b trace=MDG iterations=120 machines=dm,scalar windows=16,inf mds=60 mode=batch
sweep id=c kernel=i;ld:%0;ld:%0;mul:%1,$0;add:%3,%2;st:%4,%0 iterations=150 machines=dm,swsm windows=8,32 mds=0,60 mode=stream
sweep id=d trace=TRFD iterations=120 machines=dm,swsm windows=8,32 mds=0,60 mode=stream
EOF

"$bin" --local "$req" | grep '^point' | sort > target/serve-smoke-expected.txt
"$bin" --stdin < "$req" > target/serve-smoke-raw.txt
grep '^point' target/serve-smoke-raw.txt | sort > target/serve-smoke-got.txt

diff -u target/serve-smoke-expected.txt target/serve-smoke-got.txt

# Every request must have completed with nothing dropped.
for id in a b c d; do
  grep -q "^done id=$id .*dropped=0.*status=ok" target/serve-smoke-raw.txt
done

# Robustness: malformed input and an oversized grid must each come back as
# a structured error — not a crash, not a hang — and must not stop the
# server answering a valid request on the same connection.
req_bad=target/serve-smoke-bad-requests.txt
{
  printf 'sweep id=bad trace=NOPE machines=dm windows=16 mds=60\n'
  printf 'warp id=x speed=9\n'
  printf '==== %% not even close\n'
  printf 'sweep id=huge trace=TRFD machines=dm,swsm,scalar windows=%s mds=%s\n' \
    "$(seq 1 200 | paste -sd, -)" "$(seq 0 149 | paste -sd, -)"
  printf 'sweep id=ok trace=TRFD iterations=120 machines=dm windows=16 mds=60 mode=stream\n'
} > "$req_bad"

"$bin" --stdin < "$req_bad" > target/serve-smoke-bad-raw.txt
n_errors=$(grep -c '^error' target/serve-smoke-bad-raw.txt)
[ "$n_errors" -eq 4 ] || {
  echo "expected 4 error lines, got $n_errors"; exit 1
}
grep -q '^error id=huge .*exceeds' target/serve-smoke-bad-raw.txt
grep -q '^done id=ok .*delivered=1.*status=ok' target/serve-smoke-bad-raw.txt

# Restart warmth: run a grid with --cache-dir, let the server exit cleanly
# (compacting the store), then relaunch on the same directory.  The second
# server must replay the persisted records (cache_loaded > 0), answer the
# repeated grid without a single simulation (done cached == delivered,
# cache_misses=0), and produce bit-for-bit the first run's point lines.
cache_dir=target/serve-smoke-cache
rm -rf "$cache_dir"
req_warm=target/serve-smoke-warm-requests.txt
{
  printf 'sweep id=w trace=TRFD iterations=120 machines=dm,swsm windows=8,32 mds=0,60 mode=stream\n'
  printf 'stats\n'
} > "$req_warm"

"$bin" --stdin --cache-dir "$cache_dir" < "$req_warm" > target/serve-smoke-cold-raw.txt
grep -q '^done id=w .*delivered=8.*cached=0.*status=ok' target/serve-smoke-cold-raw.txt
# The stats reply races the async drainer, so only the field's presence is
# deterministic here; the warm run's cache_loaded=8 proves the persisted
# count below.
grep '^stats' target/serve-smoke-cold-raw.txt | grep -q 'cache_persisted='
[ -s "$cache_dir/sweep-cache.log" ] || { echo "cache log was not written"; exit 1; }

"$bin" --stdin --cache-dir "$cache_dir" < "$req_warm" > target/serve-smoke-warm-raw.txt
grep -q '^done id=w .*delivered=8.*cached=8.*status=ok' target/serve-smoke-warm-raw.txt \
  || { echo "restarted server did not answer the grid from the cache"; exit 1; }
warm_stats=$(grep '^stats' target/serve-smoke-warm-raw.txt)
echo "$warm_stats" | grep -q 'cache_loaded=8' || { echo "no records loaded: $warm_stats"; exit 1; }
echo "$warm_stats" | grep -q 'cache_misses=0' || { echo "warm run simulated: $warm_stats"; exit 1; }
grep '^point' target/serve-smoke-cold-raw.txt | sort > target/serve-smoke-cold-points.txt
grep '^point' target/serve-smoke-warm-raw.txt | sort > target/serve-smoke-warm-points.txt
diff -u target/serve-smoke-cold-points.txt target/serve-smoke-warm-points.txt

# The cache verb: a limit bounds the resident set, clear empties it.
printf 'cache limit=2\ncache clear\ncache limit=none\n' \
  | "$bin" --stdin --cache-dir "$cache_dir" > target/serve-smoke-cacheverb-raw.txt
grep -q '^cache entries=2 limit=2' target/serve-smoke-cacheverb-raw.txt
grep -q '^cache entries=0 limit=2' target/serve-smoke-cacheverb-raw.txt
grep -q '^cache entries=0 limit=none' target/serve-smoke-cacheverb-raw.txt

# Multi-client contention: a TCP server under a wide bulk grid from one
# client while a second client sends a single-point interactive request.
# Both must complete (the whole section is under `timeout`, so a priority
# inversion or a scheduler hang fails the smoke rather than wedging it).
port=7943
"$bin" --tcp 127.0.0.1:$port --no-cache > target/serve-smoke-tcp.log 2>&1 &
srv=$!
trap 'kill $srv 2>/dev/null || true' EXIT
for _ in $(seq 1 50); do
  if exec 3<>/dev/tcp/127.0.0.1/$port 2>/dev/null; then exec 3>&-; break; fi
  sleep 0.1
done

timeout 120 bash -c "
  exec 4<>/dev/tcp/127.0.0.1/$port
  printf 'sweep id=big trace=TRFD iterations=120 machines=dm,swsm windows=4,8,12,16,24,32,48,64 mds=0,20,40,60 mode=stream priority=bulk\n' >&4
  (
    exec 5<>/dev/tcp/127.0.0.1/$port
    printf 'sweep id=fast trace=TRFD iterations=120 machines=dm windows=16 mds=60 mode=stream priority=interactive\n' >&5
    grep -m1 '^done id=fast .*delivered=1.*status=ok' <&5 > target/serve-smoke-fast.txt
  ) &
  fastpid=\$!
  grep -m1 '^done id=big .*dropped=0.*status=ok' <&4 > target/serve-smoke-big.txt
  wait \$fastpid
"
[ -s target/serve-smoke-fast.txt ] || { echo "interactive client got no done line"; exit 1; }
[ -s target/serve-smoke-big.txt ] || { echo "bulk client got no done line"; exit 1; }
kill $srv 2>/dev/null || true
trap - EXIT

# Sharded serving: the same request file through a coordinator over two
# real backend processes must produce bit-for-bit the single-server
# (--local) point lines — placement is by sweep-cache key, so the repeat
# grid (id=d) re-lands on whichever shard served it first.  The trailing
# shutdown fans out to the fleet, so both backends exit on their own.
bp1=7951
bp2=7952
"$bin" --tcp 127.0.0.1:$bp1 > target/serve-smoke-shard1.log 2>&1 &
b1=$!
"$bin" --tcp 127.0.0.1:$bp2 > target/serve-smoke-shard2.log 2>&1 &
b2=$!
trap 'kill $b1 $b2 2>/dev/null || true' EXIT
for p in $bp1 $bp2; do
  for _ in $(seq 1 50); do
    if exec 3<>/dev/tcp/127.0.0.1/$p 2>/dev/null; then exec 3>&-; break; fi
    sleep 0.1
  done
done

req_shard=target/serve-smoke-shard-requests.txt
{
  cat "$req"
  printf 'stats\n'
  printf 'shutdown\n'
} > "$req_shard"

timeout 120 "$bin" --coordinator 127.0.0.1:$bp1,127.0.0.1:$bp2 --stdin \
  < "$req_shard" > target/serve-smoke-shard-raw.txt
grep '^point' target/serve-smoke-shard-raw.txt | sort > target/serve-smoke-shard-got.txt
diff -u target/serve-smoke-expected.txt target/serve-smoke-shard-got.txt
for id in a b c d; do
  grep -q "^done id=$id .*dropped=0.*status=ok" target/serve-smoke-shard-raw.txt
done
shard_stats=$(grep '^stats' target/serve-smoke-shard-raw.txt)
echo "$shard_stats" | grep -q 'backends_total=2' \
  || { echo "coordinator stats missing backends_total: $shard_stats"; exit 1; }
echo "$shard_stats" | grep -q 'backends_alive=2' \
  || { echo "a backend died during the sharded smoke: $shard_stats"; exit 1; }
grep -q '^shutdown mode=drain' target/serve-smoke-shard-raw.txt

# The fanned-out shutdown must stop both backends without a kill.
for _ in $(seq 1 100); do
  if ! kill -0 $b1 2>/dev/null && ! kill -0 $b2 2>/dev/null; then break; fi
  sleep 0.1
done
if kill -0 $b1 2>/dev/null || kill -0 $b2 2>/dev/null; then
  echo "backends outlived the coordinator shutdown"; exit 1
fi
wait $b1 $b2 2>/dev/null || true
trap - EXIT

echo "serve smoke OK: $(wc -l < target/serve-smoke-got.txt) streamed points match the in-process results; malformed and oversized requests rejected cleanly; a restarted --cache-dir server answered its grid entirely from the persisted cache; concurrent bulk + interactive clients both completed; a two-backend coordinator reproduced the grid bit for bit and shut its fleet down"
