//! Property-based tests of the memory structures: arrival-time arithmetic,
//! capacity enforcement, LRU behaviour and hierarchy latencies.

use dae_mem::{
    BypassConfig, Cache, CacheConfig, DecoupledMemory, DecoupledMemoryConfig, FixedLatencyMemory,
    HierarchyLatency, MemoryHierarchy, PrefetchBuffer, PrefetchBufferConfig,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The fixed-latency memory answers every request exactly `1 + MD`
    /// cycles after issue and never loses a request in its counters.
    #[test]
    fn fixed_memory_latency_is_exact(
        md in 0u64..200,
        issues in proptest::collection::vec(0u64..10_000, 1..50)
    ) {
        let mut memory = FixedLatencyMemory::new(md);
        for (i, &issue) in issues.iter().enumerate() {
            let arrival = if i % 2 == 0 {
                memory.request_load(i as u64 * 8, issue)
            } else {
                memory.request_store(i as u64 * 8, issue)
            };
            prop_assert_eq!(arrival, issue + 1 + md);
        }
        let stats = memory.stats();
        prop_assert_eq!(stats.requests as usize, issues.len());
        prop_assert_eq!(
            (stats.load_requests + stats.store_requests) as usize,
            issues.len()
        );
    }

    /// The decoupled memory never reports data ready before its arrival
    /// time, and its occupancy always equals requests minus consumes.
    #[test]
    fn decoupled_memory_arrivals_and_occupancy(
        md in 0u64..120,
        requests in proptest::collection::vec((0u64..(1 << 20), 0u64..5_000), 1..60)
    ) {
        let mut dmem = DecoupledMemory::new(md, DecoupledMemoryConfig::default());
        let mut arrivals = Vec::new();
        for (tag, &(addr, issue)) in requests.iter().enumerate() {
            let arrival = dmem.request_load(tag as u32, addr, issue);
            prop_assert!(arrival > issue);
            prop_assert!(arrival <= issue + 1 + md);
            prop_assert!(!dmem.data_ready(tag as u32, arrival.saturating_sub(1)));
            prop_assert!(dmem.data_ready(tag as u32, arrival));
            arrivals.push(arrival);
        }
        prop_assert_eq!(dmem.occupancy(), requests.len());
        for (tag, &arrival) in arrivals.iter().enumerate() {
            dmem.consume(tag as u32, arrival + 3);
            prop_assert_eq!(dmem.occupancy(), requests.len() - tag - 1);
        }
        let stats = dmem.stats();
        prop_assert_eq!(stats.consumed as usize, requests.len());
        prop_assert_eq!(stats.buffered_cycles, 3 * requests.len() as u64);
    }

    /// With a bypass configured, a repeated line is always at least as fast
    /// as a cold line and never faster than a single cycle.
    #[test]
    fn bypass_never_slows_a_request(
        md in 1u64..100,
        entries in 1usize..64,
        addrs in proptest::collection::vec(0u64..(1 << 12), 2..80)
    ) {
        let cfg = DecoupledMemoryConfig {
            capacity: None,
            bypass: Some(BypassConfig { entries, line_bytes: 32 }),
        };
        let mut dmem = DecoupledMemory::new(md, cfg);
        for (tag, &addr) in addrs.iter().enumerate() {
            let arrival = dmem.request_load(tag as u32, addr, tag as u64);
            prop_assert!(arrival > tag as u64);
            prop_assert!(arrival <= tag as u64 + 1 + md);
        }
        prop_assert!(dmem.stats().bypass_hits <= dmem.stats().load_requests);
    }

    /// A finite prefetch buffer never holds more than its capacity and every
    /// eviction is accounted for.
    #[test]
    fn prefetch_buffer_capacity_is_enforced(
        capacity in 1usize..32,
        md in 0u64..80,
        addrs in proptest::collection::vec(0u64..(1 << 16), 1..100)
    ) {
        let mut buffer = PrefetchBuffer::new(md, PrefetchBufferConfig { capacity: Some(capacity) });
        for (cycle, &addr) in addrs.iter().enumerate() {
            buffer.prefetch(addr & !0x7, cycle as u64);
            prop_assert!(buffer.occupancy() <= capacity);
        }
        let stats = buffer.stats();
        prop_assert_eq!(stats.prefetches as usize, addrs.len());
        prop_assert!(stats.peak_occupancy <= capacity);
        // Entries resident + evicted accounts for every distinct line that
        // was ever inserted (re-prefetching an existing line does not evict).
        prop_assert!(stats.evictions <= stats.prefetches);
    }

    /// An unbounded prefetch buffer retains every distinct address.
    #[test]
    fn unbounded_prefetch_buffer_never_misses_what_it_prefetched(
        md in 0u64..80,
        addrs in proptest::collection::vec(0u64..(1 << 14), 1..100)
    ) {
        let mut buffer = PrefetchBuffer::new(md, PrefetchBufferConfig::default());
        for (cycle, &addr) in addrs.iter().enumerate() {
            buffer.prefetch(addr, cycle as u64);
        }
        for &addr in &addrs {
            prop_assert!(buffer.access(addr, 1_000_000).is_some());
        }
        prop_assert_eq!(buffer.stats().misses, 0);
        prop_assert_eq!(buffer.stats().evictions, 0);
    }

    /// Cache hit counts are bounded by accesses, and a second pass over a
    /// working set that fits in the cache hits on every access.
    #[test]
    fn small_working_sets_hit_on_the_second_pass(lines in 1usize..32) {
        let config = CacheConfig { sets: 64, ways: 4, line_bytes: 32 };
        prop_assume!(lines <= config.sets * config.ways / 2);
        let mut cache = Cache::new(config);
        let addrs: Vec<u64> = (0..lines as u64).map(|i| i * 32).collect();
        for &a in &addrs {
            cache.access(a);
        }
        for &a in &addrs {
            prop_assert!(cache.access(a), "second pass must hit");
        }
        let stats = cache.stats();
        prop_assert!(stats.hits >= lines as u64);
        prop_assert!(stats.hits + stats.misses == stats.accesses);
        prop_assert!(stats.hit_rate() <= 1.0);
    }

    /// Every hierarchy access costs exactly one of the three configured
    /// latencies, and repeated accesses to one line settle to the L1 cost.
    #[test]
    fn hierarchy_latencies_come_from_the_configured_set(
        addrs in proptest::collection::vec(0u64..(1 << 20), 1..100)
    ) {
        let latency = HierarchyLatency { l1_hit: 2, l2_hit: 15, memory: 70 };
        let mut hierarchy = MemoryHierarchy::new(
            CacheConfig::small_l1(),
            CacheConfig::small_l2(),
            latency,
        );
        for &addr in &addrs {
            let cost = hierarchy.access_latency(addr);
            prop_assert!(cost == latency.l1_hit || cost == latency.l2_hit || cost == latency.memory);
        }
        let addr = addrs[0];
        hierarchy.access_latency(addr);
        prop_assert_eq!(hierarchy.access_latency(addr), latency.l1_hit);
    }
}
