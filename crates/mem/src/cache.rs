//! A small set-associative cache model and a two-level hierarchy.
//!
//! The paper deliberately models the memory system as a flat fixed cost
//! ("the memory differential") and notes that in practice first and second
//! level caches would reduce the average access time.  The ablation
//! experiments in `dae-bench` use this module to replace the flat cost with
//! a simple hierarchy and check that the paper's qualitative conclusions are
//! insensitive to that choice.

use dae_isa::{Address, Cycle};
use serde::{Deserialize, Serialize};

/// Geometry of a single cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Number of sets (must be a power of two).
    pub sets: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes (must be a power of two).
    pub line_bytes: u64,
}

impl CacheConfig {
    /// A small L1-like configuration: 8 KiB, 2-way, 32-byte lines.
    #[must_use]
    pub fn small_l1() -> Self {
        CacheConfig {
            sets: 128,
            ways: 2,
            line_bytes: 32,
        }
    }

    /// A larger L2-like configuration: 256 KiB, 4-way, 64-byte lines.
    #[must_use]
    pub fn small_l2() -> Self {
        CacheConfig {
            sets: 1024,
            ways: 4,
            line_bytes: 64,
        }
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * self.line_bytes
    }
}

/// Hit / miss counters of a [`Cache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]` (zero when there were no accesses).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// A set-associative cache with LRU replacement, tracking only tags.
///
/// # Example
///
/// ```
/// use dae_mem::{Cache, CacheConfig};
///
/// let mut cache = Cache::new(CacheConfig::small_l1());
/// assert!(!cache.access(0x1000)); // cold miss
/// assert!(cache.access(0x1004));  // same line hits
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// Per set: the resident line tags with the recency stamp of their last
    /// access.  LRU selection compares stamps instead of maintaining a
    /// move-to-front vector (the seed shifted entries on every hit).
    sets: Vec<Vec<(u64, u64)>>,
    /// Monotone access clock backing the recency stamps.
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `line_bytes` is not a power of two, or if `ways`
    /// is zero.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.sets.is_power_of_two(), "sets must be a power of two");
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(config.ways > 0, "associativity must be non-zero");
        Cache {
            config,
            sets: vec![Vec::with_capacity(config.ways); config.sets],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accesses `addr`, returning `true` on a hit.  The line is installed on
    /// a miss (no distinction between loads and stores; the model is
    /// write-allocate).
    pub fn access(&mut self, addr: Address) -> bool {
        self.stats.accesses += 1;
        self.clock += 1;
        let line = addr / self.config.line_bytes;
        let set_idx = (line as usize) & (self.config.sets - 1);
        let set = &mut self.sets[set_idx];
        if let Some(way) = set.iter_mut().find(|(tag, _)| *tag == line) {
            way.1 = self.clock;
            self.stats.hits += 1;
            true
        } else {
            if set.len() >= self.config.ways {
                let victim = set
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &(_, stamp))| stamp)
                    .map(|(i, _)| i)
                    .expect("full set has a victim");
                set.swap_remove(victim);
            }
            set.push((line, self.clock));
            self.stats.misses += 1;
            false
        }
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// Latencies of a two-level hierarchy terminating in main memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyLatency {
    /// Extra cycles for an L1 hit (beyond the register-access cycle).
    pub l1_hit: Cycle,
    /// Extra cycles for an L2 hit.
    pub l2_hit: Cycle,
    /// Extra cycles for a main-memory access (the paper's MD).
    pub memory: Cycle,
}

impl Default for HierarchyLatency {
    fn default() -> Self {
        // The paper motivates MD = 60 as "comparable to the cost of a second
        // level cache miss"; an L2 hit is roughly a third of that.
        HierarchyLatency {
            l1_hit: 2,
            l2_hit: 20,
            memory: 60,
        }
    }
}

/// A two-level cache hierarchy producing a per-access latency.
///
/// Used by the ablation that replaces the paper's flat memory differential
/// with a locality-sensitive cost.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    l1: Cache,
    l2: Cache,
    latency: HierarchyLatency,
}

impl MemoryHierarchy {
    /// Creates a hierarchy with the given cache geometries and latencies.
    #[must_use]
    pub fn new(l1: CacheConfig, l2: CacheConfig, latency: HierarchyLatency) -> Self {
        MemoryHierarchy {
            l1: Cache::new(l1),
            l2: Cache::new(l2),
            latency,
        }
    }

    /// A hierarchy with the default small geometries and latencies.
    #[must_use]
    pub fn small() -> Self {
        MemoryHierarchy::new(
            CacheConfig::small_l1(),
            CacheConfig::small_l2(),
            HierarchyLatency::default(),
        )
    }

    /// The extra latency (beyond the register-access cycle) of an access to
    /// `addr`, updating both levels.
    pub fn access_latency(&mut self, addr: Address) -> Cycle {
        if self.l1.access(addr) {
            self.latency.l1_hit
        } else if self.l2.access(addr) {
            self.latency.l2_hit
        } else {
            self.latency.memory
        }
    }

    /// The L1 counters.
    #[must_use]
    pub fn l1_stats(&self) -> CacheStats {
        self.l1.stats()
    }

    /// The L2 counters.
    #[must_use]
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_line_hits_after_cold_miss() {
        let mut c = Cache::new(CacheConfig::small_l1());
        assert!(!c.access(0x1000));
        assert!(c.access(0x101f), "same 32-byte line");
        assert!(!c.access(0x1020), "next line misses");
        let st = c.stats();
        assert_eq!(st.accesses, 3);
        assert_eq!(st.hits, 1);
        assert_eq!(st.misses, 2);
        assert!((st.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn conflict_misses_respect_associativity() {
        // 2-way cache: three lines mapping to the same set cause the first to
        // be evicted.
        let cfg = CacheConfig {
            sets: 4,
            ways: 2,
            line_bytes: 16,
        };
        let mut c = Cache::new(cfg);
        let set_stride = 16 * 4; // lines that differ by sets*line_bytes share a set
        c.access(0);
        c.access(set_stride);
        c.access(2 * set_stride); // evicts line 0
        assert!(!c.access(0), "evicted line misses again");
        assert!(c.access(2 * set_stride));
    }

    #[test]
    fn lru_keeps_recently_used_lines() {
        let cfg = CacheConfig {
            sets: 1,
            ways: 2,
            line_bytes: 8,
        };
        let mut c = Cache::new(cfg);
        c.access(0x00);
        c.access(0x08);
        c.access(0x00); // touch: 0x08 is now LRU
        c.access(0x10); // evicts 0x08
        assert!(c.access(0x00));
        assert!(!c.access(0x08));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panic() {
        let _ = Cache::new(CacheConfig {
            sets: 3,
            ways: 1,
            line_bytes: 32,
        });
    }

    #[test]
    fn capacity_bytes_is_consistent() {
        assert_eq!(CacheConfig::small_l1().capacity_bytes(), 8 * 1024);
        assert_eq!(CacheConfig::small_l2().capacity_bytes(), 256 * 1024);
    }

    #[test]
    fn hierarchy_latency_reflects_where_the_line_lives() {
        let mut h = MemoryHierarchy::small();
        let lat = HierarchyLatency::default();
        // Cold: full memory latency.
        assert_eq!(h.access_latency(0x4000), lat.memory);
        // Now both levels hold the line: L1 hit.
        assert_eq!(h.access_latency(0x4000), lat.l1_hit);
        assert!(h.l1_stats().hits >= 1);
        assert!(h.l2_stats().accesses >= 1);
    }

    #[test]
    fn streaming_through_a_big_array_misses_mostly() {
        let mut h = MemoryHierarchy::small();
        let mut total = 0u64;
        let accesses = 4096u64;
        for i in 0..accesses {
            total += h.access_latency(i * 64 * 17); // strided, no reuse
        }
        let avg = total as f64 / accesses as f64;
        assert!(avg > 40.0, "average latency {avg} should approach memory");
    }
}
