//! The decoupled memory: the buffer between the AU and the DU.

use crate::LruMap;
use dae_isa::{Address, Cycle};
use serde::{Deserialize, Serialize};

/// Configuration of the optional bypass in front of the decoupled memory.
///
/// The paper's future-work section suggests "a bypass mechanism which
/// captures the temporal locality exposed by decoupling": if the AU requests
/// an address whose data was fetched recently, the value can be supplied
/// from the bypass instead of paying the full memory differential.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BypassConfig {
    /// How many recently returned cache-line addresses the bypass remembers.
    pub entries: usize,
    /// The line granularity (bytes) at which addresses are matched.
    pub line_bytes: u64,
}

impl Default for BypassConfig {
    fn default() -> Self {
        BypassConfig {
            entries: 64,
            line_bytes: 32,
        }
    }
}

/// Configuration of the [`DecoupledMemory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DecoupledMemoryConfig {
    /// Maximum number of load transactions resident at once (in flight from
    /// memory plus buffered awaiting consumption).  `None` models the
    /// paper's idealised unlimited queues.
    pub capacity: Option<usize>,
    /// Optional bypass capturing temporal locality.
    pub bypass: Option<BypassConfig>,
}

/// Counters of a [`DecoupledMemory`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecoupledMemoryStats {
    /// Load addresses received from the AU.
    pub load_requests: u64,
    /// Store addresses/data received.
    pub store_requests: u64,
    /// Values handed to a consuming unit.
    pub consumed: u64,
    /// Load requests satisfied by the bypass (single-cycle latency).
    pub bypass_hits: u64,
    /// Highest number of simultaneously resident transactions.
    pub peak_occupancy: usize,
    /// Total cycles values spent buffered between arrival and consumption.
    pub buffered_cycles: u64,
}

/// Sentinel marking a transaction slot as not resident (no simulation can
/// reach this cycle — the deadlock safety bounds trip far earlier).
const ABSENT: Cycle = Cycle::MAX;

/// The decoupled memory of the access decoupled machine.
///
/// "The decoupled memory receives addresses from the AU and sends them to
/// the memory system.  When a referenced value is returned the decoupled
/// memory buffers the value until it is requested by the DU.  Requests from
/// the decoupled memory take a single cycle.  AU self loads are executed in
/// a similar way."  (§2 of the paper.)
///
/// The structure tracks, per memory transaction tag, when the value becomes
/// available; the machine model gates the readiness of `LoadConsume`
/// instructions on [`DecoupledMemory::data_ready`] and calls
/// [`DecoupledMemory::consume`] when the consume instruction completes.
///
/// # Example
///
/// ```
/// use dae_mem::{DecoupledMemory, DecoupledMemoryConfig};
///
/// let mut dmem = DecoupledMemory::new(60, DecoupledMemoryConfig::default());
/// dmem.request_load(0, 0x100, 5);
/// assert!(!dmem.data_ready(0, 10));
/// assert!(dmem.data_ready(0, 66));   // 5 + 1 + 60
/// dmem.consume(0, 70);
/// assert_eq!(dmem.stats().consumed, 1);
/// ```
#[derive(Debug, Clone)]
pub struct DecoupledMemory {
    differential: Cycle,
    config: DecoupledMemoryConfig,
    /// Arrival cycle of each outstanding / buffered transaction, indexed by
    /// tag — tags are dense lowering-assigned indices, so this is a flat
    /// array rather than a hash map (the AU queries it for every request and
    /// the DU for every consume gate; hashing was a measurable share of the
    /// whole DM simulation).
    arrivals: Vec<Cycle>,
    /// Number of resident transactions (entries not [`ABSENT`]).
    resident: usize,
    /// Recently returned line addresses with recency tracking (LRU
    /// replacement without queue scans).
    bypass_lines: LruMap<u64, ()>,
    stats: DecoupledMemoryStats,
}

impl DecoupledMemory {
    /// Creates a decoupled memory for a machine with the given memory
    /// differential.
    #[must_use]
    pub fn new(differential: Cycle, config: DecoupledMemoryConfig) -> Self {
        Self::with_scratch(differential, config, Vec::new())
    }

    /// [`DecoupledMemory::new`], recycling the arrival array of a previous
    /// run (recovered with [`DecoupledMemory::into_scratch`]) so pooled
    /// sweep points pay no per-run allocation for the tag table.
    #[must_use]
    pub fn with_scratch(
        differential: Cycle,
        config: DecoupledMemoryConfig,
        mut arrivals: Vec<Cycle>,
    ) -> Self {
        arrivals.clear();
        DecoupledMemory {
            differential,
            config,
            arrivals,
            resident: 0,
            bypass_lines: LruMap::new(),
            stats: DecoupledMemoryStats::default(),
        }
    }

    /// Consumes the memory and returns its arrival array for reuse.
    #[must_use]
    pub fn into_scratch(self) -> Vec<Cycle> {
        self.arrivals
    }

    /// The configured memory differential.
    #[must_use]
    #[inline]
    pub fn differential(&self) -> Cycle {
        self.differential
    }

    /// Returns `true` if a new load transaction can be accepted (capacity
    /// permitting).
    #[must_use]
    #[inline]
    pub fn can_accept(&self) -> bool {
        match self.config.capacity {
            Some(cap) => self.resident < cap,
            None => true,
        }
    }

    /// Current number of resident transactions.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.resident
    }

    /// Registers a load address sent by the AU at cycle `issue`; the value
    /// becomes available `1 + MD` cycles later, or after a single cycle if
    /// the bypass holds the line.  Returns the arrival cycle.
    #[inline]
    pub fn request_load(&mut self, tag: u32, addr: Address, issue: Cycle) -> Cycle {
        self.stats.load_requests += 1;
        let arrival = if self.bypass_hit(addr) {
            self.stats.bypass_hits += 1;
            issue + 1
        } else {
            issue + 1 + self.differential
        };
        self.record_bypass_line(addr);
        let slot = tag as usize;
        if slot >= self.arrivals.len() {
            self.arrivals.resize(slot + 1, ABSENT);
        }
        debug_assert_eq!(self.arrivals[slot], ABSENT, "tag requested twice");
        self.arrivals[slot] = arrival;
        self.resident += 1;
        self.stats.peak_occupancy = self.stats.peak_occupancy.max(self.resident);
        arrival
    }

    /// Registers a store-side operation (address or data).  Stores do not
    /// occupy buffer space in this model and nothing waits for them.
    #[inline]
    pub fn request_store(&mut self, _addr: Address, _issue: Cycle) {
        self.stats.store_requests += 1;
    }

    /// The arrival cycle of transaction `tag`, if it is resident.
    #[must_use]
    #[inline]
    pub fn arrival(&self, tag: u32) -> Option<Cycle> {
        self.arrivals
            .get(tag as usize)
            .copied()
            .filter(|&arrival| arrival != ABSENT)
    }

    /// Returns `true` if transaction `tag`'s value is available at cycle
    /// `now`.
    #[must_use]
    #[inline]
    pub fn data_ready(&self, tag: u32, now: Cycle) -> bool {
        // `ABSENT` compares greater than any reachable `now`, so one
        // comparison covers both "not resident" and "still in flight".
        self.arrivals
            .get(tag as usize)
            .is_some_and(|&arrival| arrival <= now)
    }

    /// Hands the value of transaction `tag` to a consuming unit at cycle
    /// `now` and releases its buffer slot.
    ///
    /// # Panics
    ///
    /// Panics if the transaction was never requested (a lowering bug).
    #[inline]
    pub fn consume(&mut self, tag: u32, now: Cycle) {
        let slot = self
            .arrivals
            .get_mut(tag as usize)
            .filter(|arrival| **arrival != ABSENT)
            .expect("consume of a transaction that was never requested");
        let arrival = std::mem::replace(slot, ABSENT);
        self.resident -= 1;
        self.stats.consumed += 1;
        self.stats.buffered_cycles += now.saturating_sub(arrival);
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> DecoupledMemoryStats {
        self.stats
    }

    fn bypass_hit(&self, addr: Address) -> bool {
        match self.config.bypass {
            Some(cfg) => {
                let line = addr / cfg.line_bytes.max(1);
                self.bypass_lines.contains_key(&line)
            }
            None => false,
        }
    }

    fn record_bypass_line(&mut self, addr: Address) {
        if let Some(cfg) = self.config.bypass {
            let line = addr / cfg.line_bytes.max(1);
            self.bypass_lines.insert(line, ());
            while self.bypass_lines.len() > cfg.entries {
                self.bypass_lines.pop_lru();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_arrives_after_the_differential() {
        let mut dmem = DecoupledMemory::new(30, DecoupledMemoryConfig::default());
        let arrival = dmem.request_load(0, 0x40, 10);
        assert_eq!(arrival, 41);
        assert!(!dmem.data_ready(0, 40));
        assert!(dmem.data_ready(0, 41));
        assert!(dmem.data_ready(0, 100));
    }

    #[test]
    fn consume_releases_the_slot_and_counts_buffered_cycles() {
        let mut dmem = DecoupledMemory::new(10, DecoupledMemoryConfig::default());
        dmem.request_load(7, 0x100, 0); // arrives at 11
        assert_eq!(dmem.occupancy(), 1);
        dmem.consume(7, 20);
        assert_eq!(dmem.occupancy(), 0);
        let st = dmem.stats();
        assert_eq!(st.consumed, 1);
        assert_eq!(st.buffered_cycles, 9);
        assert!(!dmem.data_ready(7, 100), "consumed entries disappear");
    }

    #[test]
    #[should_panic(expected = "never requested")]
    fn consuming_an_unknown_tag_panics() {
        let mut dmem = DecoupledMemory::new(10, DecoupledMemoryConfig::default());
        dmem.consume(3, 5);
    }

    #[test]
    fn capacity_limits_acceptance() {
        let mut dmem = DecoupledMemory::new(
            50,
            DecoupledMemoryConfig {
                capacity: Some(2),
                bypass: None,
            },
        );
        assert!(dmem.can_accept());
        dmem.request_load(0, 0, 0);
        dmem.request_load(1, 8, 0);
        assert!(!dmem.can_accept());
        dmem.consume(0, 60);
        assert!(dmem.can_accept());
        assert_eq!(dmem.stats().peak_occupancy, 2);
    }

    #[test]
    fn unlimited_capacity_always_accepts() {
        let mut dmem = DecoupledMemory::new(50, DecoupledMemoryConfig::default());
        for tag in 0..1000 {
            assert!(dmem.can_accept());
            dmem.request_load(tag, u64::from(tag) * 8, 0);
        }
        assert_eq!(dmem.stats().peak_occupancy, 1000);
    }

    #[test]
    fn bypass_short_circuits_recently_seen_lines() {
        let cfg = DecoupledMemoryConfig {
            capacity: None,
            bypass: Some(BypassConfig {
                entries: 4,
                line_bytes: 32,
            }),
        };
        let mut dmem = DecoupledMemory::new(60, cfg);
        // First touch of line 0 pays the full differential.
        assert_eq!(dmem.request_load(0, 0x00, 0), 61);
        // Second touch of the same 32-byte line is a bypass hit.
        assert_eq!(dmem.request_load(1, 0x10, 5), 6);
        assert_eq!(dmem.stats().bypass_hits, 1);
        // A different line misses.
        assert_eq!(dmem.request_load(2, 0x100, 10), 71);
    }

    #[test]
    fn bypass_lru_evicts_old_lines() {
        let cfg = DecoupledMemoryConfig {
            capacity: None,
            bypass: Some(BypassConfig {
                entries: 2,
                line_bytes: 8,
            }),
        };
        let mut dmem = DecoupledMemory::new(40, cfg);
        dmem.request_load(0, 0x00, 0);
        dmem.request_load(1, 0x08, 0);
        dmem.request_load(2, 0x10, 0); // evicts line of 0x00
        assert_eq!(dmem.request_load(3, 0x00, 10), 51, "evicted line misses");
        assert_eq!(dmem.stats().bypass_hits, 0);
        assert_eq!(dmem.request_load(4, 0x10, 12), 13, "recent line hits");
        assert_eq!(dmem.stats().bypass_hits, 1);
    }

    #[test]
    fn stores_are_counted_but_do_not_occupy() {
        let mut dmem = DecoupledMemory::new(
            20,
            DecoupledMemoryConfig {
                capacity: Some(1),
                bypass: None,
            },
        );
        dmem.request_store(0x40, 3);
        dmem.request_store(0x48, 4);
        assert_eq!(dmem.stats().store_requests, 2);
        assert_eq!(dmem.occupancy(), 0);
        assert!(dmem.can_accept());
    }
}
