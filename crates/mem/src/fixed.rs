//! The fixed-cost memory system (the paper's "memory differential" model).

use dae_isa::{Address, Cycle};
use serde::{Deserialize, Serialize};

/// Access counters of a [`FixedLatencyMemory`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryStats {
    /// Total requests sent to the memory system.
    pub requests: u64,
    /// Requests that were loads.
    pub load_requests: u64,
    /// Requests that were stores.
    pub store_requests: u64,
    /// The highest number of requests outstanding at any point in time.
    pub peak_outstanding: usize,
}

/// The memory system of the paper: every access has the same fixed cost.
///
/// The paper deliberately avoids simulating caches: "we model its execution
/// by considering every access to have a fixed cost", the *memory
/// differential* (MD) — the difference between a register access and a
/// memory-system access.  A request issued at cycle `t` therefore delivers
/// its data at `t + 1 + MD` (the single cycle is the address-generation /
/// pipeline-entry cycle every operation pays).
///
/// Bandwidth is unlimited by default (the idealised study), but the model
/// tracks how many requests are outstanding so that restricted-bandwidth
/// ablations can be built on top.
///
/// # Example
///
/// ```
/// use dae_mem::FixedLatencyMemory;
///
/// let mut memory = FixedLatencyMemory::new(60);
/// let arrival = memory.request_load(0x1000, 10);
/// assert_eq!(arrival, 71); // 10 + 1 + 60
/// assert_eq!(memory.stats().requests, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FixedLatencyMemory {
    differential: Cycle,
    stats: MemoryStats,
    /// Completion times of outstanding requests (kept small by pruning).
    outstanding: Vec<Cycle>,
}

impl FixedLatencyMemory {
    /// Creates a memory system with the given memory differential.
    #[must_use]
    pub fn new(differential: Cycle) -> Self {
        FixedLatencyMemory {
            differential,
            stats: MemoryStats::default(),
            outstanding: Vec::new(),
        }
    }

    /// The configured memory differential.
    #[must_use]
    pub fn differential(&self) -> Cycle {
        self.differential
    }

    /// The cycle at which data requested at `issue` becomes available.
    #[must_use]
    pub fn completion_time(&self, issue: Cycle) -> Cycle {
        issue + 1 + self.differential
    }

    /// Issues a load request at cycle `issue`; returns the data arrival
    /// cycle.
    pub fn request_load(&mut self, _addr: Address, issue: Cycle) -> Cycle {
        self.stats.requests += 1;
        self.stats.load_requests += 1;
        self.track(issue)
    }

    /// Issues a store at cycle `issue`; returns the cycle at which the store
    /// is globally performed (nothing in the simulators waits for it).
    pub fn request_store(&mut self, _addr: Address, issue: Cycle) -> Cycle {
        self.stats.requests += 1;
        self.stats.store_requests += 1;
        self.track(issue)
    }

    fn track(&mut self, issue: Cycle) -> Cycle {
        let done = self.completion_time(issue);
        self.outstanding.retain(|&t| t > issue);
        self.outstanding.push(done);
        self.stats.peak_outstanding = self.stats.peak_outstanding.max(self.outstanding.len());
        done
    }

    /// The number of requests still in flight at cycle `now`.
    #[must_use]
    pub fn outstanding_at(&self, now: Cycle) -> usize {
        self.outstanding.iter().filter(|&&t| t > now).count()
    }

    /// Access counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> MemoryStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_is_issue_plus_one_plus_md() {
        let mem = FixedLatencyMemory::new(60);
        assert_eq!(mem.completion_time(0), 61);
        assert_eq!(mem.completion_time(100), 161);
        let zero = FixedLatencyMemory::new(0);
        assert_eq!(zero.completion_time(5), 6);
    }

    #[test]
    fn request_counters_distinguish_loads_and_stores() {
        let mut mem = FixedLatencyMemory::new(10);
        mem.request_load(0, 0);
        mem.request_load(8, 1);
        mem.request_store(16, 2);
        let st = mem.stats();
        assert_eq!(st.requests, 3);
        assert_eq!(st.load_requests, 2);
        assert_eq!(st.store_requests, 1);
    }

    #[test]
    fn outstanding_tracks_in_flight_requests() {
        let mut mem = FixedLatencyMemory::new(20);
        mem.request_load(0, 0); // completes at 21
        mem.request_load(8, 5); // completes at 26
        assert_eq!(mem.outstanding_at(10), 2);
        assert_eq!(mem.outstanding_at(22), 1);
        assert_eq!(mem.outstanding_at(30), 0);
        assert_eq!(mem.stats().peak_outstanding, 2);
    }

    #[test]
    fn peak_outstanding_grows_with_overlap() {
        let mut mem = FixedLatencyMemory::new(50);
        for i in 0..10 {
            mem.request_load(i * 8, i);
        }
        assert_eq!(mem.stats().peak_outstanding, 10);

        // Serial requests never overlap.
        let mut serial = FixedLatencyMemory::new(2);
        for i in 0..10u64 {
            serial.request_load(i * 8, i * 10);
        }
        assert_eq!(serial.stats().peak_outstanding, 1);
    }
}
