//! A fast non-cryptographic hasher for the memory-structure maps.
//!
//! The standard library's default hasher (SipHash 1-3) is keyed and
//! DoS-resistant, which simulation lookups keyed by effective address or
//! transaction tag do not need — they sit on the per-cycle hot path of every
//! machine model, where hashing cost was a measurable share of whole-run
//! time.  This is the classic Fx multiply-and-rotate hash used by rustc
//! (deterministic, a few cycles per word).

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx hash state.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

/// Knuth's multiplicative constant (2^64 / φ, made odd).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, value: u32) {
        self.add_to_hash(u64::from(value));
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.add_to_hash(value);
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.add_to_hash(value as u64);
    }
}

/// [`std::hash::BuildHasher`] producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_behave_like_std_maps() {
        let mut map: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            map.insert(i * 8, i as u32);
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map.get(&(999 * 8)), Some(&999));
        assert_eq!(map.remove(&0), Some(0));
        assert!(!map.contains_key(&0));
    }

    #[test]
    fn hashing_is_deterministic() {
        use std::hash::BuildHasher;
        let build = FxBuildHasher::default();
        let hash = |v: u64| build.hash_one(v);
        assert_eq!(hash(42), hash(42));
        assert_ne!(hash(42), hash(43));
    }
}
