//! # dae-mem — memory-system models
//!
//! The paper abstracts the memory system to a single number, the **memory
//! differential (MD)**: the extra cycles a memory access costs over a
//! register access.  Everything interesting happens in the structures that
//! sit *between* the processor and that fixed-cost memory:
//!
//! * [`FixedLatencyMemory`] — the memory system itself (every access costs
//!   `1 + MD` cycles) with simple bandwidth accounting;
//! * [`DecoupledMemory`] — the buffer between the Address Unit and Data Unit
//!   of the access decoupled machine: the AU sends addresses, the values come
//!   back MD cycles later and are held until the DU (or the AU itself, for
//!   self loads) requests them in a single cycle.  An optional *bypass*
//!   captures temporal locality by short-circuiting requests for recently
//!   fetched addresses (the paper's future-work suggestion);
//! * [`PrefetchBuffer`] — the SWSM's fully associative prefetch buffer with
//!   optional capacity limits and LRU replacement;
//! * [`Cache`] — a small set-associative cache model used by the ablation
//!   experiments that replace the flat memory differential with a
//!   hierarchy.
//!
//! All structures are driven by the machine models in `dae-machines`; they
//! are purely bookkeeping (which data is present *when*), never holders of
//! simulated data values.

mod cache;
mod decoupled;
mod fixed;
mod fx;
mod lru;
mod prefetch;

pub use cache::{Cache, CacheConfig, CacheStats, HierarchyLatency, MemoryHierarchy};
pub use decoupled::{BypassConfig, DecoupledMemory, DecoupledMemoryConfig, DecoupledMemoryStats};
pub use fixed::{FixedLatencyMemory, MemoryStats};
pub use fx::{FxBuildHasher, FxHashMap, FxHasher};
pub use lru::LruMap;
pub use prefetch::{PrefetchBuffer, PrefetchBufferConfig, PrefetchBufferStats};
