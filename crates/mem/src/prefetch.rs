//! The SWSM's fully associative prefetch buffer.

use crate::LruMap;
use dae_isa::{Address, Cycle};
use serde::{Deserialize, Serialize};

/// Configuration of a [`PrefetchBuffer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PrefetchBufferConfig {
    /// Maximum number of entries; `None` models the paper's idealised
    /// (unbounded) buffer, `Some(n)` enables LRU replacement for the
    /// finite-capacity ablation.
    pub capacity: Option<usize>,
}

/// Counters of a [`PrefetchBuffer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchBufferStats {
    /// Prefetches inserted.
    pub prefetches: u64,
    /// Access lookups that found their line present (arrived or in flight).
    pub hits: u64,
    /// Access lookups that missed (entry evicted or never prefetched).
    pub misses: u64,
    /// Entries evicted by LRU replacement.
    pub evictions: u64,
    /// Highest number of simultaneously resident entries.
    pub peak_occupancy: usize,
}

/// The fully associative buffer that the SWSM's prefetch instructions fill
/// and its access instructions read with a single-cycle latency (§2 of the
/// paper).
///
/// Entries are keyed by effective address.  An access that finds its address
/// present must still wait until the data has *arrived* (the prefetch may
/// still be in flight); an access that misses — only possible with a finite
/// capacity — goes to memory itself and pays the full differential.
///
/// # Example
///
/// ```
/// use dae_mem::{PrefetchBuffer, PrefetchBufferConfig};
///
/// let mut buf = PrefetchBuffer::new(60, PrefetchBufferConfig::default());
/// buf.prefetch(0x200, 4);
/// assert_eq!(buf.available_at(0x200), Some(65));
/// assert_eq!(buf.available_at(0x999), None);
/// ```
#[derive(Debug, Clone)]
pub struct PrefetchBuffer {
    differential: Cycle,
    config: PrefetchBufferConfig,
    /// Arrival cycle per resident address, with recency tracking for LRU
    /// replacement (no per-access queue scans).
    entries: LruMap<Address, Cycle>,
    stats: PrefetchBufferStats,
}

impl PrefetchBuffer {
    /// Creates a prefetch buffer for a machine with the given memory
    /// differential.
    #[must_use]
    pub fn new(differential: Cycle, config: PrefetchBufferConfig) -> Self {
        PrefetchBuffer {
            differential,
            config,
            entries: LruMap::new(),
            stats: PrefetchBufferStats::default(),
        }
    }

    /// The configured memory differential.
    #[must_use]
    pub fn differential(&self) -> Cycle {
        self.differential
    }

    /// Current number of resident entries.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Records a prefetch of `addr` issued at cycle `issue`; the data
    /// arrives `1 + MD` cycles later.  Returns the arrival cycle.
    pub fn prefetch(&mut self, addr: Address, issue: Cycle) -> Cycle {
        self.stats.prefetches += 1;
        let arrival = issue + 1 + self.differential;
        self.entries.insert(addr, arrival);
        if let Some(cap) = self.config.capacity {
            while self.entries.len() > cap {
                if self.entries.pop_lru().is_some() {
                    self.stats.evictions += 1;
                } else {
                    break;
                }
            }
        }
        self.stats.peak_occupancy = self.stats.peak_occupancy.max(self.entries.len());
        arrival
    }

    /// The arrival cycle of the data for `addr`, if the address is resident
    /// (the data may still be in flight).
    #[must_use]
    pub fn available_at(&self, addr: Address) -> Option<Cycle> {
        self.entries.get(&addr).copied()
    }

    /// Performs an access lookup at cycle `now`, updating hit/miss counters
    /// and LRU order.  Returns the arrival cycle of the data if the address
    /// is resident.
    pub fn access(&mut self, addr: Address, _now: Cycle) -> Option<Cycle> {
        match self.entries.get(&addr).copied() {
            Some(arrival) => {
                self.stats.hits += 1;
                self.entries.touch(&addr);
                Some(arrival)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> PrefetchBufferStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetched_data_arrives_after_the_differential() {
        let mut buf = PrefetchBuffer::new(40, PrefetchBufferConfig::default());
        assert_eq!(buf.prefetch(0x80, 10), 51);
        assert_eq!(buf.available_at(0x80), Some(51));
        assert_eq!(buf.available_at(0x88), None);
    }

    #[test]
    fn access_counts_hits_and_misses() {
        let mut buf = PrefetchBuffer::new(10, PrefetchBufferConfig::default());
        buf.prefetch(0x40, 0);
        assert_eq!(buf.access(0x40, 20), Some(11));
        assert_eq!(buf.access(0x99, 20), None);
        let st = buf.stats();
        assert_eq!(st.hits, 1);
        assert_eq!(st.misses, 1);
        assert_eq!(st.prefetches, 1);
    }

    #[test]
    fn unlimited_buffer_never_evicts() {
        let mut buf = PrefetchBuffer::new(5, PrefetchBufferConfig::default());
        for i in 0..500u64 {
            buf.prefetch(i * 8, i);
        }
        assert_eq!(buf.occupancy(), 500);
        assert_eq!(buf.stats().evictions, 0);
        assert_eq!(buf.stats().peak_occupancy, 500);
    }

    #[test]
    fn finite_buffer_evicts_least_recently_used() {
        let mut buf = PrefetchBuffer::new(5, PrefetchBufferConfig { capacity: Some(2) });
        buf.prefetch(0x00, 0);
        buf.prefetch(0x08, 1);
        // Touch 0x00 so 0x08 becomes the LRU victim.
        buf.access(0x00, 10);
        buf.prefetch(0x10, 2);
        assert!(buf.available_at(0x00).is_some());
        assert!(buf.available_at(0x08).is_none(), "LRU entry evicted");
        assert!(buf.available_at(0x10).is_some());
        assert_eq!(buf.stats().evictions, 1);
        assert_eq!(buf.occupancy(), 2);
    }

    #[test]
    fn re_prefetching_updates_arrival_without_duplicating() {
        let mut buf = PrefetchBuffer::new(10, PrefetchBufferConfig::default());
        buf.prefetch(0x40, 0);
        buf.prefetch(0x40, 100);
        assert_eq!(buf.occupancy(), 1);
        assert_eq!(buf.available_at(0x40), Some(111));
    }
}
