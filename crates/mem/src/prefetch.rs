//! The SWSM's fully associative prefetch buffer.

use crate::{FxHashMap, LruMap};
use dae_isa::{Address, Cycle};
use serde::{Deserialize, Serialize};

/// Configuration of a [`PrefetchBuffer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PrefetchBufferConfig {
    /// Maximum number of entries; `None` models the paper's idealised
    /// (unbounded) buffer, `Some(n)` enables LRU replacement for the
    /// finite-capacity ablation.
    pub capacity: Option<usize>,
}

/// Counters of a [`PrefetchBuffer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchBufferStats {
    /// Prefetches inserted.
    pub prefetches: u64,
    /// Access lookups that found their line present (arrived or in flight).
    pub hits: u64,
    /// Access lookups that missed (entry evicted or never prefetched).
    pub misses: u64,
    /// Entries evicted by LRU replacement.
    pub evictions: u64,
    /// Highest number of simultaneously resident entries.
    pub peak_occupancy: usize,
}

/// Storage behind a [`PrefetchBuffer`]: the paper's idealised unbounded
/// buffer needs no recency tracking at all (nothing is ever evicted), so it
/// skips the LRU bookkeeping on the per-access hot path; the
/// finite-capacity ablation keeps full LRU order.
#[derive(Debug, Clone)]
enum Entries {
    Unbounded(FxHashMap<Address, Cycle>),
    Lru(LruMap<Address, Cycle>),
}

/// The fully associative buffer that the SWSM's prefetch instructions fill
/// and its access instructions read with a single-cycle latency (§2 of the
/// paper).
///
/// Entries are keyed by effective address.  An access that finds its address
/// present must still wait until the data has *arrived* (the prefetch may
/// still be in flight); an access that misses — only possible with a finite
/// capacity — goes to memory itself and pays the full differential.
///
/// # Example
///
/// ```
/// use dae_mem::{PrefetchBuffer, PrefetchBufferConfig};
///
/// let mut buf = PrefetchBuffer::new(60, PrefetchBufferConfig::default());
/// buf.prefetch(0x200, 4);
/// assert_eq!(buf.available_at(0x200), Some(65));
/// assert_eq!(buf.available_at(0x999), None);
/// ```
#[derive(Debug, Clone)]
pub struct PrefetchBuffer {
    differential: Cycle,
    config: PrefetchBufferConfig,
    /// Arrival cycle per resident address.
    entries: Entries,
    stats: PrefetchBufferStats,
}

impl PrefetchBuffer {
    /// Creates a prefetch buffer for a machine with the given memory
    /// differential.
    #[must_use]
    pub fn new(differential: Cycle, config: PrefetchBufferConfig) -> Self {
        Self::with_scratch(differential, config, FxHashMap::default())
    }

    /// [`PrefetchBuffer::new`], recycling the entry map of a previous
    /// unbounded-mode run (recovered with [`PrefetchBuffer::into_scratch`])
    /// so pooled sweep points reuse its hash-table capacity.  The
    /// finite-capacity ablation keeps LRU order and allocates fresh; it is
    /// never on a sweep's hot path.
    #[must_use]
    pub fn with_scratch(
        differential: Cycle,
        config: PrefetchBufferConfig,
        mut scratch: FxHashMap<Address, Cycle>,
    ) -> Self {
        scratch.clear();
        PrefetchBuffer {
            differential,
            config,
            entries: match config.capacity {
                Some(_) => Entries::Lru(LruMap::new()),
                None => Entries::Unbounded(scratch),
            },
            stats: PrefetchBufferStats::default(),
        }
    }

    /// Consumes the buffer and returns its entry map for reuse (empty for
    /// the finite-capacity LRU mode, which does not recycle).
    #[must_use]
    pub fn into_scratch(self) -> FxHashMap<Address, Cycle> {
        match self.entries {
            Entries::Unbounded(map) => map,
            Entries::Lru(_) => FxHashMap::default(),
        }
    }

    /// The configured memory differential.
    #[must_use]
    pub fn differential(&self) -> Cycle {
        self.differential
    }

    /// Current number of resident entries.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        match &self.entries {
            Entries::Unbounded(map) => map.len(),
            Entries::Lru(map) => map.len(),
        }
    }

    /// Records a prefetch of `addr` issued at cycle `issue`; the data
    /// arrives `1 + MD` cycles later.  Returns the arrival cycle.
    #[inline]
    pub fn prefetch(&mut self, addr: Address, issue: Cycle) -> Cycle {
        self.stats.prefetches += 1;
        let arrival = issue + 1 + self.differential;
        let occupancy = match &mut self.entries {
            Entries::Unbounded(map) => {
                map.insert(addr, arrival);
                map.len()
            }
            Entries::Lru(map) => {
                map.insert(addr, arrival);
                if let Some(cap) = self.config.capacity {
                    while map.len() > cap {
                        if map.pop_lru().is_some() {
                            self.stats.evictions += 1;
                        } else {
                            break;
                        }
                    }
                }
                map.len()
            }
        };
        self.stats.peak_occupancy = self.stats.peak_occupancy.max(occupancy);
        arrival
    }

    /// The arrival cycle of the data for `addr`, if the address is resident
    /// (the data may still be in flight).
    #[must_use]
    #[inline]
    pub fn available_at(&self, addr: Address) -> Option<Cycle> {
        match &self.entries {
            Entries::Unbounded(map) => map.get(&addr).copied(),
            Entries::Lru(map) => map.get(&addr).copied(),
        }
    }

    /// Performs an access lookup at cycle `now`, updating hit/miss counters
    /// and LRU order.  Returns the arrival cycle of the data if the address
    /// is resident.
    #[inline]
    pub fn access(&mut self, addr: Address, _now: Cycle) -> Option<Cycle> {
        let found = match &mut self.entries {
            Entries::Unbounded(map) => map.get(&addr).copied(),
            Entries::Lru(map) => {
                let found = map.get(&addr).copied();
                if found.is_some() {
                    map.touch(&addr);
                }
                found
            }
        };
        match found {
            Some(arrival) => {
                self.stats.hits += 1;
                Some(arrival)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> PrefetchBufferStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetched_data_arrives_after_the_differential() {
        let mut buf = PrefetchBuffer::new(40, PrefetchBufferConfig::default());
        assert_eq!(buf.prefetch(0x80, 10), 51);
        assert_eq!(buf.available_at(0x80), Some(51));
        assert_eq!(buf.available_at(0x88), None);
    }

    #[test]
    fn access_counts_hits_and_misses() {
        let mut buf = PrefetchBuffer::new(10, PrefetchBufferConfig::default());
        buf.prefetch(0x40, 0);
        assert_eq!(buf.access(0x40, 20), Some(11));
        assert_eq!(buf.access(0x99, 20), None);
        let st = buf.stats();
        assert_eq!(st.hits, 1);
        assert_eq!(st.misses, 1);
        assert_eq!(st.prefetches, 1);
    }

    #[test]
    fn unlimited_buffer_never_evicts() {
        let mut buf = PrefetchBuffer::new(5, PrefetchBufferConfig::default());
        for i in 0..500u64 {
            buf.prefetch(i * 8, i);
        }
        assert_eq!(buf.occupancy(), 500);
        assert_eq!(buf.stats().evictions, 0);
        assert_eq!(buf.stats().peak_occupancy, 500);
    }

    #[test]
    fn finite_buffer_evicts_least_recently_used() {
        let mut buf = PrefetchBuffer::new(5, PrefetchBufferConfig { capacity: Some(2) });
        buf.prefetch(0x00, 0);
        buf.prefetch(0x08, 1);
        // Touch 0x00 so 0x08 becomes the LRU victim.
        buf.access(0x00, 10);
        buf.prefetch(0x10, 2);
        assert!(buf.available_at(0x00).is_some());
        assert!(buf.available_at(0x08).is_none(), "LRU entry evicted");
        assert!(buf.available_at(0x10).is_some());
        assert_eq!(buf.stats().evictions, 1);
        assert_eq!(buf.occupancy(), 2);
    }

    #[test]
    fn re_prefetching_updates_arrival_without_duplicating() {
        let mut buf = PrefetchBuffer::new(10, PrefetchBufferConfig::default());
        buf.prefetch(0x40, 0);
        buf.prefetch(0x40, 100);
        assert_eq!(buf.occupancy(), 1);
        assert_eq!(buf.available_at(0x40), Some(111));
    }
}
