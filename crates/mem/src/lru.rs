//! A recency-tracking map with O(log n) touch and eviction.
//!
//! The seed implementations of the prefetch buffer and the decoupled-memory
//! bypass kept LRU order in a `VecDeque` and *linearly scanned* it on every
//! touch (`iter().position(..)` + `remove(..)`), costing O(entries) per
//! access.  [`LruMap`] replaces the scan with monotone recency stamps: a
//! hash map holds `key → (stamp, value)` and a `BTreeMap` keyed by stamp
//! gives the least-recently-used entry in O(log n).  Stamps come from a
//! per-map counter, so recency order is exactly insertion/touch order — the
//! replacement decisions are bit-for-bit those of the queue-based code.

use crate::fx::FxHashMap;
use std::collections::BTreeMap;
use std::hash::Hash;

/// A map whose entries remember when they were last inserted or touched,
/// with cheap least-recently-used eviction.
#[derive(Debug, Clone)]
pub struct LruMap<K, V> {
    entries: FxHashMap<K, (u64, V)>,
    order: BTreeMap<u64, K>,
    clock: u64,
}

// Manual impl: the derive would needlessly require `K: Default` and
// `V: Default`.
impl<K, V> Default for LruMap<K, V> {
    fn default() -> Self {
        LruMap {
            entries: FxHashMap::default(),
            order: BTreeMap::new(),
            clock: 0,
        }
    }
}

impl<K: Eq + Hash + Clone, V> LruMap<K, V> {
    /// An empty map.
    #[must_use]
    pub fn new() -> Self {
        LruMap {
            entries: FxHashMap::default(),
            order: BTreeMap::new(),
            clock: 0,
        }
    }

    /// Number of resident entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no entries are resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns `true` if `key` is resident (does not touch).
    #[must_use]
    pub fn contains_key(&self, key: &K) -> bool {
        self.entries.contains_key(key)
    }

    /// The value for `key`, if resident (does not touch).
    #[must_use]
    pub fn get(&self, key: &K) -> Option<&V> {
        self.entries.get(key).map(|(_, v)| v)
    }

    /// Inserts or replaces `key`, marking it most recently used.  Returns
    /// the previous value if the key was already resident.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.clock += 1;
        let stamp = self.clock;
        let previous = self.entries.insert(key.clone(), (stamp, value));
        if let Some((old_stamp, _)) = &previous {
            self.order.remove(old_stamp);
        }
        self.order.insert(stamp, key);
        previous.map(|(_, v)| v)
    }

    /// Marks `key` most recently used if resident.
    pub fn touch(&mut self, key: &K) {
        if let Some((stamp, _)) = self.entries.get_mut(key) {
            let old = *stamp;
            self.clock += 1;
            *stamp = self.clock;
            let entry = self
                .order
                .remove(&old)
                .expect("order entry tracks map entry");
            self.order.insert(self.clock, entry);
        }
    }

    /// Removes `key`, returning its value if it was resident.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let (stamp, value) = self.entries.remove(key)?;
        self.order.remove(&stamp);
        Some(value)
    }

    /// Iterates resident entries from least to most recently used without
    /// touching them.  Used by cost-aware eviction policies that want to
    /// inspect the coldest few entries before choosing a victim.
    pub fn iter_lru(&self) -> impl Iterator<Item = (&K, &V)> {
        self.order.values().map(move |key| {
            let (_, value) = &self.entries[key];
            (key, value)
        })
    }

    /// Removes every entry.  The recency clock keeps advancing, so stamps
    /// issued after a clear still order correctly against survivors of
    /// future fills.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
    }

    /// Evicts and returns the least recently used entry.
    pub fn pop_lru(&mut self) -> Option<(K, V)> {
        let (&stamp, _) = self.order.iter().next()?;
        let key = self.order.remove(&stamp).expect("stamp just observed");
        let (_, value) = self.entries.remove(&key).expect("entries track order");
        Some((key, value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_follows_touch_order() {
        let mut lru = LruMap::new();
        lru.insert(1u64, ());
        lru.insert(2, ());
        lru.insert(3, ());
        lru.touch(&1);
        assert_eq!(lru.pop_lru().unwrap().0, 2);
        assert_eq!(lru.pop_lru().unwrap().0, 3);
        assert_eq!(lru.pop_lru().unwrap().0, 1);
        assert!(lru.pop_lru().is_none());
    }

    #[test]
    fn reinsert_updates_value_and_recency() {
        let mut lru = LruMap::new();
        lru.insert(1u64, 10u64);
        lru.insert(2, 20);
        assert_eq!(lru.insert(1, 11), Some(10));
        assert_eq!(lru.get(&1), Some(&11));
        assert_eq!(
            lru.pop_lru().unwrap().0,
            2,
            "1 was refreshed by reinsertion"
        );
    }

    #[test]
    fn remove_and_contains() {
        let mut lru = LruMap::new();
        lru.insert(5u64, "five");
        assert!(lru.contains_key(&5));
        assert_eq!(lru.remove(&5), Some("five"));
        assert!(!lru.contains_key(&5));
        assert!(lru.is_empty());
        assert_eq!(lru.remove(&5), None);
    }

    #[test]
    fn touching_absent_keys_is_a_no_op() {
        let mut lru: LruMap<u64, ()> = LruMap::new();
        lru.touch(&9);
        assert_eq!(lru.len(), 0);
    }

    #[test]
    fn iter_lru_walks_recency_order_without_touching() {
        let mut lru = LruMap::new();
        lru.insert(1u64, 'a');
        lru.insert(2, 'b');
        lru.insert(3, 'c');
        lru.touch(&1);
        let order: Vec<u64> = lru.iter_lru().map(|(k, _)| *k).collect();
        assert_eq!(order, vec![2, 3, 1]);
        // Iterating must not have changed recency.
        assert_eq!(lru.pop_lru().unwrap().0, 2);
    }

    #[test]
    fn clear_empties_the_map_but_keeps_ordering_sound() {
        let mut lru = LruMap::new();
        lru.insert(1u64, ());
        lru.insert(2, ());
        lru.clear();
        assert!(lru.is_empty());
        assert_eq!(lru.iter_lru().count(), 0);
        lru.insert(3, ());
        lru.insert(4, ());
        assert_eq!(lru.pop_lru().unwrap().0, 3);
    }
}
