//! Criterion benchmarks of the **figures 7–9** generator: the
//! equivalent-window-ratio sweep for each representative program across the
//! configured memory differentials.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dae_bench::bench_config;
use dae_core::equivalent_window_figure;
use dae_workloads::PerfectProgram;
use std::hint::black_box;

fn bench_ewr_figures(c: &mut Criterion) {
    let config = bench_config();
    let mut group = c.benchmark_group("figures_equivalent_window_ratio");
    group.sample_size(10);
    for program in PerfectProgram::REPRESENTATIVE {
        group.bench_with_input(
            BenchmarkId::from_parameter(program.name()),
            &program,
            |b, &program| b.iter(|| black_box(equivalent_window_figure(program, &config))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ewr_figures);
criterion_main!(benches);
