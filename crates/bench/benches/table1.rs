//! Criterion benchmark of the **Table 1** generator (latency-hiding
//! effectiveness of the whole suite) at a reduced scale, plus the
//! per-program LHE measurement it is built from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dae_bench::bench_config;
use dae_core::{dm_cycles, table1, WindowSpec};
use dae_workloads::PerfectProgram;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let config = bench_config();
    c.bench_function("table1_suite_lhe", |b| {
        b.iter(|| black_box(table1(&config, 60)))
    });
}

fn bench_single_lhe(c: &mut Criterion) {
    let mut group = c.benchmark_group("lhe_single_program");
    for program in PerfectProgram::REPRESENTATIVE {
        let trace = program.workload().trace(200);
        group.bench_with_input(
            BenchmarkId::from_parameter(program.name()),
            &trace,
            |b, trace| {
                b.iter(|| {
                    let perfect = dm_cycles(trace, WindowSpec::Entries(32), 0);
                    let actual = dm_cycles(trace, WindowSpec::Entries(32), 60);
                    black_box(perfect as f64 / actual as f64)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table1, bench_single_lhe);
criterion_main!(benches);
