//! Criterion benchmarks of the simulators themselves: how fast the DM, the
//! SWSM and the scalar reference execute each representative workload's
//! trace.  These are the building blocks every table and figure is made of,
//! so their cost determines how long the experiment binaries take.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dae_core::{dm_cycles, scalar_cycles, swsm_cycles, WindowSpec};
use dae_workloads::PerfectProgram;
use std::hint::black_box;

fn bench_machines(c: &mut Criterion) {
    let iterations = 300;
    let mut group = c.benchmark_group("simulator_throughput");
    for program in PerfectProgram::REPRESENTATIVE {
        let trace = program.workload().trace(iterations);
        group.bench_with_input(
            BenchmarkId::new("dm_w32_md60", program.name()),
            &trace,
            |b, trace| b.iter(|| black_box(dm_cycles(trace, WindowSpec::Entries(32), 60))),
        );
        group.bench_with_input(
            BenchmarkId::new("swsm_w32_md60", program.name()),
            &trace,
            |b, trace| b.iter(|| black_box(swsm_cycles(trace, WindowSpec::Entries(32), 60))),
        );
        group.bench_with_input(
            BenchmarkId::new("scalar_md60", program.name()),
            &trace,
            |b, trace| b.iter(|| black_box(scalar_cycles(trace, 60))),
        );
    }
    group.finish();
}

fn bench_window_scaling(c: &mut Criterion) {
    let trace = PerfectProgram::Flo52q.workload().trace(300);
    let mut group = c.benchmark_group("dm_window_scaling");
    for window in [8usize, 32, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(window), &window, |b, &w| {
            b.iter(|| black_box(dm_cycles(&trace, WindowSpec::Entries(w), 60)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_machines, bench_window_scaling);
criterion_main!(benches);
