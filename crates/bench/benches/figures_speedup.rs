//! Criterion benchmarks of the **figures 4–6** generator: the speedup-vs-
//! window-size sweep for each representative program (DM and SWSM at memory
//! differentials of 0 and 60).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dae_bench::bench_config;
use dae_core::speedup_figure;
use dae_workloads::PerfectProgram;
use std::hint::black_box;

fn bench_speedup_figures(c: &mut Criterion) {
    let config = bench_config();
    let mut group = c.benchmark_group("figures_speedup");
    group.sample_size(10);
    for program in PerfectProgram::REPRESENTATIVE {
        group.bench_with_input(
            BenchmarkId::from_parameter(program.name()),
            &program,
            |b, &program| b.iter(|| black_box(speedup_figure(program, &config, &[0, 60]))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_speedup_figures);
criterion_main!(benches);
