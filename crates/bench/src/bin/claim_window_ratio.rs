//! Checks the paper's §5/§6 headline claim across the whole suite: "to
//! achieve the same speedup as the DM, the SWSM needs a window 2x to 4x
//! larger" at a realistic DM window size and a 60-cycle memory differential.
//!
//! ```text
//! cargo run --release -p dae-bench --bin claim_window_ratio
//! ```

use dae_bench::paper_config;
use dae_core::window_ratio_claim;

fn main() {
    let config = paper_config();
    for dm_window in [32usize, 64] {
        let claim = window_ratio_claim(&config, dm_window, 60);
        println!("{claim}\n");
        if let Some((min, max)) = claim.range() {
            println!(
                "=> at a {dm_window}-entry DM window the SWSM needs a {min:.1}x to {max:.1}x larger window (paper: roughly 2x-4x).\n"
            );
        }
    }
}
