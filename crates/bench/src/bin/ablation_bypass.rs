//! Future-work probe: the decoupled-memory bypass.
//!
//! The paper's §5/§6 propose "a bypass mechanism which captures the temporal
//! locality exposed by decoupling" as a way to improve the DM's latency
//! hiding at realistic window sizes.  This experiment adds such a bypass (a
//! small fully associative store of recently fetched lines in front of the
//! decoupled memory) and measures how much of the lost latency-hiding
//! effectiveness it recovers on workloads with temporal locality.
//!
//! ```text
//! cargo run --release -p dae-bench --bin ablation_bypass
//! ```

use dae_bench::paper_config;
use dae_core::TextTable;
use dae_machines::{DecoupledMachine, DmConfig};
use dae_mem::{BypassConfig, DecoupledMemoryConfig};
use dae_workloads::{stencil, PerfectProgram, Workload};

fn run(
    workload: &Workload,
    iterations: u64,
    window: usize,
    md: u64,
    bypass: Option<BypassConfig>,
) -> (u64, u64) {
    let trace = workload.trace(iterations);
    let mut config = DmConfig::paper(window, md);
    config.decoupled_memory = DecoupledMemoryConfig {
        capacity: None,
        bypass,
    };
    let result = DecoupledMachine::new(config).run(&trace);
    (result.cycles(), result.memory.bypass_hits)
}

fn main() {
    let config = paper_config();
    let window = 32;
    let md = 60;
    let bypass = BypassConfig {
        entries: 256,
        line_bytes: 32,
    };

    let mut workloads: Vec<Workload> = vec![stencil()];
    workloads.extend([PerfectProgram::Mdg, PerfectProgram::Track].map(|p| p.workload()));

    println!(
        "Decoupled-memory bypass probe ({window}-entry windows, MD = {md}, {} bypass lines)\n",
        bypass.entries
    );

    let mut table = TextTable::new(vec![
        "workload".into(),
        "cycles (no bypass)".into(),
        "cycles (bypass)".into(),
        "speedup".into(),
        "bypass hits".into(),
    ]);

    for workload in &workloads {
        let iterations = config.iterations.min(workload.meta().default_iterations);
        let (plain, _) = run(workload, iterations, window, md, None);
        let (with_bypass, hits) = run(workload, iterations, window, md, Some(bypass));
        table.push_row(vec![
            workload.name().to_string(),
            plain.to_string(),
            with_bypass.to_string(),
            format!("{:.2}x", plain as f64 / with_bypass as f64),
            hits.to_string(),
        ]);
    }

    println!("{table}");
    println!(
        "\nWorkloads whose address streams revisit recent lines (the stencil) benefit from the\n\
         bypass; gather-dominated workloads with little temporal locality do not — consistent\n\
         with the paper's suggestion that the bypass targets the locality exposed by decoupling."
    );
}
