//! Simulator-throughput baseline: event-driven scheduler vs the retained
//! naive reference, per machine and representative workload.
//!
//! Writes `BENCH_simulator_throughput.json` (the committed perf baseline)
//! and prints a human-readable table.  Three numbers are reported per
//! point:
//!
//! * `event_ns` — the new pipeline: trace lowered once up front (as the
//!   sweep drivers do), engine-driven asymmetric-clock run loop;
//! * `reference_ns` — the old pipeline: per-run lowering plus the naive
//!   cycle-stepped scheduler (`run_reference`), exactly what every sweep
//!   point cost before the scheduler rewrites;
//! * `sched_reference_ns` — the naive scheduler over the *same*
//!   pre-lowered program, isolating scheduler-vs-scheduler cost with no
//!   lowering on either side.
//!
//! `pipeline_speedup = reference_ns / event_ns` (the end-to-end win per
//! sweep point) and `scheduler_speedup = sched_reference_ns / event_ns`
//! (recorded so a scheduler regression cannot hide behind lowering cost).
//! Floors are enforced for **all three machines** — DM, SWSM and scalar —
//! so the single-unit engine path is guarded too.  Every measurement first
//! asserts that both paths produce identical results.
//!
//! A fourth, sweep-mode number per program runs a whole (window × MD) DM
//! grid over one recycled [`SimPool`] versus per-point construction,
//! pinning the amortised-construction win of the pooled sweep path.  A
//! fifth, session-mode number runs the same grid through a warm
//! [`SweepSession`] (persistent workers, pools alive between calls)
//! versus the pre-session per-call shape (scoped threads + cold pools per
//! sweep call), pinning the win of the resident session path (the
//! session's result cache is switched *off* here so the repeat really
//! re-simulates — the benchmark measures the session, not the cache).  A
//! sixth, cache-mode number runs the grid through the session's
//! sweep-result cache (every point resident — the overlapping-figure-grid
//! shape) versus the same warm session with the cache disabled, pinning
//! the skip-identical-points win; cached and cold results are asserted
//! identical first.
//!
//! Two scheduler-shape benchmarks round out the suite.  A **contention**
//! benchmark floods the worker pool's bulk band with a constantly refilled
//! backlog grid and interleaves single-point probe requests, recording
//! p50/p99 probe latency twice: tagged `interactive` (the priority
//! scheduler pulls them past the backlog) and tagged like the backlog
//! itself (bulk band, same client — the FIFO shape every request had
//! before priorities existed).  The enforced floor is the acceptance
//! bound: the prioritized p99 must never exceed the FIFO-shaped p99.  A
//! **skew** benchmark runs a skewed-cost grid (sixty cheap points, four
//! 4×-cost points parked at the tail) on the work-stealing pool versus an
//! emulation of the old fixed-chunk FIFO pool (scoped threads claiming
//! `total / (4 × threads)`-point chunks off a shared cursor): under FIFO
//! chunking the expensive tail lands in one thread's final chunk and
//! serializes, while the stealing deques split it across idle workers.
//! On a single hardware thread both sides serialize identically, so the
//! floor is a loss guard (like the sweep/session floors) and the
//! committed ratio is the trend signal.
//!
//! Each pipeline is timed as a warm burst (the sweep drivers run the same
//! machine back to back, so warm-cache cost is the deployed cost), taking
//! the minimum over several repetitions to reject load spikes on shared
//! boxes.
//!
//! ## Smoke mode
//!
//! With `BENCH_SMOKE=1` in the environment the benchmark runs a
//! reduced-iteration configuration (shorter traces, fewer repetitions),
//! still verifies differential equality and still **enforces the speedup
//! floors** — CI runs this on every push so a regression below the floor
//! fails fast — but does not overwrite the committed baseline JSON.

use dae_core::{
    CancelToken, LoweredTrace, Machine, Priority, RequestClass, SweepEvent, SweepPoint,
    SweepSession, WindowSpec,
};
use dae_machines::{
    DecoupledMachine, DmConfig, ScalarConfig, ScalarReference, SimPool, SuperscalarMachine,
    SwsmConfig,
};
use dae_trace::{expand_swsm, lower_scalar, partition, PartitionMode};
use dae_workloads::PerfectProgram;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

const WINDOW: usize = 32;
const MD: u64 = 60;

/// Enforced floors for the DM at `w32 / MD = 60`, the paper's headline
/// configuration.  History: PR 1 (event-driven scheduler + time skipping)
/// set 3x pipeline / 2x scheduler-only over a then-untouched naive
/// reference.  PR 2 (asymmetric per-unit clocks, calendar event queue,
/// flat/Fx-hashed memory structures, thin LTO) cut absolute DM event time a
/// further ~1.4-1.6x — but the *reference* also got 1.3-1.7x faster,
/// because the memory structures and link-time optimisation are shared by
/// both pipelines.  The ratio therefore compresses even as both sides
/// speed up: measured 3.6-4.3x pipeline / 2.5-3.2x scheduler-only on the
/// CI container, floors raised to 3.4x / 2.4x (the original 4x target
/// assumed a frozen denominator).
const DM_PIPELINE_FLOOR: f64 = 3.4;
const DM_SCHEDULER_FLOOR: f64 = 2.4;

/// Enforced floors for the SWSM and the scalar reference at the same
/// configuration.  Before PR 3 only the DM was guarded, so a regression of
/// the single-unit machines (which share every scheduler structure but
/// exercise the single-unit engine path) could land silently.  Measured
/// 3.8–7.6x / 3.4–6.9x (SWSM) and 5.6–6.9x / 4.9–6.4x (scalar) on the CI
/// container after the single-unit fast path; the floors sit far below the
/// observed minima because a shared-box load spike hits a single 600μs
/// measurement harder than the DM's larger ones, but far above the ~1x a
/// real engine regression would produce.
const SWSM_PIPELINE_FLOOR: f64 = 3.0;
const SWSM_SCHEDULER_FLOOR: f64 = 2.5;
const SCALAR_PIPELINE_FLOOR: f64 = 3.5;
const SCALAR_SCHEDULER_FLOOR: f64 = 2.8;

/// Floor for the sweep-mode benchmark: a many-point sweep over one
/// recycled [`SimPool`] versus the same points with per-point
/// construction.  Construction is ~5% of a DM run, so the honest win is
/// modest (measured 1.04-1.08x) and the ratio of two multi-millisecond
/// measurements jitters a few percent on a shared box; the floor sits
/// below break-even and only guards against pooling becoming a clear
/// *loss* — the committed `min_sweep_speedup` is the trend signal.
const SWEEP_FLOOR: f64 = 0.98;

/// Floor for the session benchmark: the same (window × MD) grid through a
/// *warm* [`SweepSession`] (persistent workers, thread-local pools alive
/// between calls) versus the pre-session per-call shape — scoped threads
/// spawned for the one call, one cold [`SimPool`] per thread, everything
/// torn down at the end.  The session's win is per-call thread spawn plus
/// cold-pool construction amortised over the grid (measured ≥ 1.0x); as
/// with the sweep floor, the enforced bound sits at break-even so only a
/// clear *loss* fails, and the committed `min_session_speedup` carries the
/// trend.
const SESSION_FLOOR: f64 = 0.98;

/// Floor for the cache benchmark: the grid answered entirely from the
/// session's sweep-result cache versus the same warm session with the
/// cache disabled (every point re-simulated).  A hash lookup against a
/// multi-millisecond simulation grid measures orders of magnitude above
/// break-even; the floor guards the acceptance bound — cache-warm must
/// never be slower than cold.
const CACHE_FLOOR: f64 = 1.0;

/// Floor for the contention benchmark: the p99 latency of an
/// `interactive`-tagged probe must never exceed the p99 of the same probe
/// tagged like the backlog (bulk band, backlog client — the pre-priority
/// FIFO shape).  This is the acceptance bound itself; the measured ratio
/// is far above it whenever the backlog holds more than a handful of
/// queued points, because the FIFO-shaped probe waits for every one of
/// them while the interactive probe waits only for the points already
/// *running*.
const CONTENTION_FLOOR: f64 = 1.0;

/// Floor for the skewed-grid benchmark: work stealing versus the old
/// fixed-chunk FIFO shape.  On one hardware thread both sides serialize
/// the same work (ratio ≈ 1.0) and the FIFO side additionally pays its
/// per-call thread spawn, so like the sweep/session floors this is a loss
/// guard — stealing must never make a skewed grid meaningfully *slower* —
/// and the committed ratio (well above 1 on multi-core boxes, where the
/// expensive tail chunk serializes under FIFO) is the trend signal.
const SKEW_FLOOR: f64 = 0.95;

/// Smoke-mode floors: shorter traces amortise per-run fixed costs less and
/// the reduced repetition count rejects less noise, so CI's fast tripwire
/// uses a wider margin.  A real regression of the event-driven engine
/// (losing time-skipping, losing the calendar queue) lands far below this.
const SMOKE_PIPELINE_FLOOR: f64 = 2.5;
const SMOKE_SCHEDULER_FLOOR: f64 = 1.8;
const SMOKE_SWSM_PIPELINE_FLOOR: f64 = 2.5;
const SMOKE_SWSM_SCHEDULER_FLOOR: f64 = 2.0;
const SMOKE_SCALAR_PIPELINE_FLOOR: f64 = 2.5;
const SMOKE_SCALAR_SCHEDULER_FLOOR: f64 = 2.2;
/// Below break-even: the expected smoke-mode win is only ~1.05x, so an
/// exact 1.0 floor would leave no margin for a load spike landing on the
/// pooled reps but not the fresh ones; 0.97 still catches pooling becoming
/// a real loss.
const SMOKE_SWEEP_FLOOR: f64 = 0.97;
/// Smoke-mode session floor, widened like the sweep one.
const SMOKE_SESSION_FLOOR: f64 = 0.97;
/// The cache floor needs no smoke widening: the measured ratio is a
/// lookup against a simulation, far from break-even in any mode.
const SMOKE_CACHE_FLOOR: f64 = 1.0;
/// The contention floor is the acceptance bound and holds in any mode:
/// a prioritized probe never waits for queued bulk points, so its p99
/// cannot exceed the FIFO-shaped one even on a short smoke backlog.
const SMOKE_CONTENTION_FLOOR: f64 = 1.0;
/// The skew floor is already a loss guard; smoke mode needs no widening.
const SMOKE_SKEW_FLOOR: f64 = 0.95;

/// Times one pipeline as a warm burst: one untimed warm-up call, then the
/// minimum single-run time over `reps` repetitions.
fn measure<R>(reps: u32, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_nanos() as f64);
    }
    best
}

/// Times the three pipelines of one benchmark point.
fn measure3<A, B, C>(
    reps: u32,
    event: impl FnMut() -> A,
    reference: impl FnMut() -> B,
    sched_reference: impl FnMut() -> C,
) -> (f64, f64, f64) {
    (
        measure(reps, event),
        measure(reps, reference),
        measure(reps, sched_reference),
    )
}

struct Measurement {
    name: String,
    event_ns: f64,
    reference_ns: f64,
    sched_reference_ns: f64,
}

impl Measurement {
    fn pipeline_speedup(&self) -> f64 {
        self.reference_ns / self.event_ns
    }

    fn scheduler_speedup(&self) -> f64 {
        self.sched_reference_ns / self.event_ns
    }
}

/// One sweep-mode measurement: the same multi-point sweep run over one
/// recycled buffer pool versus per-point construction.
struct SweepMeasurement {
    name: String,
    pooled_ns: f64,
    fresh_ns: f64,
}

impl SweepMeasurement {
    fn speedup(&self) -> f64 {
        self.fresh_ns / self.pooled_ns
    }
}

/// One session-mode measurement: a grid through a warm [`SweepSession`]
/// versus the per-call shape (scoped threads + cold pools per sweep call).
struct SessionMeasurement {
    name: String,
    session_ns: f64,
    per_call_ns: f64,
}

impl SessionMeasurement {
    fn speedup(&self) -> f64 {
        self.per_call_ns / self.session_ns
    }
}

/// One cache-mode measurement: a grid answered from the session's
/// sweep-result cache versus the same warm session with the cache off.
struct CacheMeasurement {
    name: String,
    warm_ns: f64,
    cold_ns: f64,
}

impl CacheMeasurement {
    fn speedup(&self) -> f64 {
        self.cold_ns / self.warm_ns
    }
}

/// One contention measurement: p50/p99 latency of single-point probes
/// racing a refilled bulk backlog, once tagged `interactive` and once
/// tagged like the backlog itself (the FIFO shape).
struct ContentionMeasurement {
    name: String,
    interactive_p50_ns: f64,
    interactive_p99_ns: f64,
    fifo_p50_ns: f64,
    fifo_p99_ns: f64,
}

impl ContentionMeasurement {
    fn p99_ratio(&self) -> f64 {
        self.fifo_p99_ns / self.interactive_p99_ns
    }
}

/// One skew measurement: a skewed-cost grid on the work-stealing pool
/// versus the old fixed-chunk FIFO shape.
struct SkewMeasurement {
    name: String,
    stealing_ns: f64,
    fifo_ns: f64,
}

impl SkewMeasurement {
    fn speedup(&self) -> f64 {
        self.fifo_ns / self.stealing_ns
    }
}

/// The `p`-th percentile of an ascending-sorted latency sample (nearest
/// rank; `p` in (0, 1]).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    let rank = (sorted.len() as f64 * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The minimum of `f` over the measurements whose name starts with
/// `prefix` (the per-machine floor checks).
fn min_over(results: &[Measurement], prefix: &str, f: impl Fn(&Measurement) -> f64) -> f64 {
    results
        .iter()
        .filter(|m| m.name.starts_with(prefix))
        .map(f)
        .fold(f64::INFINITY, f64::min)
}

/// The commit hash the baseline was measured at (with a `-dirty` suffix
/// when the working tree has uncommitted changes), or `"unknown"` outside
/// a git checkout.  The baseline JSON itself is excluded from the dirty
/// check — regenerating it is the whole point, and counting the file
/// being rewritten would make a clean stamp impossible.
fn commit_hash() -> String {
    let output = |args: &[&str]| {
        std::process::Command::new("git")
            .args(args)
            .output()
            .ok()
            .filter(|o| o.status.success())
            .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
    };
    match output(&["rev-parse", "HEAD"]) {
        Some(hash) => {
            let dirty = output(&[
                "status",
                "--porcelain",
                "--",
                ":(exclude,top)BENCH_simulator_throughput.json",
            ])
            .is_none_or(|s| !s.is_empty());
            if dirty {
                format!("{hash}-dirty")
            } else {
                hash
            }
        }
        None => "unknown".to_string(),
    }
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let (iterations, reps) = if smoke { (150, 5) } else { (300, 9) };
    if smoke {
        println!("BENCH_SMOKE: {iterations}-iteration traces, {reps} reps, baseline not rewritten");
    }

    let mut results: Vec<Measurement> = Vec::new();
    let mut sweeps: Vec<SweepMeasurement> = Vec::new();
    let mut sessions: Vec<SessionMeasurement> = Vec::new();
    let mut caches: Vec<CacheMeasurement> = Vec::new();
    let mut contentions: Vec<ContentionMeasurement> = Vec::new();
    let mut skews: Vec<SkewMeasurement> = Vec::new();
    // The sweep benchmark's (window, MD) grid: a slice of the figure
    // sweeps' real parameter space, small windows and MD = 0 included so
    // per-point construction is a visible share of the cheap points.
    let sweep_points: [(usize, u64); 8] = [
        (8, 0),
        (16, 0),
        (32, 0),
        (64, 0),
        (8, MD),
        (16, MD),
        (32, MD),
        (64, MD),
    ];

    for program in PerfectProgram::REPRESENTATIVE {
        let trace = program.workload().trace(iterations);
        let lowered = LoweredTrace::new(&trace);
        let dm_program = partition(&trace, PartitionMode::Tagged);
        let swsm_program = expand_swsm(&trace);
        let scalar_program = lower_scalar(&trace);

        let dm = DecoupledMachine::new(DmConfig::paper(WINDOW, MD));
        assert_eq!(
            dm.run(&trace),
            dm.run_reference(&trace),
            "DM differential check failed for {program}"
        );
        let (event_ns, reference_ns, sched_reference_ns) = measure3(
            reps,
            || lowered.dm_cycles(dae_core::WindowSpec::Entries(WINDOW), MD),
            || dm.run_reference(&trace).cycles(),
            || dm.run_reference_lowered(&dm_program, trace.len()).cycles(),
        );
        results.push(Measurement {
            name: format!("dm_w{WINDOW}_md{MD}/{}", program.name()),
            event_ns,
            reference_ns,
            sched_reference_ns,
        });

        let swsm = SuperscalarMachine::new(SwsmConfig::paper(WINDOW, MD));
        assert_eq!(
            swsm.run(&trace),
            swsm.run_reference(&trace),
            "SWSM differential check failed for {program}"
        );
        let (event_ns, reference_ns, sched_reference_ns) = measure3(
            reps,
            || lowered.swsm_cycles(dae_core::WindowSpec::Entries(WINDOW), MD),
            || swsm.run_reference(&trace).cycles(),
            || {
                swsm.run_reference_lowered(&swsm_program, trace.len())
                    .cycles()
            },
        );
        results.push(Measurement {
            name: format!("swsm_w{WINDOW}_md{MD}/{}", program.name()),
            event_ns,
            reference_ns,
            sched_reference_ns,
        });

        let scalar = ScalarReference::new(ScalarConfig::new(MD));
        assert_eq!(
            scalar.run(&trace),
            scalar.run_reference(&trace),
            "scalar differential check failed for {program}"
        );
        let (event_ns, reference_ns, sched_reference_ns) = measure3(
            reps,
            || scalar.run_lowered(&scalar_program, trace.len()).cycles(),
            || scalar.run_reference(&trace).cycles(),
            || {
                scalar
                    .run_reference_lowered(&scalar_program, trace.len())
                    .cycles()
            },
        );
        results.push(Measurement {
            name: format!("scalar_md{MD}/{}", program.name()),
            event_ns,
            reference_ns,
            sched_reference_ns,
        });

        // Sweep mode: the same pre-lowered DM program across the whole
        // (window, MD) grid, once over one recycled pool (each sweep starts
        // cold, so the measurement includes the first point's construction)
        // and once with per-point construction — the amortised-construction
        // win the figure sweeps see.  Equality is asserted up front.
        {
            let mut pool = SimPool::new();
            for &(w, md) in &sweep_points {
                let machine = DecoupledMachine::new(DmConfig::paper(w, md));
                assert_eq!(
                    machine.run_pooled(&dm_program, trace.len(), &mut pool),
                    machine.run_lowered(&dm_program, trace.len()),
                    "pooled sweep differential check failed for {program}"
                );
            }
            let machines: Vec<DecoupledMachine> = sweep_points
                .iter()
                .map(|&(w, md)| DecoupledMachine::new(DmConfig::paper(w, md)))
                .collect();
            // The two sides are close (the win is the ~5% construction
            // share), so measure them *interleaved* — alternating single
            // sweeps, min per side — rather than in two phases: a load
            // spike then lands on both sides instead of silently skewing
            // whichever phase it hit.
            let run_pooled_sweep = || {
                let mut pool = SimPool::new();
                machines
                    .iter()
                    .map(|m| m.run_pooled(&dm_program, trace.len(), &mut pool).cycles())
                    .sum::<u64>()
            };
            let run_fresh_sweep = || {
                machines
                    .iter()
                    .map(|m| m.run_lowered(&dm_program, trace.len()).cycles())
                    .sum::<u64>()
            };
            std::hint::black_box(run_pooled_sweep());
            std::hint::black_box(run_fresh_sweep());
            let (mut pooled_ns, mut fresh_ns) = (f64::INFINITY, f64::INFINITY);
            for _ in 0..reps {
                let t0 = Instant::now();
                std::hint::black_box(run_pooled_sweep());
                pooled_ns = pooled_ns.min(t0.elapsed().as_nanos() as f64);
                let t0 = Instant::now();
                std::hint::black_box(run_fresh_sweep());
                fresh_ns = fresh_ns.min(t0.elapsed().as_nanos() as f64);
            }
            sweeps.push(SweepMeasurement {
                name: format!(
                    "dm_sweep{}_w8-64_md0-{MD}/{}",
                    sweep_points.len(),
                    program.name()
                ),
                pooled_ns,
                fresh_ns,
            });
        }

        // Session mode: the same grid through a *warm* persistent
        // SweepSession (long-lived workers whose thread-local pools
        // survive between calls) versus the pre-session per-call shape —
        // scoped threads spawned for the one call, a cold SimPool per
        // thread, all of it torn down when the call returns.  That
        // per-call loop is exactly what every figure generator paid
        // before sessions existed.
        {
            let grid: Vec<(Machine, WindowSpec, u64)> = sweep_points
                .iter()
                .map(|&(w, md)| (Machine::Decoupled, WindowSpec::Entries(w), md))
                .collect();
            let machines: Vec<DecoupledMachine> = sweep_points
                .iter()
                .map(|&(w, md)| DecoupledMachine::new(DmConfig::paper(w, md)))
                .collect();
            let mut session = SweepSession::new();
            // The result cache would answer the repeated grid without
            // simulating; this benchmark measures the resident *session*
            // (warm workers and pools), so it is switched off — the cache
            // has its own benchmark below.
            session.set_cache_enabled(false);
            let sid = session.pin_lowered(lowered.clone());
            // Differential check (which also warms the session): session
            // results must equal per-point fresh construction.
            let expected: Vec<u64> = machines
                .iter()
                .map(|m| m.run_lowered(&dm_program, trace.len()).cycles())
                .collect();
            assert_eq!(
                session.sweep(sid, &grid),
                expected,
                "session sweep differential check failed for {program}"
            );

            let threads = std::thread::available_parallelism()
                .map_or(1, std::num::NonZeroUsize::get)
                .min(machines.len());
            let mut run_session = || session.sweep(sid, &grid).iter().sum::<u64>();
            let run_per_call = || {
                let cursor = AtomicUsize::new(0);
                let results: Vec<Mutex<u64>> = (0..machines.len()).map(|_| Mutex::new(0)).collect();
                std::thread::scope(|scope| {
                    for _ in 0..threads {
                        scope.spawn(|| {
                            let mut pool = SimPool::new();
                            loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                if i >= machines.len() {
                                    break;
                                }
                                *results[i].lock().expect("result slot poisoned") = machines[i]
                                    .run_pooled(&dm_program, trace.len(), &mut pool)
                                    .cycles();
                            }
                        });
                    }
                });
                results
                    .iter()
                    .map(|m| *m.lock().expect("result slot poisoned"))
                    .sum::<u64>()
            };
            // Interleaved min-of-reps, like the sweep benchmark: the two
            // sides are close, so a load spike must land on both.  Tripled
            // reps because this ratio has the tightest floor margin of the
            // suite (the expected win is only a few percent) and the
            // per-call side's thread spawns add scheduler jitter of their
            // own — more samples tighten both minima symmetrically.
            std::hint::black_box(run_session());
            std::hint::black_box(run_per_call());
            let (mut session_ns, mut per_call_ns) = (f64::INFINITY, f64::INFINITY);
            for _ in 0..3 * reps {
                let t0 = Instant::now();
                std::hint::black_box(run_session());
                session_ns = session_ns.min(t0.elapsed().as_nanos() as f64);
                let t0 = Instant::now();
                std::hint::black_box(run_per_call());
                per_call_ns = per_call_ns.min(t0.elapsed().as_nanos() as f64);
            }
            sessions.push(SessionMeasurement {
                name: format!(
                    "dm_session{}_w8-64_md0-{MD}/{}",
                    sweep_points.len(),
                    program.name()
                ),
                session_ns,
                per_call_ns,
            });
        }

        // Cache mode: the same grid answered entirely from the session's
        // sweep-result cache (the overlapping-figure-grid shape — the EWR
        // search re-visits identical points across generators) versus the
        // same *warm* session with the cache disabled, so the two sides
        // differ only by the cache.  Cached ≡ cold ≡ fresh-construction
        // equality is asserted before anything is timed.
        {
            let grid: Vec<(Machine, WindowSpec, u64)> = sweep_points
                .iter()
                .map(|&(w, md)| (Machine::Decoupled, WindowSpec::Entries(w), md))
                .collect();
            let mut session = SweepSession::new();
            let sid = session.pin_lowered(lowered.clone());
            let expected: Vec<u64> = sweep_points
                .iter()
                .map(|&(w, md)| {
                    DecoupledMachine::new(DmConfig::paper(w, md))
                        .run_lowered(&dm_program, trace.len())
                        .cycles()
                })
                .collect();
            assert_eq!(
                session.sweep(sid, &grid),
                expected,
                "cache-cold sweep differential check failed for {program}"
            );
            assert_eq!(
                session.sweep(sid, &grid),
                expected,
                "cache-warm sweep differential check failed for {program}"
            );
            session.set_cache_enabled(false);
            assert_eq!(
                session.sweep(sid, &grid),
                expected,
                "cache-disabled sweep differential check failed for {program}"
            );

            // Interleaved min-of-reps like the other close-ratio
            // benchmarks (here the ratio is anything but close; the
            // interleave just keeps the methodology uniform).
            let (mut warm_ns, mut cold_ns) = (f64::INFINITY, f64::INFINITY);
            for _ in 0..reps {
                session.set_cache_enabled(true);
                let t0 = Instant::now();
                std::hint::black_box(session.sweep(sid, &grid));
                warm_ns = warm_ns.min(t0.elapsed().as_nanos() as f64);
                session.set_cache_enabled(false);
                let t0 = Instant::now();
                std::hint::black_box(session.sweep(sid, &grid));
                cold_ns = cold_ns.min(t0.elapsed().as_nanos() as f64);
            }
            caches.push(CacheMeasurement {
                name: format!(
                    "dm_cache{}_w8-64_md0-{MD}/{}",
                    sweep_points.len(),
                    program.name()
                ),
                warm_ns,
                cold_ns,
            });
        }
    }

    // Restart-warm mode: the grid answered by a *fresh* session that
    // replayed a persisted cache store (the `--cache-dir` relaunch shape —
    // attach, file I/O included, then an all-hit sweep) versus an equally
    // fresh session that has to simulate everything.  Bit-for-bit equality
    // of both sides is asserted before anything is timed.
    {
        let grid: Vec<(Machine, WindowSpec, u64)> = [8usize, 16, 32, 64]
            .iter()
            .flat_map(|&w| {
                [0u64, 20, 40, MD]
                    .iter()
                    .map(move |&md| (Machine::Decoupled, WindowSpec::Entries(w), md))
                    .collect::<Vec<_>>()
            })
            .collect();
        let dir = std::env::temp_dir().join(format!("dae-bench-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut seed = SweepSession::new();
        seed.attach_cache_store(&dir).expect("bench store attaches");
        let sid = seed.pin_program(PerfectProgram::Trfd, iterations);
        let expected = seed.sweep(sid, &grid);
        seed.persist_cache().expect("bench store compaction");
        drop(seed);

        let run_warm = || {
            let mut s = SweepSession::new();
            s.attach_cache_store(&dir).expect("bench store reattaches");
            let id = s.pin_program(PerfectProgram::Trfd, iterations);
            let out = s.sweep(id, &grid);
            assert_eq!(
                s.cache_stats().misses,
                0,
                "a restart-warm sweep must not simulate"
            );
            out
        };
        let run_cold = || {
            let mut s = SweepSession::new();
            let id = s.pin_program(PerfectProgram::Trfd, iterations);
            s.sweep(id, &grid)
        };
        assert_eq!(run_warm(), expected, "restart-warm differential failed");
        assert_eq!(run_cold(), expected, "restart-cold differential failed");
        let (mut warm_ns, mut cold_ns) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..reps {
            let t0 = Instant::now();
            std::hint::black_box(run_warm());
            warm_ns = warm_ns.min(t0.elapsed().as_nanos() as f64);
            let t0 = Instant::now();
            std::hint::black_box(run_cold());
            cold_ns = cold_ns.min(t0.elapsed().as_nanos() as f64);
        }
        caches.push(CacheMeasurement {
            name: format!("dm_restart{}_store/TRFD", grid.len()),
            warm_ns,
            cold_ns,
        });
        let _ = std::fs::remove_dir_all(&dir);

        // Eviction overhead: populating the same grid into a tightly
        // bounded cache (limit 8 — constant cost-aware eviction churn)
        // versus an unbounded one.  Reported, not floor-gated: both sides
        // do identical simulation work and differ only by bookkeeping, so
        // the ratio sits in measurement noise around 1.
        let run_populate = |limit: Option<usize>| {
            let mut s = SweepSession::new();
            s.set_cache_limit(limit);
            let id = s.pin_program(PerfectProgram::Trfd, iterations);
            let out = s.sweep(id, &grid);
            (out, s.cache_stats())
        };
        let (bounded_out, bounded_stats) = run_populate(Some(8));
        assert_eq!(bounded_out, expected, "bounded-cache differential failed");
        assert!(
            bounded_stats.entries <= 8,
            "the bound must hold under populate: {} entries",
            bounded_stats.entries
        );
        assert!(
            bounded_stats.evictions >= (grid.len() - 8) as u64,
            "populating {} points through a bound of 8 must evict: {}",
            grid.len(),
            bounded_stats.evictions
        );
        let (mut unbounded_ns, mut bounded_ns) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..reps {
            let t0 = Instant::now();
            std::hint::black_box(run_populate(None));
            unbounded_ns = unbounded_ns.min(t0.elapsed().as_nanos() as f64);
            let t0 = Instant::now();
            std::hint::black_box(run_populate(Some(8)));
            bounded_ns = bounded_ns.min(t0.elapsed().as_nanos() as f64);
        }
        println!(
            "eviction overhead (limit 8, {} points): bounded {:.0} ns vs unbounded {:.0} ns ({:+.1}%)",
            grid.len(),
            bounded_ns,
            unbounded_ns,
            100.0 * (bounded_ns / unbounded_ns - 1.0)
        );
    }

    // Contention mode: single-point probe requests interleaved with a
    // constantly refilled bulk backlog on one shared session (the
    // multi-client serving shape).  Each probe is timed from submission to
    // its point event, first tagged `interactive` from its own client,
    // then tagged exactly like the backlog (bulk band, same client) — the
    // FIFO discipline every request got before the priority scheduler.
    // Alternating the two legs probe-by-probe keeps load spikes fair, as
    // in the other close-measurement benchmarks (here the contrast is
    // anything but close: the FIFO-shaped probe waits for the whole queued
    // backlog, the interactive one only for the points already running).
    {
        let probes = if smoke { 12 } else { 40 };
        let mut session = SweepSession::new();
        // Cache off: every probe and every backlog point must really
        // simulate, or the backlog would evaporate after one pass.
        session.set_cache_enabled(false);
        let sid = session.pin_program(PerfectProgram::Trfd, iterations);
        let mut backlog_grid: Vec<SweepPoint> = Vec::new();
        for _ in 0..12 {
            for &w in &[4usize, 8, 16, 32] {
                for &md in &[0u64, 20, 40, MD] {
                    backlog_grid.push((sid, Machine::Decoupled, WindowSpec::Entries(w), md));
                }
            }
        }
        let probe_point: Vec<SweepPoint> =
            vec![(sid, Machine::Decoupled, WindowSpec::Entries(16), MD)];

        // Keep at least one backlog grid's worth of bulk jobs queued ahead
        // of every probe (the pool's band gauge is the refill signal).
        let mut backlog: Vec<(CancelToken, dae_core::SweepStream)> = Vec::new();
        let refill =
            |session: &mut SweepSession,
             backlog: &mut Vec<(CancelToken, dae_core::SweepStream)>| {
                while rayon::global_pool_stats().queued_bulk < 96 {
                    let token = CancelToken::new();
                    let stream = session.stream_classified(
                        &backlog_grid,
                        &token,
                        RequestClass::new(Priority::Bulk, 1),
                    );
                    backlog.push((token, stream));
                }
            };
        let probe = |session: &mut SweepSession, class: RequestClass| -> f64 {
            let token = CancelToken::new();
            let t0 = Instant::now();
            let mut stream = session.stream_classified(&probe_point, &token, class);
            match stream.next_event() {
                Some(SweepEvent::Point(point)) => assert!(point.cycles > 0),
                other => panic!("the probe must deliver its point: {other:?}"),
            }
            let ns = t0.elapsed().as_nanos() as f64;
            assert!(stream.next_event().is_none());
            ns
        };

        let mut interactive = Vec::with_capacity(probes);
        let mut fifo = Vec::with_capacity(probes);
        for _ in 0..probes {
            refill(&mut session, &mut backlog);
            interactive.push(probe(
                &mut session,
                RequestClass::new(Priority::Interactive, 2),
            ));
            refill(&mut session, &mut backlog);
            fifo.push(probe(&mut session, RequestClass::new(Priority::Bulk, 1)));
        }

        // Wind the backlog down: cancellation claim-drops the queued jobs.
        for (token, _) in &backlog {
            token.cancel();
        }
        for (_, stream) in &mut backlog {
            while stream.next_event().is_some() {}
        }

        interactive.sort_by(f64::total_cmp);
        fifo.sort_by(f64::total_cmp);
        contentions.push(ContentionMeasurement {
            name: format!("probe{probes}_under_bulk{}/trfd", backlog_grid.len()),
            interactive_p50_ns: percentile(&interactive, 0.50),
            interactive_p99_ns: percentile(&interactive, 0.99),
            fifo_p50_ns: percentile(&fifo, 0.50),
            fifo_p99_ns: percentile(&fifo, 0.99),
        });
    }

    // Skew mode: a grid whose tail is far more expensive than its head —
    // sixty points on a short trace, then four points on a 4×-length
    // trace.  The stealing pool splits the tail across whatever workers go
    // idle; the old pool's fixed `total / (4 × threads)`-point chunks
    // (emulated here with scoped threads over a shared cursor, the same
    // shape the session benchmark uses for its per-call side) hand the
    // entire tail to whichever thread claims the last chunk.
    {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let short_trace = PerfectProgram::Trfd.workload().trace(iterations);
        let long_trace = PerfectProgram::Trfd.workload().trace(iterations * 4);
        let lowered_short = LoweredTrace::new(&short_trace);
        let lowered_long = LoweredTrace::new(&long_trace);
        let mut grid: Vec<bool> = vec![false; 60];
        grid.extend([true; 4]);
        let eval = |&expensive: &bool| {
            if expensive {
                lowered_long.dm_cycles(WindowSpec::Entries(WINDOW), MD)
            } else {
                lowered_short.dm_cycles(WindowSpec::Entries(WINDOW), MD)
            }
        };
        let naive: Vec<u64> = grid.iter().map(eval).collect();
        let pool = rayon::ThreadPool::new(threads);
        assert_eq!(
            pool.map(grid.clone(), |p| eval(&p)),
            naive,
            "skewed-grid differential check failed"
        );

        let run_stealing = || pool.map(grid.clone(), |p| eval(&p)).iter().sum::<u64>();
        let run_fifo = || {
            let chunk = grid.len().div_ceil(4 * threads).max(1);
            let cursor = AtomicUsize::new(0);
            let sum = AtomicU64::new(0);
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= grid.len() {
                            break;
                        }
                        let mut local = 0u64;
                        for p in &grid[start..(start + chunk).min(grid.len())] {
                            local += eval(p);
                        }
                        sum.fetch_add(local, Ordering::Relaxed);
                    });
                }
            });
            sum.load(Ordering::Relaxed)
        };
        // Interleaved min-of-reps, like the sweep and session benchmarks.
        std::hint::black_box(run_stealing());
        std::hint::black_box(run_fifo());
        let (mut stealing_ns, mut fifo_ns) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..reps {
            let t0 = Instant::now();
            std::hint::black_box(run_stealing());
            stealing_ns = stealing_ns.min(t0.elapsed().as_nanos() as f64);
            let t0 = Instant::now();
            std::hint::black_box(run_fifo());
            fifo_ns = fifo_ns.min(t0.elapsed().as_nanos() as f64);
        }
        skews.push(SkewMeasurement {
            name: format!("dm_skew{}tail4_w{WINDOW}_md{MD}/trfd", grid.len()),
            stealing_ns,
            fifo_ns,
        });
    }

    println!(
        "{:<28} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "benchmark", "event ns", "old-pipe ns", "naive ns", "pipeline", "scheduler"
    );
    for m in &results {
        println!(
            "{:<28} {:>12.0} {:>12.0} {:>12.0} {:>8.2}x {:>8.2}x",
            m.name,
            m.event_ns,
            m.reference_ns,
            m.sched_reference_ns,
            m.pipeline_speedup(),
            m.scheduler_speedup()
        );
    }

    println!(
        "\n{:<34} {:>12} {:>12} {:>9}",
        "sweep benchmark", "pooled ns", "fresh ns", "speedup"
    );
    for s in &sweeps {
        println!(
            "{:<34} {:>12.0} {:>12.0} {:>8.2}x",
            s.name,
            s.pooled_ns,
            s.fresh_ns,
            s.speedup()
        );
    }

    println!(
        "\n{:<36} {:>12} {:>12} {:>9}",
        "session benchmark", "session ns", "per-call ns", "speedup"
    );
    for s in &sessions {
        println!(
            "{:<36} {:>12.0} {:>12.0} {:>8.2}x",
            s.name,
            s.session_ns,
            s.per_call_ns,
            s.speedup()
        );
    }

    println!(
        "\n{:<36} {:>12} {:>12} {:>9}",
        "cache benchmark", "warm ns", "cold ns", "speedup"
    );
    for c in &caches {
        println!(
            "{:<36} {:>12.0} {:>12.0} {:>8.0}x",
            c.name,
            c.warm_ns,
            c.cold_ns,
            c.speedup()
        );
    }

    println!(
        "\n{:<30} {:>11} {:>11} {:>11} {:>11} {:>9}",
        "contention benchmark", "prio p50", "prio p99", "fifo p50", "fifo p99", "p99 ratio"
    );
    for c in &contentions {
        println!(
            "{:<30} {:>11.0} {:>11.0} {:>11.0} {:>11.0} {:>8.1}x",
            c.name,
            c.interactive_p50_ns,
            c.interactive_p99_ns,
            c.fifo_p50_ns,
            c.fifo_p99_ns,
            c.p99_ratio()
        );
    }

    println!(
        "\n{:<36} {:>12} {:>12} {:>9}",
        "skew benchmark", "stealing ns", "fifo ns", "speedup"
    );
    for s in &skews {
        println!(
            "{:<36} {:>12.0} {:>12.0} {:>8.2}x",
            s.name,
            s.stealing_ns,
            s.fifo_ns,
            s.speedup()
        );
    }

    let min_dm_pipeline = min_over(&results, "dm_w", Measurement::pipeline_speedup);
    let min_dm_scheduler = min_over(&results, "dm_w", Measurement::scheduler_speedup);
    let min_swsm_pipeline = min_over(&results, "swsm_", Measurement::pipeline_speedup);
    let min_swsm_scheduler = min_over(&results, "swsm_", Measurement::scheduler_speedup);
    let min_scalar_pipeline = min_over(&results, "scalar_", Measurement::pipeline_speedup);
    let min_scalar_scheduler = min_over(&results, "scalar_", Measurement::scheduler_speedup);
    let min_sweep = sweeps
        .iter()
        .map(SweepMeasurement::speedup)
        .fold(f64::INFINITY, f64::min);
    let min_session = sessions
        .iter()
        .map(SessionMeasurement::speedup)
        .fold(f64::INFINITY, f64::min);
    let min_cache = caches
        .iter()
        .map(CacheMeasurement::speedup)
        .fold(f64::INFINITY, f64::min);
    let min_contention = contentions
        .iter()
        .map(ContentionMeasurement::p99_ratio)
        .fold(f64::INFINITY, f64::min);
    let min_skew = skews
        .iter()
        .map(SkewMeasurement::speedup)
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nminimum speedups at MD = {MD} (pipeline / scheduler-only): \
         DM {min_dm_pipeline:.2}x / {min_dm_scheduler:.2}x, \
         SWSM {min_swsm_pipeline:.2}x / {min_swsm_scheduler:.2}x, \
         scalar {min_scalar_pipeline:.2}x / {min_scalar_scheduler:.2}x; \
         sweep pooling {min_sweep:.2}x; session vs per-call {min_session:.2}x; \
         cache-warm vs cold {min_cache:.0}x; \
         prioritized vs FIFO probe p99 {min_contention:.1}x; \
         skewed-grid stealing vs FIFO chunks {min_skew:.2}x"
    );

    if smoke {
        println!("smoke mode: skipping BENCH_simulator_throughput.json rewrite");
    } else {
        let mut json = String::from("{\n  \"benchmarks\": [\n");
        for (i, m) in results.iter().enumerate() {
            let _ = write!(
                json,
                "    {{\"name\": \"{}\", \"event_ns\": {:.0}, \"reference_ns\": {:.0}, \"sched_reference_ns\": {:.0}, \"pipeline_speedup\": {:.3}, \"scheduler_speedup\": {:.3}}}",
                m.name,
                m.event_ns,
                m.reference_ns,
                m.sched_reference_ns,
                m.pipeline_speedup(),
                m.scheduler_speedup()
            );
            json.push_str(if i + 1 == results.len() { "\n" } else { ",\n" });
        }
        json.push_str("  ],\n  \"sweep_benchmarks\": [\n");
        for (i, s) in sweeps.iter().enumerate() {
            let _ = write!(
                json,
                "    {{\"name\": \"{}\", \"pooled_ns\": {:.0}, \"fresh_ns\": {:.0}, \"speedup\": {:.3}}}",
                s.name,
                s.pooled_ns,
                s.fresh_ns,
                s.speedup()
            );
            json.push_str(if i + 1 == sweeps.len() { "\n" } else { ",\n" });
        }
        json.push_str("  ],\n  \"session_benchmarks\": [\n");
        for (i, s) in sessions.iter().enumerate() {
            let _ = write!(
                json,
                "    {{\"name\": \"{}\", \"session_ns\": {:.0}, \"per_call_ns\": {:.0}, \"speedup\": {:.3}}}",
                s.name,
                s.session_ns,
                s.per_call_ns,
                s.speedup()
            );
            json.push_str(if i + 1 == sessions.len() { "\n" } else { ",\n" });
        }
        json.push_str("  ],\n  \"cache_benchmarks\": [\n");
        for (i, c) in caches.iter().enumerate() {
            let _ = write!(
                json,
                "    {{\"name\": \"{}\", \"warm_ns\": {:.0}, \"cold_ns\": {:.0}, \"speedup\": {:.3}}}",
                c.name,
                c.warm_ns,
                c.cold_ns,
                c.speedup()
            );
            json.push_str(if i + 1 == caches.len() { "\n" } else { ",\n" });
        }
        json.push_str("  ],\n  \"contention_benchmarks\": [\n");
        for (i, c) in contentions.iter().enumerate() {
            let _ = write!(
                json,
                "    {{\"name\": \"{}\", \"interactive_p50_ns\": {:.0}, \"interactive_p99_ns\": {:.0}, \"fifo_p50_ns\": {:.0}, \"fifo_p99_ns\": {:.0}, \"p99_ratio\": {:.3}}}",
                c.name,
                c.interactive_p50_ns,
                c.interactive_p99_ns,
                c.fifo_p50_ns,
                c.fifo_p99_ns,
                c.p99_ratio()
            );
            json.push_str(if i + 1 == contentions.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        json.push_str("  ],\n  \"skew_benchmarks\": [\n");
        for (i, s) in skews.iter().enumerate() {
            let _ = write!(
                json,
                "    {{\"name\": \"{}\", \"stealing_ns\": {:.0}, \"fifo_ns\": {:.0}, \"speedup\": {:.3}}}",
                s.name,
                s.stealing_ns,
                s.fifo_ns,
                s.speedup()
            );
            json.push_str(if i + 1 == skews.len() { "\n" } else { ",\n" });
        }
        let _ = write!(
            json,
            "  ],\n  \"config\": {{\"iterations\": {iterations}, \"window\": {WINDOW}, \"memory_differential\": {MD}, \"commit\": \"{}\"}},\n  \"min_dm_pipeline_speedup\": {min_dm_pipeline:.3},\n  \"min_dm_scheduler_speedup\": {min_dm_scheduler:.3},\n  \"min_swsm_pipeline_speedup\": {min_swsm_pipeline:.3},\n  \"min_swsm_scheduler_speedup\": {min_swsm_scheduler:.3},\n  \"min_scalar_pipeline_speedup\": {min_scalar_pipeline:.3},\n  \"min_scalar_scheduler_speedup\": {min_scalar_scheduler:.3},\n  \"min_sweep_speedup\": {min_sweep:.3},\n  \"min_session_speedup\": {min_session:.3},\n  \"min_cache_speedup\": {min_cache:.3},\n  \"min_contention_p99_ratio\": {min_contention:.3},\n  \"min_skew_speedup\": {min_skew:.3}\n}}\n",
            commit_hash()
        );
        std::fs::write("BENCH_simulator_throughput.json", json).expect("write baseline json");
        println!("wrote BENCH_simulator_throughput.json");
    }

    // Every floor applies in both modes (smoke uses the wider constants);
    // the per-machine checks run in CI on every push, so any machine's
    // engine path regressing — not just the DM's — fails fast.
    let floors: [(&str, f64, f64); 11] = if smoke {
        [
            ("DM pipeline", min_dm_pipeline, SMOKE_PIPELINE_FLOOR),
            ("DM scheduler-only", min_dm_scheduler, SMOKE_SCHEDULER_FLOOR),
            (
                "SWSM pipeline",
                min_swsm_pipeline,
                SMOKE_SWSM_PIPELINE_FLOOR,
            ),
            (
                "SWSM scheduler-only",
                min_swsm_scheduler,
                SMOKE_SWSM_SCHEDULER_FLOOR,
            ),
            (
                "scalar pipeline",
                min_scalar_pipeline,
                SMOKE_SCALAR_PIPELINE_FLOOR,
            ),
            (
                "scalar scheduler-only",
                min_scalar_scheduler,
                SMOKE_SCALAR_SCHEDULER_FLOOR,
            ),
            ("sweep pooling", min_sweep, SMOKE_SWEEP_FLOOR),
            ("session vs per-call", min_session, SMOKE_SESSION_FLOOR),
            ("cache-warm vs cold", min_cache, SMOKE_CACHE_FLOOR),
            (
                "prioritized probe p99",
                min_contention,
                SMOKE_CONTENTION_FLOOR,
            ),
            ("skewed-grid stealing", min_skew, SMOKE_SKEW_FLOOR),
        ]
    } else {
        [
            ("DM pipeline", min_dm_pipeline, DM_PIPELINE_FLOOR),
            ("DM scheduler-only", min_dm_scheduler, DM_SCHEDULER_FLOOR),
            ("SWSM pipeline", min_swsm_pipeline, SWSM_PIPELINE_FLOOR),
            (
                "SWSM scheduler-only",
                min_swsm_scheduler,
                SWSM_SCHEDULER_FLOOR,
            ),
            (
                "scalar pipeline",
                min_scalar_pipeline,
                SCALAR_PIPELINE_FLOOR,
            ),
            (
                "scalar scheduler-only",
                min_scalar_scheduler,
                SCALAR_SCHEDULER_FLOOR,
            ),
            ("sweep pooling", min_sweep, SWEEP_FLOOR),
            ("session vs per-call", min_session, SESSION_FLOOR),
            ("cache-warm vs cold", min_cache, CACHE_FLOOR),
            ("prioritized probe p99", min_contention, CONTENTION_FLOOR),
            ("skewed-grid stealing", min_skew, SKEW_FLOOR),
        ]
    };
    for (name, measured, floor) in floors {
        assert!(
            measured >= floor,
            "{name} speedup regressed below the {floor}x floor: {measured:.2}x"
        );
    }
}
