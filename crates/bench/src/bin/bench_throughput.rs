//! Simulator-throughput baseline: event-driven scheduler vs the retained
//! naive reference, per machine and representative workload.
//!
//! Writes `BENCH_simulator_throughput.json` (the committed perf baseline)
//! and prints a human-readable table.  Three numbers are reported per
//! point:
//!
//! * `event_ns` — the new pipeline: trace lowered once up front (as the
//!   sweep drivers do), engine-driven asymmetric-clock run loop;
//! * `reference_ns` — the old pipeline: per-run lowering plus the naive
//!   cycle-stepped scheduler (`run_reference`), exactly what every sweep
//!   point cost before the scheduler rewrites;
//! * `sched_reference_ns` — the naive scheduler over the *same*
//!   pre-lowered program, isolating scheduler-vs-scheduler cost with no
//!   lowering on either side.
//!
//! `pipeline_speedup = reference_ns / event_ns` (the end-to-end win per
//! sweep point; the enforced DM floor) and
//! `scheduler_speedup = sched_reference_ns / event_ns` (recorded so a
//! scheduler regression cannot hide behind lowering cost).  Every
//! measurement first asserts that both paths produce identical results.
//!
//! Each pipeline is timed as a warm burst (the sweep drivers run the same
//! machine back to back, so warm-cache cost is the deployed cost), taking
//! the minimum over several repetitions to reject load spikes on shared
//! boxes.
//!
//! ## Smoke mode
//!
//! With `BENCH_SMOKE=1` in the environment the benchmark runs a
//! reduced-iteration configuration (shorter traces, fewer repetitions),
//! still verifies differential equality and still **enforces the speedup
//! floors** — CI runs this on every push so a regression below the floor
//! fails fast — but does not overwrite the committed baseline JSON.

use dae_core::LoweredTrace;
use dae_machines::{
    DecoupledMachine, DmConfig, ScalarConfig, ScalarReference, SuperscalarMachine, SwsmConfig,
};
use dae_trace::{expand_swsm, lower_scalar, partition, PartitionMode};
use dae_workloads::PerfectProgram;
use std::fmt::Write as _;
use std::time::Instant;

const WINDOW: usize = 32;
const MD: u64 = 60;

/// Enforced floors for the DM at `w32 / MD = 60`, the paper's headline
/// configuration.  History: PR 1 (event-driven scheduler + time skipping)
/// set 3x pipeline / 2x scheduler-only over a then-untouched naive
/// reference.  PR 2 (asymmetric per-unit clocks, calendar event queue,
/// flat/Fx-hashed memory structures, thin LTO) cut absolute DM event time a
/// further ~1.4-1.6x — but the *reference* also got 1.3-1.7x faster,
/// because the memory structures and link-time optimisation are shared by
/// both pipelines.  The ratio therefore compresses even as both sides
/// speed up: measured 3.6-4.3x pipeline / 2.5-3.2x scheduler-only on the
/// CI container, floors raised to 3.4x / 2.4x (the original 4x target
/// assumed a frozen denominator).
const DM_PIPELINE_FLOOR: f64 = 3.4;
const DM_SCHEDULER_FLOOR: f64 = 2.4;

/// Smoke-mode floors: shorter traces amortise per-run fixed costs less and
/// the reduced repetition count rejects less noise, so CI's fast tripwire
/// uses a wider margin.  A real regression of the event-driven engine
/// (losing time-skipping, losing the calendar queue) lands far below this.
const SMOKE_PIPELINE_FLOOR: f64 = 2.5;
const SMOKE_SCHEDULER_FLOOR: f64 = 1.8;

/// Times one pipeline as a warm burst: one untimed warm-up call, then the
/// minimum single-run time over `reps` repetitions.
fn measure<R>(reps: u32, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_nanos() as f64);
    }
    best
}

/// Times the three pipelines of one benchmark point.
fn measure3<A, B, C>(
    reps: u32,
    event: impl FnMut() -> A,
    reference: impl FnMut() -> B,
    sched_reference: impl FnMut() -> C,
) -> (f64, f64, f64) {
    (
        measure(reps, event),
        measure(reps, reference),
        measure(reps, sched_reference),
    )
}

struct Measurement {
    name: String,
    event_ns: f64,
    reference_ns: f64,
    sched_reference_ns: f64,
}

impl Measurement {
    fn pipeline_speedup(&self) -> f64 {
        self.reference_ns / self.event_ns
    }

    fn scheduler_speedup(&self) -> f64 {
        self.sched_reference_ns / self.event_ns
    }
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let (iterations, reps) = if smoke { (150, 5) } else { (300, 9) };
    if smoke {
        println!("BENCH_SMOKE: {iterations}-iteration traces, {reps} reps, baseline not rewritten");
    }

    let mut results: Vec<Measurement> = Vec::new();

    for program in PerfectProgram::REPRESENTATIVE {
        let trace = program.workload().trace(iterations);
        let lowered = LoweredTrace::new(&trace);
        let dm_program = partition(&trace, PartitionMode::Tagged);
        let swsm_program = expand_swsm(&trace);
        let scalar_program = lower_scalar(&trace);

        let dm = DecoupledMachine::new(DmConfig::paper(WINDOW, MD));
        assert_eq!(
            dm.run(&trace),
            dm.run_reference(&trace),
            "DM differential check failed for {program}"
        );
        let (event_ns, reference_ns, sched_reference_ns) = measure3(
            reps,
            || lowered.dm_cycles(dae_core::WindowSpec::Entries(WINDOW), MD),
            || dm.run_reference(&trace).cycles(),
            || dm.run_reference_lowered(&dm_program, trace.len()).cycles(),
        );
        results.push(Measurement {
            name: format!("dm_w{WINDOW}_md{MD}/{}", program.name()),
            event_ns,
            reference_ns,
            sched_reference_ns,
        });

        let swsm = SuperscalarMachine::new(SwsmConfig::paper(WINDOW, MD));
        assert_eq!(
            swsm.run(&trace),
            swsm.run_reference(&trace),
            "SWSM differential check failed for {program}"
        );
        let (event_ns, reference_ns, sched_reference_ns) = measure3(
            reps,
            || lowered.swsm_cycles(dae_core::WindowSpec::Entries(WINDOW), MD),
            || swsm.run_reference(&trace).cycles(),
            || {
                swsm.run_reference_lowered(&swsm_program, trace.len())
                    .cycles()
            },
        );
        results.push(Measurement {
            name: format!("swsm_w{WINDOW}_md{MD}/{}", program.name()),
            event_ns,
            reference_ns,
            sched_reference_ns,
        });

        let scalar = ScalarReference::new(ScalarConfig::new(MD));
        assert_eq!(
            scalar.run(&trace),
            scalar.run_reference(&trace),
            "scalar differential check failed for {program}"
        );
        let (event_ns, reference_ns, sched_reference_ns) = measure3(
            reps,
            || scalar.run_lowered(&scalar_program, trace.len()).cycles(),
            || scalar.run_reference(&trace).cycles(),
            || {
                scalar
                    .run_reference_lowered(&scalar_program, trace.len())
                    .cycles()
            },
        );
        results.push(Measurement {
            name: format!("scalar_md{MD}/{}", program.name()),
            event_ns,
            reference_ns,
            sched_reference_ns,
        });
    }

    println!(
        "{:<28} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "benchmark", "event ns", "old-pipe ns", "naive ns", "pipeline", "scheduler"
    );
    for m in &results {
        println!(
            "{:<28} {:>12.0} {:>12.0} {:>12.0} {:>8.2}x {:>8.2}x",
            m.name,
            m.event_ns,
            m.reference_ns,
            m.sched_reference_ns,
            m.pipeline_speedup(),
            m.scheduler_speedup()
        );
    }

    let min_dm_pipeline = results
        .iter()
        .filter(|m| m.name.starts_with("dm_"))
        .map(Measurement::pipeline_speedup)
        .fold(f64::INFINITY, f64::min);
    let min_dm_scheduler = results
        .iter()
        .filter(|m| m.name.starts_with("dm_"))
        .map(Measurement::scheduler_speedup)
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nminimum DM speedup at MD = {MD}: pipeline {min_dm_pipeline:.2}x, scheduler-only {min_dm_scheduler:.2}x"
    );

    if smoke {
        println!("smoke mode: skipping BENCH_simulator_throughput.json rewrite");
    } else {
        let mut json = String::from("{\n  \"benchmarks\": [\n");
        for (i, m) in results.iter().enumerate() {
            let _ = write!(
                json,
                "    {{\"name\": \"{}\", \"event_ns\": {:.0}, \"reference_ns\": {:.0}, \"sched_reference_ns\": {:.0}, \"pipeline_speedup\": {:.3}, \"scheduler_speedup\": {:.3}}}",
                m.name,
                m.event_ns,
                m.reference_ns,
                m.sched_reference_ns,
                m.pipeline_speedup(),
                m.scheduler_speedup()
            );
            json.push_str(if i + 1 == results.len() { "\n" } else { ",\n" });
        }
        let _ = write!(
            json,
            "  ],\n  \"config\": {{\"iterations\": {iterations}, \"window\": {WINDOW}, \"memory_differential\": {MD}}},\n  \"min_dm_pipeline_speedup\": {min_dm_pipeline:.3},\n  \"min_dm_scheduler_speedup\": {min_dm_scheduler:.3}\n}}\n"
        );
        std::fs::write("BENCH_simulator_throughput.json", json).expect("write baseline json");
        println!("wrote BENCH_simulator_throughput.json");
    }

    let (pipeline_floor, scheduler_floor) = if smoke {
        (SMOKE_PIPELINE_FLOOR, SMOKE_SCHEDULER_FLOOR)
    } else {
        (DM_PIPELINE_FLOOR, DM_SCHEDULER_FLOOR)
    };
    assert!(
        min_dm_pipeline >= pipeline_floor,
        "DM pipeline speedup regressed below the {pipeline_floor}x floor: {min_dm_pipeline:.2}x"
    );
    assert!(
        min_dm_scheduler >= scheduler_floor,
        "DM scheduler-only speedup regressed below the {scheduler_floor}x floor: {min_dm_scheduler:.2}x"
    );
}
