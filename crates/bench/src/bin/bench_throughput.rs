//! Simulator-throughput baseline: event-driven scheduler vs the retained
//! naive reference, per machine and representative workload.
//!
//! Writes `BENCH_simulator_throughput.json` (the committed perf baseline)
//! and prints a human-readable table.  Three numbers are reported per
//! point:
//!
//! * `event_ns` — the new pipeline: trace lowered once up front (as the
//!   sweep drivers do), event-driven + time-skipping run loop;
//! * `reference_ns` — the old pipeline: per-run lowering plus the naive
//!   cycle-stepped scheduler (`run_reference`), exactly what every sweep
//!   point cost before this rewrite;
//! * `sched_reference_ns` — the naive scheduler over the *same*
//!   pre-lowered program, isolating scheduler-vs-scheduler cost with no
//!   lowering on either side.
//!
//! `pipeline_speedup = reference_ns / event_ns` (the end-to-end win per
//! sweep point; the enforced 3x DM floor) and
//! `scheduler_speedup = sched_reference_ns / event_ns` (recorded so a
//! scheduler regression cannot hide behind lowering cost).  Every
//! measurement first asserts that both paths produce identical results.

use dae_core::LoweredTrace;
use dae_machines::{
    DecoupledMachine, DmConfig, ScalarConfig, ScalarReference, SuperscalarMachine, SwsmConfig,
};
use dae_trace::{expand_swsm, lower_scalar, partition, PartitionMode};
use dae_workloads::PerfectProgram;
use std::fmt::Write as _;
use std::time::Instant;

const ITERATIONS: u64 = 300;
const WINDOW: usize = 32;
const MD: u64 = 60;

fn measure<R>(min_reps: u32, mut f: impl FnMut() -> R) -> f64 {
    // Warm up once, then take the best of a few timed repetitions.
    std::hint::black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..min_reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_nanos() as f64);
    }
    best
}

struct Measurement {
    name: String,
    event_ns: f64,
    reference_ns: f64,
    sched_reference_ns: f64,
}

impl Measurement {
    fn pipeline_speedup(&self) -> f64 {
        self.reference_ns / self.event_ns
    }

    fn scheduler_speedup(&self) -> f64 {
        self.sched_reference_ns / self.event_ns
    }
}

fn main() {
    let mut results: Vec<Measurement> = Vec::new();

    for program in PerfectProgram::REPRESENTATIVE {
        let trace = program.workload().trace(ITERATIONS);
        let lowered = LoweredTrace::new(&trace);
        let dm_program = partition(&trace, PartitionMode::Tagged);
        let swsm_program = expand_swsm(&trace);
        let scalar_program = lower_scalar(&trace);

        let dm = DecoupledMachine::new(DmConfig::paper(WINDOW, MD));
        assert_eq!(
            dm.run(&trace),
            dm.run_reference(&trace),
            "DM differential check failed for {program}"
        );
        results.push(Measurement {
            name: format!("dm_w{WINDOW}_md{MD}/{}", program.name()),
            event_ns: measure(5, || {
                lowered.dm_cycles(dae_core::WindowSpec::Entries(WINDOW), MD)
            }),
            reference_ns: measure(5, || dm.run_reference(&trace).cycles()),
            sched_reference_ns: measure(5, || {
                dm.run_reference_lowered(&dm_program, trace.len()).cycles()
            }),
        });

        let swsm = SuperscalarMachine::new(SwsmConfig::paper(WINDOW, MD));
        assert_eq!(
            swsm.run(&trace),
            swsm.run_reference(&trace),
            "SWSM differential check failed for {program}"
        );
        results.push(Measurement {
            name: format!("swsm_w{WINDOW}_md{MD}/{}", program.name()),
            event_ns: measure(5, || {
                lowered.swsm_cycles(dae_core::WindowSpec::Entries(WINDOW), MD)
            }),
            reference_ns: measure(5, || swsm.run_reference(&trace).cycles()),
            sched_reference_ns: measure(5, || {
                swsm.run_reference_lowered(&swsm_program, trace.len())
                    .cycles()
            }),
        });

        let scalar = ScalarReference::new(ScalarConfig::new(MD));
        assert_eq!(
            scalar.run(&trace),
            scalar.run_reference(&trace),
            "scalar differential check failed for {program}"
        );
        results.push(Measurement {
            name: format!("scalar_md{MD}/{}", program.name()),
            event_ns: measure(5, || {
                scalar.run_lowered(&scalar_program, trace.len()).cycles()
            }),
            reference_ns: measure(5, || scalar.run_reference(&trace).cycles()),
            sched_reference_ns: measure(5, || {
                scalar
                    .run_reference_lowered(&scalar_program, trace.len())
                    .cycles()
            }),
        });
    }

    println!(
        "{:<28} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "benchmark", "event ns", "old-pipe ns", "naive ns", "pipeline", "scheduler"
    );
    for m in &results {
        println!(
            "{:<28} {:>12.0} {:>12.0} {:>12.0} {:>8.2}x {:>8.2}x",
            m.name,
            m.event_ns,
            m.reference_ns,
            m.sched_reference_ns,
            m.pipeline_speedup(),
            m.scheduler_speedup()
        );
    }

    let min_dm_pipeline = results
        .iter()
        .filter(|m| m.name.starts_with("dm_"))
        .map(Measurement::pipeline_speedup)
        .fold(f64::INFINITY, f64::min);
    let min_dm_scheduler = results
        .iter()
        .filter(|m| m.name.starts_with("dm_"))
        .map(Measurement::scheduler_speedup)
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nminimum DM speedup at MD = {MD}: pipeline {min_dm_pipeline:.2}x, scheduler-only {min_dm_scheduler:.2}x"
    );

    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, m) in results.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"event_ns\": {:.0}, \"reference_ns\": {:.0}, \"sched_reference_ns\": {:.0}, \"pipeline_speedup\": {:.3}, \"scheduler_speedup\": {:.3}}}",
            m.name,
            m.event_ns,
            m.reference_ns,
            m.sched_reference_ns,
            m.pipeline_speedup(),
            m.scheduler_speedup()
        );
        json.push_str(if i + 1 == results.len() { "\n" } else { ",\n" });
    }
    let _ = write!(
        json,
        "  ],\n  \"config\": {{\"iterations\": {ITERATIONS}, \"window\": {WINDOW}, \"memory_differential\": {MD}}},\n  \"min_dm_pipeline_speedup\": {min_dm_pipeline:.3},\n  \"min_dm_scheduler_speedup\": {min_dm_scheduler:.3}\n}}\n"
    );
    std::fs::write("BENCH_simulator_throughput.json", json).expect("write baseline json");
    println!("wrote BENCH_simulator_throughput.json");

    assert!(
        min_dm_pipeline >= 3.0,
        "DM pipeline speedup regressed below the 3x floor: {min_dm_pipeline:.2}x"
    );
    assert!(
        min_dm_scheduler >= 2.0,
        "DM scheduler-only speedup regressed below the 2x floor: {min_dm_scheduler:.2}x"
    );
}
