//! Regenerates **Table 1** of the paper: the latency-hiding effectiveness of
//! the access decoupled machine for all seven PERFECT workload models at a
//! memory differential of 60 cycles, across DM window sizes up to the
//! unlimited window.
//!
//! ```text
//! cargo run --release -p dae-bench --bin table1_lhe [--csv]
//! ```

use dae_bench::paper_config;
use dae_core::table1;

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let mut config = paper_config();
    config.dm_windows = vec![8, 16, 32, 64, 128, 256];

    let table = table1(&config, 60);
    if csv {
        print!("{}", table.to_csv());
    } else {
        println!("{table}");
        println!(
            "\nPaper reference (qualitative): the seven programs fall into three bands — high\n\
             (TRFD, ADM, FLO52Q), moderate (DYFESM, QCD, MDG) and poor (TRACK) — and the LHE\n\
             at realistic windows stays well below the unlimited-window LHE."
        );
    }
}
