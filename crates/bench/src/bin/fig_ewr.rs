//! Regenerates **figures 7–9** of the paper: the equivalent window ratio —
//! the SWSM window size needed to match the DM's performance, expressed as a
//! multiple of the DM window size — against the DM window size, for memory
//! differentials from 0 to 60 cycles.
//!
//! ```text
//! cargo run --release -p dae-bench --bin fig_ewr -- [flo52q|mdg|track] [--csv]
//! ```

use dae_bench::{paper_config, program_from_args};
use dae_core::equivalent_window_figure;
use dae_workloads::PerfectProgram;

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let program = program_from_args(PerfectProgram::Flo52q);
    let config = paper_config();

    let figure = equivalent_window_figure(program, &config);
    if csv {
        print!("{}", figure.to_csv());
        return;
    }
    println!("{figure}");
    println!(
        "\nPaper reference (qualitative): the ratio grows as the memory differential grows\n\
         and shrinks as the DM window grows; at a realistic DM window and MD=60 the SWSM\n\
         needs a window a few times larger.  ('-' marks points where even the largest\n\
         window in the search grid was not enough.)"
    );
}
