//! Regenerates **figures 4–6** of the paper: speedup against window size for
//! the DM and the SWSM at memory differentials of 0 and 60 cycles.
//!
//! ```text
//! cargo run --release -p dae-bench --bin fig_speedup -- [flo52q|mdg|track] [--csv]
//! ```
//!
//! FLO52Q reproduces figure 4, MDG figure 5 and TRACK figure 6; any other
//! PERFECT program name is also accepted.

use dae_bench::{paper_config, program_from_args};
use dae_core::speedup_figure;
use dae_workloads::PerfectProgram;

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let program = program_from_args(PerfectProgram::Flo52q);
    let config = paper_config();

    let figure = speedup_figure(program, &config, &[0, 60]);
    if csv {
        print!("{}", figure.to_csv());
        return;
    }
    println!("{figure}");
    for md in [0u64, 60] {
        match figure.crossover_window(md) {
            Some(w) => {
                println!("MD={md}: the SWSM catches the DM at a window of about {w} entries.")
            }
            None => println!("MD={md}: the DM stays ahead over the whole sweep."),
        }
    }
    println!(
        "\nPaper reference (qualitative): the DM wins at small windows; at MD=0 the SWSM\n\
         eventually overtakes thanks to its unified issue width; at MD=60 there is no\n\
         crossover and the gap is largest for the highly parallel FLO52Q and smallest for TRACK."
    );
}
