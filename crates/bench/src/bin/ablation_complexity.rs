//! Ablation A: issue-logic complexity.
//!
//! The paper argues (citing Palacharla, Jouppi & Smith) that because
//! issue-logic delay grows quadratically with window size and issue width, a
//! decoupled machine that matches a superscalar with two *small* windows
//! also wins on cycle time.  This ablation quantifies that claim for the
//! measured equivalent windows: for each representative program and several
//! DM window sizes it reports the SWSM window needed for performance parity
//! and the resulting issue-logic delay ratio.
//!
//! ```text
//! cargo run --release -p dae-bench --bin ablation_complexity
//! ```

use dae_bench::paper_config;
use dae_core::{dm_cycles, swsm_window_curve, TextTable, WindowSpec};
use dae_machines::{PAPER_AU_ISSUE_WIDTH, PAPER_DU_ISSUE_WIDTH, PAPER_SWSM_ISSUE_WIDTH};
use dae_ooo::IssueLogicModel;
use dae_workloads::PerfectProgram;

fn main() {
    let config = paper_config();
    let model = IssueLogicModel::default();
    let md = 60;

    let mut table = TextTable::new(vec![
        "program".into(),
        "DM window".into(),
        "SWSM window for parity".into(),
        "window ratio".into(),
        "issue-delay ratio".into(),
    ]);

    for program in PerfectProgram::REPRESENTATIVE {
        let trace = program.workload().trace(config.iterations);
        let curve = swsm_window_curve(&trace, &config.equivalence_search_windows, md);
        for dm_window in [16usize, 32, 64] {
            let dm = dm_cycles(&trace, WindowSpec::Entries(dm_window), md);
            match curve.window_for_cycles(dm) {
                Some(swsm_window) => {
                    let ratio = swsm_window / dm_window as f64;
                    let delay_ratio = model.relative_delay(
                        swsm_window.ceil() as usize,
                        PAPER_SWSM_ISSUE_WIDTH,
                        dm_window,
                        PAPER_AU_ISSUE_WIDTH,
                        dm_window,
                        PAPER_DU_ISSUE_WIDTH,
                    );
                    table.push_row(vec![
                        program.name().to_string(),
                        dm_window.to_string(),
                        format!("{swsm_window:.0}"),
                        format!("{ratio:.2}"),
                        format!("{delay_ratio:.2}"),
                    ]);
                }
                None => table.push_row(vec![
                    program.name().to_string(),
                    dm_window.to_string(),
                    "> search grid".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                ]),
            }
        }
    }

    println!("Issue-logic complexity ablation (MD = {md}, quadratic delay model)\n");
    println!("{table}");
    println!(
        "\nA delay ratio above 1 means the performance-equivalent SWSM needs slower issue\n\
         logic than the DM's two small windows — the paper's complexity-effectiveness argument."
    );
}
