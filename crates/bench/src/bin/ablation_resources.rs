//! Ablation B: sensitivity to the idealisations.
//!
//! The paper's environment is deliberately idealised (unlimited functional
//! units, unlimited decoupled-memory buffering, conventional retirement).
//! This ablation re-runs the core DM-vs-SWSM comparison with those
//! idealisations removed one at a time and reports how the headline result
//! (the DM/SWSM execution-time ratio at a 32-entry window and MD = 60)
//! changes:
//!
//! * free-at-issue window slots instead of in-order retirement;
//! * restricted functional units (2 integer, 2 floating point, 2 memory
//!   ports per unit) — the paper's companion "restricted issue" study;
//! * a finite decoupled memory / prefetch buffer (64 entries).
//!
//! ```text
//! cargo run --release -p dae-bench --bin ablation_resources
//! ```

use dae_bench::paper_config;
use dae_core::TextTable;
use dae_machines::{DecoupledMachine, DmConfig, SuperscalarMachine, SwsmConfig};
use dae_mem::{DecoupledMemoryConfig, PrefetchBufferConfig};
use dae_ooo::{FuConfig, RetirePolicy};
use dae_workloads::PerfectProgram;

struct Variant {
    name: &'static str,
    dm: DmConfig,
    swsm: SwsmConfig,
}

fn variants(window: usize, md: u64) -> Vec<Variant> {
    let base_dm = DmConfig::paper(window, md);
    let base_swsm = SwsmConfig::paper(window, md);

    let mut free_dm = base_dm;
    free_dm.au.retire = RetirePolicy::FreeAtIssue;
    free_dm.du.retire = RetirePolicy::FreeAtIssue;
    let mut free_swsm = base_swsm;
    free_swsm.unit.retire = RetirePolicy::FreeAtIssue;

    let mut limited_fu_dm = base_dm;
    limited_fu_dm.au.fu = FuConfig::restricted(2, 2, 2);
    limited_fu_dm.du.fu = FuConfig::restricted(2, 2, 2);
    let mut limited_fu_swsm = base_swsm;
    limited_fu_swsm.unit.fu = FuConfig::restricted(4, 4, 4);

    let mut finite_buffers_dm = base_dm;
    finite_buffers_dm.decoupled_memory = DecoupledMemoryConfig {
        capacity: Some(64),
        bypass: None,
    };
    let mut finite_buffers_swsm = base_swsm;
    finite_buffers_swsm.prefetch_buffer = PrefetchBufferConfig { capacity: Some(64) };

    vec![
        Variant {
            name: "idealised (paper)",
            dm: base_dm,
            swsm: base_swsm,
        },
        Variant {
            name: "free-at-issue windows",
            dm: free_dm,
            swsm: free_swsm,
        },
        Variant {
            name: "restricted FUs (2/2/2 per unit, 4/4/4 SWSM)",
            dm: limited_fu_dm,
            swsm: limited_fu_swsm,
        },
        Variant {
            name: "finite buffers (64 entries)",
            dm: finite_buffers_dm,
            swsm: finite_buffers_swsm,
        },
    ]
}

fn main() {
    let config = paper_config();
    let window = 32;
    let md = 60;

    println!("Resource-sensitivity ablation: DM vs SWSM at a {window}-entry window, MD = {md}\n");

    let mut table = TextTable::new(vec![
        "variant".into(),
        "program".into(),
        "DM cycles".into(),
        "SWSM cycles".into(),
        "SWSM / DM".into(),
    ]);

    for program in PerfectProgram::REPRESENTATIVE {
        let trace = program.workload().trace(config.iterations);
        for variant in variants(window, md) {
            let dm = DecoupledMachine::new(variant.dm).run(&trace).cycles();
            let swsm = SuperscalarMachine::new(variant.swsm).run(&trace).cycles();
            table.push_row(vec![
                variant.name.to_string(),
                program.name().to_string(),
                dm.to_string(),
                swsm.to_string(),
                format!("{:.2}", swsm as f64 / dm as f64),
            ]);
        }
    }

    println!("{table}");
    println!(
        "\nThe DM's advantage (SWSM/DM > 1) should survive every de-idealisation; its size\n\
         changes, which is exactly what the ablation is meant to expose."
    );
}
