//! # dae-bench — benchmark harness and experiment binaries
//!
//! This crate hosts two things:
//!
//! * **Criterion benchmarks** (in `benches/`) that measure the throughput of
//!   the simulators themselves and the cost of regenerating each table and
//!   figure of the paper — `cargo bench -p dae-bench`;
//! * **experiment binaries** (in `src/bin/`) that regenerate the paper's
//!   tables and figures and print them in the same rows/series shape the
//!   paper reports — for example:
//!
//!   ```text
//!   cargo run --release -p dae-bench --bin table1_lhe
//!   cargo run --release -p dae-bench --bin fig_speedup -- flo52q
//!   cargo run --release -p dae-bench --bin fig_ewr -- mdg
//!   cargo run --release -p dae-bench --bin claim_window_ratio
//!   cargo run --release -p dae-bench --bin ablation_complexity
//!   cargo run --release -p dae-bench --bin ablation_resources
//!   cargo run --release -p dae-bench --bin ablation_bypass
//!   ```
//!
//! This library part only provides the small amount of shared plumbing the
//! binaries and benches need (argument parsing and the experiment
//! configurations used at "paper scale" and "bench scale").

use dae_core::ExperimentConfig;
use dae_workloads::PerfectProgram;

/// The experiment configuration used by the figure/table binaries: full
/// window grids, all memory differentials, medium-length traces.
#[must_use]
pub fn paper_config() -> ExperimentConfig {
    ExperimentConfig {
        iterations: 800,
        ..ExperimentConfig::paper_scale()
    }
}

/// A lighter configuration used by the criterion benches so that a bench
/// iteration stays in the tens-of-milliseconds range.
#[must_use]
pub fn bench_config() -> ExperimentConfig {
    ExperimentConfig {
        iterations: 200,
        dm_windows: vec![8, 32, 128],
        swsm_windows: vec![8, 32, 128],
        equivalence_search_windows: vec![8, 16, 32, 64, 128, 256],
        memory_differentials: vec![0, 60],
    }
}

/// Resolves an optional program name to a [`PerfectProgram`].
///
/// # Errors
///
/// Returns a message listing the valid names when `name` is not recognised.
pub fn resolve_program(
    name: Option<&str>,
    fallback: PerfectProgram,
) -> Result<PerfectProgram, String> {
    match name {
        None => Ok(fallback),
        Some(name) => PerfectProgram::from_name(name).ok_or_else(|| {
            format!(
                "unknown program '{name}'; expected one of: {}",
                PerfectProgram::ALL
                    .iter()
                    .map(|p| p.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        }),
    }
}

/// Parses the first command-line argument as a PERFECT program name,
/// defaulting to `fallback` when absent, and exiting with a helpful message
/// when the name is unknown.
#[must_use]
pub fn program_from_args(fallback: PerfectProgram) -> PerfectProgram {
    let arg = std::env::args().nth(1);
    match resolve_program(arg.as_deref(), fallback) {
        Ok(program) => program,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_are_consistent() {
        let paper = paper_config();
        let bench = bench_config();
        assert!(paper.iterations > bench.iterations);
        assert!(paper.memory_differentials.len() >= bench.memory_differentials.len());
        assert!(!bench.dm_windows.is_empty());
    }

    #[test]
    fn program_resolution() {
        assert_eq!(
            resolve_program(None, PerfectProgram::Track),
            Ok(PerfectProgram::Track)
        );
        assert_eq!(
            resolve_program(Some("mdg"), PerfectProgram::Track),
            Ok(PerfectProgram::Mdg)
        );
        assert!(resolve_program(Some("nosuch"), PerfectProgram::Track).is_err());
    }
}
