//! Session-level fault tolerance: cancellation aborts running points with
//! balanced accounting, worker panics surface as events instead of
//! unwinding the consumer, and neither ever leaves a partial result in the
//! sweep cache.
//!
//! The fault-injection hooks (`dae_core::fault`) are process-global, so
//! every test in this binary serializes on [`FAULT_LOCK`] — including the
//! ones that arm nothing, which must not run while a peer has a hook armed.

use dae_core::{fault, CancelToken, Machine, SweepEvent, SweepPoint, SweepSession, WindowSpec};
use dae_workloads::PerfectProgram;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Serializes the binary's tests and guarantees hook reset even if the
/// previous holder panicked.
fn faults() -> MutexGuard<'static, ()> {
    let guard = FAULT_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    fault::reset();
    guard
}

fn grid(session: &mut SweepSession) -> Vec<SweepPoint> {
    let id = session.pin_program(PerfectProgram::Trfd, 120);
    vec![
        (id, Machine::Decoupled, WindowSpec::Entries(16), 60),
        (id, Machine::Superscalar, WindowSpec::Entries(32), 60),
        (id, Machine::Decoupled, WindowSpec::Entries(64), 0),
        (id, Machine::Scalar, WindowSpec::Entries(1), 60),
    ]
}

/// Cancelling mid-flight aborts the points that are already simulating and
/// skips the rest; the accounting balances, nothing lands in the cache,
/// and the session then produces correct results for the same grid.
#[test]
fn cancellation_aborts_running_points_with_balanced_accounting() {
    let _guard = faults();
    let mut session = SweepSession::new();
    let points = grid(&mut session);

    // Every point sleeps before simulating, so at cancel time each started
    // point is still pre-simulation and hits the engine's first-iteration
    // abort poll with the flag already set: nothing can complete.
    fault::slow_every_point_ms(150);
    let token = CancelToken::new();
    let mut stream = session.stream_cancellable(&points, &token);
    std::thread::sleep(Duration::from_millis(40));
    token.cancel();

    let mut delivered = 0;
    while let Some(event) = stream.next_event() {
        match event {
            SweepEvent::Point(_) => delivered += 1,
            SweepEvent::Skipped { .. } | SweepEvent::Aborted { .. } => {}
            SweepEvent::Failed { index, message } => {
                panic!("point {index} failed unexpectedly: {message}")
            }
        }
    }
    assert_eq!(delivered, 0, "no point can finish through the sleep");
    assert_eq!(
        delivered + stream.skipped() + stream.aborted() + stream.failed(),
        stream.total(),
        "accounting must balance"
    );
    assert!(
        stream.aborted() >= 1,
        "at least the first point was already started and must abort \
         (aborted: {}, skipped: {})",
        stream.aborted(),
        stream.skipped()
    );
    assert_eq!(
        session.cache_stats().entries,
        0,
        "aborted points must leave no cache entries"
    );

    // Post-fault: the same grid on the same session is correct.
    fault::reset();
    let clean: Vec<u64> = session.stream(&points).collect_ordered();
    let reference = session.sweep_multi(&points);
    assert_eq!(clean, reference);
    assert!(clean.iter().all(|&c| c > 0));
}

/// An injected worker panic surfaces as exactly one `Failed` event; the
/// other points deliver, the cache only holds the completed ones, and the
/// pool keeps serving.
#[test]
fn a_panicking_point_fails_alone_and_spares_the_cache() {
    let _guard = faults();
    let mut session = SweepSession::new();
    let points = grid(&mut session);

    fault::panic_on_nth_start(1);
    let mut stream = session.stream(&points);
    let mut delivered = 0;
    let mut failures = Vec::new();
    while let Some(event) = stream.next_event() {
        match event {
            SweepEvent::Point(point) => {
                assert!(point.cycles > 0);
                delivered += 1;
            }
            SweepEvent::Failed { index, message } => failures.push((index, message)),
            SweepEvent::Skipped { .. } | SweepEvent::Aborted { .. } => {
                panic!("nothing was cancelled here")
            }
        }
    }
    assert_eq!(failures.len(), 1, "exactly one point was sabotaged");
    assert!(
        failures[0].1.contains("injected fault"),
        "the panic message travels with the event: {:?}",
        failures[0]
    );
    assert_eq!(delivered, points.len() - 1);
    assert_eq!(stream.failed(), 1);
    assert_eq!(
        session.cache_stats().entries,
        points.len() - 1,
        "the failed point must not be cached"
    );

    // Post-fault: re-running the grid heals the hole and matches the
    // batched oracle bit for bit.
    let healed: Vec<u64> = session.stream(&points).collect_ordered();
    let reference = session.sweep_multi(&points);
    assert_eq!(healed, reference);
}

/// `clear_cache` is a *fence* against in-flight streamed jobs: points
/// submitted before the clear — held pre-simulation by the slow-points
/// hook so they finish strictly after it — still deliver to their stream,
/// but their results carry a stale generation and must not repopulate the
/// just-cleared cache.
#[test]
fn clearing_mid_stream_fences_out_in_flight_inserts() {
    let _guard = faults();
    let mut session = SweepSession::new();
    let points = grid(&mut session);

    // Every started point sleeps 120 ms before simulating, so the clear
    // below lands while all of them are pre-simulation: each insert
    // happens after the clear returned, with the pre-clear generation.
    fault::slow_every_point_ms(120);
    let mut stream = session.stream(&points);
    std::thread::sleep(Duration::from_millis(30));
    session.clear_cache();
    fault::reset();

    let mut delivered = 0;
    while let Some(event) = stream.next_event() {
        match event {
            SweepEvent::Point(point) => {
                assert!(point.cycles > 0);
                assert!(!point.cached, "nothing was cached before this grid");
                delivered += 1;
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
    }
    assert_eq!(delivered, points.len(), "the clear loses no results");
    assert_eq!(
        session.cache_stats().entries,
        0,
        "clear is a fence: pre-clear jobs must not repopulate the cache"
    );

    // Jobs submitted *after* the clear populate it again as usual, with
    // results bit-for-bit equal to the fenced-out run.
    let again: Vec<u64> = session.stream(&points).collect_ordered();
    let reference = session.sweep_multi(&points);
    assert_eq!(again, reference);
    assert_eq!(session.cache_stats().entries, points.len());
}

/// The timeout-capable wait: an idle stream times out without consuming an
/// event, then yields the event once it arrives.
#[test]
fn next_event_timeout_reports_idle_streams() {
    use dae_core::StreamWait;

    let _guard = faults();
    let mut session = SweepSession::new();
    let points = grid(&mut session);

    fault::slow_every_point_ms(120);
    let mut stream = session.stream(&points);
    match stream.next_event_timeout(Duration::from_millis(5)) {
        StreamWait::TimedOut => {}
        other => panic!("a sleeping grid cannot produce an event in 5 ms: {other:?}"),
    }
    fault::reset();
    let mut outcomes = 0;
    loop {
        match stream.next_event_timeout(Duration::from_secs(30)) {
            StreamWait::Event(_) => outcomes += 1,
            StreamWait::TimedOut => panic!("the grid must finish"),
            StreamWait::Exhausted => break,
        }
    }
    assert_eq!(outcomes, stream.total());
}

/// Racing cancellation against the work-stealing claim path: with a wide
/// grid queued behind one slow point, jobs cancelled *while still queued*
/// are dropped at claim time (the pool's `claim_drops` counter advances)
/// and surface as `Skipped` — never `Point` — no matter which worker claims
/// them, and the accounting still balances.
#[test]
fn jobs_cancelled_while_queued_are_dropped_at_claim_time() {
    let _guard = faults();
    let mut session = SweepSession::new();
    let id = session.pin_program(PerfectProgram::Trfd, 120);
    let mut points = Vec::new();
    for &window in &[4usize, 8, 12, 16, 24, 32, 48, 64] {
        for &md in &[0u64, 20, 40, 60] {
            points.push((id, Machine::Decoupled, WindowSpec::Entries(window), md));
            points.push((id, Machine::Superscalar, WindowSpec::Entries(window), md));
        }
    }
    assert_eq!(points.len(), 64);

    // Each started point sleeps 100 ms before simulating, so when the
    // cancel lands ~30 ms in, at most one point per worker has been claimed
    // (and is still pre-simulation); the rest of the grid is queued.
    fault::slow_every_point_ms(100);
    let drops_before = rayon::global_pool_stats().claim_drops;
    let token = CancelToken::new();
    let mut stream = session.stream_cancellable(&points, &token);
    std::thread::sleep(Duration::from_millis(30));
    token.cancel();

    let mut delivered = 0;
    while let Some(event) = stream.next_event() {
        match event {
            SweepEvent::Point(_) => delivered += 1,
            SweepEvent::Skipped { .. } | SweepEvent::Aborted { .. } => {}
            SweepEvent::Failed { index, message } => {
                panic!("point {index} failed unexpectedly: {message}")
            }
        }
    }
    let claim_drops = rayon::global_pool_stats().claim_drops - drops_before;

    assert_eq!(delivered, 0, "no point can finish through the sleep");
    assert_eq!(
        delivered + stream.skipped() + stream.aborted() + stream.failed(),
        stream.total(),
        "accounting must balance even for claim-dropped jobs"
    );
    assert!(
        claim_drops >= 1,
        "with ~60 jobs still queued at cancel time, some must be dropped \
         at claim (claim_drops delta: {claim_drops})"
    );
    assert!(
        stream.skipped() as u64 >= claim_drops,
        "every claim-dropped job surfaces as Skipped, never Point \
         (skipped: {}, claim drops: {claim_drops})",
        stream.skipped()
    );
    assert_eq!(
        session.cache_stats().entries,
        0,
        "cancelled points must leave no cache entries"
    );

    // Post-fault: the same grid on the same session is correct.
    fault::reset();
    let clean: Vec<u64> = session.stream(&points).collect_ordered();
    let reference = session.sweep_multi(&points);
    assert_eq!(clean, reference);
}
