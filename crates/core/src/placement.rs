//! Cache-key exposure for shard placement.
//!
//! The sweep-result cache keys every finished point by
//! `(TraceHash, machine, window, MD)` — the structural identity of the
//! lowering plus the machine parameters of the point (see
//! [`SweepSession`](crate::SweepSession)).  A shard coordinator that
//! partitions a grid across several `dae-serve` backends wants to place
//! each point by *that same key*, so repeated grids land their repeated
//! points on the same backend and every shard's result cache stays hot
//! for its slice.
//!
//! This module exposes the key as a public alias ([`SweepCacheKey`]) and
//! folds it into a process-independent 64-bit digest
//! ([`cache_key_digest`]) suitable for consistent hashing.  The digest
//! reuses the canonical word encoding the on-disk store
//! ([`CacheStore`](crate::CacheStore)) writes — the machine discriminant
//! and the window/MD words are pinned by the store's schema, and
//! [`TraceHash`] is already deterministic across processes — so two
//! coordinators (or a coordinator and a future rebalancer) always agree
//! on where a point lives.

use crate::{Machine, WindowSpec};
use dae_isa::Cycle;
use dae_mem::FxHasher;
use dae_trace::TraceHash;
use std::hash::Hasher;

/// The sweep-result cache key: the structural content hash of the lowered
/// program plus the machine parameters of the point.  Identical to the
/// session cache's internal key — exposed so placement layers can hash
/// the exact identity the per-backend caches will be queried with.
pub type SweepCacheKey = (TraceHash, Machine, WindowSpec, Cycle);

/// The `window` word for [`WindowSpec::Unlimited`] in the canonical
/// encoding (matches the on-disk store's schema).
const WINDOW_UNLIMITED: u64 = u64::MAX;

/// Folds a sweep-cache key into a deterministic 64-bit placement digest.
///
/// The digest is stable across processes and runs: it depends only on the
/// canonical word encoding of the key (the same one the persistent cache
/// store uses), never on addresses, hash-map iteration order or random
/// state.  Equal keys — and therefore points that would hit the same
/// per-backend cache entry — always produce equal digests.
#[must_use]
pub fn cache_key_digest(hash: TraceHash, machine: Machine, window: WindowSpec, md: Cycle) -> u64 {
    let (hash_hi, hash_lo) = hash.words();
    let machine = match machine {
        Machine::Decoupled => 0u64,
        Machine::Superscalar => 1,
        Machine::Scalar => 2,
    };
    let window = match window {
        WindowSpec::Entries(n) => n as u64,
        WindowSpec::Unlimited => WINDOW_UNLIMITED,
    };
    let mut hasher = FxHasher::default();
    hasher.write_u64(hash_hi);
    hasher.write_u64(hash_lo);
    hasher.write_u64(machine);
    hasher.write_u64(window);
    hasher.write_u64(md);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic_and_separates_coordinates() {
        let h = TraceHash::from_words(0x1234_5678_9abc_def0, 0x0fed_cba9_8765_4321);
        let base = cache_key_digest(h, Machine::Decoupled, WindowSpec::Entries(16), 60);
        assert_eq!(
            base,
            cache_key_digest(h, Machine::Decoupled, WindowSpec::Entries(16), 60)
        );
        // Every coordinate participates in the digest.
        assert_ne!(
            base,
            cache_key_digest(h, Machine::Superscalar, WindowSpec::Entries(16), 60)
        );
        assert_ne!(
            base,
            cache_key_digest(h, Machine::Decoupled, WindowSpec::Entries(32), 60)
        );
        assert_ne!(
            base,
            cache_key_digest(h, Machine::Decoupled, WindowSpec::Entries(16), 0)
        );
        assert_ne!(
            base,
            cache_key_digest(h, Machine::Decoupled, WindowSpec::Unlimited, 60)
        );
    }
}
