//! Fault-injection hooks for the robustness test suites.
//!
//! The fault-tolerance guarantees (panic isolation, deadline expiry,
//! mid-stream disconnects) are only testable if faults can be provoked on
//! demand.  This module holds process-global, always-compiled hooks that
//! the streamed sweep path consults at the start of every point's
//! simulation job: a test arms a hook, drives a request through the full
//! server stack, and the fault fires exactly where a real one would — on a
//! worker thread, inside the per-point `catch_unwind`.
//!
//! The hooks are plain atomics with no synchronization beyond their own
//! updates, deliberately cheap enough to leave in release builds (two
//! relaxed loads per point when disarmed, against a point's
//! multi-microsecond-to-millisecond simulation).  They are process-global:
//! suites that arm them serialize themselves (e.g. by living in one
//! `#[test]`) and call [`reset`] when done.
//!
//! This is test infrastructure, not API — hidden from docs, subject to
//! change.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Once;
use std::time::Duration;

/// Disarmed sentinel for [`PANIC_COUNTDOWN`].
const DISARMED: u64 = 0;

/// When non-zero, counts down per started point; the point that moves it
/// to zero panics.
static PANIC_COUNTDOWN: AtomicU64 = AtomicU64::new(DISARMED);

/// When non-zero, every started point sleeps this many milliseconds before
/// simulating (makes deadline expiry deterministic in tests).
static SLOW_POINT_MS: AtomicU64 = AtomicU64::new(0);

/// Points started since the process began (diagnostic; monotone).
static POINTS_STARTED: AtomicU64 = AtomicU64::new(0);

/// One-time environment arming (see [`arm_from_env`]).
static ENV_ARM: Once = Once::new();

/// Arms the hooks from the process environment, once, on the first point.
///
/// In-process suites arm the hooks programmatically, but the sharded
/// fault tests spawn real backend *processes* and need to provoke faults
/// inside them: `DAE_FAULT_SLOW_POINT_MS=<ms>` arms the slow-point hook
/// and `DAE_FAULT_PANIC_ON_NTH=<n>` the panic hook, exactly as the
/// corresponding functions would.  Unset, empty or unparsable variables
/// leave the hooks disarmed — production processes pay only this
/// `Once` check plus the usual two relaxed loads per point.
fn arm_from_env() {
    ENV_ARM.call_once(|| {
        if let Some(ms) = env_u64("DAE_FAULT_SLOW_POINT_MS") {
            if ms > 0 {
                slow_every_point_ms(ms);
            }
        }
        if let Some(n) = env_u64("DAE_FAULT_PANIC_ON_NTH") {
            if n > 0 {
                panic_on_nth_start(n);
            }
        }
    });
}

/// A parsed `u64` environment variable, `None` when unset or malformed.
fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Arms the panic hook: the `n`-th point to *start* simulating after this
/// call panics with an "injected fault" message (`n` is 1-based; `n == 1`
/// fails the very next point).
pub fn panic_on_nth_start(n: u64) {
    assert!(n > 0, "the panic hook is 1-based");
    PANIC_COUNTDOWN.store(n, Ordering::SeqCst);
}

/// Arms the slow-point hook: every point sleeps `ms` milliseconds before
/// simulating until [`reset`].
pub fn slow_every_point_ms(ms: u64) {
    SLOW_POINT_MS.store(ms, Ordering::SeqCst);
}

/// Disarms every hook.
pub fn reset() {
    PANIC_COUNTDOWN.store(DISARMED, Ordering::SeqCst);
    SLOW_POINT_MS.store(0, Ordering::SeqCst);
}

/// Points that have started simulating process-wide (monotone diagnostic).
pub fn points_started() -> u64 {
    POINTS_STARTED.load(Ordering::Relaxed)
}

/// The per-point entry hook, called by the stream worker inside its
/// `catch_unwind` just before the simulation.  Fires any armed fault.
pub(crate) fn on_point_start() {
    arm_from_env();
    POINTS_STARTED.fetch_add(1, Ordering::Relaxed);
    let slow = SLOW_POINT_MS.load(Ordering::Relaxed);
    if slow > 0 {
        std::thread::sleep(Duration::from_millis(slow));
    }
    if PANIC_COUNTDOWN.load(Ordering::Relaxed) != DISARMED {
        // Armed: take a ticket. `fetch_sub` hands each starting point a
        // distinct pre-decrement value; the point that reads 1 is the
        // n-th starter and fails.  A racing reset can leave the counter
        // mid-countdown, which `reset` clears — acceptable for a test hook.
        match PANIC_COUNTDOWN.fetch_sub(1, Ordering::SeqCst) {
            0 => {
                // A concurrent starter already consumed the fault (or a
                // reset landed between the load and the sub): restore the
                // disarmed state.
                PANIC_COUNTDOWN.store(DISARMED, Ordering::SeqCst);
            }
            1 => panic!("injected fault: point panic"),
            _ => {}
        }
    }
}
