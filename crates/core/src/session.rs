//! Persistent sweep sessions: pinned lowered programs over the long-lived
//! worker pool.
//!
//! Every figure of the paper is a sweep — cycle counts for one workload
//! across a grid of (machine, window, memory-differential) points — and the
//! serving-scale goal needs those sweeps to behave like a resident service,
//! not a batch job.  A [`SweepSession`] is the resident half of that:
//!
//! * **Pinned programs.**  [`SweepSession::pin_program`] lowers a PERFECT
//!   workload once and caches it by `(program, iterations)`, so consecutive
//!   figure generators sharing one session re-lower nothing;
//!   [`SweepSession::pin_lowered`] / [`SweepSession::pin_trace`] pin
//!   arbitrary traces.  Pinned programs are `Arc`-shared into workers.
//! * **Warm per-worker pools.**  Points run over the vendored rayon stub's
//!   *persistent* workers; each worker's thread-local
//!   [`SimPool`](dae_machines::SimPool) therefore survives between sweeps,
//!   so the second sweep on a session rebuilds no simulator buffers at all
//!   (`dae_machines::pool_diagnostics` counts the warm checkouts, and the
//!   session-vs-per-call benchmark entry pins the win).
//! * **Batched and streaming delivery.**  [`SweepSession::sweep`] returns
//!   results in point order after the grid completes;
//!   [`SweepSession::stream`] delivers each point the moment its worker
//!   finishes — an iterator in *completion* order, no full-grid barrier —
//!   which is the shape a resident service reports progress in.
//! * **Simulated scalar sweeps.**  A session carries a
//!   [`ScalarMode`](crate::ScalarMode): figures default to the exact O(1)
//!   analytic formula, ablations (functional-unit limits, caches) switch to
//!   [`ScalarMode::Simulated`](crate::ScalarMode) and sweep the scalar
//!   machine through the same pooled simulator as the DM and the SWSM.
//! * **Result caching.**  Every finished point is remembered keyed by
//!   `(content hash, machine, window, MD)`, so a repeated point is a table
//!   lookup instead of a simulation.  The figure grids overlap heavily —
//!   the equivalent-window search re-sweeps the same SWSM windows for
//!   every memory differential, and the suite-wide §5 claim re-visits the
//!   per-figure grids — so repeated generators on one session skip
//!   identical points entirely.  Identity is the *structural*
//!   [`content hash`](LoweredTrace::content_hash) of the lowering, not the
//!   pinned `Arc`: re-lowering the same program into a second [`TraceId`]
//!   — or into a restarted process — aliases the first's entries by
//!   construction, and the differential suite pins hash-equal ⇒
//!   bit-for-bit-equal results.  The cache has a real lifecycle:
//!   - a configurable bound ([`SweepSession::set_cache_limit`]) enforced
//!     at every insert with *cost-aware* LRU eviction — the victim is the
//!     cheapest-to-recompute entry (by measured simulation time) among
//!     the coldest few, so one expensive point is not sacrificed to make
//!     room for a cheap one;
//!   - an optional on-disk store ([`SweepSession::attach_cache_store`],
//!     `dae-serve --cache-dir`): entries append to a versioned log as
//!     they are computed, load on startup, and compact to the resident
//!     set on shutdown ([`SweepSession::persist_cache`]) — see
//!     [`CacheStore`](crate::CacheStore);
//!   - a generation fence: [`SweepSession::clear_cache`] invalidates
//!     in-flight streamed jobs submitted before the clear, so their
//!     results cannot repopulate the map (or the store) afterwards;
//!   - [`CacheStats`] counters for all of it
//!     ([`SweepSession::cache_stats`]), with the invariant
//!     `hits + misses == lookups` maintained atomically with the map
//!     operations they describe.  The cache can be switched off per
//!     session ([`SweepSession::set_cache_enabled`]) for lifecycle tests
//!     and benchmarks that must observe every simulation.
//! * **Cancellation.**  [`SweepSession::stream_cancellable`] ties a grid to
//!   a [`CancelToken`]; cancelling drops every not-yet-started point *and*
//!   cooperatively aborts points already simulating (the run engine polls
//!   the token every few hundred events — see
//!   [`dae_machines::with_abort_token`]).  The stream's accounting still
//!   balances: `delivered + skipped + aborted + failed == total` (see
//!   [`SweepStream::skipped`], [`SweepStream::aborted`],
//!   [`SweepStream::failed`]), which is what lets a serving front end
//!   abandon superseded requests mid-flight without burning workers on
//!   doomed points.  The token additionally rides into the worker pool's
//!   queue, so jobs cancelled while still queued are dropped at claim time
//!   (in bulk, without occupying dispatch turns) yet still account
//!   themselves as skipped.
//! * **Priority and fair share.**  [`SweepSession::stream_classified`]
//!   tags a grid's jobs with a [`RequestClass`] — a [`Priority`] band
//!   (interactive > normal > bulk) plus a client id.  The pool serves
//!   higher bands first and interleaves clients round-robin within a band
//!   (FIFO per client, so queue order is request age), which keeps a bulk
//!   figure grid from freezing an interactive single-point probe.
//! * **Fault isolation.**  A panicking point is reported as a
//!   [`SweepEvent::Failed`] through [`SweepStream::next_event`] (servers),
//!   or re-thrown on the consuming thread by the plain [`Iterator`] path
//!   (figure generators); either way the cache is never populated with a
//!   partial result and the worker pool survives.
//!
//! Streamed, batched, one-shot (`LoweredTrace::sweep`), cached and
//! naive-reference results are bit-for-bit identical —
//! `tests/session_differential.rs` and `tests/sweep_cache.rs` hold all of
//! them to each other on randomized grids across all three machines.

use crate::store::{CacheStore, StoreRecord};
use crate::{fault, LoweredTrace, Machine, ScalarMode, WindowSpec};
use dae_isa::Cycle;
use dae_machines::{with_abort_token, AbortToken, AbortedSimulation};
use dae_mem::LruMap;
use dae_trace::Trace;
use dae_workloads::PerfectProgram;
use rayon::prelude::*;
use rayon::Priority;
use std::collections::HashMap;
use std::io;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Handle to a program pinned in a [`SweepSession`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(usize);

/// One sweep point addressed at a pinned program.
pub type SweepPoint = (TraceId, Machine, WindowSpec, Cycle);

/// Counters describing what a session has done (diagnostics for tests and
/// reports; all monotone).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Programs pinned (lowerings performed or adopted).
    pub pinned_traces: u64,
    /// `pin_program` calls answered from the cache without re-lowering.
    pub pin_hits: u64,
    /// Points run through the batched API.
    pub batched_points: u64,
    /// Points run through the streaming API.
    pub streamed_points: u64,
}

/// Counters of a session's sweep-result cache (see
/// [`SweepSession::cache_stats`]).  Everything except `entries` is
/// monotone, and `hits + misses == lookups` always holds — each lookup is
/// classified exactly once, under the same lock that consulted the map.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Points answered without dispatching a simulation — from an entry
    /// left by an earlier grid (or loaded from disk), or by deduplicating
    /// a repeat within one grid.
    pub hits: u64,
    /// Points the cache could not answer, dispatched to the simulator.
    pub misses: u64,
    /// Cache consultations (`hits + misses`).
    pub lookups: u64,
    /// Distinct `(content hash, machine, window, MD)` results currently
    /// held.
    pub entries: usize,
    /// Entries evicted to keep the cache under its configured bound.
    pub evictions: u64,
    /// Entries adopted from an attached on-disk store at load time.
    pub loaded: u64,
    /// Entries appended to the attached on-disk store.
    pub persisted: u64,
    /// Abandoned segments skipped while loading the on-disk store (a
    /// corrupt or truncated record suffix, or an unrecognized header) —
    /// never a panic, never a refused start.
    pub corrupt_records: u64,
}

/// A cancellation handle shared between a caller and the in-flight jobs of
/// a streamed sweep ([`SweepSession::stream_cancellable`]).
///
/// Cancellation is cooperative and acts at two grains.  A point whose
/// worker has not started it yet is skipped (its simulation never runs and
/// the stream reports it in [`SweepStream::skipped`]); a point already
/// simulating is aborted mid-run — the engine polls the token's flag every
/// few hundred event-loop iterations
/// ([`dae_machines::ABORT_POLL_INTERVAL`]) and unwinds out of the
/// simulation, so even a multi-millisecond point stops within microseconds
/// ([`SweepStream::aborted`] counts these).  Cloning shares the same flag,
/// and cancelling is idempotent.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation: pending points of every stream holding this
    /// token are skipped, and points already simulating abort at their next
    /// engine poll.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }

    /// The same flag viewed as the engine-facing abort token (installed
    /// around each point's simulation by the stream worker).
    fn abort_token(&self) -> AbortToken {
        AbortToken::from_flag(Arc::clone(&self.0))
    }

    /// The raw flag, shared with the worker pool so a queued job whose
    /// token was cancelled is dropped at claim time (it still runs its
    /// short-circuit path and accounts itself as skipped) instead of
    /// taking a fair-share dispatch turn.
    fn flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.0)
    }
}

/// The scheduling identity of a streamed request: which [`Priority`] band
/// its point jobs enter and which client's fair-share queue they join.
/// Within one client's queue jobs stay FIFO (submission order *is* request
/// age), clients in a band are served round-robin, and higher bands always
/// go first — so a bulk grid can no longer freeze an interactive probe.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestClass {
    /// The priority band (interactive > normal > bulk).
    pub priority: Priority,
    /// The fair-share queue key; unclassified work shares client 0.
    pub client: u64,
}

impl RequestClass {
    /// A class in `priority`'s band under `client`'s fair-share queue.
    #[must_use]
    pub fn new(priority: Priority, client: u64) -> Self {
        RequestClass { priority, client }
    }
}

/// A cache key: the *structural* identity of the lowering — its
/// [`content hash`](LoweredTrace::content_hash) — plus the machine
/// parameters of the point.  Two lowerings of the same trace share a key
/// regardless of which [`TraceId`] pinned them, in which session, or in
/// which process: that is what lets re-pinned programs and restarted
/// servers reuse earlier figures, and what makes persisting entries to
/// disk meaningful.  The differential suite pins the safety direction:
/// hash-equal lowerings produce bit-for-bit-equal results.  The alias is
/// public as [`crate::SweepCacheKey`] so placement layers (the shard
/// coordinator in `dae-serve`) hash the exact identity this cache is
/// queried with.
type CacheKey = crate::SweepCacheKey;

/// A resident cache entry: the figure plus the measured simulation time
/// that the cost-aware eviction policy weighs.
#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    cycles: Cycle,
    cost_nanos: u64,
}

/// How many of the coldest entries the eviction policy inspects before
/// choosing the cheapest of them as victim.  Plain LRU is `1`; a small
/// window keeps eviction O(log n) while letting an expensive-to-recompute
/// entry survive a sweep of cheap newcomers.
const EVICTION_SCAN: usize = 8;

/// Everything the sweep-result cache owns, behind one lock: the recency
/// map, the counters that describe it, the configured bound, the clear
/// fence and the optional on-disk log.  Counters living *inside* the lock
/// is deliberate — every update is atomic with the map operation it
/// describes, so `hits + misses == lookups` cannot be broken by a panic
/// or a race between the two (this used to be three separate atomics,
/// which could).
#[derive(Debug, Default)]
struct CacheInner {
    map: LruMap<CacheKey, CacheEntry>,
    /// Maximum resident entries; `None` is unbounded.
    limit: Option<usize>,
    /// Bumped by every clear; inserts stamped with an older generation
    /// are dropped, which is what makes `clear_cache` a fence against
    /// in-flight streamed jobs.
    generation: u64,
    hits: u64,
    misses: u64,
    lookups: u64,
    evictions: u64,
    loaded: u64,
    persisted: u64,
    corrupt_records: u64,
    /// The attached persistence log, if any.  Living under the same lock
    /// as the map keeps the two consistent without nested locking.
    store: Option<CacheStore>,
}

/// What a batched grid resolved against the cache in one locked pass (see
/// [`SweepCache::resolve_batch`]).
struct BatchResolution {
    /// Per point: the cached figure, or `None` if it must be simulated.
    resolved: Vec<Option<Cycle>>,
    /// Per point: index into the deduplicated miss list (`usize::MAX` for
    /// cache-resolved points).
    slots: Vec<usize>,
    /// Indices (into the submitted grid) of the distinct misses to
    /// simulate, in first-occurrence order.
    missing: Vec<usize>,
    /// The generation to stamp the resulting inserts with.
    generation: u64,
}

/// The shared half of the sweep-result cache: the session and every
/// in-flight streamed job hold an `Arc` to it, so results computed after
/// the submitting call returned still populate the cache.
#[derive(Debug, Default)]
struct SweepCache {
    inner: Mutex<CacheInner>,
}

impl SweepCache {
    /// The cache state, recovering from mutex poisoning: the map is only
    /// ever written whole entries and the counters are plain increments,
    /// so a panic that poisons the lock cannot leave torn state behind —
    /// everything is as valid after recovery as before.  A panicking
    /// point must fail only its own request, not wedge the cache for
    /// every later one.
    fn inner(&self) -> MutexGuard<'_, CacheInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The current clear-fence generation (captured at submit time by
    /// streamed grids, re-checked by [`SweepCache::insert`]).
    fn generation(&self) -> u64 {
        self.inner().generation
    }

    /// The cached execution time of `key`, classifying the consultation
    /// as a hit or a miss under the same lock that reads the map.
    fn lookup(&self, key: &CacheKey) -> Option<Cycle> {
        let inner = &mut *self.inner();
        inner.lookups += 1;
        match inner.map.get(key).copied() {
            Some(entry) => {
                inner.hits += 1;
                inner.map.touch(key);
                Some(entry.cycles)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Second-chance lookup for a worker that already holds a counted
    /// miss for `key`: refreshes recency but classifies nothing, so the
    /// point is not double-counted.
    fn revisit(&self, key: &CacheKey) -> Option<Cycle> {
        let inner = &mut *self.inner();
        let entry = inner.map.get(key).copied();
        if entry.is_some() {
            inner.map.touch(key);
        }
        entry.map(|entry| entry.cycles)
    }

    /// Resolves a whole grid in one locked pass: cache hits, repeats
    /// *within* the grid (deduplicated against the distinct-miss list)
    /// and genuine misses are classified together, so the counters and
    /// the map cannot diverge mid-grid.
    fn resolve_batch(&self, keys: &[CacheKey]) -> BatchResolution {
        let inner = &mut *self.inner();
        let mut resolved = Vec::with_capacity(keys.len());
        let mut slots = Vec::with_capacity(keys.len());
        let mut missing = Vec::new();
        let mut slot_of: HashMap<CacheKey, usize> = HashMap::new();
        for (index, key) in keys.iter().enumerate() {
            inner.lookups += 1;
            if let Some(entry) = inner.map.get(key).copied() {
                inner.hits += 1;
                inner.map.touch(key);
                resolved.push(Some(entry.cycles));
                slots.push(usize::MAX);
            } else if let Some(&slot) = slot_of.get(key) {
                // A repeat of an unresolved point earlier in this grid:
                // it rides that point's simulation, so it is a hit.
                inner.hits += 1;
                resolved.push(None);
                slots.push(slot);
            } else {
                inner.misses += 1;
                slot_of.insert(*key, missing.len());
                resolved.push(None);
                slots.push(missing.len());
                missing.push(index);
            }
        }
        BatchResolution {
            resolved,
            slots,
            missing,
            generation: inner.generation,
        }
    }

    /// Records a simulated result, unless the cache was cleared since the
    /// job captured `generation` (the clear fence).  Appends to the
    /// attached store and then re-checks the bound — eviction runs *after*
    /// the insert, so the cache never exceeds its limit even when a
    /// completing worker re-inserts a key that was evicted between its
    /// lookup miss and now.
    fn insert(&self, key: CacheKey, cycles: Cycle, cost_nanos: u64, generation: u64) {
        let inner = &mut *self.inner();
        if inner.generation != generation {
            return;
        }
        inner.map.insert(key, CacheEntry { cycles, cost_nanos });
        if let Some(store) = inner.store.as_mut() {
            if store.append(&record(key, cycles, cost_nanos)).is_ok() {
                inner.persisted += 1;
            }
        }
        enforce_limit(inner);
    }

    /// Empties the map, bumps the clear fence and truncates the attached
    /// store (clearing means the persisted set too).
    fn clear(&self) {
        let inner = &mut *self.inner();
        inner.map.clear();
        inner.generation += 1;
        if let Some(store) = inner.store.as_mut() {
            // Best effort: an I/O failure here leaves stale records in
            // the log, which the shutdown compaction rewrites anyway.
            let _ = store.compact(&[]);
        }
    }

    /// Sets the resident bound and evicts down to it immediately.
    fn set_limit(&self, limit: Option<usize>) {
        let inner = &mut *self.inner();
        inner.limit = limit;
        enforce_limit(inner);
    }

    fn limit(&self) -> Option<usize> {
        self.inner().limit
    }

    /// Attaches `dir`'s on-disk log: replays every intact record into the
    /// map (later records supersede earlier ones), adopts the corruption
    /// count, and keeps the handle for appends.  Returns the number of
    /// records replayed.
    fn attach_store(&self, dir: &Path) -> io::Result<u64> {
        let (store, load) = CacheStore::open(dir)?;
        let inner = &mut *self.inner();
        let replayed = load.records.len() as u64;
        for record in load.records {
            inner.map.insert(
                (record.hash, record.machine, record.window, record.md),
                CacheEntry {
                    cycles: record.cycles,
                    cost_nanos: record.cost_nanos,
                },
            );
        }
        inner.loaded += replayed;
        inner.corrupt_records += load.corrupt_records;
        inner.store = Some(store);
        enforce_limit(inner);
        Ok(replayed)
    }

    /// Compacts the attached store to the resident set, written in
    /// recency order (coldest first) so a reload preserves the eviction
    /// order too.  No-op without a store.
    fn compact_store(&self) -> io::Result<()> {
        let inner = &mut *self.inner();
        let records: Vec<StoreRecord> = inner
            .map
            .iter_lru()
            .map(|(&key, entry)| record(key, entry.cycles, entry.cost_nanos))
            .collect();
        match inner.store.as_mut() {
            Some(store) => store.compact(&records),
            None => Ok(()),
        }
    }

    fn stats(&self) -> CacheStats {
        let inner = self.inner();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            lookups: inner.lookups,
            entries: inner.map.len(),
            evictions: inner.evictions,
            loaded: inner.loaded,
            persisted: inner.persisted,
            corrupt_records: inner.corrupt_records,
        }
    }
}

/// The store image of one resident entry.
fn record(key: CacheKey, cycles: Cycle, cost_nanos: u64) -> StoreRecord {
    let (hash, machine, window, md) = key;
    StoreRecord {
        hash,
        machine,
        window,
        md,
        cycles,
        cost_nanos,
    }
}

/// Evicts until the map respects the bound.  The victim each round is the
/// *cheapest-to-recompute* entry (smallest measured simulation time)
/// among the [`EVICTION_SCAN`] least recently used — recency picks the
/// candidates, cost picks among them.
fn enforce_limit(inner: &mut CacheInner) {
    let Some(limit) = inner.limit else {
        return;
    };
    while inner.map.len() > limit {
        let victim = inner
            .map
            .iter_lru()
            .take(EVICTION_SCAN)
            .min_by_key(|&(_, entry)| entry.cost_nanos)
            .map(|(&key, _)| key);
        match victim {
            Some(key) => {
                inner.map.remove(&key);
                inner.evictions += 1;
            }
            None => break,
        }
    }
}

/// A persistent sweep service: lowered programs pinned once, grids of
/// points executed over the long-lived worker pool with finished points
/// cached, results delivered batched or streamed.  See the module docs.
#[derive(Debug)]
pub struct SweepSession {
    traces: Vec<Arc<LoweredTrace>>,
    /// `pin_program` cache: `(program, iterations) → TraceId`.
    programs: Vec<((PerfectProgram, u64), TraceId)>,
    scalar_mode: ScalarMode,
    stats: SessionStats,
    /// The sweep-result cache, shared with in-flight streamed jobs.
    cache: Arc<SweepCache>,
    /// Whether sweeps consult and populate the cache (default: yes).
    cache_enabled: bool,
}

impl Default for SweepSession {
    fn default() -> Self {
        SweepSession {
            traces: Vec::new(),
            programs: Vec::new(),
            scalar_mode: ScalarMode::default(),
            stats: SessionStats::default(),
            cache: Arc::new(SweepCache::default()),
            cache_enabled: true,
        }
    }
}

impl SweepSession {
    /// An empty session evaluating the scalar reference analytically.
    #[must_use]
    pub fn new() -> Self {
        SweepSession::default()
    }

    /// An empty session with an explicit scalar-evaluation mode.
    #[must_use]
    pub fn with_scalar_mode(scalar_mode: ScalarMode) -> Self {
        SweepSession {
            scalar_mode,
            ..SweepSession::default()
        }
    }

    /// How this session evaluates [`Machine::Scalar`] points.
    #[must_use]
    pub fn scalar_mode(&self) -> ScalarMode {
        self.scalar_mode
    }

    /// A snapshot of the session's activity counters.
    #[must_use]
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// A snapshot of the sweep-result cache's hit/miss/entry counters.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Whether sweeps consult and populate the result cache.
    #[must_use]
    pub fn cache_enabled(&self) -> bool {
        self.cache_enabled
    }

    /// Switches the result cache on or off for subsequent sweeps (entries
    /// and counters are kept; in-flight streamed jobs follow the setting
    /// they were submitted under).  New sessions start enabled; lifecycle
    /// tests and benchmarks that must observe every simulation switch it
    /// off.
    pub fn set_cache_enabled(&mut self, enabled: bool) {
        self.cache_enabled = enabled;
    }

    /// Drops every cached sweep result (the monotone diagnostic counters
    /// are kept) and truncates the attached on-disk store, if any.
    ///
    /// Clearing is a *fence*: streamed jobs submitted before the clear
    /// carry the previous cache generation, so their results — delivered
    /// to their streams as usual — can no longer repopulate the map (or
    /// the store) after this returns.
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Bounds the cache to at most `limit` resident entries (`None`, the
    /// default, is unbounded), evicting down immediately and at every
    /// subsequent insert.  Eviction is cost-aware LRU: the victim is the
    /// cheapest-to-recompute entry among the coldest few, so an expensive
    /// point is not sacrificed to make room for a cheap one.
    pub fn set_cache_limit(&mut self, limit: Option<usize>) {
        self.cache.set_limit(limit);
    }

    /// The configured cache bound (`None` = unbounded).
    #[must_use]
    pub fn cache_limit(&self) -> Option<usize> {
        self.cache.limit()
    }

    /// Attaches a persistent on-disk store rooted at `dir` (created if
    /// absent): every intact record already in its log is replayed into
    /// the cache — entries are keyed structurally, so figures computed by
    /// an earlier process answer this session's sweeps — and results
    /// computed from now on are appended as they finish.  Corrupt or
    /// truncated log tails are skipped and counted
    /// ([`CacheStats::corrupt_records`]), never a panic.  Returns the
    /// number of records replayed.
    pub fn attach_cache_store(&mut self, dir: &Path) -> io::Result<u64> {
        self.cache.attach_store(dir)
    }

    /// Compacts the attached store down to the resident entries (dropping
    /// superseded appends and evicted keys from the log).  The supported
    /// shutdown path for `--cache-dir` servers; a no-op without a store.
    pub fn persist_cache(&mut self) -> io::Result<()> {
        self.cache.compact_store()
    }

    /// The number of pinned programs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether no program has been pinned yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Pins an already-lowered trace, returning its handle.
    pub fn pin_lowered(&mut self, lowered: LoweredTrace) -> TraceId {
        self.stats.pinned_traces += 1;
        self.traces.push(Arc::new(lowered));
        TraceId(self.traces.len() - 1)
    }

    /// Lowers `trace` for all three machines and pins it.
    pub fn pin_trace(&mut self, trace: &Trace) -> TraceId {
        self.pin_lowered(LoweredTrace::new(trace))
    }

    /// The cached handle for a `(program, iterations)` pair, if resident.
    fn find_program(&self, program: PerfectProgram, iterations: u64) -> Option<TraceId> {
        self.programs
            .iter()
            .find(|&&(key, _)| key == (program, iterations))
            .map(|&(_, id)| id)
    }

    /// Pins a PERFECT workload expanded for `iterations`, lowering it only
    /// if this `(program, iterations)` pair is not already resident — the
    /// cache is what lets consecutive figure generators share one session
    /// without re-lowering the suite.
    pub fn pin_program(&mut self, program: PerfectProgram, iterations: u64) -> TraceId {
        if let Some(id) = self.find_program(program, iterations) {
            self.stats.pin_hits += 1;
            return id;
        }
        let id = self.pin_trace(&program.workload().trace(iterations));
        self.programs.push(((program, iterations), id));
        id
    }

    /// Pins several PERFECT workloads, lowering the missing ones in
    /// parallel (lowering is a third to half of a single simulation's
    /// cost, so the suite-wide generators lower all seven programs at
    /// once).  Only programs that were resident *before* this call count
    /// as `pin_hits`.
    pub fn pin_programs(&mut self, programs: &[PerfectProgram], iterations: u64) -> Vec<TraceId> {
        let mut missing: Vec<PerfectProgram> = Vec::new();
        for &program in programs {
            if self.find_program(program, iterations).is_some() {
                self.stats.pin_hits += 1;
            } else if !missing.contains(&program) {
                missing.push(program);
            }
        }
        let lowered: Vec<(PerfectProgram, LoweredTrace)> = missing
            .into_par_iter()
            .map(|program| {
                (
                    program,
                    LoweredTrace::new(&program.workload().trace(iterations)),
                )
            })
            .collect();
        for (program, lowered) in lowered {
            let id = self.pin_lowered(lowered);
            self.programs.push(((program, iterations), id));
        }
        programs
            .iter()
            .map(|&p| {
                self.find_program(p, iterations)
                    .expect("every requested program was just pinned")
            })
            .collect()
    }

    /// The pinned lowering behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this session.
    #[must_use]
    pub fn lowered(&self, id: TraceId) -> &LoweredTrace {
        &self.traces[id.0]
    }

    /// Runs a grid of `(machine, window, MD)` points against one pinned
    /// program, returning execution times in point order (batched API).
    #[must_use]
    pub fn sweep(&mut self, id: TraceId, points: &[(Machine, WindowSpec, Cycle)]) -> Vec<Cycle> {
        let full: Vec<SweepPoint> = points
            .iter()
            .map(|&(machine, window, md)| (id, machine, window, md))
            .collect();
        self.sweep_multi(&full)
    }

    /// Runs a grid of points addressing any mix of pinned programs,
    /// returning execution times in point order (batched API).
    ///
    /// With the cache enabled, points already resident are answered without
    /// simulating, repeats *within* the grid are deduplicated, and only the
    /// distinct misses are dispatched to the workers.
    ///
    /// # Panics
    ///
    /// Panics if a point names a `TraceId` not pinned in this session.
    #[must_use]
    pub fn sweep_multi(&mut self, points: &[SweepPoint]) -> Vec<Cycle> {
        self.stats.batched_points += points.len() as u64;
        let traces = &self.traces;
        let scalar_mode = self.scalar_mode;
        if !self.cache_enabled {
            return points
                .par_iter()
                .map(|&(id, machine, window, md)| {
                    traces[id.0].machine_cycles_in(machine, window, md, scalar_mode)
                })
                .collect();
        }

        // Resolve the whole grid against the cache in one locked pass
        // (hits, in-grid repeats and distinct misses classified together);
        // only the distinct misses are simulated, each timed so its entry
        // carries the cost the eviction policy weighs.
        let keys: Vec<CacheKey> = points
            .iter()
            .map(|&(id, machine, window, md)| (traces[id.0].content_hash(), machine, window, md))
            .collect();
        let resolution = self.cache.resolve_batch(&keys);
        let computed: Vec<(Cycle, u64)> = resolution
            .missing
            .par_iter()
            .map(|&index| {
                let (id, machine, window, md) = points[index];
                let started = Instant::now();
                let cycles = traces[id.0].machine_cycles_in(machine, window, md, scalar_mode);
                (cycles, started.elapsed().as_nanos() as u64)
            })
            .collect();
        for (&index, &(cycles, cost_nanos)) in resolution.missing.iter().zip(&computed) {
            self.cache
                .insert(keys[index], cycles, cost_nanos, resolution.generation);
        }
        resolution
            .resolved
            .into_iter()
            .zip(resolution.slots)
            .map(|(cached, slot)| cached.unwrap_or_else(|| computed[slot].0))
            .collect()
    }

    /// Submits a grid of points and returns immediately with a stream that
    /// yields each result as its worker finishes (completion order, no
    /// full-grid barrier).  The jobs hold `Arc`s to the pinned programs, so
    /// the stream is independent of the session borrow.
    ///
    /// # Panics
    ///
    /// Panics if a point names a `TraceId` not pinned in this session.
    #[must_use]
    pub fn stream(&mut self, points: &[SweepPoint]) -> SweepStream {
        self.stream_cancellable(points, &CancelToken::new())
    }

    /// [`SweepSession::stream`] tied to a [`CancelToken`]: cancelling the
    /// token skips every point no worker has started yet (skipped points
    /// are counted by [`SweepStream::skipped`] instead of being yielded)
    /// and cooperatively aborts points already simulating (counted by
    /// [`SweepStream::aborted`]) — the run engine polls the token
    /// mid-simulation, so cancellation latency is bounded by a few hundred
    /// simulated events, not by the slowest point's full runtime.
    ///
    /// Cache-resident points are delivered immediately (before this call
    /// returns they are already queued on the stream, marked
    /// [`StreamedPoint::cached`]); misses simulate on the workers and
    /// populate the cache as they finish, including after the submitting
    /// call has returned.
    ///
    /// # Panics
    ///
    /// Panics if a point names a `TraceId` not pinned in this session.
    #[must_use]
    pub fn stream_cancellable(
        &mut self,
        points: &[SweepPoint],
        token: &CancelToken,
    ) -> SweepStream {
        self.stream_classified(points, token, RequestClass::default())
    }

    /// [`SweepSession::stream_cancellable`] with an explicit scheduling
    /// class: every point job enters `class.priority`'s band under
    /// `class.client`'s fair-share queue on the worker pool, so a serving
    /// front end can let `priority=interactive` probes overtake a queued
    /// bulk grid and interleave concurrent clients round-robin.  The
    /// token's flag rides along with each queued job — jobs cancelled
    /// while still queued are dropped at claim time (they take their
    /// short-circuit path immediately, counted by the stream as skipped,
    /// never delivered) instead of occupying dispatch turns.
    ///
    /// # Panics
    ///
    /// Panics if a point names a `TraceId` not pinned in this session.
    #[must_use]
    pub fn stream_classified(
        &mut self,
        points: &[SweepPoint],
        token: &CancelToken,
        class: RequestClass,
    ) -> SweepStream {
        self.stats.streamed_points += points.len() as u64;
        // Jobs carry the generation current at submit time; a clear_cache
        // between now and a job's completion bumps it, fencing the stale
        // insert out (the result still streams to the caller).
        let generation = self.cache.generation();
        let (tx, rx) = mpsc::channel();
        for (index, &point) in points.iter().enumerate() {
            let (id, machine, window, md) = point;
            if token.is_cancelled() {
                let _ = tx.send(Delivery::Skipped(index));
                continue;
            }
            let key = (self.traces[id.0].content_hash(), machine, window, md);
            if self.cache_enabled {
                if let Some(cycles) = self.cache.lookup(&key) {
                    let _ = tx.send(Delivery::Done(StreamedPoint {
                        index,
                        point,
                        cycles,
                        cached: true,
                    }));
                    continue;
                }
            }
            let trace = Arc::clone(&self.traces[id.0]);
            let scalar_mode = self.scalar_mode;
            let cache = self.cache_enabled.then(|| Arc::clone(&self.cache));
            let token = token.clone();
            let tx = tx.clone();
            let flag = token.flag();
            rayon::spawn_prioritized(class.priority, class.client, Some(flag), move || {
                if token.is_cancelled() {
                    let _ = tx.send(Delivery::Skipped(index));
                    return;
                }
                // Second-chance lookup: an identical point earlier in this
                // (or a concurrent) grid may have finished in the meantime.
                // `revisit` classifies nothing — this point was already
                // counted as a miss at submit time.
                if let Some(cycles) = cache.as_deref().and_then(|c| c.revisit(&key)) {
                    let _ = tx.send(Delivery::Done(StreamedPoint {
                        index,
                        point,
                        cycles,
                        cached: true,
                    }));
                    return;
                }
                // The token doubles as the engine-facing abort flag: the
                // run loop polls it and unwinds with `AbortedSimulation` if
                // it is set, which the catch below tells apart from a real
                // panic.  Fault-injection hooks (test-only, see
                // [`crate::fault`]) fire inside the catch so an injected
                // panic takes the same path a genuine one would.
                let abort = token.abort_token();
                let started = Instant::now();
                let result = catch_unwind(AssertUnwindSafe(|| {
                    fault::on_point_start();
                    with_abort_token(&abort, || {
                        trace.machine_cycles_in(machine, window, md, scalar_mode)
                    })
                }));
                // A send can only fail if the stream was dropped early;
                // the remaining points are simply discarded then.  The
                // cache is only written for completed points — an aborted
                // or panicked simulation leaves no trace in it.
                let _ = tx.send(match result {
                    Ok(cycles) => {
                        if let Some(cache) = &cache {
                            let cost_nanos = started.elapsed().as_nanos() as u64;
                            cache.insert(key, cycles, cost_nanos, generation);
                        }
                        Delivery::Done(StreamedPoint {
                            index,
                            point,
                            cycles,
                            cached: false,
                        })
                    }
                    Err(payload) if payload.is::<AbortedSimulation>() => Delivery::Aborted(index),
                    Err(payload) => Delivery::Panicked(index, payload),
                });
            });
        }
        SweepStream {
            rx,
            remaining: points.len(),
            total: points.len(),
            skipped: 0,
            aborted: 0,
            failed: 0,
        }
    }

    /// Streams a grid and invokes `deliver` for every finished point (in
    /// completion order) — the callback flavour of [`SweepSession::stream`].
    pub fn stream_with(&mut self, points: &[SweepPoint], mut deliver: impl FnMut(StreamedPoint)) {
        for point in self.stream(points) {
            deliver(point);
        }
    }
}

/// One finished sweep point delivered by a [`SweepStream`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamedPoint {
    /// The point's index in the submitted grid.
    pub index: usize,
    /// The point itself.
    pub point: SweepPoint,
    /// The simulated (or analytic) execution time.
    pub cycles: Cycle,
    /// Whether the result came from the sweep-result cache rather than a
    /// fresh simulation.
    pub cached: bool,
}

/// What a streamed job sends back: a finished point, a cancellation skip,
/// a mid-simulation abort, or a panic payload (with the point's grid index
/// attached so event consumers can attribute the failure).
enum Delivery {
    Done(StreamedPoint),
    Skipped(usize),
    Aborted(usize),
    Panicked(usize, Box<dyn std::any::Any + Send>),
}

/// One stream outcome as seen by [`SweepStream::next_event`]: every
/// submitted point produces exactly one event, so a consumer that counts
/// them always reaches `total` — cancellation, abort and panic included.
#[derive(Debug)]
pub enum SweepEvent {
    /// A point finished (simulated or cache-answered).
    Point(StreamedPoint),
    /// A point was cancelled before its simulation started.
    Skipped {
        /// The point's index in the submitted grid.
        index: usize,
    },
    /// A point's simulation was cooperatively aborted mid-run.
    Aborted {
        /// The point's index in the submitted grid.
        index: usize,
    },
    /// A point's simulation panicked on its worker.  The panic is contained
    /// here — the pool survives and the cache holds no partial result.
    Failed {
        /// The point's index in the submitted grid.
        index: usize,
        /// The panic message, if it carried one.
        message: String,
    },
}

/// The outcome of a bounded wait on a stream
/// ([`SweepStream::next_event_timeout`]).
#[derive(Debug)]
pub enum StreamWait {
    /// An event arrived within the timeout.
    Event(SweepEvent),
    /// Nothing arrived within the timeout; the stream is still live.
    TimedOut,
    /// Every point has already been accounted for.
    Exhausted,
}

/// An in-flight streamed sweep: iterating yields each point as its worker
/// finishes.  Dropping the stream early abandons undelivered results (the
/// in-flight simulations still complete on the workers).
///
/// Two consumption styles exist.  The plain [`Iterator`] yields finished
/// points only, silently accounting skips and aborts and **re-throwing** a
/// worker panic on the consuming thread — the right semantics for figure
/// generators, where a panicking simulation is a bug that should fail the
/// run.  [`SweepStream::next_event`] yields every outcome as a
/// [`SweepEvent`] and never unwinds — the right semantics for a server,
/// which must keep serving other clients when one request's point panics.
#[derive(Debug)]
pub struct SweepStream {
    rx: mpsc::Receiver<Delivery>,
    remaining: usize,
    total: usize,
    skipped: usize,
    aborted: usize,
    failed: usize,
}

impl SweepStream {
    /// The number of points in the submitted grid.
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Points skipped by cancellation before starting, so far
    /// (`delivered + skipped + aborted + failed == total` once the stream
    /// is exhausted).
    #[must_use]
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// Points cooperatively aborted mid-simulation, so far.
    #[must_use]
    pub fn aborted(&self) -> usize {
        self.aborted
    }

    /// Points whose simulation panicked, so far.  Only advanced by the
    /// event API — the [`Iterator`] path re-throws the panic instead.
    #[must_use]
    pub fn failed(&self) -> usize {
        self.failed
    }

    /// Accounts one delivery into the stream's counters and maps it to the
    /// public event.
    fn account(&mut self, delivery: Delivery) -> SweepEvent {
        self.remaining -= 1;
        match delivery {
            Delivery::Done(point) => SweepEvent::Point(point),
            Delivery::Skipped(index) => {
                self.skipped += 1;
                SweepEvent::Skipped { index }
            }
            Delivery::Aborted(index) => {
                self.aborted += 1;
                SweepEvent::Aborted { index }
            }
            Delivery::Panicked(index, payload) => {
                self.failed += 1;
                SweepEvent::Failed {
                    index,
                    // `as_ref` matters: `&payload` would unsize the Box
                    // itself into `dyn Any` and the downcasts would miss.
                    message: panic_message(payload.as_ref()),
                }
            }
        }
    }

    /// The next outcome of any kind, blocking until one arrives; `None`
    /// once every submitted point has produced its event.  Unlike the
    /// [`Iterator`] path this never unwinds: a worker panic arrives as
    /// [`SweepEvent::Failed`].
    pub fn next_event(&mut self) -> Option<SweepEvent> {
        if self.remaining == 0 {
            return None;
        }
        let delivery = self.rx.recv().expect("sweep workers disappeared");
        Some(self.account(delivery))
    }

    /// [`SweepStream::next_event`] with a bounded wait — the deadline
    /// primitive: a server waits for the request's remaining budget and
    /// treats [`StreamWait::TimedOut`] as "cancel the token, then drain the
    /// (now fast-aborting) residue".
    pub fn next_event_timeout(&mut self, timeout: Duration) -> StreamWait {
        if self.remaining == 0 {
            return StreamWait::Exhausted;
        }
        match self.rx.recv_timeout(timeout) {
            Ok(delivery) => StreamWait::Event(self.account(delivery)),
            Err(mpsc::RecvTimeoutError::Timeout) => StreamWait::TimedOut,
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                panic!("sweep workers disappeared")
            }
        }
    }

    /// Drains the stream into grid order: element `i` is the execution
    /// time of submitted point `i`, exactly what the batched API returns.
    /// Only meaningful for uncancelled streams (a skipped point's slot
    /// stays `0`).
    #[must_use]
    pub fn collect_ordered(self) -> Vec<Cycle> {
        let mut cycles = vec![0; self.total];
        for point in self {
            cycles[point.index] = point.cycles;
        }
        cycles
    }
}

/// Best-effort extraction of a panic payload's message (`&str` and
/// `String` payloads cover `panic!`/`assert!`; anything else gets a
/// placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "simulation panicked".to_string()
    }
}

impl Iterator for SweepStream {
    type Item = StreamedPoint;

    fn next(&mut self) -> Option<StreamedPoint> {
        while self.remaining > 0 {
            match self.rx.recv().expect("sweep workers disappeared") {
                Delivery::Done(point) => {
                    self.remaining -= 1;
                    return Some(point);
                }
                // A cancelled point: account for it and keep draining.
                Delivery::Skipped(_) => {
                    self.remaining -= 1;
                    self.skipped += 1;
                }
                // An abort mid-simulation: likewise accounted, not yielded.
                Delivery::Aborted(_) => {
                    self.remaining -= 1;
                    self.aborted += 1;
                }
                // A point's simulation panicked on its worker: re-throw
                // here, on the thread consuming the stream.
                Delivery::Panicked(_, payload) => resume_unwind(payload),
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_trace::TraceHash;
    use dae_workloads::stream;

    fn grid() -> Vec<(Machine, WindowSpec, Cycle)> {
        vec![
            (Machine::Decoupled, WindowSpec::Entries(16), 60),
            (Machine::Superscalar, WindowSpec::Entries(32), 20),
            (Machine::Scalar, WindowSpec::Entries(1), 60),
            (Machine::Decoupled, WindowSpec::Unlimited, 0),
        ]
    }

    #[test]
    fn batched_streamed_and_one_shot_results_agree() {
        let trace = stream().trace(120);
        let lowered = LoweredTrace::new(&trace);
        let one_shot = lowered.sweep(&grid());

        let mut session = SweepSession::new();
        let id = session.pin_trace(&trace);
        let batched = session.sweep(id, &grid());
        let full: Vec<SweepPoint> = grid().iter().map(|&(m, w, md)| (id, m, w, md)).collect();
        let streamed = session.stream(&full).collect_ordered();

        assert_eq!(batched, one_shot);
        assert_eq!(streamed, one_shot);
        assert_eq!(session.stats().batched_points, 4);
        assert_eq!(session.stats().streamed_points, 4);
    }

    #[test]
    fn stream_delivers_every_point_exactly_once() {
        let mut session = SweepSession::new();
        let id = session.pin_trace(&stream().trace(100));
        let full: Vec<SweepPoint> = grid().iter().map(|&(m, w, md)| (id, m, w, md)).collect();
        let mut seen = vec![false; full.len()];
        session.stream_with(&full, |point| {
            assert!(!seen[point.index], "point delivered twice");
            seen[point.index] = true;
            assert_eq!(point.point, full[point.index]);
            assert!(point.cycles > 0);
        });
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn pin_program_caches_by_program_and_iterations() {
        let mut session = SweepSession::new();
        let a = session.pin_program(PerfectProgram::Trfd, 50);
        let b = session.pin_program(PerfectProgram::Trfd, 50);
        let c = session.pin_program(PerfectProgram::Trfd, 60);
        let d = session.pin_program(PerfectProgram::Mdg, 50);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(session.len(), 3);
        assert_eq!(session.stats().pin_hits, 1);
        let e = session.pin_programs(&[PerfectProgram::Trfd, PerfectProgram::Qcd], 50);
        assert_eq!(e[0], a);
        assert_eq!(session.len(), 4);
    }

    #[test]
    fn simulated_scalar_sessions_match_analytic_ones() {
        let trace = stream().trace(90);
        let points = vec![
            (Machine::Scalar, WindowSpec::Entries(1), 0),
            (Machine::Scalar, WindowSpec::Entries(1), 35),
            (Machine::Scalar, WindowSpec::Entries(1), 60),
        ];
        let mut analytic = SweepSession::new();
        let a = analytic.pin_trace(&trace);
        let mut simulated = SweepSession::with_scalar_mode(ScalarMode::Simulated);
        let s = simulated.pin_trace(&trace);
        assert_eq!(analytic.sweep(a, &points), simulated.sweep(s, &points));
    }

    #[test]
    fn repeated_grids_hit_the_result_cache() {
        let mut session = SweepSession::new();
        let id = session.pin_trace(&stream().trace(110));
        let first = session.sweep(id, &grid());
        let after_first = session.cache_stats();
        assert_eq!(after_first.hits, 0);
        assert_eq!(after_first.misses, 4);
        assert_eq!(after_first.entries, 4);

        // The identical grid again: answered entirely from the cache, by
        // both delivery shapes.
        let second = session.sweep(id, &grid());
        let full: Vec<SweepPoint> = grid().iter().map(|&(m, w, md)| (id, m, w, md)).collect();
        let streamed = session.stream(&full);
        let mut from_cache = 0;
        let mut ordered = vec![0; streamed.total()];
        for point in streamed {
            from_cache += usize::from(point.cached);
            ordered[point.index] = point.cycles;
        }
        assert_eq!(first, second);
        assert_eq!(first, ordered);
        assert_eq!(from_cache, 4);
        let stats = session.cache_stats();
        assert_eq!(stats.hits, 8);
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.entries, 4);
    }

    #[test]
    fn duplicate_points_within_one_grid_simulate_once() {
        let mut session = SweepSession::new();
        let id = session.pin_trace(&stream().trace(100));
        let point = (Machine::Decoupled, WindowSpec::Entries(16), 60);
        let cycles = session.sweep(id, &[point, point, point]);
        assert_eq!(cycles[0], cycles[1]);
        assert_eq!(cycles[1], cycles[2]);
        let stats = session.cache_stats();
        assert_eq!(stats.misses, 1, "one simulation for three identical points");
        assert_eq!(stats.hits, 2);
    }

    #[test]
    fn a_disabled_cache_is_bypassed_entirely() {
        let mut session = SweepSession::new();
        session.set_cache_enabled(false);
        assert!(!session.cache_enabled());
        let id = session.pin_trace(&stream().trace(100));
        let first = session.sweep(id, &grid());
        let second = session.sweep(id, &grid());
        assert_eq!(first, second);
        assert_eq!(session.cache_stats(), CacheStats::default());
    }

    #[test]
    fn clearing_the_cache_forces_recomputation() {
        let mut session = SweepSession::new();
        let id = session.pin_trace(&stream().trace(100));
        let first = session.sweep(id, &grid());
        session.clear_cache();
        assert_eq!(session.cache_stats().entries, 0);
        let second = session.sweep(id, &grid());
        assert_eq!(first, second);
        assert_eq!(session.cache_stats().misses, 8, "both grids simulated");
    }

    #[test]
    fn eviction_prefers_the_cheapest_of_the_coldest() {
        let cache = SweepCache::default();
        cache.set_limit(Some(3));
        let key = |n: u64| {
            (
                TraceHash::from_words(n, n),
                Machine::Scalar,
                WindowSpec::Entries(1),
                0,
            )
        };
        let generation = cache.generation();
        cache.insert(key(1), 10, 1_000_000, generation);
        cache.insert(key(2), 20, 10, generation); // cheap to recompute
        cache.insert(key(3), 30, 1_000_000, generation);
        // A fourth insert overflows the bound; the victim is the cheapest
        // entry among the coldest few, not the strict LRU head.
        cache.insert(key(4), 40, 1_000_000, generation);
        let stats = cache.stats();
        assert_eq!(stats.entries, 3);
        assert_eq!(stats.evictions, 1);
        assert!(cache.revisit(&key(1)).is_some(), "expensive head survives");
        assert!(cache.revisit(&key(2)).is_none(), "cheap entry evicted");
        assert!(cache.revisit(&key(3)).is_some());
        assert!(cache.revisit(&key(4)).is_some());
        // Shrinking the limit evicts down immediately.
        cache.set_limit(Some(1));
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.stats().evictions, 3);
    }

    #[test]
    fn a_stale_generation_insert_is_fenced_out() {
        let cache = SweepCache::default();
        let key = (
            TraceHash::from_words(7, 7),
            Machine::Scalar,
            WindowSpec::Entries(1),
            0,
        );
        let stale = cache.generation();
        cache.clear();
        cache.insert(key, 10, 5, stale);
        assert_eq!(
            cache.stats().entries,
            0,
            "a pre-clear job cannot repopulate the cache"
        );
        cache.insert(key, 10, 5, cache.generation());
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn lookup_accounting_is_exact_across_delivery_shapes() {
        let mut session = SweepSession::new();
        let id = session.pin_trace(&stream().trace(100));
        let _ = session.sweep(id, &grid());
        let full: Vec<SweepPoint> = grid().iter().map(|&(m, w, md)| (id, m, w, md)).collect();
        let _ = session.stream(&full).collect_ordered();
        let point = grid()[0];
        let _ = session.sweep(id, &[point, point, point]);
        let stats = session.cache_stats();
        assert_eq!(stats.lookups, 4 + 4 + 3, "one classification per point");
        assert_eq!(stats.hits + stats.misses, stats.lookups);
        assert_eq!(stats.misses, 4);
    }

    #[test]
    fn a_tiny_limit_survives_randomized_stress() {
        let trace = stream().trace(60);
        let mut session = SweepSession::new();
        session.set_cache_limit(Some(3));
        assert_eq!(session.cache_limit(), Some(3));
        let id = session.pin_trace(&trace);
        let mut reference = SweepSession::new();
        reference.set_cache_enabled(false);
        let rid = reference.pin_trace(&trace);
        // Deterministic LCG so the stress is reproducible.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            state >> 33
        };
        for round in 0..30 {
            let count = 1 + (next() % 6) as usize;
            let points: Vec<(Machine, WindowSpec, Cycle)> = (0..count)
                .map(|_| {
                    let machine = match next() % 3 {
                        0 => Machine::Decoupled,
                        1 => Machine::Superscalar,
                        _ => Machine::Scalar,
                    };
                    let window = if next() % 4 == 0 {
                        WindowSpec::Unlimited
                    } else {
                        WindowSpec::Entries(4 + (next() % 3) as usize * 12)
                    };
                    (machine, window, (next() % 4) * 20)
                })
                .collect();
            let got = if round % 2 == 0 {
                session.sweep(id, &points)
            } else {
                let full: Vec<SweepPoint> =
                    points.iter().map(|&(m, w, md)| (id, m, w, md)).collect();
                session.stream(&full).collect_ordered()
            };
            assert_eq!(got, reference.sweep(rid, &points), "round {round}");
            let stats = session.cache_stats();
            assert!(
                stats.entries <= 3,
                "bound violated in round {round}: {} entries",
                stats.entries
            );
            assert_eq!(stats.hits + stats.misses, stats.lookups);
        }
        assert!(session.cache_stats().evictions > 0, "the bound did work");
    }

    #[test]
    fn a_cancelled_stream_skips_pending_points() {
        let mut session = SweepSession::new();
        let id = session.pin_trace(&stream().trace(100));
        let full: Vec<SweepPoint> = grid().iter().map(|&(m, w, md)| (id, m, w, md)).collect();
        let token = CancelToken::new();
        token.cancel();
        assert!(token.is_cancelled());
        let mut stream = session.stream_cancellable(&full, &token);
        assert_eq!(stream.next(), None, "every point was cancelled");
        assert_eq!(stream.skipped(), full.len());
        // The session (and a fresh, uncancelled stream) stay fully usable.
        let delivered = session.stream(&full).count();
        assert_eq!(delivered, full.len());
    }

    #[test]
    fn dropping_a_stream_early_is_clean() {
        let mut session = SweepSession::new();
        let id = session.pin_trace(&stream().trace(80));
        let full: Vec<SweepPoint> = grid().iter().map(|&(m, w, md)| (id, m, w, md)).collect();
        let mut stream = session.stream(&full);
        let first = stream.next().expect("at least one point");
        assert!(first.cycles > 0);
        drop(stream);
        // The session stays fully usable.
        assert_eq!(session.sweep(id, &grid()).len(), 4);
    }
}
