//! Persistent sweep sessions: pinned lowered programs over the long-lived
//! worker pool.
//!
//! Every figure of the paper is a sweep — cycle counts for one workload
//! across a grid of (machine, window, memory-differential) points — and the
//! serving-scale goal needs those sweeps to behave like a resident service,
//! not a batch job.  A [`SweepSession`] is the resident half of that:
//!
//! * **Pinned programs.**  [`SweepSession::pin_program`] lowers a PERFECT
//!   workload once and caches it by `(program, iterations)`, so consecutive
//!   figure generators sharing one session re-lower nothing;
//!   [`SweepSession::pin_lowered`] / [`SweepSession::pin_trace`] pin
//!   arbitrary traces.  Pinned programs are `Arc`-shared into workers.
//! * **Warm per-worker pools.**  Points run over the vendored rayon stub's
//!   *persistent* workers; each worker's thread-local
//!   [`SimPool`](dae_machines::SimPool) therefore survives between sweeps,
//!   so the second sweep on a session rebuilds no simulator buffers at all
//!   (`dae_machines::pool_diagnostics` counts the warm checkouts, and the
//!   session-vs-per-call benchmark entry pins the win).
//! * **Batched and streaming delivery.**  [`SweepSession::sweep`] returns
//!   results in point order after the grid completes;
//!   [`SweepSession::stream`] delivers each point the moment its worker
//!   finishes — an iterator in *completion* order, no full-grid barrier —
//!   which is the shape a resident service reports progress in.
//! * **Simulated scalar sweeps.**  A session carries a
//!   [`ScalarMode`](crate::ScalarMode): figures default to the exact O(1)
//!   analytic formula, ablations (functional-unit limits, caches) switch to
//!   [`ScalarMode::Simulated`](crate::ScalarMode) and sweep the scalar
//!   machine through the same pooled simulator as the DM and the SWSM.
//!
//! Streamed, batched, one-shot (`LoweredTrace::sweep`) and naive-reference
//! results are bit-for-bit identical — `tests/session_differential.rs`
//! holds all four to each other on randomized grids across all three
//! machines.

use crate::{LoweredTrace, Machine, ScalarMode, WindowSpec};
use dae_isa::Cycle;
use dae_trace::Trace;
use dae_workloads::PerfectProgram;
use rayon::prelude::*;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc};

/// Handle to a program pinned in a [`SweepSession`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(usize);

/// One sweep point addressed at a pinned program.
pub type SweepPoint = (TraceId, Machine, WindowSpec, Cycle);

/// Counters describing what a session has done (diagnostics for tests and
/// reports; all monotone).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Programs pinned (lowerings performed or adopted).
    pub pinned_traces: u64,
    /// `pin_program` calls answered from the cache without re-lowering.
    pub pin_hits: u64,
    /// Points run through the batched API.
    pub batched_points: u64,
    /// Points run through the streaming API.
    pub streamed_points: u64,
}

/// A persistent sweep service: lowered programs pinned once, grids of
/// points executed over the long-lived worker pool, results delivered
/// batched or streamed.  See the module docs.
#[derive(Debug, Default)]
pub struct SweepSession {
    traces: Vec<Arc<LoweredTrace>>,
    /// `pin_program` cache: `(program, iterations) → TraceId`.
    programs: Vec<((PerfectProgram, u64), TraceId)>,
    scalar_mode: ScalarMode,
    stats: SessionStats,
}

impl SweepSession {
    /// An empty session evaluating the scalar reference analytically.
    #[must_use]
    pub fn new() -> Self {
        SweepSession::default()
    }

    /// An empty session with an explicit scalar-evaluation mode.
    #[must_use]
    pub fn with_scalar_mode(scalar_mode: ScalarMode) -> Self {
        SweepSession {
            scalar_mode,
            ..SweepSession::default()
        }
    }

    /// How this session evaluates [`Machine::Scalar`] points.
    #[must_use]
    pub fn scalar_mode(&self) -> ScalarMode {
        self.scalar_mode
    }

    /// A snapshot of the session's activity counters.
    #[must_use]
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// The number of pinned programs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether no program has been pinned yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Pins an already-lowered trace, returning its handle.
    pub fn pin_lowered(&mut self, lowered: LoweredTrace) -> TraceId {
        self.stats.pinned_traces += 1;
        self.traces.push(Arc::new(lowered));
        TraceId(self.traces.len() - 1)
    }

    /// Lowers `trace` for all three machines and pins it.
    pub fn pin_trace(&mut self, trace: &Trace) -> TraceId {
        self.pin_lowered(LoweredTrace::new(trace))
    }

    /// The cached handle for a `(program, iterations)` pair, if resident.
    fn find_program(&self, program: PerfectProgram, iterations: u64) -> Option<TraceId> {
        self.programs
            .iter()
            .find(|&&(key, _)| key == (program, iterations))
            .map(|&(_, id)| id)
    }

    /// Pins a PERFECT workload expanded for `iterations`, lowering it only
    /// if this `(program, iterations)` pair is not already resident — the
    /// cache is what lets consecutive figure generators share one session
    /// without re-lowering the suite.
    pub fn pin_program(&mut self, program: PerfectProgram, iterations: u64) -> TraceId {
        if let Some(id) = self.find_program(program, iterations) {
            self.stats.pin_hits += 1;
            return id;
        }
        let id = self.pin_trace(&program.workload().trace(iterations));
        self.programs.push(((program, iterations), id));
        id
    }

    /// Pins several PERFECT workloads, lowering the missing ones in
    /// parallel (lowering is a third to half of a single simulation's
    /// cost, so the suite-wide generators lower all seven programs at
    /// once).  Only programs that were resident *before* this call count
    /// as `pin_hits`.
    pub fn pin_programs(&mut self, programs: &[PerfectProgram], iterations: u64) -> Vec<TraceId> {
        let mut missing: Vec<PerfectProgram> = Vec::new();
        for &program in programs {
            if self.find_program(program, iterations).is_some() {
                self.stats.pin_hits += 1;
            } else if !missing.contains(&program) {
                missing.push(program);
            }
        }
        let lowered: Vec<(PerfectProgram, LoweredTrace)> = missing
            .into_par_iter()
            .map(|program| {
                (
                    program,
                    LoweredTrace::new(&program.workload().trace(iterations)),
                )
            })
            .collect();
        for (program, lowered) in lowered {
            let id = self.pin_lowered(lowered);
            self.programs.push(((program, iterations), id));
        }
        programs
            .iter()
            .map(|&p| {
                self.find_program(p, iterations)
                    .expect("every requested program was just pinned")
            })
            .collect()
    }

    /// The pinned lowering behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this session.
    #[must_use]
    pub fn lowered(&self, id: TraceId) -> &LoweredTrace {
        &self.traces[id.0]
    }

    /// Runs a grid of `(machine, window, MD)` points against one pinned
    /// program, returning execution times in point order (batched API).
    #[must_use]
    pub fn sweep(&mut self, id: TraceId, points: &[(Machine, WindowSpec, Cycle)]) -> Vec<Cycle> {
        let full: Vec<SweepPoint> = points
            .iter()
            .map(|&(machine, window, md)| (id, machine, window, md))
            .collect();
        self.sweep_multi(&full)
    }

    /// Runs a grid of points addressing any mix of pinned programs,
    /// returning execution times in point order (batched API).
    ///
    /// # Panics
    ///
    /// Panics if a point names a `TraceId` not pinned in this session.
    #[must_use]
    pub fn sweep_multi(&mut self, points: &[SweepPoint]) -> Vec<Cycle> {
        self.stats.batched_points += points.len() as u64;
        let traces = &self.traces;
        let scalar_mode = self.scalar_mode;
        points
            .par_iter()
            .map(|&(id, machine, window, md)| {
                traces[id.0].machine_cycles_in(machine, window, md, scalar_mode)
            })
            .collect()
    }

    /// Submits a grid of points and returns immediately with a stream that
    /// yields each result as its worker finishes (completion order, no
    /// full-grid barrier).  The jobs hold `Arc`s to the pinned programs, so
    /// the stream is independent of the session borrow.
    ///
    /// # Panics
    ///
    /// Panics if a point names a `TraceId` not pinned in this session.
    #[must_use]
    pub fn stream(&mut self, points: &[SweepPoint]) -> SweepStream {
        self.stats.streamed_points += points.len() as u64;
        let (tx, rx) = mpsc::channel();
        for (index, &point) in points.iter().enumerate() {
            let (id, machine, window, md) = point;
            let trace = Arc::clone(&self.traces[id.0]);
            let scalar_mode = self.scalar_mode;
            let tx = tx.clone();
            rayon::spawn(move || {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    trace.machine_cycles_in(machine, window, md, scalar_mode)
                }));
                // A send can only fail if the stream was dropped early;
                // the remaining points are simply discarded then.
                let _ = tx.send(match result {
                    Ok(cycles) => Ok(StreamedPoint {
                        index,
                        point,
                        cycles,
                    }),
                    Err(payload) => Err(payload),
                });
            });
        }
        SweepStream {
            rx,
            remaining: points.len(),
            total: points.len(),
        }
    }

    /// Streams a grid and invokes `deliver` for every finished point (in
    /// completion order) — the callback flavour of [`SweepSession::stream`].
    pub fn stream_with(&mut self, points: &[SweepPoint], mut deliver: impl FnMut(StreamedPoint)) {
        for point in self.stream(points) {
            deliver(point);
        }
    }
}

/// One finished sweep point delivered by a [`SweepStream`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamedPoint {
    /// The point's index in the submitted grid.
    pub index: usize,
    /// The point itself.
    pub point: SweepPoint,
    /// The simulated (or analytic) execution time.
    pub cycles: Cycle,
}

/// An in-flight streamed sweep: iterating yields each point as its worker
/// finishes.  Dropping the stream early abandons undelivered results (the
/// in-flight simulations still complete on the workers).
#[derive(Debug)]
pub struct SweepStream {
    rx: mpsc::Receiver<Result<StreamedPoint, Box<dyn std::any::Any + Send>>>,
    remaining: usize,
    total: usize,
}

impl SweepStream {
    /// The number of points in the submitted grid.
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Drains the stream into grid order: element `i` is the execution
    /// time of submitted point `i`, exactly what the batched API returns.
    #[must_use]
    pub fn collect_ordered(self) -> Vec<Cycle> {
        let mut cycles = vec![0; self.total];
        for point in self {
            cycles[point.index] = point.cycles;
        }
        cycles
    }
}

impl Iterator for SweepStream {
    type Item = StreamedPoint;

    fn next(&mut self) -> Option<StreamedPoint> {
        if self.remaining == 0 {
            return None;
        }
        match self.rx.recv().expect("sweep workers disappeared") {
            Ok(point) => {
                self.remaining -= 1;
                Some(point)
            }
            // A point's simulation panicked on its worker: re-throw here,
            // on the thread consuming the stream.
            Err(payload) => resume_unwind(payload),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_workloads::stream;

    fn grid() -> Vec<(Machine, WindowSpec, Cycle)> {
        vec![
            (Machine::Decoupled, WindowSpec::Entries(16), 60),
            (Machine::Superscalar, WindowSpec::Entries(32), 20),
            (Machine::Scalar, WindowSpec::Entries(1), 60),
            (Machine::Decoupled, WindowSpec::Unlimited, 0),
        ]
    }

    #[test]
    fn batched_streamed_and_one_shot_results_agree() {
        let trace = stream().trace(120);
        let lowered = LoweredTrace::new(&trace);
        let one_shot = lowered.sweep(&grid());

        let mut session = SweepSession::new();
        let id = session.pin_trace(&trace);
        let batched = session.sweep(id, &grid());
        let full: Vec<SweepPoint> = grid().iter().map(|&(m, w, md)| (id, m, w, md)).collect();
        let streamed = session.stream(&full).collect_ordered();

        assert_eq!(batched, one_shot);
        assert_eq!(streamed, one_shot);
        assert_eq!(session.stats().batched_points, 4);
        assert_eq!(session.stats().streamed_points, 4);
    }

    #[test]
    fn stream_delivers_every_point_exactly_once() {
        let mut session = SweepSession::new();
        let id = session.pin_trace(&stream().trace(100));
        let full: Vec<SweepPoint> = grid().iter().map(|&(m, w, md)| (id, m, w, md)).collect();
        let mut seen = vec![false; full.len()];
        session.stream_with(&full, |point| {
            assert!(!seen[point.index], "point delivered twice");
            seen[point.index] = true;
            assert_eq!(point.point, full[point.index]);
            assert!(point.cycles > 0);
        });
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn pin_program_caches_by_program_and_iterations() {
        let mut session = SweepSession::new();
        let a = session.pin_program(PerfectProgram::Trfd, 50);
        let b = session.pin_program(PerfectProgram::Trfd, 50);
        let c = session.pin_program(PerfectProgram::Trfd, 60);
        let d = session.pin_program(PerfectProgram::Mdg, 50);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(session.len(), 3);
        assert_eq!(session.stats().pin_hits, 1);
        let e = session.pin_programs(&[PerfectProgram::Trfd, PerfectProgram::Qcd], 50);
        assert_eq!(e[0], a);
        assert_eq!(session.len(), 4);
    }

    #[test]
    fn simulated_scalar_sessions_match_analytic_ones() {
        let trace = stream().trace(90);
        let points = vec![
            (Machine::Scalar, WindowSpec::Entries(1), 0),
            (Machine::Scalar, WindowSpec::Entries(1), 35),
            (Machine::Scalar, WindowSpec::Entries(1), 60),
        ];
        let mut analytic = SweepSession::new();
        let a = analytic.pin_trace(&trace);
        let mut simulated = SweepSession::with_scalar_mode(ScalarMode::Simulated);
        let s = simulated.pin_trace(&trace);
        assert_eq!(analytic.sweep(a, &points), simulated.sweep(s, &points));
    }

    #[test]
    fn dropping_a_stream_early_is_clean() {
        let mut session = SweepSession::new();
        let id = session.pin_trace(&stream().trace(80));
        let full: Vec<SweepPoint> = grid().iter().map(|&(m, w, md)| (id, m, w, md)).collect();
        let mut stream = session.stream(&full);
        let first = stream.next().expect("at least one point");
        assert!(first.cycles > 0);
        drop(stream);
        // The session stays fully usable.
        assert_eq!(session.sweep(id, &grid()).len(), 4);
    }
}
