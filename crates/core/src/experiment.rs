//! Convenience layer for running the paper's machines over workloads.

use crate::{SweepSession, WindowCurve};
use dae_isa::Cycle;
use dae_machines::{
    DecoupledMachine, DmConfig, ScalarConfig, ScalarReference, SuperscalarMachine, SwsmConfig,
};
use dae_trace::{
    expand_swsm, lower_scalar, partition, ContentHasher, DecoupledProgram, ScalarProgram,
    SwsmProgram, Trace, TraceHash,
};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A window size: a finite number of entries or the paper's idealised
/// unlimited window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum WindowSpec {
    /// A finite window with this many entries (per unit, for the DM).
    Entries(usize),
    /// An unlimited window.
    Unlimited,
}

impl WindowSpec {
    /// The finite size, if any.
    #[must_use]
    pub fn entries(self) -> Option<usize> {
        match self {
            WindowSpec::Entries(n) => Some(n),
            WindowSpec::Unlimited => None,
        }
    }
}

impl fmt::Display for WindowSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WindowSpec::Entries(n) => write!(f, "{n}"),
            WindowSpec::Unlimited => write!(f, "inf"),
        }
    }
}

/// Which machine to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Machine {
    /// The access decoupled machine.
    Decoupled,
    /// The single-window superscalar machine.
    Superscalar,
    /// The scalar reference.
    Scalar,
}

impl fmt::Display for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Machine::Decoupled => "DM",
            Machine::Superscalar => "SWSM",
            Machine::Scalar => "scalar",
        };
        f.write_str(name)
    }
}

/// How sweep points evaluate the scalar reference.
///
/// The analytic formula (`base + loads × MD`) is exact — the simulated
/// machine matches it bit for bit on every trace (pinned by property tests
/// on random kernels and the whole PERFECT suite) — so figures default to
/// the O(1) evaluation.  Ablations that perturb the machine model beyond
/// what the formula describes (functional-unit limits, caches) switch a
/// sweep session to [`ScalarMode::Simulated`], which runs the lowered
/// scalar program through the pooled simulator like the other machines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScalarMode {
    /// Evaluate the affine analytic formula, O(1) per point.
    #[default]
    Analytic,
    /// Simulate the lowered scalar program over pooled buffers.
    Simulated,
}

/// The DM configuration used by the experiments for a given window and
/// memory differential (the paper's issue widths, everything else
/// idealised).
#[must_use]
pub fn dm_config(window: WindowSpec, memory_differential: Cycle) -> DmConfig {
    match window {
        WindowSpec::Entries(w) => DmConfig::paper(w, memory_differential),
        WindowSpec::Unlimited => DmConfig::paper_unlimited(memory_differential),
    }
}

/// The SWSM configuration used by the experiments for a given window and
/// memory differential.
#[must_use]
pub fn swsm_config(window: WindowSpec, memory_differential: Cycle) -> SwsmConfig {
    match window {
        WindowSpec::Entries(w) => SwsmConfig::paper(w, memory_differential),
        WindowSpec::Unlimited => SwsmConfig::paper_unlimited(memory_differential),
    }
}

/// A trace lowered once for every machine, so a sweep can run many
/// (window, memory differential) points without re-partitioning or
/// re-expanding per point.
///
/// Lowering is a third to half of a single simulation's cost, and the
/// figure sweeps run dozens of points per trace; every experiment generator
/// builds one of these per program and shares it across its (parallel)
/// points.  The lowered streams and wakeup lists inside the programs are
/// reference counted, so cloning into each run is O(1).
#[derive(Debug, Clone)]
pub struct LoweredTrace {
    trace_instructions: usize,
    dm_program: DecoupledProgram,
    swsm_program: SwsmProgram,
    /// The scalar lowering, kept so sessions can *simulate* the scalar
    /// machine (pooled, like the other machines) when an ablation needs
    /// more than the analytic formula.
    scalar_program: ScalarProgram,
    /// `scalar analytic time = scalar_base + loads × MD`.
    scalar_base: Cycle,
    scalar_loads: Cycle,
    /// Structural digest of every lowered stream plus the analytic scalar
    /// coefficients — the process-independent identity the sweep cache
    /// keys on (see [`LoweredTrace::content_hash`]).
    content_hash: TraceHash,
}

impl LoweredTrace {
    /// Lowers `trace` for the DM (the paper's tagged partition), the SWSM
    /// and the scalar reference.
    #[must_use]
    pub fn new(trace: &Trace) -> Self {
        // The scalar analytic time is affine in the memory differential by
        // construction, so two probes of the one authoritative formula
        // (`ScalarReference::analytic_cycles`) recover its coefficients —
        // no second copy of the latency accounting exists here.
        let scalar_base = ScalarReference::new(ScalarConfig::new(0)).analytic_cycles(trace);
        let scalar_loads =
            ScalarReference::new(ScalarConfig::new(1)).analytic_cycles(trace) - scalar_base;
        let dm_program = partition(trace, dae_trace::PartitionMode::Tagged);
        let swsm_program = expand_swsm(trace);
        let scalar_program = lower_scalar(trace);
        // Canonical digest over everything the simulators read: the three
        // lowered streams (wakeup lists are derived from them), the trace
        // length and the analytic scalar coefficients.  Computed once per
        // lowering; two lowerings of the same trace — in any process —
        // digest identically, which is what lets cache entries survive
        // re-lowering and restarts.
        let mut hasher = ContentHasher::new();
        hasher.word(trace.len() as u64);
        hasher.stream(&dm_program.au);
        hasher.stream(&dm_program.du);
        hasher.stream(&swsm_program.insts);
        hasher.stream(&scalar_program.insts);
        hasher.word(scalar_base);
        hasher.word(scalar_loads);
        let content_hash = hasher.finish();
        LoweredTrace {
            trace_instructions: trace.len(),
            dm_program,
            swsm_program,
            scalar_program,
            scalar_base,
            scalar_loads,
            content_hash,
        }
    }

    /// Architectural instructions in the source trace.
    #[must_use]
    pub fn trace_instructions(&self) -> usize {
        self.trace_instructions
    }

    /// The structural content hash of this lowering.
    ///
    /// Stable across re-lowering and across processes: any two
    /// [`LoweredTrace`]s built from the same trace return the same hash,
    /// and the cache differential suite pins hash-equal ⇒ bit-for-bit
    /// equal sweep results.  [`SweepSession`] keys its result cache on
    /// this (not on the pinned `Arc`), which is what makes cached figures
    /// survive re-pinning and on-disk persistence meaningful.
    #[must_use]
    pub fn content_hash(&self) -> TraceHash {
        self.content_hash
    }

    /// Execution time of the DM at one sweep point.
    ///
    /// Runs over the calling thread's recycled simulation buffers
    /// ([`dae_machines::with_thread_pool`]): sweep points executed back to
    /// back — or by the same parallel worker — rebuild nothing, which
    /// removes the ~5% per-point construction cost the figure sweeps used
    /// to pay.
    #[must_use]
    pub fn dm_cycles(&self, window: WindowSpec, memory_differential: Cycle) -> Cycle {
        let machine = DecoupledMachine::new(dm_config(window, memory_differential));
        dae_machines::with_thread_pool(|pool| {
            machine
                .run_pooled(&self.dm_program, self.trace_instructions, pool)
                .cycles()
        })
    }

    /// Execution time of the SWSM at one sweep point (pooled, like
    /// [`LoweredTrace::dm_cycles`]).
    #[must_use]
    pub fn swsm_cycles(&self, window: WindowSpec, memory_differential: Cycle) -> Cycle {
        let machine = SuperscalarMachine::new(swsm_config(window, memory_differential));
        dae_machines::with_thread_pool(|pool| {
            machine
                .run_pooled(&self.swsm_program, self.trace_instructions, pool)
                .cycles()
        })
    }

    /// Analytic execution time of the scalar reference (O(1) per point).
    #[must_use]
    pub fn scalar_cycles(&self, memory_differential: Cycle) -> Cycle {
        self.scalar_base + self.scalar_loads * memory_differential
    }

    /// Execution time of the *simulated* scalar reference at one sweep
    /// point, over pooled buffers like [`LoweredTrace::dm_cycles`].
    ///
    /// Bit-for-bit equal to [`LoweredTrace::scalar_cycles`] (pinned by the
    /// scalar property tests); exists so sweep sessions can run ablations
    /// whose machine perturbations the analytic formula does not model.
    #[must_use]
    pub fn scalar_cycles_simulated(&self, memory_differential: Cycle) -> Cycle {
        let machine = ScalarReference::new(ScalarConfig::new(memory_differential));
        dae_machines::with_thread_pool(|pool| {
            machine
                .run_pooled(&self.scalar_program, self.trace_instructions, pool)
                .cycles()
        })
    }

    /// Execution time of the scalar reference under `mode`.
    #[must_use]
    pub fn scalar_cycles_in(&self, memory_differential: Cycle, mode: ScalarMode) -> Cycle {
        match mode {
            ScalarMode::Analytic => self.scalar_cycles(memory_differential),
            ScalarMode::Simulated => self.scalar_cycles_simulated(memory_differential),
        }
    }

    /// Execution time of `machine` at one sweep point.
    #[must_use]
    pub fn machine_cycles(
        &self,
        machine: Machine,
        window: WindowSpec,
        memory_differential: Cycle,
    ) -> Cycle {
        self.machine_cycles_in(machine, window, memory_differential, ScalarMode::Analytic)
    }

    /// [`LoweredTrace::machine_cycles`] with an explicit scalar-evaluation
    /// mode (what sweep sessions dispatch through).
    #[must_use]
    pub fn machine_cycles_in(
        &self,
        machine: Machine,
        window: WindowSpec,
        memory_differential: Cycle,
        scalar_mode: ScalarMode,
    ) -> Cycle {
        match machine {
            Machine::Decoupled => self.dm_cycles(window, memory_differential),
            Machine::Superscalar => self.swsm_cycles(window, memory_differential),
            Machine::Scalar => self.scalar_cycles_in(memory_differential, scalar_mode),
        }
    }

    /// Runs a list of `(machine, window, MD)` sweep points in parallel,
    /// returning their execution times in point order.
    ///
    /// One-shot convenience over a throwaway [`SweepSession`]; callers
    /// sweeping the same programs repeatedly should hold a session instead,
    /// which also offers a streaming (per-point delivery) API.
    #[must_use]
    pub fn sweep(&self, points: &[(Machine, WindowSpec, Cycle)]) -> Vec<Cycle> {
        let mut session = SweepSession::new();
        let id = session.pin_lowered(self.clone());
        session.sweep(id, points)
    }

    /// Sweeps the SWSM over `windows` at a fixed memory differential (the
    /// points run in parallel).
    #[must_use]
    pub fn swsm_window_curve(&self, windows: &[usize], memory_differential: Cycle) -> WindowCurve {
        let points: Vec<_> = windows
            .iter()
            .map(|&w| {
                (
                    Machine::Superscalar,
                    WindowSpec::Entries(w),
                    memory_differential,
                )
            })
            .collect();
        WindowCurve::new(windows.iter().copied().zip(self.sweep(&points)).collect())
    }

    /// Sweeps the DM over `windows` at a fixed memory differential (the
    /// points run in parallel).
    #[must_use]
    pub fn dm_window_curve(&self, windows: &[usize], memory_differential: Cycle) -> WindowCurve {
        let points: Vec<_> = windows
            .iter()
            .map(|&w| {
                (
                    Machine::Decoupled,
                    WindowSpec::Entries(w),
                    memory_differential,
                )
            })
            .collect();
        WindowCurve::new(windows.iter().copied().zip(self.sweep(&points)).collect())
    }
}

/// Execution time of the DM on `trace`.
#[must_use]
pub fn dm_cycles(trace: &Trace, window: WindowSpec, memory_differential: Cycle) -> Cycle {
    DecoupledMachine::new(dm_config(window, memory_differential))
        .run(trace)
        .cycles()
}

/// Execution time of the SWSM on `trace`.
#[must_use]
pub fn swsm_cycles(trace: &Trace, window: WindowSpec, memory_differential: Cycle) -> Cycle {
    SuperscalarMachine::new(swsm_config(window, memory_differential))
        .run(trace)
        .cycles()
}

/// Execution time of the scalar reference on `trace` (computed analytically;
/// the simulated machine agrees — see the `dae-machines` tests).
#[must_use]
pub fn scalar_cycles(trace: &Trace, memory_differential: Cycle) -> Cycle {
    ScalarReference::new(ScalarConfig::new(memory_differential)).analytic_cycles(trace)
}

/// Execution time of `machine` on `trace` (windows are ignored by the scalar
/// reference).
#[must_use]
pub fn machine_cycles(
    machine: Machine,
    trace: &Trace,
    window: WindowSpec,
    memory_differential: Cycle,
) -> Cycle {
    match machine {
        Machine::Decoupled => dm_cycles(trace, window, memory_differential),
        Machine::Superscalar => swsm_cycles(trace, window, memory_differential),
        Machine::Scalar => scalar_cycles(trace, memory_differential),
    }
}

/// Sweeps the SWSM over `windows` at a fixed memory differential, producing
/// the curve used by the equivalent-window-ratio experiments.  The trace is
/// lowered once and the points run in parallel.
#[must_use]
pub fn swsm_window_curve(
    trace: &Trace,
    windows: &[usize],
    memory_differential: Cycle,
) -> WindowCurve {
    LoweredTrace::new(trace).swsm_window_curve(windows, memory_differential)
}

/// Sweeps the DM over `windows` at a fixed memory differential (lowered
/// once, points in parallel).
#[must_use]
pub fn dm_window_curve(
    trace: &Trace,
    windows: &[usize],
    memory_differential: Cycle,
) -> WindowCurve {
    LoweredTrace::new(trace).dm_window_curve(windows, memory_differential)
}

/// Shared knobs of the experiment generators: how long the traces are and
/// which grids are swept.  The defaults trade a few percent of fidelity for
/// run time; `ExperimentConfig::paper_scale` uses the workloads' full
/// default traces.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Iterations each workload kernel is expanded for.
    pub iterations: u64,
    /// The DM window sizes swept by the figures (per unit).
    pub dm_windows: Vec<usize>,
    /// The SWSM window sizes swept by the figures.
    pub swsm_windows: Vec<usize>,
    /// The SWSM window grid searched when computing equivalent window
    /// ratios (extends well beyond the plotted range so large ratios can be
    /// resolved).
    pub equivalence_search_windows: Vec<usize>,
    /// The memory differentials swept by the equivalent-window figures.
    pub memory_differentials: Vec<Cycle>,
}

impl ExperimentConfig {
    /// A fast configuration suitable for tests and continuous integration.
    #[must_use]
    pub fn quick() -> Self {
        ExperimentConfig {
            iterations: 300,
            dm_windows: vec![8, 16, 32, 48, 64, 96, 128],
            swsm_windows: vec![8, 16, 32, 48, 64, 96, 128],
            equivalence_search_windows: vec![8, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512],
            memory_differentials: vec![0, 20, 40, 60],
        }
    }

    /// The configuration used to regenerate the paper's tables and figures.
    #[must_use]
    pub fn paper_scale() -> Self {
        ExperimentConfig {
            iterations: 1200,
            dm_windows: vec![4, 8, 16, 24, 32, 48, 64, 80, 96, 128],
            swsm_windows: vec![4, 8, 16, 24, 32, 48, 64, 80, 96, 128],
            equivalence_search_windows: vec![
                8, 16, 24, 32, 48, 64, 80, 96, 128, 160, 192, 256, 320, 384, 448, 512, 640, 768,
            ],
            memory_differentials: vec![0, 10, 20, 30, 40, 50, 60],
        }
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig::quick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_workloads::stream;

    fn small_trace() -> Trace {
        stream().trace(150)
    }

    #[test]
    fn window_spec_display_and_entries() {
        assert_eq!(format!("{}", WindowSpec::Entries(32)), "32");
        assert_eq!(format!("{}", WindowSpec::Unlimited), "inf");
        assert_eq!(WindowSpec::Entries(32).entries(), Some(32));
        assert_eq!(WindowSpec::Unlimited.entries(), None);
    }

    #[test]
    fn machine_cycles_dispatches_to_each_machine() {
        let trace = small_trace();
        let dm = machine_cycles(Machine::Decoupled, &trace, WindowSpec::Entries(32), 20);
        let swsm = machine_cycles(Machine::Superscalar, &trace, WindowSpec::Entries(32), 20);
        let scalar = machine_cycles(Machine::Scalar, &trace, WindowSpec::Entries(32), 20);
        assert!(dm > 0 && swsm > 0 && scalar > 0);
        assert!(dm < scalar);
        assert!(swsm < scalar);
        assert_eq!(dm, dm_cycles(&trace, WindowSpec::Entries(32), 20));
        assert_eq!(swsm, swsm_cycles(&trace, WindowSpec::Entries(32), 20));
        assert_eq!(scalar, scalar_cycles(&trace, 20));
    }

    #[test]
    fn curves_are_monotone_for_streaming_code() {
        let trace = small_trace();
        for curve in [
            dm_window_curve(&trace, &[8, 16, 32, 64], 60),
            swsm_window_curve(&trace, &[8, 16, 32, 64], 60),
        ] {
            for pair in curve.points().windows(2) {
                assert!(
                    pair[1].1 <= pair[0].1,
                    "bigger windows should not be slower"
                );
            }
        }
    }

    #[test]
    fn unlimited_windows_are_at_least_as_fast_as_finite_ones() {
        let trace = small_trace();
        assert!(
            dm_cycles(&trace, WindowSpec::Unlimited, 60)
                <= dm_cycles(&trace, WindowSpec::Entries(16), 60)
        );
        assert!(
            swsm_cycles(&trace, WindowSpec::Unlimited, 60)
                <= swsm_cycles(&trace, WindowSpec::Entries(16), 60)
        );
    }

    #[test]
    fn experiment_configs_have_sane_grids() {
        for cfg in [ExperimentConfig::quick(), ExperimentConfig::paper_scale()] {
            assert!(cfg.iterations > 0);
            assert!(!cfg.dm_windows.is_empty());
            assert!(!cfg.memory_differentials.is_empty());
            assert!(cfg.memory_differentials.contains(&0));
            assert!(cfg.memory_differentials.contains(&60));
            assert!(
                cfg.equivalence_search_windows.last().unwrap() >= cfg.dm_windows.last().unwrap()
            );
        }
    }
}
