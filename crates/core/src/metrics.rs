//! The metrics of the paper: speedup, latency-hiding effectiveness and the
//! equivalent window ratio.

use dae_isa::Cycle;
use serde::{Deserialize, Serialize};

/// `speedup = T_reference / T_machine`.
///
/// The reference is the scalar machine at the *same* memory differential
/// (see DESIGN.md for the baseline discussion); comparisons between the DM
/// and the SWSM are independent of this common denominator.
#[must_use]
pub fn speedup(reference_cycles: Cycle, machine_cycles: Cycle) -> f64 {
    if machine_cycles == 0 {
        0.0
    } else {
        reference_cycles as f64 / machine_cycles as f64
    }
}

/// `LHE = T_perfect / T_actual` — the latency-hiding effectiveness of §5 of
/// the paper, where `T_perfect` is the execution time of the same machine
/// when every memory access perceives a single-cycle latency (memory
/// differential of zero).
#[must_use]
pub fn latency_hiding_effectiveness(perfect_cycles: Cycle, actual_cycles: Cycle) -> f64 {
    if actual_cycles == 0 {
        0.0
    } else {
        perfect_cycles as f64 / actual_cycles as f64
    }
}

/// An execution-time-versus-window-size curve for one machine at one memory
/// differential, used to answer "what window size would this machine need to
/// match a given execution time?".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowCurve {
    /// `(window size, execution cycles)` points, sorted by window size.
    points: Vec<(usize, Cycle)>,
}

impl WindowCurve {
    /// Builds a curve from measured points (sorted internally).
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or contains duplicate window sizes.
    #[must_use]
    pub fn new(mut points: Vec<(usize, Cycle)>) -> Self {
        assert!(
            !points.is_empty(),
            "a window curve needs at least one point"
        );
        points.sort_by_key(|&(w, _)| w);
        for pair in points.windows(2) {
            assert_ne!(pair[0].0, pair[1].0, "duplicate window size {}", pair[0].0);
        }
        WindowCurve { points }
    }

    /// The measured points, sorted by window size.
    #[must_use]
    pub fn points(&self) -> &[(usize, Cycle)] {
        &self.points
    }

    /// The execution time at a measured window size, if present.
    #[must_use]
    pub fn cycles_at(&self, window: usize) -> Option<Cycle> {
        self.points
            .iter()
            .find(|&&(w, _)| w == window)
            .map(|&(_, c)| c)
    }

    /// The smallest (interpolated) window size at which the machine achieves
    /// an execution time of at most `target` cycles.
    ///
    /// Execution time is non-increasing in window size for the machines
    /// modelled here, so the answer is found by scanning for the first
    /// measured point at or below the target and linearly interpolating
    /// between it and its predecessor.  Returns `None` if even the largest
    /// measured window is slower than the target.
    #[must_use]
    pub fn window_for_cycles(&self, target: Cycle) -> Option<f64> {
        let mut previous: Option<(usize, Cycle)> = None;
        for &(window, cycles) in &self.points {
            if cycles <= target {
                return Some(match previous {
                    None => window as f64,
                    Some((prev_window, prev_cycles)) => {
                        if prev_cycles == cycles {
                            window as f64
                        } else {
                            // Linear interpolation on the (cycles -> window)
                            // segment between the bracketing points.
                            let span = (prev_cycles - cycles) as f64;
                            let excess = (prev_cycles.saturating_sub(target)) as f64;
                            prev_window as f64 + (window - prev_window) as f64 * (excess / span)
                        }
                    }
                });
            }
            previous = Some((window, cycles));
        }
        None
    }
}

/// The equivalent window ratio of figures 7–9: the window size the SWSM
/// needs to match the DM's execution time at `dm_window`, divided by
/// `dm_window`.  `None` when no window in the measured SWSM sweep is fast
/// enough.
#[must_use]
pub fn equivalent_window_ratio(
    dm_window: usize,
    dm_cycles: Cycle,
    swsm_curve: &WindowCurve,
) -> Option<f64> {
    if dm_window == 0 {
        return None;
    }
    swsm_curve
        .window_for_cycles(dm_cycles)
        .map(|w| w / dm_window as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_and_lhe_are_simple_ratios() {
        assert!((speedup(1000, 250) - 4.0).abs() < 1e-12);
        assert_eq!(speedup(1000, 0), 0.0);
        assert!((latency_hiding_effectiveness(400, 800) - 0.5).abs() < 1e-12);
        assert_eq!(latency_hiding_effectiveness(400, 0), 0.0);
    }

    #[test]
    fn window_curve_sorts_and_looks_up_points() {
        let curve = WindowCurve::new(vec![(64, 100), (8, 900), (32, 300)]);
        assert_eq!(curve.points()[0], (8, 900));
        assert_eq!(curve.cycles_at(32), Some(300));
        assert_eq!(curve.cycles_at(16), None);
    }

    #[test]
    fn window_for_cycles_interpolates_between_points() {
        let curve = WindowCurve::new(vec![(10, 1000), (20, 500), (40, 250)]);
        // Exactly at a measured point.
        assert_eq!(curve.window_for_cycles(500), Some(20.0));
        // Halfway between 1000 and 500 cycles -> halfway between 10 and 20.
        let w = curve.window_for_cycles(750).unwrap();
        assert!((w - 15.0).abs() < 1e-9, "w = {w}");
        // Faster than the best point: unreachable.
        assert_eq!(curve.window_for_cycles(100), None);
        // Slower than the worst point: the smallest window suffices.
        assert_eq!(curve.window_for_cycles(2000), Some(10.0));
    }

    #[test]
    fn equivalent_window_ratio_divides_by_the_dm_window() {
        let curve = WindowCurve::new(vec![(16, 800), (32, 400), (64, 200)]);
        let ratio = equivalent_window_ratio(16, 400, &curve).unwrap();
        assert!((ratio - 2.0).abs() < 1e-9);
        assert_eq!(equivalent_window_ratio(0, 400, &curve), None);
        assert_eq!(equivalent_window_ratio(16, 100, &curve), None);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_curves_are_rejected() {
        let _ = WindowCurve::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "duplicate window size")]
    fn duplicate_windows_are_rejected() {
        let _ = WindowCurve::new(vec![(8, 100), (8, 200)]);
    }
}
