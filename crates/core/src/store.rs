//! Versioned on-disk persistence for the sweep-result cache.
//!
//! A resident `dae-serve` should not lose its warm cache to a restart:
//! with `--cache-dir` the session's [`SweepCache`](crate::SweepSession)
//! entries — keyed by the structural
//! [`TraceHash`](dae_trace::TraceHash), so they are meaningful in any
//! process — are appended to a log here as points finish and reloaded on
//! startup, letting a relaunched server answer a previously-served grid
//! without simulating a single point.
//!
//! ## Format
//!
//! One file, `sweep-cache.log`, inside the configured directory:
//!
//! ```text
//! header:  "DAECACHE" (8 bytes) · version u32 LE · endianness tag u32 LE
//! records: 8 × u64 LE each —
//!          hash_hi · hash_lo · machine · window · md · cycles ·
//!          cost_nanos · checksum
//! ```
//!
//! `machine` is 0/1/2 (DM / SWSM / scalar), `window` is the entry count or
//! `u64::MAX` for an unlimited window, and `checksum` is the Fx hash of
//! the record's first seven words.  Records are fixed-size and
//! self-checking, so loading is a single forward scan.
//!
//! ## Failure policy
//!
//! Loading never panics and never refuses to start the server.  A
//! missing file is an empty store; an unrecognized header (wrong magic,
//! version or endianness) abandons the file's contents; a record that
//! fails its checksum — a torn append, a truncated tail, flipped bits —
//! abandons the suffix from that record on.  Every abandonment is counted
//! (surfaced as `corrupt_records` in
//! [`CacheStats`](crate::CacheStats)) and the file is rewritten to the
//! valid prefix so subsequent appends land on a clean boundary.  This
//! module is designated in `dae-lint`'s panic-path rule: `.unwrap()`,
//! `.expect(…)`, `panic!` and `unreachable!` are banned here outright.

use crate::{Machine, WindowSpec};
use dae_isa::Cycle;
use dae_mem::FxHasher;
use dae_trace::TraceHash;
use std::fs::{self, File, OpenOptions};
use std::hash::Hasher;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// File magic: identifies a sweep-cache log.
const MAGIC: [u8; 8] = *b"DAECACHE";
/// Schema version; bumped on any layout change.  A mismatch abandons the
/// file (old figures are cheap to recompute; silent misreads are not).
const VERSION: u32 = 1;
/// Endianness canary: written little-endian, so a file produced on (or
/// mangled into) a different byte order fails the header check instead of
/// yielding garbage records.
const ENDIAN_TAG: u32 = 0x0102_0304;
const HEADER_LEN: usize = 16;
const RECORD_WORDS: usize = 8;
const RECORD_LEN: usize = RECORD_WORDS * 8;
/// The `window` word for [`WindowSpec::Unlimited`].
const WINDOW_UNLIMITED: u64 = u64::MAX;
/// The log's file name inside the store directory.
const STORE_FILE: &str = "sweep-cache.log";

/// One persisted cache entry: the structural key, the figure, and the
/// measured simulation cost the eviction policy weighs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreRecord {
    /// Structural content hash of the lowering.
    pub hash: TraceHash,
    /// The simulated machine.
    pub machine: Machine,
    /// The window configuration.
    pub window: WindowSpec,
    /// The memory differential.
    pub md: Cycle,
    /// The cached execution time.
    pub cycles: Cycle,
    /// Measured simulation time of the entry in nanoseconds (the
    /// cost-aware eviction weight).
    pub cost_nanos: u64,
}

impl StoreRecord {
    /// The record's canonical word encoding, checksum included.
    fn words(&self) -> [u64; RECORD_WORDS] {
        let (hash_hi, hash_lo) = self.hash.words();
        let machine = match self.machine {
            Machine::Decoupled => 0,
            Machine::Superscalar => 1,
            Machine::Scalar => 2,
        };
        let window = match self.window {
            WindowSpec::Entries(n) => n as u64,
            WindowSpec::Unlimited => WINDOW_UNLIMITED,
        };
        let mut words = [
            hash_hi,
            hash_lo,
            machine,
            window,
            self.md,
            self.cycles,
            self.cost_nanos,
            0,
        ];
        words[RECORD_WORDS - 1] = checksum(&words[..RECORD_WORDS - 1]);
        words
    }

    /// Decodes a record, rejecting checksum mismatches and out-of-range
    /// discriminants.
    fn from_words(words: &[u64; RECORD_WORDS]) -> Option<StoreRecord> {
        if checksum(&words[..RECORD_WORDS - 1]) != words[RECORD_WORDS - 1] {
            return None;
        }
        let machine = match words[2] {
            0 => Machine::Decoupled,
            1 => Machine::Superscalar,
            2 => Machine::Scalar,
            _ => return None,
        };
        let window = if words[3] == WINDOW_UNLIMITED {
            WindowSpec::Unlimited
        } else {
            WindowSpec::Entries(usize::try_from(words[3]).ok()?)
        };
        Some(StoreRecord {
            hash: TraceHash::from_words(words[0], words[1]),
            machine,
            window,
            md: words[4],
            cycles: words[5],
            cost_nanos: words[6],
        })
    }
}

/// What [`CacheStore::open`] recovered from disk.
#[derive(Debug)]
pub struct StoreLoad {
    /// Every intact record, in append order (later records for the same
    /// key supersede earlier ones when replayed into a map).
    pub records: Vec<StoreRecord>,
    /// Abandoned segments: 1 for an unrecognized header, plus 1 for a
    /// corrupt or truncated record suffix.  Zero on a clean load.
    pub corrupt_records: u64,
}

/// An open, append-positioned sweep-cache log.
#[derive(Debug)]
pub struct CacheStore {
    path: PathBuf,
    file: File,
}

impl CacheStore {
    /// The on-disk location of the log for a store rooted at `dir`
    /// (exposed so tests and tooling can inspect — or corrupt — it).
    #[must_use]
    pub fn location(dir: &Path) -> PathBuf {
        dir.join(STORE_FILE)
    }

    /// Opens the store in `dir` (creating the directory and an empty log
    /// as needed), returning the handle and everything intact on disk.
    ///
    /// If the file carried a corrupt suffix or an unrecognized header it
    /// is rewritten to the valid prefix, so the returned handle always
    /// appends on a clean record boundary.
    pub fn open(dir: &Path) -> io::Result<(CacheStore, StoreLoad)> {
        fs::create_dir_all(dir)?;
        let path = CacheStore::location(dir);
        let (load, clean) = match fs::read(&path) {
            Ok(bytes) => parse(&bytes),
            Err(error) if error.kind() == io::ErrorKind::NotFound => (
                StoreLoad {
                    records: Vec::new(),
                    corrupt_records: 0,
                },
                false,
            ),
            Err(error) => return Err(error),
        };
        let file = if clean {
            OpenOptions::new().append(true).open(&path)?
        } else {
            rewrite(&path, &load.records)?
        };
        Ok((CacheStore { path, file }, load))
    }

    /// Appends one record to the log.
    pub fn append(&mut self, record: &StoreRecord) -> io::Result<()> {
        let mut bytes = Vec::with_capacity(RECORD_LEN);
        encode_into(record, &mut bytes);
        self.file.write_all(&bytes)
    }

    /// Rewrites the log to exactly `records` (tmp file + rename, so a
    /// crash mid-compaction leaves the previous log intact).  Called with
    /// the resident set on shutdown — dropping entries that were
    /// superseded or evicted — and with an empty set on `clear`.
    pub fn compact(&mut self, records: &[StoreRecord]) -> io::Result<()> {
        self.file = rewrite(&self.path, records)?;
        Ok(())
    }
}

/// Fx checksum over a record's payload words.
fn checksum(words: &[u64]) -> u64 {
    let mut hasher = FxHasher::default();
    for &word in words {
        hasher.write_u64(word);
    }
    hasher.finish()
}

/// Serializes one record onto the end of `out`.
fn encode_into(record: &StoreRecord, out: &mut Vec<u8>) {
    for word in record.words() {
        out.extend_from_slice(&word.to_le_bytes());
    }
}

/// Reads the little-endian u64 at word `index` of `chunk` (zero-padded;
/// callers only pass full records).
fn word_at(chunk: &[u8], index: usize) -> u64 {
    let mut bytes = [0u8; 8];
    for (offset, byte) in bytes.iter_mut().enumerate() {
        *byte = match chunk.get(index * 8 + offset) {
            Some(&value) => value,
            None => 0,
        };
    }
    u64::from_le_bytes(bytes)
}

/// Parses a log image.  Returns the recovered load and whether the file
/// was wholly clean (header valid, no abandoned suffix) — if not, the
/// caller rewrites the file to the valid prefix.
fn parse(bytes: &[u8]) -> (StoreLoad, bool) {
    let header_ok = bytes.len() >= HEADER_LEN
        && bytes[..8] == MAGIC
        && word_at(&bytes[8..12], 0) as u32 == VERSION
        && word_at(&bytes[12..16], 0) as u32 == ENDIAN_TAG;
    if !header_ok {
        return (
            StoreLoad {
                records: Vec::new(),
                corrupt_records: 1,
            },
            false,
        );
    }
    let body = &bytes[HEADER_LEN..];
    let mut records = Vec::with_capacity(body.len() / RECORD_LEN);
    let mut corrupt_records = 0u64;
    let mut offset = 0;
    while offset + RECORD_LEN <= body.len() {
        let chunk = &body[offset..offset + RECORD_LEN];
        let mut words = [0u64; RECORD_WORDS];
        for (index, word) in words.iter_mut().enumerate() {
            *word = word_at(chunk, index);
        }
        match StoreRecord::from_words(&words) {
            Some(record) => records.push(record),
            // A failed checksum means the suffix cannot be trusted:
            // abandon it (counted once) rather than resynchronize.
            None => {
                corrupt_records += 1;
                offset = body.len();
                break;
            }
        }
        offset += RECORD_LEN;
    }
    if offset < body.len() {
        // Truncated tail: a partial record from an interrupted append.
        corrupt_records += 1;
    }
    let clean = corrupt_records == 0;
    (
        StoreLoad {
            records,
            corrupt_records,
        },
        clean,
    )
}

/// Writes `header + records` to a temporary file and renames it over
/// `path`, returning an append-positioned handle to the new file.
fn rewrite(path: &Path, records: &[StoreRecord]) -> io::Result<File> {
    let tmp = path.with_extension("log.tmp");
    let mut bytes = Vec::with_capacity(HEADER_LEN + records.len() * RECORD_LEN);
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&VERSION.to_le_bytes());
    bytes.extend_from_slice(&ENDIAN_TAG.to_le_bytes());
    for record in records {
        encode_into(record, &mut bytes);
    }
    fs::write(&tmp, &bytes)?;
    fs::rename(&tmp, path)?;
    OpenOptions::new().append(true).open(path)
}
