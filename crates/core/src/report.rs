//! Plain-text and CSV table formatting for experiment output.

use std::fmt;

/// A simple column-aligned text table that can also be exported as CSV.
///
/// Used by the table/figure generators so that every experiment binary
/// prints its data in the same shape the paper reports it (rows of a table,
/// series of a figure) and can also be piped into plotting tools.
///
/// # Example
///
/// ```
/// use dae_core::TextTable;
///
/// let mut table = TextTable::new(vec!["program".into(), "LHE".into()]);
/// table.push_row(vec!["FLO52Q".into(), "0.86".into()]);
/// table.push_row(vec!["TRACK".into(), "0.21".into()]);
/// let text = table.to_string();
/// assert!(text.contains("FLO52Q"));
/// assert_eq!(table.to_csv().lines().count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: Vec<String>) -> Self {
        TextTable {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.  Rows shorter than the header are padded with empty
    /// cells; longer rows are allowed (extra cells get minimal width).
    pub fn push_row(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// The number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as comma-separated values (headers first).  Cells
    /// containing commas or quotes are quoted.
    #[must_use]
    pub fn to_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    fn column_widths(&self) -> Vec<usize> {
        let columns = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        widths
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.column_widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>width$}"));
            }
            writeln!(f, "{}", line.trim_end())
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a floating point value the way the paper's tables do (three
/// significant decimals, `-` for missing values).
#[must_use]
pub fn fmt_metric(value: Option<f64>) -> String {
    match value {
        Some(v) => format!("{v:.3}"),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TextTable {
        let mut t = TextTable::new(vec!["a".into(), "bb".into(), "ccc".into()]);
        t.push_row(vec!["1".into(), "22".into(), "333".into()]);
        t.push_row(vec!["long-cell".into(), "2".into(), "3".into()]);
        t
    }

    #[test]
    fn display_aligns_columns() {
        let text = sample().to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with('-'));
        assert!(lines[2].contains("333"));
    }

    #[test]
    fn csv_has_header_plus_rows() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "a,bb,ccc");
        assert_eq!(lines[1], "1,22,333");
    }

    #[test]
    fn csv_escapes_awkward_cells() {
        let mut t = TextTable::new(vec!["x".into()]);
        t.push_row(vec!["a,b".into()]);
        t.push_row(vec!["say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(vec!["a".into(), "b".into()]);
        t.push_row(vec!["only".into()]);
        let text = t.to_string();
        assert!(text.contains("only"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn metric_formatting() {
        assert_eq!(fmt_metric(Some(0.12345)), "0.123");
        assert_eq!(fmt_metric(None), "-");
    }
}
