//! Generators for every table and figure of the paper's evaluation.
//!
//! Each generator returns a plain data structure (so tests and benches can
//! assert on the numbers) that renders itself both as an aligned text table
//! (`Display`) and as CSV, in the same rows/series shape the paper reports.
//!
//! | paper artefact | generator |
//! |---|---|
//! | Table 1 (latency-hiding effectiveness, MD = 60) | [`table1`] |
//! | Figures 4–6 (speedup vs window size, MD ∈ {0, 60}) | [`speedup_figure`] |
//! | Figures 7–9 (equivalent window ratio vs DM window size) | [`equivalent_window_figure`] |
//! | §5 claim (SWSM needs a 2–4x larger window at MD = 60) | [`window_ratio_claim`] |

use crate::{
    equivalent_window_ratio, fmt_metric, latency_hiding_effectiveness, speedup, ExperimentConfig,
    Machine, SweepPoint, SweepSession, TextTable, WindowCurve, WindowSpec,
};
use dae_isa::Cycle;
use dae_workloads::PerfectProgram;
use serde::{Deserialize, Serialize};
use std::fmt;

// Every generator runs over a [`SweepSession`]: the public one-shot entry
// points (`table1`, `speedup_figure`, …) build a throwaway session, and the
// `_in` variants accept a caller-held session so consecutive generators
// share pinned lowerings and the warm per-worker simulation pools — the
// examples and the CI figure smoke run that way.  Lowering up front and
// sharing it across points is what turns the sweeps into pure simulation
// work.

// ---------------------------------------------------------------------------
// Table 1 — latency hiding effectiveness
// ---------------------------------------------------------------------------

/// One row of Table 1: a program's latency-hiding effectiveness across DM
/// window sizes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// The program.
    pub program: PerfectProgram,
    /// `(window, LHE)` in the same order as [`Table1::windows`].
    pub lhe: Vec<(WindowSpec, f64)>,
}

/// The reproduction of Table 1 of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1 {
    /// The memory differential the table was measured at (60 in the paper).
    pub memory_differential: Cycle,
    /// The window sizes of the columns.
    pub windows: Vec<WindowSpec>,
    /// One row per PERFECT program, in the paper's order.
    pub rows: Vec<Table1Row>,
}

/// Regenerates Table 1: the DM's latency-hiding effectiveness
/// (`T(MD=0) / T(MD=memory_differential)`) for all seven programs across
/// window sizes including the unlimited window.
#[must_use]
pub fn table1(config: &ExperimentConfig, memory_differential: Cycle) -> Table1 {
    table1_in(&mut SweepSession::new(), config, memory_differential)
}

/// [`table1`] over a caller-held session: the seven programs pin (or are
/// found already pinned) in `session` and the grid runs on its warm pools.
#[must_use]
pub fn table1_in(
    session: &mut SweepSession,
    config: &ExperimentConfig,
    memory_differential: Cycle,
) -> Table1 {
    let mut windows: Vec<WindowSpec> = config
        .dm_windows
        .iter()
        .map(|&w| WindowSpec::Entries(w))
        .collect();
    windows.push(WindowSpec::Unlimited);

    let ids = session.pin_programs(&PerfectProgram::ALL, config.iterations);

    // One flat parallel sweep: every (program, window) at MD = 0 and at the
    // table's memory differential.
    let mut points = Vec::with_capacity(ids.len() * windows.len() * 2);
    for &id in &ids {
        for &window in &windows {
            points.push((id, Machine::Decoupled, window, 0));
            points.push((id, Machine::Decoupled, window, memory_differential));
        }
    }
    let cycles = session.sweep_multi(&points);

    let mut results = cycles.chunks_exact(2);
    let rows = PerfectProgram::ALL
        .iter()
        .map(|&program| {
            let lhe = windows
                .iter()
                .map(|&window| {
                    let pair = results.next().expect("one result pair per point");
                    (window, latency_hiding_effectiveness(pair[0], pair[1]))
                })
                .collect();
            Table1Row { program, lhe }
        })
        .collect();

    Table1 {
        memory_differential,
        windows,
        rows,
    }
}

impl Table1 {
    /// The LHE of `program` at `window`, if measured.
    #[must_use]
    pub fn lhe(&self, program: PerfectProgram, window: WindowSpec) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.program == program)
            .and_then(|r| r.lhe.iter().find(|(w, _)| *w == window))
            .map(|&(_, v)| v)
    }

    /// Renders the table in the paper's layout.
    #[must_use]
    pub fn to_table(&self) -> TextTable {
        let mut headers = vec!["Prog".to_string()];
        headers.extend(self.windows.iter().map(|w| format!("w={w}")));
        let mut table = TextTable::new(headers);
        for row in &self.rows {
            let mut cells = vec![row.program.name().to_string()];
            cells.extend(row.lhe.iter().map(|&(_, v)| fmt_metric(Some(v))));
            table.push_row(cells);
        }
        table
    }

    /// CSV rendering (one row per program).
    #[must_use]
    pub fn to_csv(&self) -> String {
        self.to_table().to_csv()
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 1: latency hiding effectiveness of the DM at MD = {} cycles",
            self.memory_differential
        )?;
        write!(f, "{}", self.to_table())
    }
}

// ---------------------------------------------------------------------------
// Figures 4-6 — speedup vs window size
// ---------------------------------------------------------------------------

/// One curve of a speedup figure: a machine at a memory differential.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedupSeries {
    /// The machine the curve belongs to.
    pub machine: Machine,
    /// The memory differential of the curve.
    pub memory_differential: Cycle,
    /// `(window size, speedup over the scalar reference)` points.
    pub points: Vec<(usize, f64)>,
}

/// The reproduction of one of figures 4–6: speedup against window size for
/// the DM and the SWSM at MD = 0 and MD = 60.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedupFigure {
    /// The program the figure is plotted for.
    pub program: PerfectProgram,
    /// The memory differentials plotted (the paper uses 0 and 60).
    pub memory_differentials: Vec<Cycle>,
    /// The four curves (DM / SWSM at each memory differential).
    pub series: Vec<SpeedupSeries>,
}

/// Regenerates the speedup-vs-window-size figure for `program` (figure 4 for
/// FLO52Q, 5 for MDG, 6 for TRACK).
#[must_use]
pub fn speedup_figure(
    program: PerfectProgram,
    config: &ExperimentConfig,
    memory_differentials: &[Cycle],
) -> SpeedupFigure {
    speedup_figure_in(
        &mut SweepSession::new(),
        program,
        config,
        memory_differentials,
    )
}

/// [`speedup_figure`] over a caller-held session.  The grid runs through
/// the session's *streaming* API — each point is delivered as its worker
/// finishes and scattered back into grid order — so this generator also
/// exercises the no-barrier path end to end.
#[must_use]
pub fn speedup_figure_in(
    session: &mut SweepSession,
    program: PerfectProgram,
    config: &ExperimentConfig,
    memory_differentials: &[Cycle],
) -> SpeedupFigure {
    let id = session.pin_program(program, config.iterations);

    // Flatten every (MD, machine, window) point into one streamed sweep.
    let mut sweep: Vec<SweepPoint> = Vec::new();
    for &md in memory_differentials {
        for machine in [Machine::Decoupled, Machine::Superscalar] {
            let windows = match machine {
                Machine::Decoupled => &config.dm_windows,
                _ => &config.swsm_windows,
            };
            for &w in windows {
                sweep.push((id, machine, WindowSpec::Entries(w), md));
            }
        }
    }
    let cycles = session.stream(&sweep).collect_ordered();

    let scalar_mode = session.scalar_mode();
    let lowered = session.lowered(id);
    let mut series = Vec::new();
    let mut cursor = cycles.into_iter();
    for &md in memory_differentials {
        let reference = lowered.scalar_cycles_in(md, scalar_mode);
        for machine in [Machine::Decoupled, Machine::Superscalar] {
            let windows = match machine {
                Machine::Decoupled => &config.dm_windows,
                _ => &config.swsm_windows,
            };
            let points = windows
                .iter()
                .map(|&w| {
                    let cycles = cursor.next().expect("one result per sweep point");
                    (w, speedup(reference, cycles))
                })
                .collect();
            series.push(SpeedupSeries {
                machine,
                memory_differential: md,
                points,
            });
        }
    }
    SpeedupFigure {
        program,
        memory_differentials: memory_differentials.to_vec(),
        series,
    }
}

impl SpeedupFigure {
    /// The series for a machine at a memory differential.
    #[must_use]
    pub fn series_for(
        &self,
        machine: Machine,
        memory_differential: Cycle,
    ) -> Option<&SpeedupSeries> {
        self.series
            .iter()
            .find(|s| s.machine == machine && s.memory_differential == memory_differential)
    }

    /// The smallest window size at which the SWSM's speedup reaches the DM's
    /// at the same window size, for the given memory differential (the
    /// "cut-off point" discussed in §5 of the paper); `None` when the DM
    /// stays ahead over the whole sweep.
    #[must_use]
    pub fn crossover_window(&self, memory_differential: Cycle) -> Option<usize> {
        let dm = self.series_for(Machine::Decoupled, memory_differential)?;
        let swsm = self.series_for(Machine::Superscalar, memory_differential)?;
        for &(w, dm_speedup) in &dm.points {
            if let Some(&(_, sw_speedup)) = swsm.points.iter().find(|&&(sw, _)| sw == w) {
                if sw_speedup >= dm_speedup {
                    return Some(w);
                }
            }
        }
        None
    }

    /// Renders the figure data as one row per window size with a column per
    /// series, mirroring the paper's plots.
    #[must_use]
    pub fn to_table(&self) -> TextTable {
        let mut headers = vec!["window".to_string()];
        for s in &self.series {
            headers.push(format!("{} md={}", s.machine, s.memory_differential));
        }
        let mut table = TextTable::new(headers);
        let windows: Vec<usize> = self
            .series
            .first()
            .map_or_else(Vec::new, |s| s.points.iter().map(|&(w, _)| w).collect());
        for (row_idx, window) in windows.iter().enumerate() {
            let mut cells = vec![window.to_string()];
            for s in &self.series {
                cells.push(
                    s.points
                        .get(row_idx)
                        .map_or_else(|| "-".to_string(), |&(_, v)| format!("{v:.2}")),
                );
            }
            table.push_row(cells);
        }
        table
    }

    /// CSV rendering.
    #[must_use]
    pub fn to_csv(&self) -> String {
        self.to_table().to_csv()
    }
}

impl fmt::Display for SpeedupFigure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Speedup vs window size for {} (reference: scalar machine at the same MD)",
            self.program
        )?;
        write!(f, "{}", self.to_table())
    }
}

// ---------------------------------------------------------------------------
// Figures 7-9 — equivalent window ratio
// ---------------------------------------------------------------------------

/// One curve of an equivalent-window-ratio figure: one memory differential.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EwrSeries {
    /// The memory differential of the curve.
    pub memory_differential: Cycle,
    /// `(DM window size, ratio)`; `None` when no SWSM window in the search
    /// grid matches the DM's execution time.
    pub points: Vec<(usize, Option<f64>)>,
}

/// The reproduction of one of figures 7–9: the SWSM window size needed for
/// performance equivalent to the DM, as a multiple of the DM window size,
/// for a range of memory differentials.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EwrFigure {
    /// The program the figure is plotted for.
    pub program: PerfectProgram,
    /// One curve per memory differential.
    pub series: Vec<EwrSeries>,
}

/// Regenerates the equivalent-window-ratio figure for `program` (figure 7
/// for FLO52Q, 8 for MDG, 9 for TRACK).
#[must_use]
pub fn equivalent_window_figure(program: PerfectProgram, config: &ExperimentConfig) -> EwrFigure {
    equivalent_window_figure_in(&mut SweepSession::new(), program, config)
}

/// [`equivalent_window_figure`] over a caller-held session.
#[must_use]
pub fn equivalent_window_figure_in(
    session: &mut SweepSession,
    program: PerfectProgram,
    config: &ExperimentConfig,
) -> EwrFigure {
    let id = session.pin_program(program, config.iterations);

    // One parallel sweep covering, per memory differential, the SWSM search
    // grid and the DM windows.
    let mut sweep: Vec<SweepPoint> = Vec::new();
    for &md in &config.memory_differentials {
        for &w in &config.equivalence_search_windows {
            sweep.push((id, Machine::Superscalar, WindowSpec::Entries(w), md));
        }
        for &w in &config.dm_windows {
            sweep.push((id, Machine::Decoupled, WindowSpec::Entries(w), md));
        }
    }
    let cycles = session.sweep_multi(&sweep);

    let mut series = Vec::new();
    let mut cursor = cycles.into_iter();
    for &md in &config.memory_differentials {
        let swsm_curve = WindowCurve::new(
            config
                .equivalence_search_windows
                .iter()
                .map(|&w| (w, cursor.next().expect("one result per sweep point")))
                .collect(),
        );
        let points = config
            .dm_windows
            .iter()
            .map(|&w| {
                let dm = cursor.next().expect("one result per sweep point");
                (w, equivalent_window_ratio(w, dm, &swsm_curve))
            })
            .collect();
        series.push(EwrSeries {
            memory_differential: md,
            points,
        });
    }
    EwrFigure { program, series }
}

impl EwrFigure {
    /// The ratio at a DM window size and memory differential, if resolved.
    #[must_use]
    pub fn ratio(&self, dm_window: usize, memory_differential: Cycle) -> Option<f64> {
        self.series
            .iter()
            .find(|s| s.memory_differential == memory_differential)
            .and_then(|s| s.points.iter().find(|&&(w, _)| w == dm_window))
            .and_then(|&(_, r)| r)
    }

    /// Renders the figure data as one row per DM window size with one column
    /// per memory differential.
    #[must_use]
    pub fn to_table(&self) -> TextTable {
        let mut headers = vec!["dm window".to_string()];
        for s in &self.series {
            headers.push(format!("md={}", s.memory_differential));
        }
        let mut table = TextTable::new(headers);
        let windows: Vec<usize> = self
            .series
            .first()
            .map_or_else(Vec::new, |s| s.points.iter().map(|&(w, _)| w).collect());
        for (row_idx, window) in windows.iter().enumerate() {
            let mut cells = vec![window.to_string()];
            for s in &self.series {
                cells.push(fmt_metric(s.points.get(row_idx).and_then(|&(_, r)| r)));
            }
            table.push_row(cells);
        }
        table
    }

    /// CSV rendering.
    #[must_use]
    pub fn to_csv(&self) -> String {
        self.to_table().to_csv()
    }
}

impl fmt::Display for EwrFigure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Equivalent window ratio (SWSM window / DM window for equal performance) for {}",
            self.program
        )?;
        write!(f, "{}", self.to_table())
    }
}

// ---------------------------------------------------------------------------
// §5 claim — the SWSM needs a 2-4x larger window at MD = 60
// ---------------------------------------------------------------------------

/// The equivalent-window ratios at a realistic DM window size for the whole
/// suite (the paper's headline claim in §5/§6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowRatioClaim {
    /// The DM window size examined (the paper discusses 32–64).
    pub dm_window: usize,
    /// The memory differential examined (60 in the paper).
    pub memory_differential: Cycle,
    /// One entry per PERFECT program.
    pub ratios: Vec<(PerfectProgram, Option<f64>)>,
}

/// Measures the equivalent window ratio at `dm_window` and MD =
/// `memory_differential` for every program of the suite.
#[must_use]
pub fn window_ratio_claim(
    config: &ExperimentConfig,
    dm_window: usize,
    memory_differential: Cycle,
) -> WindowRatioClaim {
    window_ratio_claim_in(
        &mut SweepSession::new(),
        config,
        dm_window,
        memory_differential,
    )
}

/// [`window_ratio_claim`] over a caller-held session (sharing a session
/// with [`table1_in`] reuses all seven pinned lowerings).
#[must_use]
pub fn window_ratio_claim_in(
    session: &mut SweepSession,
    config: &ExperimentConfig,
    dm_window: usize,
    memory_differential: Cycle,
) -> WindowRatioClaim {
    let ids = session.pin_programs(&PerfectProgram::ALL, config.iterations);

    // Per program: one DM point plus the SWSM search grid, all in one flat
    // parallel sweep.
    let stride = 1 + config.equivalence_search_windows.len();
    let mut points: Vec<SweepPoint> = Vec::with_capacity(ids.len() * stride);
    for &id in &ids {
        points.push((
            id,
            Machine::Decoupled,
            WindowSpec::Entries(dm_window),
            memory_differential,
        ));
        for &w in &config.equivalence_search_windows {
            points.push((
                id,
                Machine::Superscalar,
                WindowSpec::Entries(w),
                memory_differential,
            ));
        }
    }
    let cycles = session.sweep_multi(&points);

    let ratios = PerfectProgram::ALL
        .iter()
        .zip(cycles.chunks_exact(stride))
        .map(|(&program, chunk)| {
            let dm = chunk[0];
            let curve = WindowCurve::new(
                config
                    .equivalence_search_windows
                    .iter()
                    .copied()
                    .zip(chunk[1..].iter().copied())
                    .collect(),
            );
            (program, equivalent_window_ratio(dm_window, dm, &curve))
        })
        .collect();
    WindowRatioClaim {
        dm_window,
        memory_differential,
        ratios,
    }
}

impl WindowRatioClaim {
    /// The smallest and largest resolved ratios.
    #[must_use]
    pub fn range(&self) -> Option<(f64, f64)> {
        let resolved: Vec<f64> = self.ratios.iter().filter_map(|&(_, r)| r).collect();
        if resolved.is_empty() {
            None
        } else {
            let min = resolved.iter().copied().fold(f64::INFINITY, f64::min);
            let max = resolved.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            Some((min, max))
        }
    }

    /// Renders the claim as a table.
    #[must_use]
    pub fn to_table(&self) -> TextTable {
        let mut table = TextTable::new(vec!["program".to_string(), "ratio".to_string()]);
        for &(program, ratio) in &self.ratios {
            table.push_row(vec![program.name().to_string(), fmt_metric(ratio)]);
        }
        table
    }
}

impl fmt::Display for WindowRatioClaim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Equivalent SWSM window as a multiple of a {}-entry DM window at MD = {}",
            self.dm_window, self.memory_differential
        )?;
        write!(f, "{}", self.to_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            iterations: 120,
            dm_windows: vec![8, 32, 64],
            swsm_windows: vec![8, 32, 64],
            equivalence_search_windows: vec![8, 16, 32, 64, 128, 256],
            memory_differentials: vec![0, 60],
        }
    }

    #[test]
    fn table1_has_a_row_per_program_and_a_column_per_window() {
        let table = table1(&tiny_config(), 60);
        assert_eq!(table.rows.len(), 7);
        assert_eq!(table.windows.len(), 4);
        for row in &table.rows {
            assert_eq!(row.lhe.len(), 4);
            for &(_, lhe) in &row.lhe {
                assert!(lhe > 0.0 && lhe <= 1.0 + 1e-9, "{}: {lhe}", row.program);
            }
        }
        let text = format!("{table}");
        assert!(text.contains("TRFD") && text.contains("w=inf"));
        assert!(table.to_csv().lines().count() == 8);
        assert!(table
            .lhe(PerfectProgram::Track, WindowSpec::Unlimited)
            .is_some());
    }

    #[test]
    fn speedup_figures_have_four_series_and_positive_speedups() {
        let fig = speedup_figure(PerfectProgram::Track, &tiny_config(), &[0, 60]);
        assert_eq!(fig.series.len(), 4);
        for series in &fig.series {
            assert_eq!(series.points.len(), 3);
            for &(_, s) in &series.points {
                assert!(s > 0.5, "{:?}", series.machine);
            }
        }
        assert!(fig.series_for(Machine::Decoupled, 60).is_some());
        assert!(format!("{fig}").contains("TRACK"));
        assert!(fig.to_csv().contains("DM md=0"));
    }

    #[test]
    fn dm_beats_swsm_at_md_60_for_every_measured_window() {
        let fig = speedup_figure(PerfectProgram::Flo52q, &tiny_config(), &[60]);
        let dm = fig.series_for(Machine::Decoupled, 60).unwrap();
        let swsm = fig.series_for(Machine::Superscalar, 60).unwrap();
        for (&(w, d), &(_, s)) in dm.points.iter().zip(&swsm.points) {
            assert!(d > s, "window {w}: DM {d:.2} vs SWSM {s:.2}");
        }
        assert_eq!(fig.crossover_window(60), None);
    }

    #[test]
    fn equivalent_window_figure_resolves_ratios_above_one_at_md_60() {
        let fig = equivalent_window_figure(PerfectProgram::Mdg, &tiny_config());
        let ratio = fig.ratio(32, 60).expect("ratio resolved");
        assert!(ratio > 1.0, "ratio {ratio}");
        assert!(format!("{fig}").contains("md=60"));
        assert_eq!(fig.series.len(), 2);
    }

    #[test]
    fn generators_share_a_session_without_relowering() {
        let cfg = tiny_config();
        let mut session = SweepSession::new();
        let table = table1_in(&mut session, &cfg, 60);
        let pinned_after_table1 = session.len();
        assert_eq!(
            session.stats().pin_hits,
            0,
            "a cold session has nothing to hit"
        );
        let claim = window_ratio_claim_in(&mut session, &cfg, 32, 60);
        assert_eq!(
            session.len(),
            pinned_after_table1,
            "the claim generator must reuse the suite table1 pinned"
        );
        assert_eq!(
            session.stats().pin_hits,
            7,
            "all seven of the claim's programs must come from the cache"
        );
        let fig = speedup_figure_in(&mut session, PerfectProgram::Track, &cfg, &[60]);
        // Shared-session results are identical to the one-shot entry points.
        assert_eq!(table, table1(&cfg, 60));
        assert_eq!(claim, window_ratio_claim(&cfg, 32, 60));
        assert_eq!(fig, speedup_figure(PerfectProgram::Track, &cfg, &[60]));
    }

    #[test]
    fn window_ratio_claim_reports_every_program() {
        let cfg = ExperimentConfig {
            iterations: 100,
            ..tiny_config()
        };
        let claim = window_ratio_claim(&cfg, 32, 60);
        assert_eq!(claim.ratios.len(), 7);
        let (min, max) = claim.range().expect("some ratios resolve");
        assert!(min >= 1.0, "min ratio {min}");
        assert!(max < 16.0, "max ratio {max}");
        assert!(format!("{claim}").contains("TRACK"));
    }
}
