//! # dae-core — the experiment API of the reproduction
//!
//! This crate ties the workload models, the trace lowerings and the machine
//! simulators together into the experiments of Jones & Topham's MICRO-30
//! paper:
//!
//! * [`metrics`](crate::speedup) — speedup, latency-hiding effectiveness and
//!   the equivalent window ratio (with interpolation over window sweeps);
//! * [`experiment`](crate::ExperimentConfig) — one-call simulation helpers
//!   (`dm_cycles`, `swsm_cycles`, `scalar_cycles`, window sweeps) and the
//!   shared sweep grids;
//! * [`experiments`](crate::table1) — generators for every table and figure
//!   of the paper's evaluation: [`table1`], [`speedup_figure`] (figures
//!   4–6), [`equivalent_window_figure`] (figures 7–9) and
//!   [`window_ratio_claim`] (the §5 headline claim), each with a `_in`
//!   variant running over a shared session;
//! * [`session`](crate::SweepSession) — persistent sweep sessions: lowered
//!   programs pinned once over the long-lived worker pool, grids executed
//!   batched or streamed (per-point delivery, no full-grid barrier), with
//!   finished points cached by `(content hash, machine, window, MD)` —
//!   bounded by cost-aware LRU eviction, persistable to a versioned
//!   on-disk store ([`CacheStore`]) — and per-stream cancellation
//!   ([`CancelToken`]);
//! * [`report`](crate::TextTable) — aligned text tables and CSV export so
//!   the experiment binaries print exactly the rows/series the paper
//!   reports.
//!
//! ## Example
//!
//! ```
//! use dae_core::{dm_cycles, swsm_cycles, scalar_cycles, speedup, WindowSpec};
//! use dae_workloads::PerfectProgram;
//!
//! let trace = PerfectProgram::Track.workload().trace(100);
//! let reference = scalar_cycles(&trace, 60);
//! let dm = speedup(reference, dm_cycles(&trace, WindowSpec::Entries(32), 60));
//! let swsm = speedup(reference, swsm_cycles(&trace, WindowSpec::Entries(32), 60));
//! // At a realistic window and a large memory differential the decoupled
//! // machine is ahead (the paper's central result).
//! assert!(dm > swsm);
//! ```

mod experiment;
mod experiments;
#[doc(hidden)]
pub mod fault;
mod metrics;
mod placement;
mod report;
mod session;
mod store;

pub use experiment::{
    dm_config, dm_cycles, dm_window_curve, machine_cycles, scalar_cycles, swsm_config, swsm_cycles,
    swsm_window_curve, ExperimentConfig, LoweredTrace, Machine, ScalarMode, WindowSpec,
};
pub use experiments::{
    equivalent_window_figure, equivalent_window_figure_in, speedup_figure, speedup_figure_in,
    table1, table1_in, window_ratio_claim, window_ratio_claim_in, EwrFigure, EwrSeries,
    SpeedupFigure, SpeedupSeries, Table1, Table1Row, WindowRatioClaim,
};
pub use metrics::{equivalent_window_ratio, latency_hiding_effectiveness, speedup, WindowCurve};
pub use placement::{cache_key_digest, SweepCacheKey};
pub use report::{fmt_metric, TextTable};
pub use session::{
    CacheStats, CancelToken, RequestClass, SessionStats, StreamWait, StreamedPoint, SweepEvent,
    SweepPoint, SweepSession, SweepStream, TraceId,
};
pub use store::{CacheStore, StoreLoad, StoreRecord};

/// The structural lowering digest the sweep cache keys on (re-exported
/// from `dae-trace`; see [`LoweredTrace::content_hash`]).
pub use dae_trace::TraceHash;

/// The worker pool's scheduling band for streamed point jobs (re-exported
/// from the vendored pool so servers can classify requests; see
/// [`RequestClass`] and [`SweepSession::stream_classified`]).
pub use rayon::Priority;

/// A convenience prelude re-exporting the types most examples need.
pub mod prelude {
    pub use crate::{
        dm_cycles, equivalent_window_figure, scalar_cycles, speedup, speedup_figure, swsm_cycles,
        table1, window_ratio_claim, ExperimentConfig, Machine, WindowSpec,
    };
    pub use dae_machines::{
        DecoupledMachine, DmConfig, ScalarConfig, ScalarReference, SuperscalarMachine, SwsmConfig,
    };
    pub use dae_workloads::{PerfectProgram, Workload};
}
