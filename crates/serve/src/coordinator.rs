//! The shard coordinator: one wire-protocol front end over N `dae-serve`
//! backends.
//!
//! `dae-serve --coordinator backend1,backend2,…` speaks the *same*
//! newline-delimited protocol as a single server (`docs/PROTOCOL.md`) but
//! owns no session of its own: each accepted grid is split into
//! per-point subrequests, each point is placed on a backend by consistent
//! hashing over its sweep-cache key ([`dae_core::cache_key_digest`] —
//! `TraceHash`, machine, window, MD), and the request-tagged replies are
//! merged back into one client response.  Placement by the cache key is
//! the load-bearing choice: a repeated grid re-lands every repeated point
//! on the backend whose result cache already holds it, so a sharded
//! deployment keeps the single-server warm-cache behaviour per shard.
//!
//! ## Fault model
//!
//! A backend that dies (its data connection drops) or sits on a point
//! past the retry timeout gets its undelivered points re-dispatched to
//! the surviving backends; points whose `point` line already reached the
//! client are settled as delivered.  Every point therefore settles
//! exactly once — delivered, dropped, aborted or failed — and the
//! client's `done` line keeps the protocol invariant
//! `delivered + dropped + aborted + failed == points` through any
//! combination of deaths, retries, cancels and deadlines.  Determinism
//! makes re-dispatch safe: a re-simulated point produces bit-for-bit the
//! cycles the dead backend would have reported.
//!
//! This module is designated in `dae-lint`'s panic-path rule: a malformed
//! backend reply, a dead socket or a poisoned lock must degrade into a
//! counter or a structured error, never a panic.  Lock order: the
//! `pending` routing map and a backend `conn` writer are never held at
//! the same time (collect under one, act under the other).

use crate::protocol::{
    parse_request, parse_response, CacheAction, DeliveryMode, DoneStatus, Request, Response,
    ShutdownMode, SweepRequest, TraceSource,
};
use dae_core::{cache_key_digest, Machine, TraceHash, WindowSpec};
use dae_isa::Cycle;
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, Weak};
use std::time::{Duration, Instant};

/// Ring points per backend.  Enough that removing one backend spreads its
/// keys roughly evenly over the survivors; small enough that building and
/// searching the ring is negligible.
const DEFAULT_VNODES: usize = 64;

/// How long a dispatched, undelivered point may sit on one backend before
/// the watchdog re-dispatches it elsewhere.  Deliberately generous: death
/// detection (the dropped connection) is the fast path, and a false
/// timeout only costs a redundant deterministic simulation.
const DEFAULT_RETRY_TIMEOUT: Duration = Duration::from_secs(30);

/// Watchdog scan period.
const WATCHDOG_POLL: Duration = Duration::from_millis(100);

/// Read timeout on ephemeral control connections (`stats` / `cache` /
/// `shutdown` fan-out), so a wedged backend cannot hang a control verb.
const CONTROL_TIMEOUT: Duration = Duration::from_secs(5);

/// Tuning knobs for a [`Coordinator`].
#[derive(Debug, Clone, Copy)]
pub struct CoordinatorConfig {
    /// Ring points per backend on the consistent-hash ring.
    pub vnodes: usize,
    /// Undelivered points older than this are re-dispatched.
    pub retry_timeout: Duration,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            vnodes: DEFAULT_VNODES,
            retry_timeout: DEFAULT_RETRY_TIMEOUT,
        }
    }
}

/// A consistent-hash ring over `backends` numbered `0..n`.
///
/// Each backend contributes `vnodes` deterministically-placed ring
/// points; a key digest is assigned to the backend owning the first ring
/// point at or after it (wrapping).  Placement is a pure function of
/// `(backends, vnodes, digest)` — every coordinator over the same fleet
/// agrees — and removing a backend moves *only* the keys that lived on
/// it: the ring walk simply skips the dead backend's points, so
/// survivors keep their assignments (the property the partitioner
/// proptest pins).
#[derive(Debug, Clone)]
pub struct Partitioner {
    /// `(ring position, backend)`, sorted by position.
    ring: Vec<(u64, usize)>,
    backends: usize,
}

impl Partitioner {
    /// A ring over `backends` with the default vnode count.
    #[must_use]
    pub fn new(backends: usize) -> Self {
        Partitioner::with_vnodes(backends, DEFAULT_VNODES)
    }

    /// A ring over `backends` with `vnodes` ring points each.
    #[must_use]
    pub fn with_vnodes(backends: usize, vnodes: usize) -> Self {
        let mut ring = Vec::with_capacity(backends.saturating_mul(vnodes));
        for backend in 0..backends {
            for vnode in 0..vnodes {
                ring.push((mix64(((backend as u64) << 32) ^ vnode as u64), backend));
            }
        }
        // Sorting by (position, backend) makes a position collision
        // resolve to the lowest backend on every build — placement stays
        // a pure function of the configuration.
        ring.sort_unstable();
        ring.dedup_by_key(|&mut (position, _)| position);
        Partitioner { ring, backends }
    }

    /// The number of backends the ring was built over.
    #[must_use]
    pub fn backends(&self) -> usize {
        self.backends
    }

    /// The backend owning `digest` with every backend eligible.  `None`
    /// only for an empty ring.
    #[must_use]
    pub fn assign(&self, digest: u64) -> Option<usize> {
        self.assign_among(digest, |_| true)
    }

    /// The backend owning `digest` among the backends `eligible` accepts:
    /// the ring is walked clockwise from the digest's position until an
    /// eligible owner is found.  `None` when no backend is eligible.
    pub fn assign_among(&self, digest: u64, eligible: impl Fn(usize) -> bool) -> Option<usize> {
        if self.ring.is_empty() {
            return None;
        }
        let start = self
            .ring
            .partition_point(|&(position, _)| position < digest);
        for step in 0..self.ring.len() {
            let (_, backend) = self.ring[(start + step) % self.ring.len()];
            if eligible(backend) {
                return Some(backend);
            }
        }
        None
    }
}

/// SplitMix64 finalizer: a deterministic, well-distributed 64-bit mix
/// with no process-dependent state (the ring must be identical in every
/// coordinator over the same fleet).
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One backend of the fleet.
#[derive(Debug)]
struct Backend {
    /// The address subrequests are forwarded to (and control connections
    /// dialled at).
    addr: String,
    /// The write half of the long-lived data connection; `None` once the
    /// backend died (or always, in a detached test coordinator).
    conn: Mutex<Option<TcpStream>>,
    /// Cleared when the data connection drops or a write fails.
    alive: AtomicBool,
}

/// Routing state for one client request: everything a backend reply (or
/// a death sweep) needs to push results back to the request's drainer.
#[derive(Debug)]
struct RequestRoute {
    /// The original client request (re-dispatch rebuilds subrequest lines
    /// from its source / iterations / priority).
    request: SweepRequest,
    /// The structural content hash placement digests are built from.
    hash: TraceHash,
    /// Events to the request's drainer thread.
    tx: mpsc::Sender<CoordEvent>,
    /// Set by client `cancel`, deadline expiry and dead-client cleanup;
    /// once set, reclaimed points settle as dropped instead of
    /// re-dispatching.
    cancelled: AtomicBool,
}

/// One dispatched, unsettled point.
#[derive(Debug)]
struct PendingPoint {
    route: Arc<RequestRoute>,
    /// Index in the client request's canonical grid order.
    index: usize,
    machine: Machine,
    window: WindowSpec,
    md: Cycle,
    /// The backend currently responsible for the point.
    backend: usize,
    /// When the current dispatch was written (watchdog timeout base).
    dispatched: Instant,
    /// The backend's `point` line was forwarded to the drainer; only the
    /// closing `done` (with its `cached` flag) is still outstanding.
    delivered: bool,
    /// A `point … failed:` error message the backend sent ahead of its
    /// `done failed=1` line.
    failure: Option<String>,
    /// A backend to avoid on the next dispatch (the one that just timed
    /// out), unless it is the only survivor.
    avoid: Option<usize>,
}

/// What a point's lifecycle pushes at the request drainer.  Every point
/// produces exactly one *settlement* — `Settled`, `Failed`, `Skipped` or
/// `Aborted` — and at most one `Point` (always before its `Settled`).
#[derive(Debug)]
enum CoordEvent {
    /// A finished point: forward the `point` line (stream) or buffer it
    /// (batch).  Not yet a settlement — the `cached` flag arrives with
    /// the subrequest's `done`.
    Point {
        index: usize,
        machine: Machine,
        window: WindowSpec,
        md: Cycle,
        cycles: Cycle,
    },
    /// A delivered point's subrequest closed; settles the point.
    Settled {
        /// The backend answered the point from its sweep-result cache.
        cached: bool,
    },
    /// The point's simulation failed on a backend (worker panic);
    /// settles the point and produces a client `error` line.
    Failed { index: usize, message: String },
    /// The point was dropped before simulating (cancellation, shutdown,
    /// or no surviving backend under cancel); settles the point.
    Skipped,
    /// The point was cooperatively aborted mid-simulation on a backend;
    /// settles the point.
    Aborted,
}

/// Shared coordinator state: the fleet, the ring, and the subrequest
/// routing map (keyed by coordinator-issued `x<n>` subrequest ids).
#[derive(Debug)]
struct CoordInner {
    backends: Vec<Backend>,
    partitioner: Partitioner,
    /// subrequest id → unsettled point.  The single routing authority:
    /// whoever removes an entry (reply handler, death sweep, watchdog,
    /// failed dispatch) owns its settlement, so a point cannot settle
    /// twice.
    pending: Mutex<HashMap<String, PendingPoint>>,
    /// `(source key, iterations)` → content hash, so placement lowers
    /// each distinct program once.
    hashes: Mutex<HashMap<(String, u64), TraceHash>>,
    next_subid: AtomicU64,
    shutting_down: AtomicBool,
    retry_timeout: Duration,
    // Monotone counters, reported by `stats`.
    forwarded_points: AtomicU64,
    redispatched_points: AtomicU64,
    backend_deaths: AtomicU64,
    backend_reply_errors: AtomicU64,
    coordinator_timeouts: AtomicU64,
}

/// A shard coordinator over N `dae-serve` backends.  See the module docs
/// for the protocol and fault model; [`serve_coordinator_connection`] and
/// [`serve_coordinator_tcp`] are the front ends.
#[derive(Debug)]
pub struct Coordinator {
    inner: Arc<CoordInner>,
}

impl Coordinator {
    /// Connects to every backend address (long-lived data connection plus
    /// a reply-reader thread each) and starts the retry watchdog.
    ///
    /// # Errors
    ///
    /// Fails fast when `addrs` is empty or any backend is unreachable —
    /// a coordinator that starts degraded would silently serve a
    /// differently-partitioned fleet.
    pub fn connect(addrs: &[String]) -> io::Result<Coordinator> {
        Coordinator::connect_with(addrs, CoordinatorConfig::default())
    }

    /// [`Coordinator::connect`] with explicit tuning knobs.
    ///
    /// # Errors
    ///
    /// See [`Coordinator::connect`].
    pub fn connect_with(addrs: &[String], config: CoordinatorConfig) -> io::Result<Coordinator> {
        if addrs.is_empty() {
            return Err(io::Error::other("a coordinator needs at least one backend"));
        }
        let mut backends = Vec::with_capacity(addrs.len());
        let mut read_halves = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let stream = TcpStream::connect(addr)
                .map_err(|e| io::Error::other(format!("cannot connect to backend {addr}: {e}")))?;
            read_halves.push(stream.try_clone()?);
            backends.push(Backend {
                addr: addr.clone(),
                conn: Mutex::new(Some(stream)),
                alive: AtomicBool::new(true),
            });
        }
        let inner = Arc::new(CoordInner {
            partitioner: Partitioner::with_vnodes(backends.len(), config.vnodes.max(1)),
            backends,
            pending: Mutex::new(HashMap::new()),
            hashes: Mutex::new(HashMap::new()),
            next_subid: AtomicU64::new(1),
            shutting_down: AtomicBool::new(false),
            retry_timeout: config.retry_timeout,
            forwarded_points: AtomicU64::new(0),
            redispatched_points: AtomicU64::new(0),
            backend_deaths: AtomicU64::new(0),
            backend_reply_errors: AtomicU64::new(0),
            coordinator_timeouts: AtomicU64::new(0),
        });
        for (index, read_half) in read_halves.into_iter().enumerate() {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || {
                reader_loop(&inner, index, read_half);
            });
        }
        let watchdog = Arc::downgrade(&inner);
        std::thread::spawn(move || {
            watchdog_loop(&watchdog);
        });
        Ok(Coordinator { inner })
    }

    /// A coordinator with `backends` nominal, *unconnected* backends: no
    /// sockets, no reader threads, no watchdog.  The reply parse path
    /// ([`Coordinator::handle_backend_reply`]) is fully exercisable this
    /// way, which is what the protocol fuzz suite does.
    #[must_use]
    pub fn detached(backends: usize) -> Coordinator {
        let backends = (0..backends)
            .map(|index| Backend {
                addr: format!("detached-{index}"),
                conn: Mutex::new(None),
                alive: AtomicBool::new(true),
            })
            .collect::<Vec<_>>();
        Coordinator {
            inner: Arc::new(CoordInner {
                partitioner: Partitioner::new(backends.len()),
                backends,
                pending: Mutex::new(HashMap::new()),
                hashes: Mutex::new(HashMap::new()),
                next_subid: AtomicU64::new(1),
                shutting_down: AtomicBool::new(false),
                retry_timeout: DEFAULT_RETRY_TIMEOUT,
                forwarded_points: AtomicU64::new(0),
                redispatched_points: AtomicU64::new(0),
                backend_deaths: AtomicU64::new(0),
                backend_reply_errors: AtomicU64::new(0),
                coordinator_timeouts: AtomicU64::new(0),
            }),
        }
    }

    /// Feeds one backend reply line through the coordinator's parse and
    /// routing path — the entry point the reader threads use, public so
    /// the fuzz suite can drive it with malformed input.  Never panics:
    /// unparsable lines bump a counter, and parsable lines for unknown
    /// subrequest ids are ignored (they are the expected residue of
    /// re-dispatched or cancelled points).
    pub fn handle_backend_reply(&self, line: &str) {
        self.inner.handle_backend_reply(line);
    }

    /// Whether a `shutdown` request has been accepted.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutting_down.load(Ordering::Acquire)
    }

    /// Points dispatched to backends and not yet settled.
    #[must_use]
    pub fn pending_points(&self) -> usize {
        self.inner.lock_pending().len()
    }

    /// Stops admitting sweeps and forwards the shutdown to every backend
    /// over ephemeral control connections (drain lets their in-flight
    /// subrequests finish; abort cancels them — either way their `done`
    /// lines settle this side's accounting).
    pub fn shutdown(&self, mode: ShutdownMode) {
        self.inner.shutting_down.store(true, Ordering::Release);
        let line = format!("shutdown mode={mode}");
        for backend in &self.inner.backends {
            let _ = control_roundtrip(&backend.addr, &line);
        }
    }

    /// Blocks until every dispatched point has settled or `timeout`
    /// passes; returns whether the routing map drained.
    #[must_use]
    pub fn await_settled(&self, timeout: Duration) -> bool {
        let give_up = Instant::now() + timeout;
        while self.pending_points() > 0 {
            if Instant::now() >= give_up {
                return false;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        true
    }

    /// The aggregated `stats` reply: the coordinator's own counters
    /// (fleet size and health, forwarding and retry traffic) followed by
    /// the per-name *sums* of every live backend's counters (their
    /// per-connection `client_<id>=` fields are dropped — backend-local
    /// connection ids mean nothing fleet-wide).
    #[must_use]
    pub fn stats_fields(&self) -> Vec<(String, u64)> {
        let inner = &self.inner;
        let alive = inner
            .backends
            .iter()
            .filter(|b| b.alive.load(Ordering::Acquire))
            .count();
        let mut fields = vec![
            ("backends_total".to_string(), inner.backends.len() as u64),
            ("backends_alive".to_string(), alive as u64),
            (
                "forwarded_points".to_string(),
                inner.forwarded_points.load(Ordering::Relaxed),
            ),
            (
                "redispatched_points".to_string(),
                inner.redispatched_points.load(Ordering::Relaxed),
            ),
            (
                "backend_deaths".to_string(),
                inner.backend_deaths.load(Ordering::Relaxed),
            ),
            (
                "backend_reply_errors".to_string(),
                inner.backend_reply_errors.load(Ordering::Relaxed),
            ),
            (
                "coordinator_timeouts".to_string(),
                inner.coordinator_timeouts.load(Ordering::Relaxed),
            ),
            (
                "coordinator_pending".to_string(),
                self.pending_points() as u64,
            ),
        ];
        let mut sums: Vec<(String, u64)> = Vec::new();
        for backend in &inner.backends {
            if !backend.alive.load(Ordering::Acquire) {
                continue;
            }
            let Some(reply) = control_roundtrip(&backend.addr, "stats") else {
                continue;
            };
            if let Ok(Response::Stats { fields }) = parse_response(&reply) {
                for (name, value) in fields {
                    if name.starts_with("client_") {
                        continue;
                    }
                    match sums.iter_mut().find(|(n, _)| *n == name) {
                        Some((_, sum)) => *sum += value,
                        None => sums.push((name, value)),
                    }
                }
            }
        }
        fields.extend(sums);
        fields
    }

    /// Fans a `cache` action out to every live backend and merges the
    /// acknowledgements: `entries` is summed across the fleet, `limit` is
    /// the (shared, since the action reached every backend) reported
    /// bound.  An error response when no backend answered.
    #[must_use]
    pub fn cache_action(&self, action: CacheAction) -> Response {
        let line = match action {
            CacheAction::Clear => "cache clear".to_string(),
            CacheAction::Limit(Some(n)) => format!("cache limit={n}"),
            CacheAction::Limit(None) => "cache limit=none".to_string(),
        };
        let mut entries = 0usize;
        let mut limit = None;
        let mut answered = false;
        for backend in &self.inner.backends {
            if !backend.alive.load(Ordering::Acquire) {
                continue;
            }
            let Some(reply) = control_roundtrip(&backend.addr, &line) else {
                continue;
            };
            if let Ok(Response::Cache {
                entries: backend_entries,
                limit: backend_limit,
            }) = parse_response(&reply)
            {
                entries += backend_entries;
                limit = backend_limit;
                answered = true;
            }
        }
        if answered {
            Response::Cache { entries, limit }
        } else {
            Response::Error {
                id: None,
                message: "no backend answered the cache action".to_string(),
            }
        }
    }
}

impl CoordInner {
    /// The routing map, recovering from poisoning (every mutation under
    /// it is transactional: whole-entry inserts and removes).
    fn lock_pending(&self) -> MutexGuard<'_, HashMap<String, PendingPoint>> {
        self.pending.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The placement-hash cache, recovering from poisoning.
    fn lock_hashes(&self) -> MutexGuard<'_, HashMap<(String, u64), TraceHash>> {
        self.hashes.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::Acquire)
    }

    /// The content hash of `(source, iterations)`, lowering on first
    /// sight.  Lowering is pure and can take milliseconds, so it runs
    /// outside the lock; a racing duplicate insert is harmless (equal
    /// keys hash equal).
    fn resolve_hash(&self, source: &TraceSource, iterations: u64) -> Result<TraceHash, String> {
        let key = (source.key(), iterations);
        {
            let hashes = self.lock_hashes();
            if let Some(&hash) = hashes.get(&key) {
                return Ok(hash);
            }
        }
        let trace = source.trace(iterations)?;
        let hash = dae_core::LoweredTrace::new(&trace).content_hash();
        let mut hashes = self.lock_hashes();
        hashes.insert(key, hash);
        Ok(hash)
    }

    /// Writes one protocol line on a backend's data connection.  `false`
    /// means the backend is unreachable (the connection is torn down so
    /// later writers fail fast; the caller escalates to `mark_dead`).
    fn write_backend(&self, backend: usize, line: &str) -> bool {
        let Some(slot) = self.backends.get(backend) else {
            return false;
        };
        let mut conn = slot.conn.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(stream) = conn.as_mut() else {
            return false;
        };
        let ok = stream
            .write_all(line.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .and_then(|()| stream.flush())
            .is_ok();
        if !ok {
            *conn = None;
        }
        ok
    }

    /// Dispatches (or re-dispatches) one point: picks a live backend by
    /// the point's cache-key digest, registers the subrequest in the
    /// routing map, and writes the single-point sweep line.  Falls back
    /// across backends on write failure; settles the point as dropped
    /// under cancellation/shutdown and as failed when no backend
    /// survives.
    fn dispatch(&self, mut point: PendingPoint) {
        loop {
            if point.route.cancelled.load(Ordering::Acquire) || self.is_shutting_down() {
                let _ = point.route.tx.send(CoordEvent::Skipped);
                return;
            }
            let digest = cache_key_digest(point.route.hash, point.machine, point.window, point.md);
            let avoid = point.avoid.take();
            let eligible = |b: usize| {
                self.backends
                    .get(b)
                    .is_some_and(|backend| backend.alive.load(Ordering::Acquire))
            };
            let choice = match avoid {
                Some(avoided) => self
                    .partitioner
                    .assign_among(digest, |b| b != avoided && eligible(b))
                    .or_else(|| self.partitioner.assign_among(digest, eligible)),
                None => self.partitioner.assign_among(digest, eligible),
            };
            let Some(backend) = choice else {
                let _ = point.route.tx.send(CoordEvent::Failed {
                    index: point.index,
                    message: "no backends available".to_string(),
                });
                return;
            };
            let subid = format!("x{}", self.next_subid.fetch_add(1, Ordering::Relaxed));
            let line = subrequest_line(&point, &subid);
            point.backend = backend;
            point.dispatched = Instant::now();
            point.delivered = false;
            point.failure = None;
            {
                let mut pending = self.lock_pending();
                pending.insert(subid.clone(), point);
            }
            if self.write_backend(backend, &line) {
                self.forwarded_points.fetch_add(1, Ordering::Relaxed);
                return;
            }
            // The write failed: reclaim the entry (unless the death sweep
            // raced us to it and already re-dispatched) and try another
            // backend.
            let reclaimed = {
                let mut pending = self.lock_pending();
                pending.remove(&subid)
            };
            self.mark_dead(backend);
            match reclaimed {
                Some(p) => point = p,
                None => return,
            }
        }
    }

    /// Re-dispatches a reclaimed point to a surviving backend.
    fn redispatch(&self, point: PendingPoint) {
        self.redispatched_points.fetch_add(1, Ordering::Relaxed);
        self.dispatch(point);
    }

    /// Declares a backend dead: tears down its connection, then reclaims
    /// and settles (or re-dispatches) every point routed to it.
    fn mark_dead(&self, backend: usize) {
        let Some(slot) = self.backends.get(backend) else {
            return;
        };
        let was_alive = slot.alive.swap(false, Ordering::AcqRel);
        {
            let mut conn = slot.conn.lock().unwrap_or_else(PoisonError::into_inner);
            *conn = None;
        }
        if !was_alive {
            return;
        }
        self.backend_deaths.fetch_add(1, Ordering::Relaxed);
        let swept: Vec<PendingPoint> = {
            let mut pending = self.lock_pending();
            let subids: Vec<String> = pending
                .iter()
                .filter(|(_, p)| p.backend == backend)
                .map(|(subid, _)| subid.clone())
                .collect();
            subids
                .iter()
                .filter_map(|subid| pending.remove(subid))
                .collect()
        };
        for point in swept {
            if point.delivered {
                // The point line made it to the client before the backend
                // died; only the `cached` flag is lost.  Settle it as
                // delivered, uncached.
                let _ = point.route.tx.send(CoordEvent::Settled { cached: false });
            } else if point.route.cancelled.load(Ordering::Acquire) {
                let _ = point.route.tx.send(CoordEvent::Skipped);
            } else {
                self.redispatch(point);
            }
        }
    }

    /// Routes one backend reply line (see
    /// [`Coordinator::handle_backend_reply`]).
    fn handle_backend_reply(&self, line: &str) {
        if line.trim().is_empty() {
            return;
        }
        match parse_response(line) {
            Err(_) => {
                self.backend_reply_errors.fetch_add(1, Ordering::Relaxed);
            }
            Ok(Response::Point { id, cycles, .. }) => self.note_point(&id, cycles),
            Ok(Response::Done {
                id,
                delivered,
                aborted,
                failed,
                cached,
                ..
            }) => self.settle_done(&id, delivered, aborted, failed, cached),
            Ok(Response::Error {
                id: Some(id),
                message,
            }) => self.note_failure(&id, message),
            Ok(Response::Busy { id, .. }) => self.requeue_busy(&id),
            // Cancel acknowledgements, un-attributed errors and control
            // replies that strayed onto the data connection carry no
            // routing information.
            Ok(_) => {}
        }
    }

    /// A backend `point` line: forward it to the request's drainer (once)
    /// and await the subrequest's `done` for settlement.  The send
    /// happens under the routing lock so a later settlement by another
    /// thread cannot overtake it in the drainer's queue.
    fn note_point(&self, subid: &str, cycles: Cycle) {
        let mut pending = self.lock_pending();
        if let Some(point) = pending.get_mut(subid) {
            if !point.delivered {
                point.delivered = true;
                let _ = point.route.tx.send(CoordEvent::Point {
                    index: point.index,
                    machine: point.machine,
                    window: point.window,
                    md: point.md,
                    cycles,
                });
            }
        }
    }

    /// A backend `error id=…` line ahead of a failing subrequest's
    /// `done`: remember the message for the settlement.
    fn note_failure(&self, subid: &str, message: String) {
        let mut pending = self.lock_pending();
        if let Some(point) = pending.get_mut(subid) {
            point.failure = Some(message);
        }
    }

    /// A backend `busy` rejection: the subrequest was never queued there;
    /// re-dispatch it (the ring walk naturally lands on the same backend
    /// once its queue drains, or elsewhere if it died meanwhile).
    fn requeue_busy(&self, subid: &str) {
        let reclaimed = {
            let mut pending = self.lock_pending();
            pending.remove(subid)
        };
        if let Some(point) = reclaimed {
            self.redispatch(point);
        }
    }

    /// A subrequest's closing `done` line: settle its point.  Undelivered
    /// uncancelled points (a backend shutdown-abort, or a `done` whose
    /// `point` line was lost) are re-dispatched rather than dropped.
    fn settle_done(
        &self,
        subid: &str,
        delivered: usize,
        aborted: usize,
        failed: usize,
        cached: u64,
    ) {
        let reclaimed = {
            let mut pending = self.lock_pending();
            pending.remove(subid)
        };
        let Some(mut point) = reclaimed else {
            return;
        };
        if delivered > 0 && point.delivered {
            let _ = point
                .route
                .tx
                .send(CoordEvent::Settled { cached: cached > 0 });
        } else if failed > 0 {
            let message = point
                .failure
                .take()
                .map(|m| strip_point_prefix(&m))
                .unwrap_or_else(|| "backend simulation failed".to_string());
            let _ = point.route.tx.send(CoordEvent::Failed {
                index: point.index,
                message,
            });
        } else if point.route.cancelled.load(Ordering::Acquire) {
            let event = if aborted > 0 {
                CoordEvent::Aborted
            } else {
                CoordEvent::Skipped
            };
            let _ = point.route.tx.send(event);
        } else {
            // Dropped or aborted without our cancel (backend-side abort),
            // or delivered by the backend without a parsable point line:
            // the client still needs the point — re-dispatch.
            self.redispatch(point);
        }
    }

    /// Cancels one request: flags the route, then forwards a `cancel` for
    /// every in-flight subrequest so backends drop or abort their points
    /// (their `done` lines settle the accounting).
    fn cancel_route(&self, route: &Arc<RequestRoute>) {
        route.cancelled.store(true, Ordering::Release);
        let targets: Vec<(usize, String)> = {
            let pending = self.lock_pending();
            pending
                .iter()
                .filter(|(_, p)| Arc::ptr_eq(&p.route, route))
                .map(|(subid, p)| (p.backend, subid.clone()))
                .collect()
        };
        for (backend, subid) in targets {
            if !self.write_backend(backend, &format!("cancel id={subid}")) {
                self.mark_dead(backend);
            }
        }
    }

    /// One watchdog pass: reclaim undelivered points older than the retry
    /// timeout and re-dispatch them away from their slow backend.
    fn scan_timeouts(&self) {
        let expired: Vec<PendingPoint> = {
            let mut pending = self.lock_pending();
            let subids: Vec<String> = pending
                .iter()
                .filter(|(_, p)| !p.delivered && p.dispatched.elapsed() >= self.retry_timeout)
                .map(|(subid, _)| subid.clone())
                .collect();
            subids
                .iter()
                .filter_map(|subid| pending.remove(subid))
                .collect()
        };
        for mut point in expired {
            self.coordinator_timeouts.fetch_add(1, Ordering::Relaxed);
            if point.route.cancelled.load(Ordering::Acquire) {
                let _ = point.route.tx.send(CoordEvent::Skipped);
            } else {
                point.avoid = Some(point.backend);
                self.redispatch(point);
            }
        }
    }
}

/// The canonical single-point subrequest line for a dispatch: the
/// original request's source, iterations and priority with a
/// one-machine × one-window × one-MD grid under the coordinator-issued
/// subid.  Mode is always `stream` (one point has no ordering to batch)
/// and the client deadline is *not* forwarded — deadlines act at the
/// coordinator, where the whole grid is visible.
fn subrequest_line(point: &PendingPoint, subid: &str) -> String {
    let request = &point.route.request;
    SweepRequest {
        id: subid.to_string(),
        source: request.source.clone(),
        iterations: request.iterations,
        machines: vec![point.machine],
        windows: vec![point.window],
        mds: vec![point.md],
        mode: DeliveryMode::Stream,
        deadline_ms: None,
        priority: request.priority,
    }
    .to_string()
}

/// Strips the backend's `point 0 failed: ` framing from a forwarded
/// failure message (the coordinator re-frames it with the client-side
/// point index).
fn strip_point_prefix(message: &str) -> String {
    match message.split_once(" failed: ") {
        Some((head, tail)) if head.starts_with("point ") => tail.to_string(),
        _ => message.to_string(),
    }
}

/// Reads one backend's replies until the connection drops, then declares
/// the backend dead (sweeping its points to the survivors).
fn reader_loop(inner: &Arc<CoordInner>, backend: usize, read_half: TcpStream) {
    let reader = BufReader::new(read_half);
    for line in reader.lines() {
        let Ok(line) = line else {
            break;
        };
        inner.handle_backend_reply(&line);
    }
    inner.mark_dead(backend);
}

/// The retry watchdog: scans for timed-out dispatches until the
/// coordinator is dropped.
fn watchdog_loop(inner: &Weak<CoordInner>) {
    loop {
        std::thread::sleep(WATCHDOG_POLL);
        let Some(inner) = inner.upgrade() else {
            return;
        };
        inner.scan_timeouts();
    }
}

/// One control-verb round trip on an ephemeral connection: dial, send
/// `line`, read one reply line.  `None` on any connection, write, read
/// or timeout failure — control verbs degrade per backend, they do not
/// wedge the coordinator.
fn control_roundtrip(addr: &str, line: &str) -> Option<String> {
    let stream = TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(CONTROL_TIMEOUT)).ok()?;
    let mut write_half = stream.try_clone().ok()?;
    write_half.write_all(line.as_bytes()).ok()?;
    write_half.write_all(b"\n").ok()?;
    write_half.flush().ok()?;
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).ok()?;
    let reply = reply.trim_end_matches(['\n', '\r']).to_string();
    if reply.is_empty() {
        None
    } else {
        Some(reply)
    }
}

/// One in-flight request of a coordinator connection, as its reader loop
/// tracks it.
struct ActiveRoute {
    route: Arc<RequestRoute>,
    finished: Arc<AtomicBool>,
}

/// The request's grid in canonical order (machines outermost, then
/// windows, then MDs) — the same order a backend's
/// [`SweepRequest::points`] produces, minus the pinned trace id the
/// coordinator never has.
fn grid(request: &SweepRequest) -> Vec<(Machine, WindowSpec, Cycle)> {
    let mut points =
        Vec::with_capacity(request.machines.len() * request.windows.len() * request.mds.len());
    for &machine in &request.machines {
        for &window in &request.windows {
            for &md in &request.mds {
                points.push((machine, window, md));
            }
        }
    }
    points
}

/// Serves one client connection of the coordinator: the same protocol as
/// [`crate::serve_connection`], with sweeps fanned out across the backend
/// fleet instead of submitted to a local session.  Several sweeps may be
/// in flight at once (each merges on its own drainer thread); the call
/// returns once the input is exhausted *and* every request has written
/// its `done` line.
///
/// # Errors
///
/// Propagates read errors on the request stream; client-side write errors
/// only cancel the affected request.
pub fn serve_coordinator_connection<R, W>(
    coordinator: &Arc<Coordinator>,
    reader: R,
    writer: W,
) -> io::Result<()>
where
    R: BufRead,
    W: Write + Send,
{
    let writer = Mutex::new(writer);
    std::thread::scope(|scope| {
        let mut active: HashMap<String, ActiveRoute> = HashMap::new();
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            match parse_request(&line) {
                Err(e) => {
                    crate::server::write_line(
                        &writer,
                        &Response::Error {
                            id: e.id,
                            message: e.message,
                        },
                    );
                }
                Ok(Request::Stats) => {
                    crate::server::write_line(
                        &writer,
                        &Response::Stats {
                            fields: coordinator.stats_fields(),
                        },
                    );
                }
                Ok(Request::Cache { action }) => {
                    crate::server::write_line(&writer, &coordinator.cache_action(action));
                }
                Ok(Request::Shutdown { mode }) => {
                    coordinator.shutdown(mode);
                    crate::server::write_line(&writer, &Response::Shutdown { mode });
                    // Stop reading: nothing this connection could send
                    // would be admitted.  The scope still joins the
                    // in-flight drainers, so their `done` lines land.
                    break;
                }
                Ok(Request::Cancel { id }) => match active.get(&id) {
                    Some(request) if !request.finished.load(Ordering::Acquire) => {
                        coordinator.inner.cancel_route(&request.route);
                        crate::server::write_line(&writer, &Response::Cancelled { id });
                    }
                    _ => {
                        crate::server::write_line(
                            &writer,
                            &Response::Error {
                                id: Some(id),
                                message: "no such active request".to_string(),
                            },
                        );
                    }
                },
                Ok(Request::Sweep(request)) => {
                    active.retain(|_, a| !a.finished.load(Ordering::Acquire));
                    if active.contains_key(&request.id) {
                        crate::server::write_line(
                            &writer,
                            &Response::Error {
                                id: Some(request.id),
                                message: "request id already active".to_string(),
                            },
                        );
                        continue;
                    }
                    if coordinator.is_shutting_down() {
                        crate::server::write_line(
                            &writer,
                            &Response::Error {
                                id: Some(request.id),
                                message: "server is shutting down; not accepting new sweeps"
                                    .to_string(),
                            },
                        );
                        continue;
                    }
                    let hash = match coordinator
                        .inner
                        .resolve_hash(&request.source, request.iterations)
                    {
                        Ok(hash) => hash,
                        Err(message) => {
                            crate::server::write_line(
                                &writer,
                                &Response::Error {
                                    id: Some(request.id),
                                    message,
                                },
                            );
                            continue;
                        }
                    };
                    let (tx, rx) = mpsc::channel();
                    let route = Arc::new(RequestRoute {
                        request: request.clone(),
                        hash,
                        tx,
                        cancelled: AtomicBool::new(false),
                    });
                    let finished = Arc::new(AtomicBool::new(false));
                    active.insert(
                        request.id.clone(),
                        ActiveRoute {
                            route: Arc::clone(&route),
                            finished: Arc::clone(&finished),
                        },
                    );
                    for (index, (machine, window, md)) in grid(&request).into_iter().enumerate() {
                        coordinator.inner.dispatch(PendingPoint {
                            route: Arc::clone(&route),
                            index,
                            machine,
                            window,
                            md,
                            backend: 0,
                            dispatched: Instant::now(),
                            delivered: false,
                            failure: None,
                            avoid: None,
                        });
                    }
                    let writer = &writer;
                    let coordinator = Arc::clone(coordinator);
                    scope.spawn(move || {
                        coordinator_drain(&coordinator, &route, &rx, &request, writer);
                        finished.store(true, Ordering::Release);
                    });
                }
            }
        }
        Ok(())
    })
}

/// Merges one request's point events into the client's response stream:
/// `point` lines as they arrive (stream) or in grid order at the end
/// (batch), `error` lines for failed points, and the closing `done` line
/// with balanced accounting.  A client deadline bounds the whole merge
/// (expiry cancels the route, residue settles as dropped/aborted,
/// `status=timeout`); a failed client write cancels the route the same
/// way dead-client cleanup does on a single server.
fn coordinator_drain<W: Write>(
    coordinator: &Arc<Coordinator>,
    route: &Arc<RequestRoute>,
    rx: &mpsc::Receiver<CoordEvent>,
    request: &SweepRequest,
    writer: &Mutex<W>,
) {
    let total = request.machines.len() * request.windows.len() * request.mds.len();
    let deadline = request
        .deadline_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let mut timed_out = false;
    let mut settled = 0usize;
    let mut delivered = 0usize;
    let mut delivered_unsettled = 0usize;
    let mut dropped = 0usize;
    let mut aborted = 0usize;
    let mut failed = 0usize;
    let mut cached = 0u64;
    let mut batched: Vec<Response> = Vec::new();
    let mut failures: Vec<Response> = Vec::new();
    while settled < total {
        let event = match deadline.filter(|_| !timed_out) {
            Some(at) => {
                let budget = at.saturating_duration_since(Instant::now());
                match rx.recv_timeout(budget) {
                    Ok(event) => event,
                    Err(RecvTimeoutError::Timeout) => {
                        timed_out = true;
                        coordinator
                            .inner
                            .coordinator_timeouts
                            .fetch_add(1, Ordering::Relaxed);
                        coordinator.inner.cancel_route(route);
                        continue;
                    }
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            None => match rx.recv() {
                Ok(event) => event,
                Err(_) => break,
            },
        };
        match event {
            CoordEvent::Point {
                index,
                machine,
                window,
                md,
                cycles,
            } => {
                delivered += 1;
                delivered_unsettled += 1;
                let line = Response::Point {
                    id: request.id.clone(),
                    index,
                    machine,
                    window,
                    md,
                    cycles,
                };
                match request.mode {
                    DeliveryMode::Stream => {
                        if !crate::server::write_line(writer, &line) {
                            // The client is gone: stop the fleet working
                            // on what no one will read.
                            coordinator.inner.cancel_route(route);
                        }
                    }
                    DeliveryMode::Batch => batched.push(line),
                }
            }
            CoordEvent::Settled { cached: was_cached } => {
                settled += 1;
                delivered_unsettled = delivered_unsettled.saturating_sub(1);
                cached += u64::from(was_cached);
            }
            CoordEvent::Failed { index, message } => {
                settled += 1;
                failed += 1;
                let line = Response::Error {
                    id: Some(request.id.clone()),
                    message: format!("point {index} failed: {message}"),
                };
                match request.mode {
                    DeliveryMode::Stream => {
                        if !crate::server::write_line(writer, &line) {
                            coordinator.inner.cancel_route(route);
                        }
                    }
                    DeliveryMode::Batch => failures.push(line),
                }
            }
            CoordEvent::Skipped => {
                settled += 1;
                dropped += 1;
            }
            CoordEvent::Aborted => {
                settled += 1;
                aborted += 1;
            }
        }
    }
    // Channel loss (every sender dropped with points unsettled) cannot
    // happen while the route is registered, but the accounting must
    // balance even then: the shortfall minus the already-delivered
    // stragglers counts as dropped.
    if settled < total {
        let shortfall = total - settled;
        dropped += shortfall.saturating_sub(delivered_unsettled);
    }
    if request.mode == DeliveryMode::Batch {
        batched.sort_by_key(|line| match line {
            Response::Point { index, .. } => *index,
            _ => usize::MAX,
        });
        for line in &batched {
            crate::server::write_line(writer, line);
        }
        for line in &failures {
            crate::server::write_line(writer, line);
        }
    }
    let status = if timed_out {
        DoneStatus::Timeout
    } else if failed > 0 {
        DoneStatus::Error
    } else if dropped + aborted > 0 {
        DoneStatus::Cancelled
    } else {
        DoneStatus::Ok
    };
    let _ = crate::server::write_line(
        writer,
        &Response::Done {
            id: request.id.clone(),
            points: total,
            delivered,
            dropped,
            aborted,
            failed,
            cached,
            status,
        },
    );
}

/// Accepts TCP connections for the coordinator until a `shutdown` request
/// arrives (from any connection), serving each on its own thread — the
/// coordinator-mode sibling of [`crate::serve_tcp`].
///
/// # Errors
///
/// Propagates accept errors (per-connection I/O errors only end that
/// connection).
pub fn serve_coordinator_tcp(
    coordinator: &Arc<Coordinator>,
    listener: &TcpListener,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    loop {
        if coordinator.is_shutting_down() {
            return Ok(());
        }
        match listener.accept() {
            Ok((connection, _)) => {
                let coordinator = Arc::clone(coordinator);
                std::thread::spawn(move || {
                    if connection.set_nonblocking(false).is_err() {
                        return;
                    }
                    let reader = match connection.try_clone() {
                        Ok(read_half) => BufReader::new(read_half),
                        Err(_) => return,
                    };
                    let _ = serve_coordinator_connection(&coordinator, reader, connection);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => return Err(e),
        }
    }
}
