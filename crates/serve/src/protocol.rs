//! The wire format of the sweep server.
//!
//! Everything is newline-delimited UTF-8 text — the vendored serde stub has
//! no real serialization, so the protocol is a hand-written line format
//! (swapping in a binary framing once the real crates are available is a
//! contained change; see `docs/PROTOCOL.md` for the full specification and
//! a worked transcript).  A request or response is one line; fields are
//! space-separated `key=value` tokens after a leading verb, and only the
//! trailing `msg=` field of an error may contain spaces.
//!
//! This module is the single source of truth for both directions: the
//! server parses [`Request`]s and prints [`Response`]s, and clients (the
//! end-to-end example, the tests, the smoke script) print requests and
//! parse responses through the same types, so the two sides cannot drift.

use dae_core::{Machine, Priority, SweepPoint, TraceId, WindowSpec};
use dae_isa::Cycle;
use dae_trace::{expand, Trace};
use dae_workloads::{
    gather_scatter, pointer_chase, reduction, stencil, stream, PerfectProgram, Workload,
};
use std::fmt;

/// The largest accepted `iterations=` value: a million iterations of a
/// ten-statement kernel is a ~10M-instruction trace per simulation — far
/// beyond any figure of the paper, and a sensible ceiling for a shared
/// server.
pub const MAX_ITERATIONS: u64 = 1_000_000;

/// The largest accepted grid (`machines × windows × mds`) per request;
/// bigger studies split into several requests and interleave naturally.
pub const MAX_POINTS: usize = 65_536;

/// The default `iterations=` when a request omits the field (the quick
/// experiment configuration's trace length).
pub const DEFAULT_ITERATIONS: u64 = 300;

/// How a request wants its results delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeliveryMode {
    /// `point` lines are written the moment each worker finishes
    /// (completion order — the no-barrier shape).
    #[default]
    Stream,
    /// `point` lines are written together, in grid order, once the whole
    /// grid has completed.
    Batch,
}

impl DeliveryMode {
    fn token(self) -> &'static str {
        match self {
            DeliveryMode::Stream => "stream",
            DeliveryMode::Batch => "batch",
        }
    }
}

/// How a `shutdown` request treats in-flight work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShutdownMode {
    /// Stop admitting requests, let in-flight sweeps finish (default).
    #[default]
    Drain,
    /// Stop admitting requests and cancel every in-flight sweep (their
    /// `done` lines still arrive, with cancelled/timeout accounting).
    Abort,
}

impl ShutdownMode {
    fn token(self) -> &'static str {
        match self {
            ShutdownMode::Drain => "drain",
            ShutdownMode::Abort => "abort",
        }
    }
}

impl fmt::Display for ShutdownMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// The terminal status of a request, reported on its `done` line.
///
/// One status per request, by severity: a deadline expiry reports
/// `timeout` even if points also failed; failures outrank a plain client
/// cancellation; `cancelled` covers client `cancel` lines, dead-client
/// cleanup and shutdown aborts; `ok` means every point was delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DoneStatus {
    /// Every point of the grid was delivered.
    #[default]
    Ok,
    /// The request was cancelled (client `cancel`, dead client, shutdown).
    Cancelled,
    /// The request's `deadline_ms` expired before the grid finished.
    Timeout,
    /// At least one point's simulation failed (worker panic).
    Error,
}

impl DoneStatus {
    fn token(self) -> &'static str {
        match self {
            DoneStatus::Ok => "ok",
            DoneStatus::Cancelled => "cancelled",
            DoneStatus::Timeout => "timeout",
            DoneStatus::Error => "error",
        }
    }

    fn parse(token: &str) -> Result<Self, String> {
        match token {
            "ok" => Ok(DoneStatus::Ok),
            "cancelled" => Ok(DoneStatus::Cancelled),
            "timeout" => Ok(DoneStatus::Timeout),
            "error" => Ok(DoneStatus::Error),
            other => Err(format!("unknown done status '{other}'")),
        }
    }
}

impl fmt::Display for DoneStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// What a sweep request simulates: a named workload or an inline kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceSource {
    /// One of the seven PERFECT Club workload models (`trace=TRFD`, …).
    Perfect(PerfectProgram),
    /// A named synthetic workload (`trace=stream`, `trace=stencil`, …);
    /// the stored name is normalised to lowercase.
    Synthetic(String),
    /// An inline kernel specification (`kernel=i;ld:%0;…`); see
    /// [`parse_kernel`] for the grammar.
    Inline(String),
}

impl TraceSource {
    /// A canonical identity string: requests with equal keys (at equal
    /// iteration counts) share one pinned lowering — and therefore the
    /// session's sweep-result cache — on the server.
    #[must_use]
    pub fn key(&self) -> String {
        match self {
            TraceSource::Perfect(p) => format!("perfect:{}", p.name()),
            TraceSource::Synthetic(name) => format!("synthetic:{name}"),
            TraceSource::Inline(spec) => format!("kernel:{spec}"),
        }
    }

    /// Expands the source into a trace of `iterations` iterations.
    ///
    /// # Errors
    ///
    /// An inline kernel that fails validation reports the builder's error,
    /// and a synthetic name that no longer resolves (a `TraceSource` built
    /// by hand rather than through `parse_request`'s normalisation)
    /// reports the unknown name.
    pub fn trace(&self, iterations: u64) -> Result<Trace, String> {
        match self {
            TraceSource::Perfect(p) => Ok(p.workload().trace(iterations)),
            TraceSource::Synthetic(name) => Ok(synthetic_by_name(name)
                .ok_or_else(|| format!("unknown synthetic trace '{name}'"))?
                .trace(iterations)),
            TraceSource::Inline(spec) => Ok(expand(&parse_kernel(spec)?, iterations)),
        }
    }

    fn request_field(&self) -> String {
        match self {
            TraceSource::Perfect(p) => format!("trace={}", p.name()),
            TraceSource::Synthetic(name) => format!("trace={name}"),
            TraceSource::Inline(spec) => format!("kernel={spec}"),
        }
    }
}

/// The named synthetic workloads the server accepts besides the PERFECT
/// suite.  Names are canonical (hyphenated, lowercase); `parse_request`
/// normalises aliases *before* the name reaches [`TraceSource`], so
/// `pointer_chase` and `pointer-chase` share one key — and therefore one
/// pinned lowering and one set of cache entries — on the server.
fn synthetic_by_name(name: &str) -> Option<Workload> {
    match name {
        "stream" => Some(stream()),
        "stencil" => Some(stencil()),
        "pointer-chase" => Some(pointer_chase()),
        "reduction" => Some(reduction()),
        "gather-scatter" => Some(gather_scatter()),
        _ => None,
    }
}

/// One parsed `sweep` request: a grid of (machine × window × MD) points
/// against one trace source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepRequest {
    /// The client-chosen request tag echoed on every response line.
    pub id: String,
    /// What to simulate.
    pub source: TraceSource,
    /// Trace length in kernel iterations.
    pub iterations: u64,
    /// The machines of the grid.
    pub machines: Vec<Machine>,
    /// The window sizes of the grid.
    pub windows: Vec<WindowSpec>,
    /// The memory differentials of the grid.
    pub mds: Vec<Cycle>,
    /// Result delivery shape.
    pub mode: DeliveryMode,
    /// Wall-clock budget in milliseconds: when it expires the server
    /// cancels the remaining points (mid-simulation included), delivers
    /// what finished, and closes the request with `status=timeout`.
    /// `None` means no deadline.
    pub deadline_ms: Option<u64>,
    /// The scheduling band the request's point jobs enter on the worker
    /// pool: `interactive` jumps every queued bulk grid, `bulk` yields to
    /// everyone else.  Defaults to [`Priority::Normal`]; within a band,
    /// concurrent clients are served round-robin.
    pub priority: Priority,
}

impl SweepRequest {
    /// The request's grid in canonical order — machines outermost, then
    /// windows, then memory differentials — addressed at the pinned
    /// lowering `id`.  `point` responses carry this order's index.
    #[must_use]
    pub fn points(&self, id: TraceId) -> Vec<SweepPoint> {
        let mut points =
            Vec::with_capacity(self.machines.len() * self.windows.len() * self.mds.len());
        for &machine in &self.machines {
            for &window in &self.windows {
                for &md in &self.mds {
                    points.push((id, machine, window, md));
                }
            }
        }
        points
    }
}

impl fmt::Display for SweepRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sweep id={} {} iterations={} machines={} windows={} mds={} mode={}",
            self.id,
            self.source.request_field(),
            self.iterations,
            join(self.machines.iter().map(|&m| machine_token(m).to_string())),
            join(self.windows.iter().map(window_token)),
            join(self.mds.iter().map(Cycle::to_string)),
            self.mode.token(),
        )?;
        if let Some(deadline) = self.deadline_ms {
            write!(f, " deadline_ms={deadline}")?;
        }
        // The default band is elided so pre-priority request lines print
        // (and golden transcripts diff) unchanged.
        if self.priority != Priority::Normal {
            write!(f, " priority={}", self.priority)?;
        }
        Ok(())
    }
}

/// What a `cache` request does to the server's sweep-result cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheAction {
    /// `cache clear`: empty the cache (and truncate the persistent log,
    /// when one is attached).  In-flight sweeps are fenced out — results
    /// computed before the clear cannot repopulate it.
    Clear,
    /// `cache limit=N` / `cache limit=none`: bound the cache to at most
    /// `N` resident entries (evicting down immediately), or lift the
    /// bound.
    Limit(Option<usize>),
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Submit a sweep grid.
    Sweep(SweepRequest),
    /// Cancel an active sweep: pending points are dropped, the `done` line
    /// still arrives with the dropped count.
    Cancel {
        /// The id of the request to cancel.
        id: String,
    },
    /// Ask for the server's session / cache / pool counters.
    Stats,
    /// Administer the sweep-result cache.
    Cache {
        /// What to do to it.
        action: CacheAction,
    },
    /// Stop admitting new sweeps and shut the server down, draining or
    /// aborting in-flight work.
    Shutdown {
        /// What happens to in-flight sweeps.
        mode: ShutdownMode,
    },
}

/// A rejected request line: the reply carries the request id when one was
/// recovered from the line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    /// The `id=` field of the offending line, if it parsed.
    pub id: Option<String>,
    /// What was wrong.
    pub message: String,
}

impl RequestError {
    fn new(id: Option<&str>, message: impl Into<String>) -> Self {
        RequestError {
            id: id.map(str::to_string),
            message: message.into(),
        }
    }
}

/// One response line, as written by the server and parsed by clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// One finished sweep point.
    Point {
        /// The request the point belongs to.
        id: String,
        /// The point's index in the request's canonical grid order.
        index: usize,
        /// The machine of the point.
        machine: Machine,
        /// The window of the point.
        window: WindowSpec,
        /// The memory differential of the point.
        md: Cycle,
        /// The simulated (or cached) execution time.
        cycles: Cycle,
    },
    /// A request finished.  The accounting always balances —
    /// `delivered + dropped + aborted + failed == points` — and `cached`
    /// counts delivered points answered from the sweep-result cache.
    Done {
        /// The finished request.
        id: String,
        /// Grid size.
        points: usize,
        /// Points delivered as `point` lines.
        delivered: usize,
        /// Points dropped by cancellation before their simulation started.
        dropped: usize,
        /// Points cooperatively aborted mid-simulation.
        aborted: usize,
        /// Points whose simulation failed (worker panic, isolated to this
        /// request).
        failed: usize,
        /// Delivered points that came from the cache.
        cached: u64,
        /// The request's terminal status.
        status: DoneStatus,
    },
    /// Acknowledgement that a cancel was applied (the `done` line of the
    /// cancelled request follows separately).
    Cancelled {
        /// The request being cancelled.
        id: String,
    },
    /// A sweep was refused by admission control: the server (or this
    /// client) already has too much queued.  Nothing was submitted; retry
    /// after the hinted delay.
    Busy {
        /// The refused request.
        id: String,
        /// Points currently queued against the exceeded limit.
        queued: usize,
        /// The limit that refused the request.
        limit: usize,
        /// A retry hint, in milliseconds.
        retry_after_ms: u64,
    },
    /// A rejected request or server-side failure.
    Error {
        /// The offending request, when known.
        id: Option<String>,
        /// Human-readable reason (the only field that may contain spaces).
        message: String,
    },
    /// The reply to `stats`: named monotone counters.
    Stats {
        /// `(name, value)` pairs, in the server's canonical order.
        fields: Vec<(String, u64)>,
    },
    /// Acknowledgement of a `cache` request: the cache's state after the
    /// action was applied.
    Cache {
        /// Resident entries after the action.
        entries: usize,
        /// The bound in force (`None` = unbounded).
        limit: Option<usize>,
    },
    /// Acknowledgement of a `shutdown` request: the server stops admitting
    /// sweeps and will exit once in-flight work settles.
    Shutdown {
        /// The mode that was applied to in-flight work.
        mode: ShutdownMode,
    },
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Response::Point {
                id,
                index,
                machine,
                window,
                md,
                cycles,
            } => write!(
                f,
                "point id={id} index={index} machine={} window={} md={md} cycles={cycles}",
                machine_token(*machine),
                window_token(window),
            ),
            Response::Done {
                id,
                points,
                delivered,
                dropped,
                aborted,
                failed,
                cached,
                status,
            } => write!(
                f,
                "done id={id} points={points} delivered={delivered} dropped={dropped} \
                 aborted={aborted} failed={failed} cached={cached} status={}",
                status.token()
            ),
            Response::Cancelled { id } => write!(f, "cancelled id={id}"),
            Response::Busy {
                id,
                queued,
                limit,
                retry_after_ms,
            } => write!(
                f,
                "busy id={id} queued={queued} limit={limit} retry_after_ms={retry_after_ms}"
            ),
            Response::Error { id, message } => match id {
                Some(id) => write!(f, "error id={id} msg={message}"),
                None => write!(f, "error msg={message}"),
            },
            Response::Stats { fields } => {
                f.write_str("stats")?;
                for (name, value) in fields {
                    write!(f, " {name}={value}")?;
                }
                Ok(())
            }
            Response::Cache { entries, limit } => {
                write!(f, "cache entries={entries} limit=")?;
                match limit {
                    Some(limit) => write!(f, "{limit}"),
                    None => f.write_str("none"),
                }
            }
            Response::Shutdown { mode } => write!(f, "shutdown mode={}", mode.token()),
        }
    }
}

fn join(items: impl Iterator<Item = String>) -> String {
    items.collect::<Vec<_>>().join(",")
}

/// The protocol token of a machine (`dm` / `swsm` / `scalar`).
#[must_use]
pub fn machine_token(machine: Machine) -> &'static str {
    match machine {
        Machine::Decoupled => "dm",
        Machine::Superscalar => "swsm",
        Machine::Scalar => "scalar",
    }
}

fn parse_machine(token: &str) -> Result<Machine, String> {
    match token {
        "dm" => Ok(Machine::Decoupled),
        "swsm" => Ok(Machine::Superscalar),
        "scalar" => Ok(Machine::Scalar),
        other => Err(format!(
            "unknown machine '{other}' (expected dm, swsm or scalar)"
        )),
    }
}

/// The protocol token of a window (`32` / `inf`).
#[must_use]
pub fn window_token(window: &WindowSpec) -> String {
    match window {
        WindowSpec::Entries(n) => n.to_string(),
        WindowSpec::Unlimited => "inf".to_string(),
    }
}

fn parse_window(token: &str) -> Result<WindowSpec, String> {
    if token == "inf" {
        return Ok(WindowSpec::Unlimited);
    }
    match token.parse::<usize>() {
        Ok(n) if n > 0 => Ok(WindowSpec::Entries(n)),
        _ => Err(format!(
            "bad window '{token}' (expected a positive integer or 'inf')"
        )),
    }
}

/// Splits a request/response line into its verb and `key=value` fields.
fn fields(line: &str) -> (Option<&str>, Vec<(&str, &str)>) {
    let mut tokens = line.split_whitespace();
    let verb = tokens.next();
    let pairs = tokens.filter_map(|token| token.split_once('=')).collect();
    (verb, pairs)
}

fn lookup<'a>(pairs: &[(&str, &'a str)], key: &str) -> Option<&'a str> {
    pairs.iter().find(|&&(k, _)| k == key).map(|&(_, v)| v)
}

fn valid_id(id: &str) -> bool {
    !id.is_empty()
        && id
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.'))
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a [`RequestError`] (carrying the line's `id=` when one was
/// recovered) for unknown verbs, missing or malformed fields, and
/// over-limit grids.
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let (verb, pairs) = fields(line);
    let id = lookup(&pairs, "id");
    let err = |message: String| Err(RequestError::new(id, message));
    match verb {
        Some("stats") => Ok(Request::Stats),
        // `clear` is a bare token (not `key=value`), so the cache verb
        // inspects the raw second token as well as the parsed pairs.
        Some("cache") => match (line.split_whitespace().nth(1), lookup(&pairs, "limit")) {
            (Some("clear"), None) => Ok(Request::Cache {
                action: CacheAction::Clear,
            }),
            (_, Some("none")) => Ok(Request::Cache {
                action: CacheAction::Limit(None),
            }),
            (_, Some(token)) => match token.parse::<usize>() {
                Ok(n) if n > 0 => Ok(Request::Cache {
                    action: CacheAction::Limit(Some(n)),
                }),
                _ => err(format!(
                    "bad cache limit '{token}' (a positive integer or none)"
                )),
            },
            _ => err("cache needs 'clear' or limit=<N|none>".to_string()),
        },
        Some("shutdown") => match lookup(&pairs, "mode") {
            None | Some("drain") => Ok(Request::Shutdown {
                mode: ShutdownMode::Drain,
            }),
            Some("abort") => Ok(Request::Shutdown {
                mode: ShutdownMode::Abort,
            }),
            Some(other) => err(format!("bad shutdown mode '{other}' (drain or abort)")),
        },
        Some("cancel") => match id {
            Some(id) if valid_id(id) => Ok(Request::Cancel { id: id.to_string() }),
            _ => err("cancel needs id=<request-id>".to_string()),
        },
        Some("sweep") => {
            let Some(id_str) = id else {
                return err("sweep needs id=<request-id>".to_string());
            };
            if !valid_id(id_str) {
                return err(format!(
                    "bad id '{id_str}' (letters, digits, '_', '-', '.' only)"
                ));
            }
            let source = match (lookup(&pairs, "trace"), lookup(&pairs, "kernel")) {
                (Some(_), Some(_)) => {
                    return err("give either trace= or kernel=, not both".to_string())
                }
                (None, None) => return err("sweep needs trace=<name> or kernel=<spec>".to_string()),
                (Some(name), None) => match PerfectProgram::from_name(name) {
                    Some(p) => TraceSource::Perfect(p),
                    None => {
                        // Canonical form: lowercase, hyphenated — aliases
                        // must map to one identity key.
                        let canonical = name.to_ascii_lowercase().replace('_', "-");
                        if synthetic_by_name(&canonical).is_some() {
                            TraceSource::Synthetic(canonical)
                        } else {
                            return err(format!("unknown trace '{name}'"));
                        }
                    }
                },
                (None, Some(spec)) => {
                    // Validate eagerly so a bad kernel is rejected at parse
                    // time, before anything is pinned.
                    if let Err(e) = parse_kernel(spec) {
                        return err(format!("bad kernel: {e}"));
                    }
                    TraceSource::Inline(spec.to_string())
                }
            };
            let iterations = match lookup(&pairs, "iterations") {
                None => DEFAULT_ITERATIONS,
                Some(token) => match token.parse::<u64>() {
                    Ok(n) if (1..=MAX_ITERATIONS).contains(&n) => n,
                    _ => {
                        return err(format!(
                            "bad iterations '{token}' (expected 1..={MAX_ITERATIONS})"
                        ))
                    }
                },
            };
            let machines = match lookup(&pairs, "machines") {
                None => return err("sweep needs machines=<dm,swsm,scalar list>".to_string()),
                Some(list) => match list
                    .split(',')
                    .map(parse_machine)
                    .collect::<Result<Vec<_>, _>>()
                {
                    Ok(machines) if !machines.is_empty() => machines,
                    Ok(_) => return err("machines= must not be empty".to_string()),
                    Err(e) => return err(e),
                },
            };
            let windows = match lookup(&pairs, "windows") {
                None => return err("sweep needs windows=<size list>".to_string()),
                Some(list) => match list
                    .split(',')
                    .map(parse_window)
                    .collect::<Result<Vec<_>, _>>()
                {
                    Ok(windows) if !windows.is_empty() => windows,
                    Ok(_) => return err("windows= must not be empty".to_string()),
                    Err(e) => return err(e),
                },
            };
            let mds = match lookup(&pairs, "mds") {
                None => return err("sweep needs mds=<memory differential list>".to_string()),
                Some(list) => {
                    match list
                        .split(',')
                        .map(|t| {
                            t.parse::<Cycle>()
                                .map_err(|_| format!("bad memory differential '{t}'"))
                        })
                        .collect::<Result<Vec<_>, _>>()
                    {
                        Ok(mds) if !mds.is_empty() => mds,
                        Ok(_) => return err("mds= must not be empty".to_string()),
                        Err(e) => return err(e),
                    }
                }
            };
            let mode = match lookup(&pairs, "mode") {
                None | Some("stream") => DeliveryMode::Stream,
                Some("batch") => DeliveryMode::Batch,
                Some(other) => return err(format!("bad mode '{other}' (stream or batch)")),
            };
            let deadline_ms = match lookup(&pairs, "deadline_ms") {
                None => None,
                Some(token) => match token.parse::<u64>() {
                    Ok(ms) if ms > 0 => Some(ms),
                    _ => {
                        return err(format!(
                            "bad deadline_ms '{token}' (expected a positive integer)"
                        ))
                    }
                },
            };
            let priority = match lookup(&pairs, "priority") {
                None => Priority::Normal,
                Some(token) => match Priority::parse(token) {
                    Some(priority) => priority,
                    None => {
                        return err(format!(
                            "bad priority '{token}' (expected interactive, normal or bulk)"
                        ))
                    }
                },
            };
            // Checked product: huge (duplicate-laden) lists must hit the
            // cap, not wrap around it.
            let grid = machines
                .len()
                .checked_mul(windows.len())
                .and_then(|n| n.checked_mul(mds.len()));
            if grid.is_none_or(|g| g > MAX_POINTS) {
                return err(format!(
                    "grid of {} points exceeds the {MAX_POINTS} cap",
                    grid.map_or_else(|| "far too many".to_string(), |g| g.to_string())
                ));
            }
            Ok(Request::Sweep(SweepRequest {
                id: id_str.to_string(),
                source,
                iterations,
                machines,
                windows,
                mds,
                mode,
                deadline_ms,
                priority,
            }))
        }
        Some(other) => err(format!("unknown verb '{other}'")),
        None => err("empty request".to_string()),
    }
}

/// Parses one response line (the client half of the protocol).
///
/// # Errors
///
/// Returns a description of the malformed line.
pub fn parse_response(line: &str) -> Result<Response, String> {
    let (verb, pairs) = fields(line);
    let need = |key: &str| lookup(&pairs, key).ok_or_else(|| format!("missing {key}= in '{line}'"));
    let need_num = |key: &str| -> Result<u64, String> {
        need(key)?
            .parse::<u64>()
            .map_err(|_| format!("bad {key}= in '{line}'"))
    };
    match verb {
        Some("point") => Ok(Response::Point {
            id: need("id")?.to_string(),
            index: need_num("index")? as usize,
            machine: parse_machine(need("machine")?)?,
            window: parse_window(need("window")?)?,
            md: need_num("md")?,
            cycles: need_num("cycles")?,
        }),
        Some("done") => Ok(Response::Done {
            id: need("id")?.to_string(),
            points: need_num("points")? as usize,
            delivered: need_num("delivered")? as usize,
            dropped: need_num("dropped")? as usize,
            aborted: need_num("aborted")? as usize,
            failed: need_num("failed")? as usize,
            cached: need_num("cached")?,
            status: DoneStatus::parse(need("status")?)?,
        }),
        Some("cancelled") => Ok(Response::Cancelled {
            id: need("id")?.to_string(),
        }),
        Some("busy") => Ok(Response::Busy {
            id: need("id")?.to_string(),
            queued: need_num("queued")? as usize,
            limit: need_num("limit")? as usize,
            retry_after_ms: need_num("retry_after_ms")?,
        }),
        Some("cache") => Ok(Response::Cache {
            entries: need_num("entries")? as usize,
            limit: match need("limit")? {
                "none" => None,
                token => Some(
                    token
                        .parse::<usize>()
                        .map_err(|_| format!("bad limit= in '{line}'"))?,
                ),
            },
        }),
        Some("shutdown") => match need("mode")? {
            "drain" => Ok(Response::Shutdown {
                mode: ShutdownMode::Drain,
            }),
            "abort" => Ok(Response::Shutdown {
                mode: ShutdownMode::Abort,
            }),
            other => Err(format!("unknown shutdown mode '{other}'")),
        },
        Some("error") => {
            let (head, message) = line
                .split_once("msg=")
                .ok_or_else(|| format!("missing msg= in '{line}'"))?;
            // Only the fields *before* msg= belong to the frame: the
            // free-text message may itself contain `id=` tokens (e.g.
            // "cancel needs id=<request-id>").
            let (_, head_pairs) = fields(head);
            Ok(Response::Error {
                id: lookup(&head_pairs, "id").map(str::to_string),
                message: message.to_string(),
            })
        }
        Some("stats") => Ok(Response::Stats {
            fields: pairs
                .iter()
                .map(|&(k, v)| {
                    v.parse::<u64>()
                        .map(|v| (k.to_string(), v))
                        .map_err(|_| format!("bad counter {k}= in '{line}'"))
                })
                .collect::<Result<Vec<_>, _>>()?,
        }),
        _ => Err(format!("unknown response '{line}'")),
    }
}

// ---------------------------------------------------------------------------
// The inline kernel grammar
// ---------------------------------------------------------------------------

/// Parses an inline kernel specification into a validated kernel.
///
/// The grammar (one loop body; statement `k` produces value `%k`):
///
/// ```text
/// spec  :=  stmt (';' stmt)*
/// stmt  :=  'i'                     induction variable (i = i + 1)
///        |  'ld:' refs              strided 8-byte load  (address inputs)
///        |  'st:' refs              strided 8-byte store (value + address inputs)
///        |  'add:' refs             floating point add
///        |  'mul:' refs             floating point multiply
///        |  'div:' refs             floating point divide
///        |  'int:' refs             integer / address arithmetic
/// refs  :=  ref (',' ref)*
/// ref   :=  '%' N                   value of statement N, same iteration
///        |  '%' N '@' D             value of statement N, D iterations back
///        |  '$' K                   loop-invariant value K
/// ```
///
/// Every load and store draws from its own non-aliasing address region.
/// Example — daxpy (`y[i] = a*x[i] + y[i]`):
///
/// ```text
/// i;ld:%0;ld:%0;mul:%1,$0;add:%3,%2;st:%4,%0
/// ```
///
/// # Errors
///
/// Reports the first offending statement or reference, or the kernel
/// builder's own validation error (dangling reference, non-causal local
/// dependence, empty kernel).
pub fn parse_kernel(spec: &str) -> Result<dae_isa::Kernel, String> {
    use dae_isa::{KernelBuilder, Operand};

    let statements: Vec<&str> = spec.split(';').collect();
    let total = statements.len();
    let parse_ref = |token: &str, stmt: usize| -> Result<Operand, String> {
        let bad = |why: &str| Err(format!("statement {stmt}: {why} in reference '{token}'"));
        if let Some(rest) = token.strip_prefix('$') {
            return match rest.parse::<u32>() {
                Ok(k) => Ok(Operand::Invariant(k)),
                Err(_) => bad("bad invariant index"),
            };
        }
        let Some(rest) = token.strip_prefix('%') else {
            return bad("expected '%N', '%N@D' or '$K'");
        };
        let (index, distance) = match rest.split_once('@') {
            None => (rest, None),
            Some((index, distance)) => (index, Some(distance)),
        };
        let Ok(index) = index.parse::<usize>() else {
            return bad("bad statement index");
        };
        if index >= total {
            return bad("reference beyond the last statement");
        }
        match distance {
            None => Ok(Operand::Local(index)),
            Some(d) => match d.parse::<u32>() {
                Ok(d) if d >= 1 => Ok(Operand::Carried {
                    stmt: index,
                    distance: d,
                }),
                _ => bad("carried distance must be >= 1"),
            },
        }
    };

    let mut b = KernelBuilder::new("inline");
    for (k, stmt) in statements.iter().enumerate() {
        let (op, refs) = match stmt.split_once(':') {
            None => (*stmt, Vec::new()),
            Some((op, refs)) => (
                op,
                refs.split(',')
                    .map(|token| parse_ref(token, k))
                    .collect::<Result<Vec<_>, _>>()?,
            ),
        };
        // One region per statement, spaced like the workload models so no
        // two memory statements alias.
        let base = 0x0100_0000u64 * (k as u64 + 1);
        let id = match op {
            "i" => b.induction(),
            "ld" => b.load_strided(&refs, base, 8),
            "st" => b.store_strided(&refs, base, 8),
            "add" => b.fp_add(&refs),
            "mul" => b.fp_mul(&refs),
            "div" => b.fp_div(&refs),
            "int" => b.int(&refs),
            other => return Err(format!("statement {k}: unknown operation '{other}'")),
        };
        debug_assert_eq!(id, k, "builder statement ids track spec indices");
    }
    b.build().map_err(|e| format!("{e:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep_line() -> &'static str {
        "sweep id=fig4 trace=TRFD iterations=200 machines=dm,swsm windows=8,32,inf mds=0,60 mode=batch"
    }

    #[test]
    fn sweep_requests_roundtrip() {
        let Ok(Request::Sweep(req)) = parse_request(sweep_line()) else {
            panic!("sweep line must parse");
        };
        assert_eq!(req.id, "fig4");
        assert_eq!(req.source, TraceSource::Perfect(PerfectProgram::Trfd));
        assert_eq!(req.iterations, 200);
        assert_eq!(req.machines, vec![Machine::Decoupled, Machine::Superscalar]);
        assert_eq!(
            req.windows,
            vec![
                WindowSpec::Entries(8),
                WindowSpec::Entries(32),
                WindowSpec::Unlimited
            ]
        );
        assert_eq!(req.mds, vec![0, 60]);
        assert_eq!(req.mode, DeliveryMode::Batch);
        // Display renders the canonical form, which re-parses identically.
        assert_eq!(parse_request(&req.to_string()), Ok(Request::Sweep(req)));
    }

    #[test]
    fn grid_order_is_machine_then_window_then_md() {
        let Ok(Request::Sweep(req)) = parse_request(sweep_line()) else {
            panic!("sweep line must parse");
        };
        let mut session = dae_core::SweepSession::new();
        let id = session.pin_trace(&stream().trace(10));
        let points = req.points(id);
        assert_eq!(points.len(), 12);
        assert_eq!(
            points[0],
            (id, Machine::Decoupled, WindowSpec::Entries(8), 0)
        );
        assert_eq!(
            points[1],
            (id, Machine::Decoupled, WindowSpec::Entries(8), 60)
        );
        assert_eq!(
            points[2],
            (id, Machine::Decoupled, WindowSpec::Entries(32), 0)
        );
        assert_eq!(
            points[6],
            (id, Machine::Superscalar, WindowSpec::Entries(8), 0)
        );
    }

    #[test]
    fn defaults_and_aliases_apply() {
        let Ok(Request::Sweep(req)) =
            parse_request("sweep id=a trace=stream machines=dm windows=16 mds=60")
        else {
            panic!("minimal sweep must parse");
        };
        assert_eq!(req.iterations, DEFAULT_ITERATIONS);
        assert_eq!(req.mode, DeliveryMode::Stream);
        assert_eq!(req.source, TraceSource::Synthetic("stream".to_string()));
        assert!(req.source.trace(50).is_ok());
    }

    #[test]
    fn malformed_sweeps_are_rejected_with_their_id() {
        for (line, needle) in [
            ("sweep trace=TRFD machines=dm windows=8 mds=0", "id="),
            ("sweep id=x machines=dm windows=8 mds=0", "trace="),
            (
                "sweep id=x trace=NOPE machines=dm windows=8 mds=0",
                "unknown trace",
            ),
            (
                "sweep id=x trace=TRFD machines=vliw windows=8 mds=0",
                "unknown machine",
            ),
            (
                "sweep id=x trace=TRFD machines=dm windows=0 mds=0",
                "bad window",
            ),
            (
                "sweep id=x trace=TRFD machines=dm windows=8 mds=big",
                "bad memory differential",
            ),
            (
                "sweep id=x trace=TRFD machines=dm windows=8 mds=0 mode=carrier",
                "bad mode",
            ),
            (
                "sweep id=x trace=TRFD iterations=0 machines=dm windows=8 mds=0",
                "bad iterations",
            ),
            (
                "sweep id=b@d trace=TRFD machines=dm windows=8 mds=0",
                "bad id",
            ),
            ("warp id=x", "unknown verb"),
        ] {
            let err = parse_request(line).expect_err(line);
            assert!(
                err.message.contains(needle),
                "'{line}' → '{}' (wanted '{needle}')",
                err.message
            );
            if line.contains("id=x") {
                assert_eq!(err.id.as_deref(), Some("x"), "{line}");
            }
        }
    }

    #[test]
    fn responses_roundtrip_through_display() {
        let responses = [
            Response::Point {
                id: "a".to_string(),
                index: 3,
                machine: Machine::Superscalar,
                window: WindowSpec::Unlimited,
                md: 60,
                cycles: 1234,
            },
            Response::Done {
                id: "a".to_string(),
                points: 12,
                delivered: 8,
                dropped: 2,
                aborted: 1,
                failed: 1,
                cached: 2,
                status: DoneStatus::Timeout,
            },
            Response::Cancelled {
                id: "a".to_string(),
            },
            Response::Busy {
                id: "a".to_string(),
                queued: 70_000,
                limit: 65_536,
                retry_after_ms: 50,
            },
            Response::Shutdown {
                mode: ShutdownMode::Abort,
            },
            Response::Error {
                id: Some("a".to_string()),
                message: "something with spaces".to_string(),
            },
            Response::Error {
                id: None,
                message: "no id recovered".to_string(),
            },
            Response::Stats {
                fields: vec![("pinned".to_string(), 3), ("cache_hits".to_string(), 44)],
            },
        ];
        for response in responses {
            assert_eq!(parse_response(&response.to_string()), Ok(response.clone()));
        }
    }

    #[test]
    fn inline_kernels_build_and_reject() {
        // daxpy: y[i] = a*x[i] + y[i]
        let kernel = parse_kernel("i;ld:%0;ld:%0;mul:%1,$0;add:%3,%2;st:%4,%0").expect("daxpy");
        assert_eq!(kernel.len(), 6);
        // A carried self-reference (pointer chase shape) is legal.
        assert!(parse_kernel("i;ld:%1@1;add:%1,$0").is_ok());
        for (spec, needle) in [
            ("i;frob:%0", "unknown operation"),
            ("i;ld:%9", "beyond the last"),
            ("i;ld:%0@0", "distance must be"),
            ("i;ld:x", "expected"),
            ("i;ld:%1", ""), // non-causal local reference → builder error
        ] {
            let err = parse_kernel(spec).expect_err(spec);
            assert!(err.contains(needle), "'{spec}' → '{err}'");
        }
    }

    #[test]
    fn error_messages_containing_id_tokens_do_not_confuse_attribution() {
        // An id-less error whose free text mentions `id=` must stay
        // id-less through the Display/parse round trip.
        let response = Response::Error {
            id: None,
            message: "cancel needs id=<request-id>".to_string(),
        };
        assert_eq!(parse_response(&response.to_string()), Ok(response));
    }

    #[test]
    fn synthetic_aliases_share_one_identity_key() {
        let parse = |line: &str| {
            let Ok(Request::Sweep(req)) = parse_request(line) else {
                panic!("{line}");
            };
            req.source.key()
        };
        let hyphen = parse("sweep id=x trace=pointer-chase machines=dm windows=8 mds=0");
        let underscore = parse("sweep id=x trace=POINTER_CHASE machines=dm windows=8 mds=0");
        assert_eq!(hyphen, underscore, "aliases must pin one lowering");
    }

    #[test]
    fn oversized_grids_are_rejected_without_overflow() {
        // Duplicates are legal list entries, so the cap must count them.
        let windows: Vec<String> = vec!["8".to_string(); 300];
        let mds: Vec<String> = vec!["0".to_string(); 300];
        let line = format!(
            "sweep id=x trace=TRFD machines=dm windows={} mds={}",
            windows.join(","),
            mds.join(",")
        );
        let err = parse_request(&line).expect_err("90000 points exceed the cap");
        assert!(err.message.contains("cap"), "{}", err.message);
    }

    #[test]
    fn cancel_and_stats_parse() {
        assert_eq!(
            parse_request("cancel id=fig4"),
            Ok(Request::Cancel {
                id: "fig4".to_string()
            })
        );
        assert_eq!(parse_request("stats"), Ok(Request::Stats));
        assert!(parse_request("cancel").is_err());
    }

    #[test]
    fn deadlines_parse_and_roundtrip() {
        let line = "sweep id=x trace=TRFD machines=dm windows=8 mds=0 deadline_ms=250";
        let Ok(Request::Sweep(req)) = parse_request(line) else {
            panic!("deadline sweep must parse");
        };
        assert_eq!(req.deadline_ms, Some(250));
        assert_eq!(parse_request(&req.to_string()), Ok(Request::Sweep(req)));
        for bad in ["deadline_ms=0", "deadline_ms=-5", "deadline_ms=soon"] {
            let line = format!("sweep id=x trace=TRFD machines=dm windows=8 mds=0 {bad}");
            let err = parse_request(&line).expect_err(&line);
            assert!(err.message.contains("bad deadline_ms"), "{}", err.message);
        }
    }

    #[test]
    fn priorities_parse_and_roundtrip() {
        for (token, priority) in [
            ("interactive", Priority::Interactive),
            ("normal", Priority::Normal),
            ("bulk", Priority::Bulk),
        ] {
            let line =
                format!("sweep id=x trace=TRFD machines=dm windows=8 mds=0 priority={token}");
            let Ok(Request::Sweep(req)) = parse_request(&line) else {
                panic!("priority sweep must parse: {line}");
            };
            assert_eq!(req.priority, priority);
            assert_eq!(parse_request(&req.to_string()), Ok(Request::Sweep(req)));
        }
        // Omitted means normal, and the default band never prints (so
        // pre-priority golden transcripts stay bit-for-bit).
        let Ok(Request::Sweep(req)) =
            parse_request("sweep id=x trace=TRFD machines=dm windows=8 mds=0")
        else {
            panic!("plain sweep must parse");
        };
        assert_eq!(req.priority, Priority::Normal);
        assert!(!req.to_string().contains("priority="));
        for bad in ["priority=", "priority=urgent", "priority=Interactive"] {
            let line = format!("sweep id=x trace=TRFD machines=dm windows=8 mds=0 {bad}");
            let err = parse_request(&line).expect_err(&line);
            assert!(err.message.contains("bad priority"), "{}", err.message);
            assert_eq!(err.id.as_deref(), Some("x"), "id must be recovered");
        }
    }

    #[test]
    fn cache_requests_parse() {
        assert_eq!(
            parse_request("cache clear"),
            Ok(Request::Cache {
                action: CacheAction::Clear
            })
        );
        assert_eq!(
            parse_request("cache limit=64"),
            Ok(Request::Cache {
                action: CacheAction::Limit(Some(64))
            })
        );
        assert_eq!(
            parse_request("cache limit=none"),
            Ok(Request::Cache {
                action: CacheAction::Limit(None)
            })
        );
        for bad in ["cache", "cache flush", "cache limit=0", "cache limit=lots"] {
            assert!(parse_request(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn cache_responses_roundtrip() {
        for response in [
            Response::Cache {
                entries: 12,
                limit: Some(64),
            },
            Response::Cache {
                entries: 0,
                limit: None,
            },
        ] {
            assert_eq!(parse_response(&response.to_string()), Ok(response.clone()));
        }
        assert_eq!(
            Response::Cache {
                entries: 3,
                limit: None
            }
            .to_string(),
            "cache entries=3 limit=none"
        );
    }

    #[test]
    fn shutdown_requests_parse() {
        assert_eq!(
            parse_request("shutdown"),
            Ok(Request::Shutdown {
                mode: ShutdownMode::Drain
            })
        );
        assert_eq!(
            parse_request("shutdown mode=abort"),
            Ok(Request::Shutdown {
                mode: ShutdownMode::Abort
            })
        );
        assert!(parse_request("shutdown mode=later").is_err());
    }
}
