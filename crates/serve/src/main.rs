//! The `dae-serve` binary: a long-lived sweep server over one shared
//! [`dae_core::SweepSession`].
//!
//! ```text
//! dae-serve [--stdin]            serve newline-delimited requests on stdin,
//!                                responses on stdout (default; exits at EOF
//!                                once every sweep has finished)
//! dae-serve --tcp ADDR           listen on a TCP address (e.g. 127.0.0.1:7878)
//! dae-serve --unix PATH          listen on a Unix-domain socket
//! dae-serve --local FILE         run FILE's requests sequentially in-process
//!                                and print canonical grid-order output (the
//!                                oracle the smoke test diffs the served
//!                                output against)
//!       --no-cache               disable the session's sweep-result cache
//!       --cache-dir DIR          persist the sweep-result cache in DIR:
//!                                intact records are loaded on startup and
//!                                the resident set is compacted back on
//!                                clean exit, so a restarted server answers
//!                                previously-served grids without simulating
//! ```
//!
//! The wire format is specified in `docs/PROTOCOL.md`.  Diagnostics go to
//! stderr; stdout carries only protocol lines.
//!
//! The socket modes exit cleanly when any connection sends `shutdown`
//! (`mode=drain` finishes in-flight sweeps, `mode=abort` cancels them);
//! with no libc binding in the offline build there is no signal handler,
//! so the protocol verb is the supported shutdown path.

use dae_core::SweepSession;
use dae_serve::{await_drained, serve_connection, serve_local, serve_tcp, SweepServer};
use std::io::BufReader;
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// How long the socket modes wait for in-flight work after shutdown.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(60);

enum Mode {
    Stdin,
    Tcp(String),
    Unix(String),
    Local(String),
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: dae-serve [--stdin | --tcp ADDR | --unix PATH | --local FILE] \
         [--no-cache] [--cache-dir DIR]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut mode = Mode::Stdin;
    let mut cache = true;
    let mut cache_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--stdin" => mode = Mode::Stdin,
            "--tcp" => match args.next() {
                Some(addr) => mode = Mode::Tcp(addr),
                None => return usage(),
            },
            "--unix" => match args.next() {
                Some(path) => mode = Mode::Unix(path),
                None => return usage(),
            },
            "--local" => match args.next() {
                Some(path) => mode = Mode::Local(path),
                None => return usage(),
            },
            "--no-cache" => cache = false,
            "--cache-dir" => match args.next() {
                Some(dir) => cache_dir = Some(dir),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    if cache_dir.is_some() && !cache {
        eprintln!("dae-serve: --cache-dir needs the cache (drop --no-cache)");
        return ExitCode::from(2);
    }
    let mut session = SweepSession::new();
    session.set_cache_enabled(cache);
    let server = Arc::new(SweepServer::with_session(session));
    if let Some(dir) = &cache_dir {
        match server.attach_cache_store(std::path::Path::new(dir)) {
            Ok(loaded) => {
                eprintln!("dae-serve: cache store {dir} attached ({loaded} records loaded)")
            }
            Err(e) => {
                eprintln!("dae-serve: cannot attach cache store {dir}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let result = match mode {
        Mode::Stdin => {
            eprintln!("dae-serve: serving stdin (cache {})", on_off(cache));
            serve_connection(&server, std::io::stdin().lock(), std::io::stdout())
        }
        Mode::Tcp(addr) => match TcpListener::bind(&addr) {
            Ok(listener) => {
                eprintln!(
                    "dae-serve: listening on tcp {} (cache {})",
                    listener.local_addr().map_or(addr, |a| a.to_string()),
                    on_off(cache)
                );
                serve_tcp(&server, &listener)
            }
            Err(e) => {
                eprintln!("dae-serve: cannot bind {addr}: {e}");
                return ExitCode::FAILURE;
            }
        },
        Mode::Unix(path) => serve_unix_at(&server, &path, cache),
        Mode::Local(path) => match std::fs::File::open(&path) {
            Ok(file) => serve_local(&server, BufReader::new(file), std::io::stdout()),
            Err(e) => {
                eprintln!("dae-serve: cannot open {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    // Socket modes return from their accept loops when a `shutdown`
    // request arrives; give the in-flight drainers a bounded window to
    // write their final `done` lines before the process exits.
    if server.is_shutting_down() && !await_drained(&server, DRAIN_TIMEOUT) {
        eprintln!("dae-serve: shutdown drain timed out with work still queued");
        return ExitCode::FAILURE;
    }
    // Compact the persistent log down to the resident entries so the next
    // launch replays exactly the warm set.  Every exit path above has
    // settled in-flight work by now.
    if cache_dir.is_some() {
        if let Err(e) = server.persist_cache() {
            eprintln!("dae-serve: cache store compaction failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dae-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn on_off(enabled: bool) -> &'static str {
    if enabled {
        "on"
    } else {
        "off"
    }
}

#[cfg(unix)]
fn serve_unix_at(server: &Arc<SweepServer>, path: &str, cache: bool) -> std::io::Result<()> {
    // A previous run's socket file would make the bind fail.
    let _ = std::fs::remove_file(path);
    let listener = std::os::unix::net::UnixListener::bind(path)?;
    eprintln!(
        "dae-serve: listening on unix {path} (cache {})",
        on_off(cache)
    );
    dae_serve::serve_unix(server, &listener)
}

#[cfg(not(unix))]
fn serve_unix_at(_server: &Arc<SweepServer>, _path: &str, _cache: bool) -> std::io::Result<()> {
    Err(std::io::Error::other(
        "unix-domain sockets are not available on this platform",
    ))
}
