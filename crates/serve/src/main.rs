//! The `dae-serve` binary: a long-lived sweep server over one shared
//! [`dae_core::SweepSession`].
//!
//! ```text
//! dae-serve [--stdin]            serve newline-delimited requests on stdin,
//!                                responses on stdout (default; exits at EOF
//!                                once every sweep has finished)
//! dae-serve --tcp ADDR           listen on a TCP address (e.g. 127.0.0.1:7878)
//! dae-serve --unix PATH          listen on a Unix-domain socket
//! dae-serve --local FILE         run FILE's requests sequentially in-process
//!                                and print canonical grid-order output (the
//!                                oracle the smoke test diffs the served
//!                                output against)
//!       --no-cache               disable the session's sweep-result cache
//!       --cache-dir DIR          persist the sweep-result cache in DIR:
//!                                intact records are loaded on startup and
//!                                the resident set is compacted back on
//!                                clean exit, so a restarted server answers
//!                                previously-served grids without simulating
//!       --coordinator B1,B2,…    run as a shard coordinator over the listed
//!                                backend addresses instead of simulating
//!                                locally: grids are partitioned across the
//!                                backends by consistent hashing on each
//!                                point's sweep-cache key, and points lost to
//!                                a dead backend are re-dispatched to the
//!                                survivors (composes with --stdin or --tcp;
//!                                the session flags do not apply — caching
//!                                happens on the backends)
//!       --retry-timeout-ms N     coordinator only: re-dispatch a point that
//!                                sat undelivered on one backend this long
//!                                (default 30000)
//! ```
//!
//! The wire format is specified in `docs/PROTOCOL.md`.  Diagnostics go to
//! stderr; stdout carries only protocol lines.
//!
//! The socket modes exit cleanly when any connection sends `shutdown`
//! (`mode=drain` finishes in-flight sweeps, `mode=abort` cancels them);
//! with no libc binding in the offline build there is no signal handler,
//! so the protocol verb is the supported shutdown path.

use dae_core::SweepSession;
use dae_serve::{
    await_drained, serve_connection, serve_coordinator_connection, serve_coordinator_tcp,
    serve_local, serve_tcp, Coordinator, CoordinatorConfig, SweepServer,
};
use std::io::BufReader;
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// How long the socket modes wait for in-flight work after shutdown.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(60);

enum Mode {
    Stdin,
    Tcp(String),
    Unix(String),
    Local(String),
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: dae-serve [--stdin | --tcp ADDR | --unix PATH | --local FILE] \
         [--no-cache] [--cache-dir DIR] \
         [--coordinator B1,B2,... [--retry-timeout-ms N]]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut mode = Mode::Stdin;
    let mut cache = true;
    let mut cache_dir: Option<String> = None;
    let mut backends: Option<Vec<String>> = None;
    let mut retry_timeout_ms: Option<u64> = None;
    let mut session_flags = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--stdin" => mode = Mode::Stdin,
            "--tcp" => match args.next() {
                Some(addr) => mode = Mode::Tcp(addr),
                None => return usage(),
            },
            "--unix" => match args.next() {
                Some(path) => mode = Mode::Unix(path),
                None => return usage(),
            },
            "--local" => match args.next() {
                Some(path) => mode = Mode::Local(path),
                None => return usage(),
            },
            "--no-cache" => {
                cache = false;
                session_flags = true;
            }
            "--cache-dir" => match args.next() {
                Some(dir) => {
                    cache_dir = Some(dir);
                    session_flags = true;
                }
                None => return usage(),
            },
            "--coordinator" => match args.next() {
                Some(list) => {
                    let addrs: Vec<String> = list
                        .split(',')
                        .map(str::trim)
                        .filter(|a| !a.is_empty())
                        .map(str::to_string)
                        .collect();
                    if addrs.is_empty() {
                        eprintln!("dae-serve: --coordinator needs at least one backend address");
                        return ExitCode::from(2);
                    }
                    backends = Some(addrs);
                }
                None => return usage(),
            },
            "--retry-timeout-ms" => match args.next().and_then(|n| n.parse().ok()) {
                Some(ms) if ms > 0 => retry_timeout_ms = Some(ms),
                _ => return usage(),
            },
            _ => return usage(),
        }
    }

    if let Some(backends) = backends {
        // Coordinator mode owns no session: the session flags belong to the
        // backends, and the file-driven oracle / unix modes are not wired.
        if session_flags {
            eprintln!(
                "dae-serve: --coordinator composes with --stdin or --tcp only; \
                 pass --no-cache / --cache-dir to the backends instead"
            );
            return ExitCode::from(2);
        }
        if matches!(mode, Mode::Unix(_) | Mode::Local(_)) {
            eprintln!("dae-serve: --coordinator composes with --stdin or --tcp only");
            return ExitCode::from(2);
        }
        return run_coordinator(&backends, retry_timeout_ms, &mode);
    }
    if retry_timeout_ms.is_some() {
        eprintln!("dae-serve: --retry-timeout-ms needs --coordinator");
        return ExitCode::from(2);
    }

    if cache_dir.is_some() && !cache {
        eprintln!("dae-serve: --cache-dir needs the cache (drop --no-cache)");
        return ExitCode::from(2);
    }
    let mut session = SweepSession::new();
    session.set_cache_enabled(cache);
    let server = Arc::new(SweepServer::with_session(session));
    if let Some(dir) = &cache_dir {
        match server.attach_cache_store(std::path::Path::new(dir)) {
            Ok(loaded) => {
                eprintln!("dae-serve: cache store {dir} attached ({loaded} records loaded)")
            }
            Err(e) => {
                eprintln!("dae-serve: cannot attach cache store {dir}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let result = match mode {
        Mode::Stdin => {
            eprintln!("dae-serve: serving stdin (cache {})", on_off(cache));
            serve_connection(&server, std::io::stdin().lock(), std::io::stdout())
        }
        Mode::Tcp(addr) => match TcpListener::bind(&addr) {
            Ok(listener) => {
                eprintln!(
                    "dae-serve: listening on tcp {} (cache {})",
                    listener.local_addr().map_or(addr, |a| a.to_string()),
                    on_off(cache)
                );
                serve_tcp(&server, &listener)
            }
            Err(e) => {
                eprintln!("dae-serve: cannot bind {addr}: {e}");
                return ExitCode::FAILURE;
            }
        },
        Mode::Unix(path) => serve_unix_at(&server, &path, cache),
        Mode::Local(path) => match std::fs::File::open(&path) {
            Ok(file) => serve_local(&server, BufReader::new(file), std::io::stdout()),
            Err(e) => {
                eprintln!("dae-serve: cannot open {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    // Socket modes return from their accept loops when a `shutdown`
    // request arrives; give the in-flight drainers a bounded window to
    // write their final `done` lines before the process exits.
    if server.is_shutting_down() && !await_drained(&server, DRAIN_TIMEOUT) {
        eprintln!("dae-serve: shutdown drain timed out with work still queued");
        return ExitCode::FAILURE;
    }
    // Compact the persistent log down to the resident entries so the next
    // launch replays exactly the warm set.  Every exit path above has
    // settled in-flight work by now.
    if cache_dir.is_some() {
        if let Err(e) = server.persist_cache() {
            eprintln!("dae-serve: cache store compaction failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dae-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Runs the binary as a shard coordinator over `backends` (see the crate
/// docs and `docs/PROTOCOL.md` § "Shard coordinator").
fn run_coordinator(backends: &[String], retry_timeout_ms: Option<u64>, mode: &Mode) -> ExitCode {
    let mut config = CoordinatorConfig::default();
    if let Some(ms) = retry_timeout_ms {
        config.retry_timeout = Duration::from_millis(ms);
    }
    let coordinator = match Coordinator::connect_with(backends, config) {
        Ok(coordinator) => Arc::new(coordinator),
        Err(e) => {
            eprintln!("dae-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match mode {
        Mode::Stdin => {
            eprintln!(
                "dae-serve: coordinating {} backends on stdin",
                backends.len()
            );
            serve_coordinator_connection(&coordinator, std::io::stdin().lock(), std::io::stdout())
        }
        Mode::Tcp(addr) => match TcpListener::bind(addr) {
            Ok(listener) => {
                eprintln!(
                    "dae-serve: listening on tcp {} (coordinating {} backends)",
                    listener
                        .local_addr()
                        .map_or_else(|_| addr.clone(), |a| a.to_string()),
                    backends.len()
                );
                serve_coordinator_tcp(&coordinator, &listener)
            }
            Err(e) => {
                eprintln!("dae-serve: cannot bind {addr}: {e}");
                return ExitCode::FAILURE;
            }
        },
        // main() refused these combinations already.
        Mode::Unix(_) | Mode::Local(_) => {
            eprintln!("dae-serve: --coordinator composes with --stdin or --tcp only");
            return ExitCode::from(2);
        }
    };
    // Mirror the single-server drain: give re-dispatches and in-flight
    // backend work a bounded window to settle before exiting.
    if coordinator.is_shutting_down() && !coordinator.await_settled(DRAIN_TIMEOUT) {
        eprintln!("dae-serve: shutdown drain timed out with points still pending");
        return ExitCode::FAILURE;
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dae-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn on_off(enabled: bool) -> &'static str {
    if enabled {
        "on"
    } else {
        "off"
    }
}

#[cfg(unix)]
fn serve_unix_at(server: &Arc<SweepServer>, path: &str, cache: bool) -> std::io::Result<()> {
    // A previous run's socket file would make the bind fail.
    let _ = std::fs::remove_file(path);
    let listener = std::os::unix::net::UnixListener::bind(path)?;
    eprintln!(
        "dae-serve: listening on unix {path} (cache {})",
        on_off(cache)
    );
    dae_serve::serve_unix(server, &listener)
}

#[cfg(not(unix))]
fn serve_unix_at(_server: &Arc<SweepServer>, _path: &str, _cache: bool) -> std::io::Result<()> {
    Err(std::io::Error::other(
        "unix-domain sockets are not available on this platform",
    ))
}
