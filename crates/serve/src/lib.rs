//! # dae-serve — a long-lived sweep server over [`dae_core::SweepSession`]
//!
//! Every figure of the paper is a (machine × window × memory-differential)
//! sweep, and the reproduction's north star is a resident service rather
//! than a batch tool.  This crate is the serving front end: a line-based
//! protocol (newline-delimited requests and responses; the vendored serde
//! stub has no real serialization, so the format is hand-written text —
//! see `docs/PROTOCOL.md`) over one shared sweep session.
//!
//! * [`protocol`] — the wire format: [`Request`] / [`Response`] parsing
//!   and printing shared by the server, the clients and the tests, plus
//!   the inline-kernel grammar ([`parse_kernel`]).
//! * [`server`] — [`SweepServer`] (the shared session behind one brief
//!   mutex), [`serve_connection`] (one client: concurrent tagged sweeps,
//!   per-request cancellation), and the stdin / TCP / Unix-socket accept
//!   loops.
//! * [`coordinator`] — the shard coordinator: the same wire protocol over
//!   a fleet of backend `dae-serve` processes, with each grid point placed
//!   by consistent hashing on its sweep-cache key
//!   ([`dae_core::cache_key_digest`]) so every shard's result cache stays
//!   hot, and with undelivered points re-dispatched when a backend dies.
//!
//! What the session layer provides, the server inherits: lowered programs
//! pin once per `(source, iterations)` and are shared by every client, the
//! sweep-result cache answers repeated points without simulating (the
//! figure grids overlap heavily), streamed grids deliver per point with no
//! full-grid barrier, and cancellation drops pending points mid-flight.
//!
//! ## Example
//!
//! ```
//! use dae_serve::{parse_response, serve_connection, Response, SweepServer};
//! use std::sync::Arc;
//!
//! let server = Arc::new(SweepServer::new());
//! let requests = "sweep id=demo trace=TRFD iterations=60 machines=dm \
//!                 windows=16 mds=60 mode=batch\n";
//! let mut output = Vec::new();
//! serve_connection(&server, requests.as_bytes(), &mut output).unwrap();
//! let lines = String::from_utf8(output).unwrap();
//! let mut responses = lines.lines().map(|l| parse_response(l).unwrap());
//! assert!(matches!(responses.next(), Some(Response::Point { .. })));
//! assert!(matches!(
//!     responses.next(),
//!     Some(Response::Done { delivered: 1, .. })
//! ));
//! ```

pub mod coordinator;
pub mod protocol;
pub mod server;

pub use coordinator::{
    serve_coordinator_connection, serve_coordinator_tcp, Coordinator, CoordinatorConfig,
    Partitioner,
};

pub use protocol::{
    machine_token, parse_kernel, parse_request, parse_response, window_token, CacheAction,
    DeliveryMode, DoneStatus, Request, RequestError, Response, ShutdownMode, SweepRequest,
    TraceSource, DEFAULT_ITERATIONS, MAX_ITERATIONS, MAX_POINTS,
};

/// The scheduling band of a sweep request's point jobs (the wire
/// `priority=` field), re-exported from `dae_core` for clients.
pub use dae_core::Priority;
#[cfg(unix)]
pub use server::serve_unix;
pub use server::{
    await_drained, serve_connection, serve_local, serve_tcp, ClientGuard, ServerLimits, Submission,
    SubmitError, SweepServer,
};
