//! The serving layer: one shared [`SweepSession`] multiplexed across
//! client connections.
//!
//! A [`SweepServer`] owns the session (and a map resolving request trace
//! sources to pinned lowerings) behind one mutex.  The mutex is held only
//! while a request is *submitted* — resolving the trace, pinning a missing
//! lowering, and handing the grid to
//! [`SweepSession::stream_cancellable`], which returns immediately — so
//! the simulations themselves run unlocked on the global worker pool and
//! grids from concurrent clients interleave point by point.
//!
//! Each connection runs [`serve_connection`]: a reader loop that parses
//! request lines and, per sweep, a detached *drainer* thread that copies
//! the stream's results to the connection writer as tagged `point` lines
//! (stream mode) or in grid order once complete (batch mode), followed by
//! a `done` line.  Because every line is tagged with its request id, a
//! client may keep several sweeps in flight and cancel any of them
//! mid-flight ([`CancelToken`]); pending points of a cancelled request are
//! never simulated.

use crate::protocol::{parse_request, DeliveryMode, Request, Response, SweepRequest};
use dae_core::{CancelToken, SweepSession, SweepStream, TraceId};
use dae_machines::pool_diagnostics;
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// A long-lived sweep service over one shared [`SweepSession`].
///
/// Clone-free sharing: wrap it in an [`Arc`] and hand it to any number of
/// connection handlers ([`serve_connection`], [`serve_tcp`],
/// [`serve_unix`]).
#[derive(Debug)]
pub struct SweepServer {
    state: Mutex<ServerState>,
}

#[derive(Debug)]
struct ServerState {
    session: SweepSession,
    /// Resolves trace sources to their pinned lowering: `(source key,
    /// iterations) → TraceId`.  Requests with equal keys share one
    /// lowering — and therefore the session's sweep-result cache —
    /// across every client.
    programs: HashMap<(String, u64), TraceId>,
}

/// A submitted sweep: the result stream plus the handle that cancels it.
#[derive(Debug)]
pub struct Submission {
    /// Per-point results, in completion order.
    pub stream: SweepStream,
    /// Cancels the not-yet-started points of this request.
    pub token: CancelToken,
}

impl Default for SweepServer {
    fn default() -> Self {
        SweepServer::new()
    }
}

impl SweepServer {
    /// A server over a fresh session (result cache enabled).
    #[must_use]
    pub fn new() -> Self {
        SweepServer::with_session(SweepSession::new())
    }

    /// A server over a caller-configured session (scalar mode, cache
    /// toggle).
    #[must_use]
    pub fn with_session(session: SweepSession) -> Self {
        SweepServer {
            state: Mutex::new(ServerState {
                session,
                programs: HashMap::new(),
            }),
        }
    }

    /// Submits a sweep request: resolves (pinning on first sight) the
    /// trace source, enqueues the grid on the shared session, and returns
    /// the result stream with its cancellation token.  Returns as soon as
    /// the points are queued — results arrive on the stream as workers
    /// finish.
    ///
    /// # Errors
    ///
    /// Reports an inline kernel that fails validation.
    ///
    /// # Panics
    ///
    /// Panics if the server mutex was poisoned by a panicking submission.
    pub fn submit(&self, request: &SweepRequest) -> Result<Submission, String> {
        let key = (request.source.key(), request.iterations);
        // Fast path: the source is already pinned — submit under one brief
        // lock.
        {
            let mut state = self.state.lock().expect("server state poisoned");
            if let Some(&id) = state.programs.get(&key) {
                return Ok(Self::enqueue(&mut state, request, id));
            }
        }
        // First sight: trace expansion and lowering are pure and can take
        // whole milliseconds at large iteration counts, so they run
        // *outside* the lock — a client pinning a big program must not
        // stall every other client's submissions.
        let trace = request.source.trace(request.iterations)?;
        let lowered = dae_core::LoweredTrace::new(&trace);
        let mut state = self.state.lock().expect("server state poisoned");
        let id = match state.programs.get(&key) {
            // Another client pinned the same source while we lowered; use
            // theirs (and drop ours) so both share one cache identity.
            Some(&id) => id,
            None => {
                let id = state.session.pin_lowered(lowered);
                state.programs.insert(key, id);
                id
            }
        };
        Ok(Self::enqueue(&mut state, request, id))
    }

    /// Enqueues the request's grid on the locked session.
    fn enqueue(state: &mut ServerState, request: &SweepRequest, id: TraceId) -> Submission {
        let points = request.points(id);
        let token = CancelToken::new();
        let stream = state.session.stream_cancellable(&points, &token);
        Submission { stream, token }
    }

    /// The counters behind the `stats` reply: session activity, pin and
    /// sweep-result cache state, and the process-wide simulation-pool
    /// diagnostics (`dae_machines::pool_diagnostics`), in one flat list.
    ///
    /// # Panics
    ///
    /// Panics if the server mutex was poisoned by a panicking submission.
    #[must_use]
    pub fn stats_fields(&self) -> Vec<(String, u64)> {
        let state = self.state.lock().expect("server state poisoned");
        let stats = state.session.stats();
        let cache = state.session.cache_stats();
        let pools = pool_diagnostics();
        vec![
            ("pinned".to_string(), stats.pinned_traces),
            ("pin_hits".to_string(), stats.pin_hits),
            ("batched_points".to_string(), stats.batched_points),
            ("streamed_points".to_string(), stats.streamed_points),
            ("cache_entries".to_string(), cache.entries as u64),
            ("cache_hits".to_string(), cache.hits),
            ("cache_misses".to_string(), cache.misses),
            ("warm_unit_takes".to_string(), pools.warm_unit_takes),
            ("fresh_unit_takes".to_string(), pools.fresh_unit_takes),
            ("template_hits".to_string(), pools.template_hits),
        ]
    }
}

/// One in-flight request of a connection, as the reader loop tracks it.
struct Active {
    token: CancelToken,
    finished: Arc<AtomicBool>,
}

fn write_line<W: Write>(writer: &Mutex<W>, response: &Response) -> bool {
    let mut writer = writer.lock().expect("connection writer poisoned");
    // A failed write means the client went away; callers use the signal to
    // cancel the work they were relaying.
    writeln!(writer, "{response}")
        .and_then(|()| writer.flush())
        .is_ok()
}

/// Drains one submission to the shared connection writer: `point` lines
/// (immediately in stream mode, sorted into grid order in batch mode)
/// followed by the request's `done` accounting line.
fn drain<W: Write>(mut submission: Submission, id: &str, mode: DeliveryMode, writer: &Mutex<W>) {
    let total = submission.stream.total();
    let mut delivered = 0usize;
    let mut cached = 0u64;
    let point_line = |p: &dae_core::StreamedPoint| {
        let (_, machine, window, md) = p.point;
        Response::Point {
            id: id.to_string(),
            index: p.index,
            machine,
            window,
            md,
            cycles: p.cycles,
        }
    };
    match mode {
        DeliveryMode::Stream => {
            for point in submission.stream.by_ref() {
                delivered += 1;
                cached += u64::from(point.cached);
                if !write_line(writer, &point_line(&point)) {
                    // The client is gone: stop simulating what no one will
                    // read.  The stream still drains (skipped points are
                    // cheap), keeping the accounting consistent.
                    submission.token.cancel();
                }
            }
        }
        DeliveryMode::Batch => {
            let mut points: Vec<_> = submission.stream.by_ref().collect();
            points.sort_by_key(|p| p.index);
            delivered = points.len();
            for point in &points {
                cached += u64::from(point.cached);
                write_line(writer, &point_line(point));
            }
        }
    }
    let _ = write_line(
        writer,
        &Response::Done {
            id: id.to_string(),
            points: total,
            delivered,
            dropped: submission.stream.skipped(),
            cached,
        },
    );
}

/// Serves one client connection: reads newline-delimited requests from
/// `reader` until end of file, writes tagged responses to `writer`.
/// Several sweeps may be in flight at once (each drains on its own
/// thread); the call returns once the input is exhausted *and* every
/// submitted sweep has written its `done` line.
///
/// # Errors
///
/// Propagates read errors on the request stream; client-side write errors
/// only stop the affected response stream.
pub fn serve_connection<R, W>(server: &Arc<SweepServer>, reader: R, writer: W) -> io::Result<()>
where
    R: BufRead,
    W: Write + Send,
{
    let writer = Mutex::new(writer);
    // Scoped drainer threads: every submitted sweep is joined (its `done`
    // line written) before this call returns, even on a read error.
    std::thread::scope(|scope| {
        let mut active: HashMap<String, Active> = HashMap::new();
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            match parse_request(&line) {
                Err(e) => {
                    write_line(
                        &writer,
                        &Response::Error {
                            id: e.id,
                            message: e.message,
                        },
                    );
                }
                Ok(Request::Stats) => {
                    write_line(
                        &writer,
                        &Response::Stats {
                            fields: server.stats_fields(),
                        },
                    );
                }
                Ok(Request::Cancel { id }) => match active.get(&id) {
                    Some(request) if !request.finished.load(Ordering::Acquire) => {
                        request.token.cancel();
                        write_line(&writer, &Response::Cancelled { id });
                    }
                    _ => {
                        write_line(
                            &writer,
                            &Response::Error {
                                id: Some(id),
                                message: "no such active request".to_string(),
                            },
                        );
                    }
                },
                Ok(Request::Sweep(request)) => {
                    active.retain(|_, a| !a.finished.load(Ordering::Acquire));
                    if active.contains_key(&request.id) {
                        write_line(
                            &writer,
                            &Response::Error {
                                id: Some(request.id),
                                message: "request id already active".to_string(),
                            },
                        );
                        continue;
                    }
                    match server.submit(&request) {
                        Err(message) => {
                            write_line(
                                &writer,
                                &Response::Error {
                                    id: Some(request.id),
                                    message,
                                },
                            );
                        }
                        Ok(submission) => {
                            let finished = Arc::new(AtomicBool::new(false));
                            active.insert(
                                request.id.clone(),
                                Active {
                                    token: submission.token.clone(),
                                    finished: Arc::clone(&finished),
                                },
                            );
                            let writer = &writer;
                            let finished = Arc::clone(&finished);
                            scope.spawn(move || {
                                drain(submission, &request.id, request.mode, writer);
                                finished.store(true, Ordering::Release);
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    })
}

/// Runs the same requests *sequentially in-process* — each sweep drains to
/// completion, in grid order, before the next line is read — producing the
/// canonical output the streamed server paths are diffed against (the
/// `--local` mode of the binary, used by `scripts/serve_smoke.sh`).
/// `cancel` is rejected (nothing is ever in flight here).
///
/// # Errors
///
/// Propagates read and write errors.
pub fn serve_local<R, W>(server: &Arc<SweepServer>, reader: R, mut writer: W) -> io::Result<()>
where
    R: BufRead,
    W: Write,
{
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = match parse_request(&line) {
            Err(e) => Some(Response::Error {
                id: e.id,
                message: e.message,
            }),
            Ok(Request::Stats) => Some(Response::Stats {
                fields: server.stats_fields(),
            }),
            Ok(Request::Cancel { id }) => Some(Response::Error {
                id: Some(id),
                message: "local mode runs requests to completion; nothing to cancel".to_string(),
            }),
            Ok(Request::Sweep(request)) => match server.submit(&request) {
                Err(message) => Some(Response::Error {
                    id: Some(request.id),
                    message,
                }),
                Ok(submission) => {
                    // Batch-order delivery regardless of the requested
                    // mode: local output is the order-independent oracle.
                    let lock = Mutex::new(&mut writer);
                    drain(submission, &request.id, DeliveryMode::Batch, &lock);
                    None
                }
            },
        };
        if let Some(response) = response {
            writeln!(writer, "{response}")?;
        }
    }
    Ok(())
}

/// Accepts TCP connections forever, serving each on its own thread over
/// the shared server.
///
/// # Errors
///
/// Propagates accept errors (per-connection I/O errors only end that
/// connection).
pub fn serve_tcp(server: &Arc<SweepServer>, listener: &TcpListener) -> io::Result<()> {
    for connection in listener.incoming() {
        let connection = connection?;
        let server = Arc::clone(server);
        std::thread::spawn(move || {
            let reader = match connection.try_clone() {
                Ok(read_half) => BufReader::new(read_half),
                Err(_) => return,
            };
            let _ = serve_connection(&server, reader, connection);
        });
    }
    Ok(())
}

/// Accepts Unix-domain connections forever, serving each on its own
/// thread over the shared server.
///
/// # Errors
///
/// Propagates accept errors (per-connection I/O errors only end that
/// connection).
#[cfg(unix)]
pub fn serve_unix(
    server: &Arc<SweepServer>,
    listener: &std::os::unix::net::UnixListener,
) -> io::Result<()> {
    for connection in listener.incoming() {
        let connection = connection?;
        let server = Arc::clone(server);
        std::thread::spawn(move || {
            let reader = match connection.try_clone() {
                Ok(read_half) => BufReader::new(read_half),
                Err(_) => return,
            };
            let _ = serve_connection(&server, reader, connection);
        });
    }
    Ok(())
}
