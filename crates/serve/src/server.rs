//! The serving layer: one shared [`SweepSession`] multiplexed across
//! client connections.
//!
//! A [`SweepServer`] owns the session (and a map resolving request trace
//! sources to pinned lowerings) behind one mutex.  The mutex is held only
//! while a request is *submitted* — resolving the trace, pinning a missing
//! lowering, and handing the grid to
//! [`SweepSession::stream_classified`], which returns immediately — so
//! the simulations themselves run unlocked on the global worker pool and
//! grids from concurrent clients interleave point by point.  Each grid's
//! jobs are tagged with the request's `priority=` band and the
//! connection's client id: the pool serves interactive jobs before queued
//! bulk grids and interleaves clients round-robin within a band.
//!
//! Each connection runs [`serve_connection`]: a reader loop that parses
//! request lines and, per sweep, a detached *drainer* thread that copies
//! the stream's results to the connection writer as tagged `point` lines
//! (stream mode) or in grid order once complete (batch mode), followed by
//! a `done` line.  Because every line is tagged with its request id, a
//! client may keep several sweeps in flight and cancel any of them
//! mid-flight ([`CancelToken`]).
//!
//! ## Fault tolerance
//!
//! The server is built to degrade gracefully, never to wedge:
//!
//! * **Cancellation is deep.**  A cancelled request's pending points are
//!   never simulated, and its *running* points are cooperatively aborted
//!   mid-simulation (the run engine polls the token) — cancel, deadline
//!   expiry, dead-client cleanup and `shutdown mode=abort` all reclaim the
//!   workers within microseconds.
//! * **Deadlines.**  A sweep with `deadline_ms=` is cancelled when the
//!   budget expires; finished points are delivered and the `done` line
//!   reports `status=timeout`.
//! * **Admission control.**  [`ServerLimits`] bounds the global queue
//!   depth and the per-client in-flight points; an over-limit sweep is
//!   refused with a structured `busy` line (retry hint included) instead
//!   of queueing without bound.
//! * **Panic isolation.**  A panicking point produces an `error` line and
//!   a `failed` count on its own request only; the session reports it as
//!   an event (no unwind into the drainer), the sweep cache is never
//!   populated with partial results, and every lock the server shares is
//!   poison-recovering, so one bad point cannot take the process down.
//! * **Graceful shutdown.**  A `shutdown` request stops admission and
//!   either drains or aborts in-flight work; the accept loops exit and the
//!   binary terminates once the queue is empty.

use crate::protocol::{
    parse_request, CacheAction, DeliveryMode, DoneStatus, Request, Response, ShutdownMode,
    SweepRequest,
};
use dae_core::{
    CancelToken, RequestClass, StreamWait, SweepEvent, SweepSession, SweepStream, TraceId,
};
use dae_machines::pool_diagnostics;
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, Weak};
use std::time::{Duration, Instant};

/// Admission-control bounds for a [`SweepServer`].
///
/// The defaults admit any single legal request (both limits are at least
/// [`crate::MAX_POINTS`], the largest grid the protocol accepts) while
/// bounding what a misbehaving client — or a crowd of well-behaved ones —
/// can pile onto the queue.
#[derive(Debug, Clone, Copy)]
pub struct ServerLimits {
    /// The most points one client may have queued or running at once.
    pub max_client_in_flight: usize,
    /// The most points the whole server may have queued or running.
    pub max_queue_depth: usize,
    /// The retry hint written on `busy` rejections, in milliseconds.
    pub retry_after_ms: u64,
}

impl Default for ServerLimits {
    fn default() -> Self {
        ServerLimits {
            max_client_in_flight: crate::protocol::MAX_POINTS,
            max_queue_depth: 4 * crate::protocol::MAX_POINTS,
            retry_after_ms: 50,
        }
    }
}

/// Why a submission was refused (see [`SweepServer::submit_for`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// Admission control refused the sweep: too much is already queued
    /// against `limit`.  Nothing was submitted; retry after the hint.
    Busy {
        /// Points currently counted against the exceeded limit.
        queued: usize,
        /// The exceeded limit.
        limit: usize,
        /// Retry hint, in milliseconds.
        retry_after_ms: u64,
    },
    /// The request is invalid (bad inline kernel) or the server is
    /// shutting down.
    Rejected(String),
}

/// A long-lived sweep service over one shared [`SweepSession`].
///
/// Clone-free sharing: wrap it in an [`Arc`] and hand it to any number of
/// connection handlers ([`serve_connection`], [`serve_tcp`],
/// [`serve_unix`]).
#[derive(Debug)]
pub struct SweepServer {
    state: Mutex<ServerState>,
    limits: ServerLimits,
    /// Points queued or running across all clients (admission increments
    /// under the state lock; drainers decrement as events settle).
    queue_depth: Arc<AtomicUsize>,
    shutting_down: AtomicBool,
    /// Monotone fault-path counters, reported by `stats`.
    aborted_points: AtomicU64,
    failed_points: AtomicU64,
    timeout_requests: AtomicU64,
    busy_rejections: AtomicU64,
}

#[derive(Debug)]
struct ServerState {
    session: SweepSession,
    /// Resolves trace sources to their pinned lowering: `(source key,
    /// iterations) → TraceId`.  Requests with equal keys share one
    /// lowering — and therefore the session's sweep-result cache —
    /// across every client.
    programs: HashMap<(String, u64), TraceId>,
    /// Registered clients: id → live in-flight point counter.
    clients: HashMap<u64, Arc<AtomicUsize>>,
    next_client: u64,
    /// Cancellation handles of live submissions (for `shutdown
    /// mode=abort`); entries whose liveness handle is dead are pruned
    /// opportunistically.
    active: Vec<(Weak<()>, CancelToken)>,
}

/// Releases a submission's admission reservation: one point at a time as
/// the drainer settles events, and whatever remains when the submission is
/// dropped (so a stream abandoned mid-way cannot leak queue depth).
#[derive(Debug)]
struct AdmissionGuard {
    global: Arc<AtomicUsize>,
    client: Option<Arc<AtomicUsize>>,
    remaining: usize,
}

impl AdmissionGuard {
    fn release(&mut self, n: usize) {
        let n = n.min(self.remaining);
        if n == 0 {
            return;
        }
        self.remaining -= n;
        self.global.fetch_sub(n, Ordering::Relaxed);
        if let Some(client) = &self.client {
            client.fetch_sub(n, Ordering::Relaxed);
        }
    }
}

impl Drop for AdmissionGuard {
    fn drop(&mut self) {
        self.release(self.remaining);
    }
}

/// A submitted sweep: the result stream plus the handle that cancels it.
#[derive(Debug)]
pub struct Submission {
    /// Per-point results, in completion order.
    pub stream: SweepStream,
    /// Cancels this request: pending points are skipped, running points
    /// abort mid-simulation.
    pub token: CancelToken,
    /// Admission bookkeeping (released per settled event, remainder on
    /// drop).
    guard: AdmissionGuard,
    /// Liveness handle for the server's shutdown registry.
    _live: Arc<()>,
}

/// One connection's registration with the server: its identity in
/// `stats` (`client_<id>=<in_flight>`) and the counter admission control
/// charges its sweeps against.  Deregisters on drop.
#[derive(Debug)]
pub struct ClientGuard<'a> {
    server: &'a SweepServer,
    id: u64,
    in_flight: Arc<AtomicUsize>,
}

impl ClientGuard<'_> {
    /// The server-assigned client id.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Points this client currently has queued or running.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Relaxed)
    }
}

impl Drop for ClientGuard<'_> {
    fn drop(&mut self) {
        self.server.lock_state().clients.remove(&self.id);
    }
}

impl Default for SweepServer {
    fn default() -> Self {
        SweepServer::new()
    }
}

impl SweepServer {
    /// A server over a fresh session (result cache enabled), default
    /// limits.
    #[must_use]
    pub fn new() -> Self {
        SweepServer::with_session(SweepSession::new())
    }

    /// A server over a caller-configured session (scalar mode, cache
    /// toggle), default limits.
    #[must_use]
    pub fn with_session(session: SweepSession) -> Self {
        SweepServer::with_session_and_limits(session, ServerLimits::default())
    }

    /// A server with explicit admission-control limits (fault suites use
    /// tiny ones; production keeps the defaults).
    #[must_use]
    pub fn with_session_and_limits(session: SweepSession, limits: ServerLimits) -> Self {
        SweepServer {
            state: Mutex::new(ServerState {
                session,
                programs: HashMap::new(),
                clients: HashMap::new(),
                next_client: 1,
                active: Vec::new(),
            }),
            limits,
            queue_depth: Arc::new(AtomicUsize::new(0)),
            shutting_down: AtomicBool::new(false),
            aborted_points: AtomicU64::new(0),
            failed_points: AtomicU64::new(0),
            timeout_requests: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
        }
    }

    /// The server's admission limits.
    #[must_use]
    pub fn limits(&self) -> ServerLimits {
        self.limits
    }

    /// Points currently queued or running across all clients.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Whether a `shutdown` request has been accepted (new sweeps are
    /// refused from then on).
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::Acquire)
    }

    /// The server state, recovering from mutex poisoning.  Every mutation
    /// under this lock is transactional (insertions of whole entries,
    /// counter bumps), so a panicking holder cannot leave torn state — and
    /// a server that keeps serving other clients after one request
    /// panicked is the whole point of the fault-tolerance layer.
    fn lock_state(&self) -> MutexGuard<'_, ServerState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers a connection for per-client admission accounting and
    /// `stats` visibility.
    #[must_use]
    pub fn register_client(&self) -> ClientGuard<'_> {
        let mut state = self.lock_state();
        let id = state.next_client;
        state.next_client += 1;
        let in_flight = Arc::new(AtomicUsize::new(0));
        state.clients.insert(id, Arc::clone(&in_flight));
        ClientGuard {
            server: self,
            id,
            in_flight,
        }
    }

    /// Stops admitting sweeps.  `Drain` lets in-flight work finish;
    /// `Abort` additionally cancels every live submission (their `done`
    /// lines still arrive, with the usual balanced accounting).
    pub fn shutdown(&self, mode: ShutdownMode) {
        self.shutting_down.store(true, Ordering::Release);
        if mode == ShutdownMode::Abort {
            let mut state = self.lock_state();
            state.active.retain(|(live, token)| {
                if live.upgrade().is_some() {
                    token.cancel();
                    true
                } else {
                    false
                }
            });
        }
    }

    /// [`SweepServer::submit_for`] without a client registration —
    /// admission is checked against the global queue only.
    ///
    /// # Errors
    ///
    /// See [`SweepServer::submit_for`].
    pub fn submit(&self, request: &SweepRequest) -> Result<Submission, SubmitError> {
        self.submit_for(request, None)
    }

    /// Submits a sweep request: checks admission, resolves (pinning on
    /// first sight) the trace source, enqueues the grid on the shared
    /// session, and returns the result stream with its cancellation
    /// token.  Returns as soon as the points are queued — results arrive
    /// on the stream as workers finish.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Busy`] when the global queue-depth cap or the
    /// client's in-flight cap would be exceeded (nothing is submitted);
    /// [`SubmitError::Rejected`] for invalid inline kernels and for any
    /// sweep after shutdown began.
    pub fn submit_for(
        &self,
        request: &SweepRequest,
        client: Option<&ClientGuard<'_>>,
    ) -> Result<Submission, SubmitError> {
        if self.is_shutting_down() {
            return Err(SubmitError::Rejected(
                "server is shutting down; not accepting new sweeps".to_string(),
            ));
        }
        let points = request.machines.len() * request.windows.len() * request.mds.len();
        let key = (request.source.key(), request.iterations);
        // Admission + fast-path submit under one brief lock.  Only
        // submissions (which hold the lock) increment the depth counters,
        // so the check-then-reserve pair is exact; drainers decrementing
        // concurrently can only make room, never take it.
        // Jobs are tagged with the connection's client id, so the pool's
        // fair-share rotor interleaves concurrent clients round-robin
        // within a priority band (clientless submissions share queue 0).
        let client_id = client.map_or(0, |c| c.id());
        let reserved = {
            let mut state = self.lock_state();
            self.admit(points, client)?;
            let guard = self.reserve(points, client);
            if let Some(&id) = state.programs.get(&key) {
                return Ok(Self::enqueue(&mut state, request, id, client_id, guard));
            }
            guard
        };
        // First sight: trace expansion and lowering are pure and can take
        // whole milliseconds at large iteration counts, so they run
        // *outside* the lock — a client pinning a big program must not
        // stall every other client's submissions.  The reservation above
        // stays held: the points are committed capacity either way.
        let trace = request
            .source
            .trace(request.iterations)
            .map_err(SubmitError::Rejected)?;
        let lowered = dae_core::LoweredTrace::new(&trace);
        let mut state = self.lock_state();
        let id = match state.programs.get(&key) {
            // Another client pinned the same source while we lowered; use
            // theirs (and drop ours) so both share one cache identity.
            Some(&id) => id,
            None => {
                let id = state.session.pin_lowered(lowered);
                state.programs.insert(key, id);
                id
            }
        };
        Ok(Self::enqueue(&mut state, request, id, client_id, reserved))
    }

    /// The admission check (caller holds the state lock).
    fn admit(&self, points: usize, client: Option<&ClientGuard<'_>>) -> Result<(), SubmitError> {
        let busy = |queued: usize, limit: usize| {
            self.busy_rejections.fetch_add(1, Ordering::Relaxed);
            Err(SubmitError::Busy {
                queued,
                limit,
                retry_after_ms: self.limits.retry_after_ms,
            })
        };
        let depth = self.queue_depth.load(Ordering::Relaxed);
        if depth + points > self.limits.max_queue_depth {
            return busy(depth, self.limits.max_queue_depth);
        }
        if let Some(client) = client {
            let in_flight = client.in_flight.load(Ordering::Relaxed);
            if in_flight + points > self.limits.max_client_in_flight {
                return busy(in_flight, self.limits.max_client_in_flight);
            }
        }
        Ok(())
    }

    /// Reserves `points` of queue capacity (caller holds the state lock
    /// and has passed [`SweepServer::admit`]).
    fn reserve(&self, points: usize, client: Option<&ClientGuard<'_>>) -> AdmissionGuard {
        self.queue_depth.fetch_add(points, Ordering::Relaxed);
        let client = client.map(|c| {
            c.in_flight.fetch_add(points, Ordering::Relaxed);
            Arc::clone(&c.in_flight)
        });
        AdmissionGuard {
            global: Arc::clone(&self.queue_depth),
            client,
            remaining: points,
        }
    }

    /// Enqueues the request's grid on the locked session and registers the
    /// submission for shutdown cancellation.
    fn enqueue(
        state: &mut ServerState,
        request: &SweepRequest,
        id: TraceId,
        client_id: u64,
        guard: AdmissionGuard,
    ) -> Submission {
        let points = request.points(id);
        let token = CancelToken::new();
        let class = RequestClass::new(request.priority, client_id);
        let stream = state.session.stream_classified(&points, &token, class);
        let live = Arc::new(());
        state.active.retain(|(l, _)| l.upgrade().is_some());
        state.active.push((Arc::downgrade(&live), token.clone()));
        Submission {
            stream,
            token,
            guard,
            _live: live,
        }
    }

    /// Applies a `cache` administration request and reports the cache's
    /// state afterwards.  `Clear` empties the map, truncates the attached
    /// store, and fences out every in-flight sweep's inserts; `Limit`
    /// (re)bounds the resident set, evicting down immediately.
    pub fn cache_action(&self, action: CacheAction) -> Response {
        let mut state = self.lock_state();
        match action {
            CacheAction::Clear => state.session.clear_cache(),
            CacheAction::Limit(limit) => state.session.set_cache_limit(limit),
        }
        Response::Cache {
            entries: state.session.cache_stats().entries,
            limit: state.session.cache_limit(),
        }
    }

    /// Attaches a persistent cache store rooted at `dir` to the shared
    /// session (see [`SweepSession::attach_cache_store`]), returning the
    /// number of records replayed into the cache.
    ///
    /// # Errors
    ///
    /// Propagates the store's I/O error when `dir` cannot be created or
    /// its log cannot be read.
    pub fn attach_cache_store(&self, dir: &std::path::Path) -> io::Result<u64> {
        self.lock_state().session.attach_cache_store(dir)
    }

    /// Compacts the attached cache store down to the resident entries —
    /// the supported shutdown path for `--cache-dir` servers.  A no-op
    /// without a store.
    ///
    /// # Errors
    ///
    /// Propagates the store's I/O error when the compacted log cannot be
    /// written.
    pub fn persist_cache(&self) -> io::Result<()> {
        self.lock_state().session.persist_cache()
    }

    /// The counters behind the `stats` reply: session activity, pin and
    /// sweep-result cache state, queue depth and per-client in-flight
    /// points, the fault-path counters, and the process-wide
    /// simulation-pool diagnostics (`dae_machines::pool_diagnostics`), in
    /// one flat list.
    #[must_use]
    pub fn stats_fields(&self) -> Vec<(String, u64)> {
        let state = self.lock_state();
        let stats = state.session.stats();
        let cache = state.session.cache_stats();
        let pools = pool_diagnostics();
        let pool_stats = rayon::global_pool_stats();
        let mut fields = vec![
            ("pinned".to_string(), stats.pinned_traces),
            ("pin_hits".to_string(), stats.pin_hits),
            ("batched_points".to_string(), stats.batched_points),
            ("streamed_points".to_string(), stats.streamed_points),
            ("cache_entries".to_string(), cache.entries as u64),
            ("cache_hits".to_string(), cache.hits),
            ("cache_misses".to_string(), cache.misses),
            ("cache_lookups".to_string(), cache.lookups),
            ("cache_evictions".to_string(), cache.evictions),
            ("cache_loaded".to_string(), cache.loaded),
            ("cache_persisted".to_string(), cache.persisted),
            ("cache_corrupt_records".to_string(), cache.corrupt_records),
            ("warm_unit_takes".to_string(), pools.warm_unit_takes),
            ("fresh_unit_takes".to_string(), pools.fresh_unit_takes),
            ("template_hits".to_string(), pools.template_hits),
            (
                "queue_depth".to_string(),
                self.queue_depth.load(Ordering::Relaxed) as u64,
            ),
            ("clients".to_string(), state.clients.len() as u64),
            (
                "aborted_points".to_string(),
                self.aborted_points.load(Ordering::Relaxed),
            ),
            (
                "failed_points".to_string(),
                self.failed_points.load(Ordering::Relaxed),
            ),
            (
                "timeout_requests".to_string(),
                self.timeout_requests.load(Ordering::Relaxed),
            ),
            (
                "busy_rejections".to_string(),
                self.busy_rejections.load(Ordering::Relaxed),
            ),
            ("worker_task_panics".to_string(), pool_stats.task_panics),
            // Work-stealing scheduler counters: steal traffic, claim-time
            // drops of cancelled jobs, and the per-band queue-depth gauges.
            ("steals".to_string(), pool_stats.steals),
            ("steal_attempts".to_string(), pool_stats.steal_attempts),
            ("local_pops".to_string(), pool_stats.local_pops),
            ("claim_drops".to_string(), pool_stats.claim_drops),
            (
                "queued_interactive".to_string(),
                pool_stats.queued_interactive,
            ),
            ("queued_normal".to_string(), pool_stats.queued_normal),
            ("queued_bulk".to_string(), pool_stats.queued_bulk),
        ];
        let mut clients: Vec<_> = state.clients.iter().collect();
        clients.sort_by_key(|&(&id, _)| id);
        for (&id, in_flight) in clients {
            fields.push((
                format!("client_{id}"),
                in_flight.load(Ordering::Relaxed) as u64,
            ));
        }
        fields
    }
}

/// One in-flight request of a connection, as the reader loop tracks it.
struct Active {
    token: CancelToken,
    finished: Arc<AtomicBool>,
}

pub(crate) fn write_line<W: Write>(writer: &Mutex<W>, response: &Response) -> bool {
    // Poison recovery: a writer is a byte sink whose worst torn state is a
    // partial line on a connection that is being abandoned anyway.
    let mut writer = writer.lock().unwrap_or_else(PoisonError::into_inner);
    // A failed write means the client went away; callers use the signal to
    // cancel the work they were relaying.
    writeln!(writer, "{response}")
        .and_then(|()| writer.flush())
        .is_ok()
}

/// Drains one submission to the shared connection writer: `point` lines
/// (immediately in stream mode, sorted into grid order in batch mode),
/// `error` lines for points whose simulation failed, and finally the
/// request's `done` accounting line with its terminal status.
///
/// A deadline, when present, bounds the whole drain: on expiry the token
/// is cancelled (running points abort mid-simulation) and the residue is
/// collected with `status=timeout`.  A failed client write likewise
/// cancels the token — dead-client cleanup stops simulating what no one
/// will read, *including* the points already running.
fn drain<W: Write>(
    server: &SweepServer,
    mut submission: Submission,
    id: &str,
    mode: DeliveryMode,
    deadline_ms: Option<u64>,
    writer: &Mutex<W>,
) {
    let total = submission.stream.total();
    let deadline = deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    let mut timed_out = false;
    let mut delivered = 0usize;
    let mut cached = 0u64;
    let mut batched: Vec<dae_core::StreamedPoint> = Vec::new();
    let mut failures: Vec<Response> = Vec::new();
    let point_line = |p: &dae_core::StreamedPoint| {
        let (_, machine, window, md) = p.point;
        Response::Point {
            id: id.to_string(),
            index: p.index,
            machine,
            window,
            md,
            cycles: p.cycles,
        }
    };
    loop {
        let event = match deadline.filter(|_| !timed_out) {
            // Deadline armed: wait only for the remaining budget.
            Some(at) => {
                let budget = at.saturating_duration_since(Instant::now());
                match submission.stream.next_event_timeout(budget) {
                    StreamWait::Event(event) => event,
                    StreamWait::Exhausted => break,
                    StreamWait::TimedOut => {
                        // Budget spent: cancel (running points abort at
                        // their next engine poll) and drain the residue
                        // without a deadline — it settles in microseconds.
                        timed_out = true;
                        server.timeout_requests.fetch_add(1, Ordering::Relaxed);
                        submission.token.cancel();
                        continue;
                    }
                }
            }
            None => match submission.stream.next_event() {
                Some(event) => event,
                None => break,
            },
        };
        submission.guard.release(1);
        match event {
            SweepEvent::Point(point) => {
                delivered += 1;
                cached += u64::from(point.cached);
                match mode {
                    DeliveryMode::Stream => {
                        if !write_line(writer, &point_line(&point)) {
                            // The client is gone: stop simulating what no
                            // one will read — pending points skip, running
                            // points abort.  The stream still drains,
                            // keeping the accounting consistent.
                            submission.token.cancel();
                        }
                    }
                    DeliveryMode::Batch => batched.push(point),
                }
            }
            SweepEvent::Skipped { .. } => {}
            SweepEvent::Aborted { .. } => {
                server.aborted_points.fetch_add(1, Ordering::Relaxed);
            }
            SweepEvent::Failed { index, message } => {
                server.failed_points.fetch_add(1, Ordering::Relaxed);
                let error = Response::Error {
                    id: Some(id.to_string()),
                    message: format!("point {index} failed: {message}"),
                };
                match mode {
                    DeliveryMode::Stream => {
                        if !write_line(writer, &error) {
                            submission.token.cancel();
                        }
                    }
                    DeliveryMode::Batch => failures.push(error),
                }
            }
        }
    }
    if mode == DeliveryMode::Batch {
        batched.sort_by_key(|p| p.index);
        for point in &batched {
            write_line(writer, &point_line(point));
        }
        for error in &failures {
            write_line(writer, error);
        }
    }
    let aborted = submission.stream.aborted();
    let failed = submission.stream.failed();
    let dropped = submission.stream.skipped();
    // One status per request, by severity (see `DoneStatus`).
    let status = if timed_out {
        DoneStatus::Timeout
    } else if failed > 0 {
        DoneStatus::Error
    } else if dropped + aborted > 0 {
        DoneStatus::Cancelled
    } else {
        DoneStatus::Ok
    };
    let _ = write_line(
        writer,
        &Response::Done {
            id: id.to_string(),
            points: total,
            delivered,
            dropped,
            aborted,
            failed,
            cached,
            status,
        },
    );
}

/// Serves one client connection: reads newline-delimited requests from
/// `reader` until end of file, writes tagged responses to `writer`.
/// Several sweeps may be in flight at once (each drains on its own
/// thread); the call returns once the input is exhausted *and* every
/// submitted sweep has written its `done` line.
///
/// The connection registers as a client for admission control: its sweeps
/// are bounded by [`ServerLimits::max_client_in_flight`] and its live
/// point count appears in `stats` as `client_<id>=`.  A `shutdown`
/// request stops the whole server admitting new sweeps and, in abort
/// mode, cancels in-flight work everywhere; this connection then stops
/// reading further requests (its in-flight drainers still finish).
///
/// # Errors
///
/// Propagates read errors on the request stream; client-side write errors
/// only stop the affected response stream.
pub fn serve_connection<R, W>(server: &Arc<SweepServer>, reader: R, writer: W) -> io::Result<()>
where
    R: BufRead,
    W: Write + Send,
{
    let writer = Mutex::new(writer);
    let client = server.register_client();
    // Scoped drainer threads: every submitted sweep is joined (its `done`
    // line written) before this call returns, even on a read error.
    std::thread::scope(|scope| {
        let mut active: HashMap<String, Active> = HashMap::new();
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            match parse_request(&line) {
                Err(e) => {
                    write_line(
                        &writer,
                        &Response::Error {
                            id: e.id,
                            message: e.message,
                        },
                    );
                }
                Ok(Request::Stats) => {
                    write_line(
                        &writer,
                        &Response::Stats {
                            fields: server.stats_fields(),
                        },
                    );
                }
                Ok(Request::Cache { action }) => {
                    write_line(&writer, &server.cache_action(action));
                }
                Ok(Request::Shutdown { mode }) => {
                    server.shutdown(mode);
                    write_line(&writer, &Response::Shutdown { mode });
                    // Stop reading: nothing this connection could send
                    // would be admitted.  The scope still joins the
                    // in-flight drainers, so their `done` lines land.
                    break;
                }
                Ok(Request::Cancel { id }) => match active.get(&id) {
                    Some(request) if !request.finished.load(Ordering::Acquire) => {
                        request.token.cancel();
                        write_line(&writer, &Response::Cancelled { id });
                    }
                    _ => {
                        write_line(
                            &writer,
                            &Response::Error {
                                id: Some(id),
                                message: "no such active request".to_string(),
                            },
                        );
                    }
                },
                Ok(Request::Sweep(request)) => {
                    active.retain(|_, a| !a.finished.load(Ordering::Acquire));
                    if active.contains_key(&request.id) {
                        write_line(
                            &writer,
                            &Response::Error {
                                id: Some(request.id),
                                message: "request id already active".to_string(),
                            },
                        );
                        continue;
                    }
                    match server.submit_for(&request, Some(&client)) {
                        Err(SubmitError::Busy {
                            queued,
                            limit,
                            retry_after_ms,
                        }) => {
                            write_line(
                                &writer,
                                &Response::Busy {
                                    id: request.id,
                                    queued,
                                    limit,
                                    retry_after_ms,
                                },
                            );
                        }
                        Err(SubmitError::Rejected(message)) => {
                            write_line(
                                &writer,
                                &Response::Error {
                                    id: Some(request.id),
                                    message,
                                },
                            );
                        }
                        Ok(submission) => {
                            let finished = Arc::new(AtomicBool::new(false));
                            active.insert(
                                request.id.clone(),
                                Active {
                                    token: submission.token.clone(),
                                    finished: Arc::clone(&finished),
                                },
                            );
                            let writer = &writer;
                            let server = Arc::clone(server);
                            let finished = Arc::clone(&finished);
                            scope.spawn(move || {
                                drain(
                                    &server,
                                    submission,
                                    &request.id,
                                    request.mode,
                                    request.deadline_ms,
                                    writer,
                                );
                                finished.store(true, Ordering::Release);
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    })
}

/// Runs the same requests *sequentially in-process* — each sweep drains to
/// completion, in grid order, before the next line is read — producing the
/// canonical output the streamed server paths are diffed against (the
/// `--local` mode of the binary, used by `scripts/serve_smoke.sh`).
/// `cancel` is rejected (nothing is ever in flight here); `shutdown` stops
/// reading.
///
/// # Errors
///
/// Propagates read and write errors.
pub fn serve_local<R, W>(server: &Arc<SweepServer>, reader: R, mut writer: W) -> io::Result<()>
where
    R: BufRead,
    W: Write,
{
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = match parse_request(&line) {
            Err(e) => Some(Response::Error {
                id: e.id,
                message: e.message,
            }),
            Ok(Request::Stats) => Some(Response::Stats {
                fields: server.stats_fields(),
            }),
            Ok(Request::Cache { action }) => Some(server.cache_action(action)),
            Ok(Request::Shutdown { mode }) => {
                server.shutdown(mode);
                writeln!(writer, "{}", Response::Shutdown { mode })?;
                return Ok(());
            }
            Ok(Request::Cancel { id }) => Some(Response::Error {
                id: Some(id),
                message: "local mode runs requests to completion; nothing to cancel".to_string(),
            }),
            Ok(Request::Sweep(request)) => match server.submit(&request) {
                Err(SubmitError::Busy { queued, limit, .. }) => Some(Response::Error {
                    id: Some(request.id),
                    message: format!("server busy ({queued} of {limit} points queued)"),
                }),
                Err(SubmitError::Rejected(message)) => Some(Response::Error {
                    id: Some(request.id),
                    message,
                }),
                Ok(submission) => {
                    // Batch-order delivery regardless of the requested
                    // mode: local output is the order-independent oracle.
                    // Deadlines are ignored here for the same reason.
                    let lock = Mutex::new(&mut writer);
                    drain(
                        server,
                        submission,
                        &request.id,
                        DeliveryMode::Batch,
                        None,
                        &lock,
                    );
                    None
                }
            },
        };
        if let Some(response) = response {
            writeln!(writer, "{response}")?;
        }
    }
    Ok(())
}

/// How often the accept loops wake to check for shutdown.
const ACCEPT_POLL: Duration = Duration::from_millis(50);

/// Accepts TCP connections until a `shutdown` request arrives (from any
/// connection), serving each on its own thread over the shared server.
/// Returns once shutdown begins; the binary then waits for the queue to
/// drain ([`await_drained`]) before exiting.
///
/// # Errors
///
/// Propagates accept errors (per-connection I/O errors only end that
/// connection).
pub fn serve_tcp(server: &Arc<SweepServer>, listener: &TcpListener) -> io::Result<()> {
    // Non-blocking accept so the loop can observe shutdown: with no libc
    // binding available there is no signal handling, and a blocking accept
    // would pin the process past the shutdown verb.
    listener.set_nonblocking(true)?;
    loop {
        if server.is_shutting_down() {
            return Ok(());
        }
        match listener.accept() {
            Ok((connection, _)) => {
                let server = Arc::clone(server);
                std::thread::spawn(move || {
                    if connection.set_nonblocking(false).is_err() {
                        return;
                    }
                    let reader = match connection.try_clone() {
                        Ok(read_half) => BufReader::new(read_half),
                        Err(_) => return,
                    };
                    let _ = serve_connection(&server, reader, connection);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) => return Err(e),
        }
    }
}

/// Accepts Unix-domain connections until shutdown, serving each on its own
/// thread over the shared server (see [`serve_tcp`]).
///
/// # Errors
///
/// Propagates accept errors (per-connection I/O errors only end that
/// connection).
#[cfg(unix)]
pub fn serve_unix(
    server: &Arc<SweepServer>,
    listener: &std::os::unix::net::UnixListener,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    loop {
        if server.is_shutting_down() {
            return Ok(());
        }
        match listener.accept() {
            Ok((connection, _)) => {
                let server = Arc::clone(server);
                std::thread::spawn(move || {
                    if connection.set_nonblocking(false).is_err() {
                        return;
                    }
                    let reader = match connection.try_clone() {
                        Ok(read_half) => BufReader::new(read_half),
                        Err(_) => return,
                    };
                    let _ = serve_connection(&server, reader, connection);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) => return Err(e),
        }
    }
}

/// Blocks until the server's queue is empty (every in-flight point
/// settled) or `timeout` passes — the exit path of the socket modes after
/// shutdown.  Returns whether the queue drained.
pub fn await_drained(server: &SweepServer, timeout: Duration) -> bool {
    let give_up = Instant::now() + timeout;
    while server.queue_depth() > 0 {
        if Instant::now() >= give_up {
            return false;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    true
}
