//! Property suite for the coordinator's consistent-hash partitioner: every
//! digest must land on an eligible backend (total coverage), placement
//! must be a pure function of the configuration (determinism), and
//! removing one backend must move *only* the keys that lived on it
//! (minimal reassignment) — the property that keeps the surviving shards'
//! result caches hot through a backend death.

use dae_serve::Partitioner;
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Total coverage: with at least one eligible backend every digest is
    /// assigned, the assignment is an eligible backend, and with none the
    /// partitioner says so instead of inventing one.
    #[test]
    fn every_digest_lands_on_an_eligible_backend(
        backends in 1usize..8,
        vnodes in 1usize..48,
        digests in vec(any::<u64>(), 1..64),
        alive_mask in any::<u8>(),
    ) {
        let partitioner = Partitioner::with_vnodes(backends, vnodes);
        let eligible = |b: usize| alive_mask & (1u8 << b) != 0;
        let any_eligible = (0..backends).any(eligible);
        for &digest in &digests {
            match partitioner.assign_among(digest, eligible) {
                Some(backend) => {
                    prop_assert!(any_eligible, "assignment with nobody eligible");
                    prop_assert!(backend < backends, "assignment out of range");
                    prop_assert!(eligible(backend), "assignment to an ineligible backend");
                }
                None => prop_assert!(!any_eligible, "no assignment despite eligible backends"),
            }
        }
    }

    /// Determinism: two independently built rings over the same
    /// configuration place every digest identically — the property that
    /// lets any coordinator (or a restarted one) agree on where a cached
    /// point lives.
    #[test]
    fn placement_is_a_pure_function_of_the_configuration(
        backends in 1usize..8,
        vnodes in 1usize..48,
        digests in vec(any::<u64>(), 1..64),
    ) {
        let first = Partitioner::with_vnodes(backends, vnodes);
        let second = Partitioner::with_vnodes(backends, vnodes);
        for &digest in &digests {
            prop_assert_eq!(first.assign(digest), second.assign(digest));
        }
    }

    /// Minimal reassignment: excluding one backend moves only the digests
    /// it owned.  Every digest owned by a survivor keeps its assignment
    /// bit for bit, and the dead backend's digests land on survivors.
    #[test]
    fn removing_a_backend_moves_only_its_own_keys(
        backends in 2usize..8,
        vnodes in 1usize..48,
        digests in vec(any::<u64>(), 1..64),
        removed_seed in any::<usize>(),
    ) {
        let partitioner = Partitioner::with_vnodes(backends, vnodes);
        let removed = removed_seed % backends;
        for &digest in &digests {
            let before = partitioner.assign(digest);
            let after = partitioner.assign_among(digest, |b| b != removed);
            let Some(before) = before else {
                prop_assert!(false, "total coverage is pinned above");
                unreachable!()
            };
            if before == removed {
                match after {
                    Some(after) => prop_assert!(
                        after != removed,
                        "a removed backend's key must move to a survivor"
                    ),
                    None => prop_assert!(false, "survivors exist, the key must land"),
                }
            } else {
                prop_assert_eq!(
                    after,
                    Some(before),
                    "a survivor's key must not move when another backend is removed"
                );
            }
        }
    }

    /// `assign` is exactly `assign_among` with everyone eligible.
    #[test]
    fn assign_is_assign_among_everyone(
        backends in 1usize..8,
        digests in vec(any::<u64>(), 1..32),
    ) {
        let partitioner = Partitioner::new(backends);
        for &digest in &digests {
            prop_assert_eq!(partitioner.assign(digest), partitioner.assign_among(digest, |_| true));
        }
    }
}
