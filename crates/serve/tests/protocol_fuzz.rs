//! Property fuzz of the wire-format parsers: no input line — raw bytes,
//! token soup, or a near-miss mutation of a valid request — may ever make
//! `parse_request` (or `parse_response`) panic.  Malformed lines must come
//! back as structured `Err`s, and whatever parses must survive a
//! print/parse round trip.
//!
//! The coordinator's backend-reply path is fuzzed on the same inputs: a
//! malformed, truncated or misdirected backend line must never panic the
//! coordinator — it is counted or ignored, both of which
//! `Coordinator::handle_backend_reply` absorbs without routing state.

use dae_serve::{parse_request, parse_response, CacheAction, Coordinator, Request};
use proptest::collection::vec;
use proptest::prelude::*;

/// A fragment drawn from the protocol's own vocabulary: verbs, field
/// names, values, separators — the inputs most likely to reach deep
/// parser states.
fn vocab() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("sweep".to_string()),
        Just("cancel".to_string()),
        Just("stats".to_string()),
        Just("shutdown".to_string()),
        Just("cache".to_string()),
        Just("clear".to_string()),
        Just("limit=4".to_string()),
        Just("limit=none".to_string()),
        Just("limit=0".to_string()),
        Just("limit=".to_string()),
        Just("id=a".to_string()),
        Just("id=".to_string()),
        Just("trace=TRFD".to_string()),
        Just("trace=".to_string()),
        Just("kernel=i;ld:%0;add:%1,$0".to_string()),
        Just("kernel=;;;".to_string()),
        Just("iterations=120".to_string()),
        Just("iterations=99999999999999999999".to_string()),
        Just("machines=dm,swsm".to_string()),
        Just("machines=,".to_string()),
        Just("windows=16".to_string()),
        Just("windows=0".to_string()),
        Just("mds=0,60".to_string()),
        Just("mds=-1".to_string()),
        Just("mode=stream".to_string()),
        Just("mode=sideways".to_string()),
        Just("deadline_ms=250".to_string()),
        Just("deadline_ms=0".to_string()),
        Just("deadline_ms=-7".to_string()),
        Just("deadline_ms=soon".to_string()),
        Just("priority=interactive".to_string()),
        Just("priority=bulk".to_string()),
        Just("priority=normal".to_string()),
        Just("priority=urgent".to_string()),
        Just("priority=".to_string()),
        Just("mode=abort".to_string()),
        Just("=".to_string()),
        Just("==".to_string()),
        Just("sweep=sweep".to_string()),
        (0u32..0x80)
            .prop_map(|c| { char::from_u32(c).map_or_else(String::new, |c| c.to_string()) }),
    ]
}

/// A fragment drawn from the *response* vocabulary — the lines a backend
/// sends a coordinator, plus near-miss field values.
fn response_vocab() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("point".to_string()),
        Just("done".to_string()),
        Just("cancelled".to_string()),
        Just("busy".to_string()),
        Just("error".to_string()),
        Just("stats".to_string()),
        Just("cache".to_string()),
        Just("shutdown".to_string()),
        Just("id=x1".to_string()),
        Just("id=x999999".to_string()),
        Just("id=".to_string()),
        Just("index=0".to_string()),
        Just("index=-3".to_string()),
        Just("machine=dm".to_string()),
        Just("machine=toaster".to_string()),
        Just("window=16".to_string()),
        Just("window=unlimited".to_string()),
        Just("md=60".to_string()),
        Just("cycles=1234".to_string()),
        Just("cycles=many".to_string()),
        Just("points=4".to_string()),
        Just("delivered=4".to_string()),
        Just("delivered=99999999999999999999".to_string()),
        Just("dropped=1".to_string()),
        Just("aborted=1".to_string()),
        Just("failed=1".to_string()),
        Just("cached=2".to_string()),
        Just("status=ok".to_string()),
        Just("status=error".to_string()),
        Just("status=timeout".to_string()),
        Just("message=point 0 failed: injected".to_string()),
        Just("queued=3".to_string()),
        Just("limit=2".to_string()),
        Just("retry_after_ms=10".to_string()),
        Just("entries=5".to_string()),
        Just("mode=drain".to_string()),
        Just("mode=abort".to_string()),
        Just("=".to_string()),
        (0u32..0x80)
            .prop_map(|c| { char::from_u32(c).map_or_else(String::new, |c| c.to_string()) }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    /// Arbitrary bytes, lossily decoded: the parser returns Ok or Err,
    /// never panics, and never accepts a line with interior NULs as a
    /// sweep.
    #[test]
    fn arbitrary_bytes_never_panic_the_request_parser(bytes in vec(any::<u8>(), 0..200)) {
        let line = String::from_utf8_lossy(&bytes);
        let _ = parse_request(&line);
        let _ = parse_response(&line);
    }

    /// Token soup from the protocol's own vocabulary, glued with spaces:
    /// the highest-coverage malformed inputs.  Whatever parses as a
    /// request must survive a print → parse round trip.
    #[test]
    fn vocabulary_soup_never_panics_and_roundtrips_when_accepted(
        tokens in vec(vocab(), 0..12),
    ) {
        let line = tokens.join(" ");
        if let Ok(request) = parse_request(&line) {
            let printed = match &request {
                Request::Sweep(sweep) => sweep.to_string(),
                Request::Cancel { id } => format!("cancel id={id}"),
                Request::Stats => "stats".to_string(),
                Request::Cache { action } => match action {
                    CacheAction::Clear => "cache clear".to_string(),
                    CacheAction::Limit(Some(n)) => format!("cache limit={n}"),
                    CacheAction::Limit(None) => "cache limit=none".to_string(),
                },
                Request::Shutdown { mode } => format!("shutdown mode={mode}"),
            };
            let reparsed = parse_request(&printed).unwrap_or_else(|e| {
                panic!("printed form of accepted request must reparse: '{printed}': {e:?}")
            });
            prop_assert_eq!(request, reparsed);
        }
        let _ = parse_response(&line);
    }

    /// Single-field mutations of a known-good sweep line: flip one field
    /// to an arbitrary value; the parser must still never panic.
    #[test]
    fn mutated_sweeps_never_panic(
        field in 0usize..8,
        value in vec(any::<u8>(), 0..24),
    ) {
        let fields = [
            "id=fz",
            "trace=TRFD",
            "iterations=120",
            "machines=dm",
            "windows=16",
            "mds=60",
            "mode=stream",
            "priority=normal",
        ];
        let value = String::from_utf8_lossy(&value).into_owned();
        let mutated: Vec<String> = fields
            .iter()
            .enumerate()
            .map(|(i, f)| {
                if i == field {
                    let name = f.split('=').next().expect("field has a name");
                    format!("{name}={value}")
                } else {
                    (*f).to_string()
                }
            })
            .collect();
        let line = format!("sweep {}", mutated.join(" "));
        let _ = parse_request(&line);
    }

    /// Arbitrary bytes through the coordinator's backend-reply path: a
    /// detached two-backend coordinator absorbs any line sequence without
    /// panicking (malformed lines count as reply errors, parsable lines
    /// for unknown subrequest ids are ignored).
    #[test]
    fn arbitrary_backend_replies_never_panic_the_coordinator(
        lines in vec(vec(any::<u8>(), 0..160), 0..8),
    ) {
        let coordinator = Coordinator::detached(2);
        for bytes in &lines {
            coordinator.handle_backend_reply(&String::from_utf8_lossy(bytes));
        }
        prop_assert_eq!(coordinator.pending_points(), 0);
    }

    /// Token soup from the response vocabulary — the highest-coverage
    /// near-valid backend replies (truncated `done` lines, misdirected
    /// control acks, out-of-range counts) — never panics the coordinator.
    #[test]
    fn response_soup_never_panics_the_coordinator(
        batches in vec(vec(response_vocab(), 0..10), 1..4),
    ) {
        let coordinator = Coordinator::detached(3);
        for tokens in &batches {
            coordinator.handle_backend_reply(&tokens.join(" "));
        }
        prop_assert_eq!(coordinator.pending_points(), 0);
    }

    /// The `priority=` field specifically: any value either parses as one
    /// of the three scheduling bands (and then survives the print → parse
    /// round trip) or comes back as a structured error carrying the
    /// request id — never a panic.
    #[test]
    fn arbitrary_priority_values_error_structurally(value in vec(any::<u8>(), 0..24)) {
        let value = String::from_utf8_lossy(&value).into_owned();
        let line = format!(
            "sweep id=fz trace=TRFD iterations=120 machines=dm windows=16 \
             mds=60 mode=stream priority={value}"
        );
        match parse_request(&line) {
            Ok(Request::Sweep(sweep)) => {
                let reparsed = parse_request(&sweep.to_string());
                prop_assert_eq!(Ok(Request::Sweep(sweep)), reparsed);
            }
            Ok(other) => prop_assert!(false, "a sweep line cannot parse as {:?}", other),
            Err(error) => {
                prop_assert!(!error.message.is_empty());
                prop_assert_eq!(error.id.as_deref(), Some("fz"));
            }
        }
    }
}
