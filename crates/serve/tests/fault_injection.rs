//! Fault-injection end-to-end suite: the server must survive panicking
//! points, expired deadlines, admission pressure, mid-stream disconnects,
//! oversized grids and shutdown — each with balanced `done` accounting,
//! and each followed by a bit-for-bit correct sweep to prove nothing was
//! poisoned.
//!
//! The fault hooks (`dae_core::fault`) are process-global, so every test
//! in this binary serializes on [`FAULT_LOCK`] — including the ones that
//! arm nothing.

use dae_core::{fault, SweepSession};
use dae_serve::{
    await_drained, parse_request, parse_response, serve_connection, serve_coordinator_connection,
    serve_tcp, Coordinator, DoneStatus, Request, Response, ServerLimits, ShutdownMode, SweepServer,
};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Serializes the binary's tests and guarantees hook reset even if the
/// previous holder panicked.
fn faults() -> MutexGuard<'static, ()> {
    let guard = FAULT_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    fault::reset();
    guard
}

/// A four-point grid over the TRFD kernel (distinct enough to exercise
/// several machines, small enough to drain in milliseconds unfaulted).
fn sweep_line(id: &str, extra: &str) -> String {
    format!(
        "sweep id={id} trace=TRFD iterations=120 machines=dm,swsm windows=16 mds=0,60 \
         mode=stream{extra}"
    )
}

/// The in-process oracle for one request line: the canonical grid on a
/// private session.
fn oracle(line: &str) -> Vec<u64> {
    let Ok(Request::Sweep(request)) = parse_request(line) else {
        panic!("oracle line must be a sweep request: {line}");
    };
    let mut session = SweepSession::new();
    let trace = request
        .source
        .trace(request.iterations)
        .expect("oracle source expands");
    let id = session.pin_trace(&trace);
    session.sweep_multi(&request.points(id))
}

/// Everything one request produced on the wire.
#[derive(Default)]
struct Outcome {
    points: HashMap<usize, u64>,
    errors: Vec<String>,
    done: Option<Response>,
}

/// Runs `input` through a fresh stdin-shaped connection on `server` and
/// groups the responses by request id (errors without an id land under
/// `""`).
fn run(server: &Arc<SweepServer>, input: &str) -> HashMap<String, Outcome> {
    let mut output = Vec::new();
    serve_connection(server, input.as_bytes(), &mut output).expect("serve");
    let mut outcomes: HashMap<String, Outcome> = HashMap::new();
    for line in String::from_utf8(output).expect("utf8").lines() {
        match parse_response(line).expect("well-formed response") {
            Response::Point {
                id, index, cycles, ..
            } => {
                outcomes.entry(id).or_default().points.insert(index, cycles);
            }
            Response::Error { id, message } => {
                outcomes
                    .entry(id.unwrap_or_default())
                    .or_default()
                    .errors
                    .push(message);
            }
            done @ Response::Done { .. } => {
                let Response::Done { id, .. } = &done else {
                    unreachable!()
                };
                let id = id.clone();
                outcomes.entry(id).or_default().done = Some(done);
            }
            busy @ Response::Busy { .. } => {
                let Response::Busy { id, .. } = &busy else {
                    unreachable!()
                };
                let id = id.clone();
                outcomes.entry(id).or_default().done = Some(busy);
            }
            Response::Shutdown { .. }
            | Response::Stats { .. }
            | Response::Cancelled { .. }
            | Response::Cache { .. } => {}
        }
    }
    outcomes
}

/// Asserts that `server` still serves correctly: a fresh sweep of the
/// canonical grid matches the in-process oracle bit for bit.
fn assert_still_serving(server: &Arc<SweepServer>, id: &str) {
    fault::reset();
    let line = sweep_line(id, "");
    let outcomes = run(server, &format!("{line}\n"));
    let outcome = &outcomes[id];
    let expected = oracle(&line);
    assert_eq!(outcome.points.len(), expected.len(), "post-fault sweep");
    for (index, cycles) in expected.iter().enumerate() {
        assert_eq!(
            outcome.points[&index], *cycles,
            "post-fault point {index} must match the reference"
        );
    }
    let Some(Response::Done {
        delivered,
        dropped,
        aborted,
        failed,
        status,
        ..
    }) = outcome.done
    else {
        panic!("post-fault sweep must finish");
    };
    assert_eq!(delivered, expected.len());
    assert_eq!(dropped + aborted + failed, 0);
    assert_eq!(status, DoneStatus::Ok);
}

/// An injected point panic produces one `error` line and a `done` with
/// `failed=1 status=error`; the other points deliver correctly and the
/// server keeps serving bit-for-bit afterwards.
#[test]
fn a_panicking_point_fails_its_own_request_only() {
    let _guard = faults();
    let server = Arc::new(SweepServer::new());
    let line = sweep_line("wounded", "");
    let expected = oracle(&line);

    fault::panic_on_nth_start(1);
    let outcomes = run(&server, &format!("{line}\n"));
    let outcome = &outcomes["wounded"];
    assert_eq!(outcome.errors.len(), 1, "exactly one point was sabotaged");
    assert!(
        outcome.errors[0].contains("injected fault"),
        "the panic message travels to the client: {:?}",
        outcome.errors
    );
    let Some(Response::Done {
        points,
        delivered,
        dropped,
        aborted,
        failed,
        status,
        ..
    }) = outcome.done
    else {
        panic!("the request must still finish");
    };
    assert_eq!(points, expected.len());
    assert_eq!(failed, 1);
    assert_eq!(delivered, expected.len() - 1);
    assert_eq!(delivered + dropped + aborted + failed, points);
    assert_eq!(status, DoneStatus::Error);
    for (index, cycles) in &outcome.points {
        assert_eq!(*cycles, expected[*index], "delivered point {index}");
    }

    assert_still_serving(&server, "healed");
}

/// A sweep whose deadline expires is cancelled mid-flight: running points
/// abort, the `done` reports `status=timeout` with balanced accounting,
/// and the request returns long before the grid could have finished.
#[test]
fn an_expired_deadline_cancels_the_sweep_mid_flight() {
    let _guard = faults();
    let server = Arc::new(SweepServer::new());

    // Every point sleeps 300 ms before simulating; the request allows 40.
    fault::slow_every_point_ms(300);
    let line = sweep_line("late", " deadline_ms=40");
    let started = Instant::now();
    let outcomes = run(&server, &format!("{line}\n"));
    let elapsed = started.elapsed();
    let outcome = &outcomes["late"];
    let Some(Response::Done {
        points,
        delivered,
        dropped,
        aborted,
        failed,
        status,
        ..
    }) = outcome.done
    else {
        panic!("a timed-out request must still write its done line");
    };
    assert_eq!(status, DoneStatus::Timeout);
    assert_eq!(delivered, 0, "no point can finish through a 300 ms sleep");
    assert_eq!(delivered + dropped + aborted + failed, points);
    assert!(
        aborted >= 1,
        "points already sleeping at expiry must abort (aborted={aborted}, dropped={dropped})"
    );
    // Each worker sleeps once (300 ms), aborts on its first engine poll,
    // and never picks up another point; a full run would cost ~4 sleeps on
    // a narrow pool, plus simulation time.
    assert!(
        elapsed < Duration::from_millis(900),
        "expiry must cut the request short, not run the grid: {elapsed:?}"
    );
    let fields = server.stats_fields();
    let field = |name: &str| {
        fields
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("stats must report {name}"))
            .1
    };
    assert_eq!(field("timeout_requests"), 1);
    assert!(field("aborted_points") >= 1);

    assert_still_serving(&server, "punctual");
}

/// Admission control: a sweep exceeding the global queue cap is refused
/// with a structured `busy` line (nothing submitted, nothing leaked), a
/// sweep within the cap still runs, and the per-client cap binds too.
#[test]
fn over_limit_sweeps_get_busy_with_a_retry_hint() {
    let _guard = faults();
    let limits = ServerLimits {
        max_client_in_flight: 3,
        max_queue_depth: 3,
        retry_after_ms: 25,
    };
    let server = Arc::new(SweepServer::with_session_and_limits(
        SweepSession::new(),
        limits,
    ));

    // Four points > both caps; the same grid shrunk to two fits.
    let big = sweep_line("big", "");
    let small = "sweep id=small trace=TRFD iterations=120 machines=dm windows=16 mds=0,60 \
                 mode=stream";
    let outcomes = run(&server, &format!("{big}\n{small}\n"));
    let Some(Response::Busy {
        queued,
        limit,
        retry_after_ms,
        ..
    }) = outcomes["big"].done
    else {
        panic!("the oversized sweep must be refused with busy");
    };
    assert_eq!(limit, 3);
    assert_eq!(queued, 0, "nothing was queued when the refusal happened");
    assert_eq!(retry_after_ms, 25);
    let Some(Response::Done {
        delivered, status, ..
    }) = outcomes["small"].done
    else {
        panic!("the small sweep fits under the cap");
    };
    assert_eq!(delivered, 2);
    assert_eq!(status, DoneStatus::Ok);
    assert_eq!(
        server.queue_depth(),
        0,
        "refusals and completions must both release their reservations"
    );
    let rejections = server
        .stats_fields()
        .iter()
        .find(|(n, _)| n == "busy_rejections")
        .expect("stats report rejections")
        .1;
    assert_eq!(rejections, 1);

    // Still serving (with a grid that fits under the tiny caps): the
    // repeat of the admitted sweep is answered correctly — and from cache.
    let again = run(&server, &format!("{small}\n"));
    let outcome = &again["small"];
    let reference = oracle(small);
    assert_eq!(outcome.points.len(), reference.len());
    for (index, cycles) in reference.iter().enumerate() {
        assert_eq!(outcome.points[&index], *cycles, "post-busy point {index}");
    }
    let Some(Response::Done { cached, .. }) = outcome.done else {
        panic!("the repeat must finish");
    };
    assert_eq!(cached, reference.len() as u64);
}

/// A grid larger than the protocol's hard cap is rejected at parse time
/// with an `error` line and the server keeps serving.
#[test]
fn oversized_grids_are_rejected_outright() {
    let _guard = faults();
    let server = Arc::new(SweepServer::new());
    // 2 machines × 33 windows × 1000 mds = 66 000 points > MAX_POINTS.
    let windows: Vec<String> = (1..=33).map(|w| (w * 2).to_string()).collect();
    let mds: Vec<String> = (0..1000).map(|m| m.to_string()).collect();
    let oversized = format!(
        "sweep id=huge trace=TRFD iterations=120 machines=dm,swsm windows={} mds={} mode=stream",
        windows.join(","),
        mds.join(",")
    );
    let outcomes = run(&server, &format!("{oversized}\n"));
    let errors = &outcomes["huge"].errors;
    assert_eq!(errors.len(), 1, "one structured rejection: {errors:?}");
    assert!(
        errors[0].contains("points"),
        "the rejection names the cap: {errors:?}"
    );
    assert!(outcomes["huge"].done.is_none(), "nothing was submitted");

    assert_still_serving(&server, "after-huge");
}

/// Dead-client cleanup: when a streaming client disconnects mid-sweep, the
/// failed write cancels the request — pending points are skipped and
/// running points abort — so the queue drains long before the grid could
/// have finished, almost nothing is simulated, and the server keeps
/// serving.  (That a cancelled token aborts a point *mid-simulation* is
/// pinned deterministically by the deadline test above, whose expiry fires
/// while workers sleep; here the cancel races worker boundaries, so the
/// drop-vs-abort split is not asserted.)
#[test]
fn a_mid_stream_disconnect_cancels_the_sweep() {
    let _guard = faults();
    let server = Arc::new(SweepServer::new());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let port = listener.local_addr().expect("addr").port();
    {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            let _ = serve_tcp(&server, &listener);
        });
    }

    // A wide slow grid: 320 points × 150 ms sleep each — over three
    // seconds of sleep even for a 16-worker pool, 48 s for one worker.
    // The client reads one point line and vanishes; a later delivery's
    // write fails, cancelling the token.
    fault::slow_every_point_ms(150);
    let mds: Vec<String> = (0..20).map(|m| (m * 7).to_string()).collect();
    let wide = format!(
        "sweep id=wide trace=TRFD iterations=120 machines=dm,swsm \
         windows=4,8,12,16,24,32,48,64 mds={} mode=stream",
        mds.join(",")
    );
    {
        let mut client = TcpStream::connect(("127.0.0.1", port)).expect("connect");
        let mut reader = BufReader::new(client.try_clone().expect("clone"));
        writeln!(client, "{wide}").unwrap();
        let mut line = String::new();
        assert!(reader.read_line(&mut line).expect("first point") > 0);
        assert!(line.starts_with("point "), "unexpected line: {line}");
        // Dropping both halves closes the socket abruptly from the
        // server's point of view: its next writes fail.
    }

    // The queue must drain far faster than the grid could possibly run:
    // cancellation skips the pending points and aborts the in-flight ones.
    let deadline = Instant::now() + Duration::from_millis(2_500);
    while server.queue_depth() > 0 {
        assert!(
            Instant::now() < deadline,
            "disconnect must drain the queue, not run the grid (depth {})",
            server.queue_depth()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let cache_entries = server
        .stats_fields()
        .iter()
        .find(|(n, _)| n == "cache_entries")
        .expect("stats report cache entries")
        .1;
    assert!(
        cache_entries < 160,
        "most of the grid must never simulate after the client vanished \
         (cache_entries={cache_entries})"
    );

    assert_still_serving(&server, "after-disconnect");
}

/// Graceful shutdown, drain mode: in-flight sweeps finish and write their
/// `done` lines, the shutdown is acknowledged, and later sweeps on the
/// same server are refused.
#[test]
fn shutdown_drain_finishes_in_flight_work_then_refuses_new_sweeps() {
    let _guard = faults();
    let server = Arc::new(SweepServer::new());
    let line = sweep_line("final", "");
    let expected = oracle(&line);

    let mut output = Vec::new();
    serve_connection(
        &server,
        format!("{line}\nshutdown\n").as_bytes(),
        &mut output,
    )
    .expect("serve");
    let text = String::from_utf8(output).expect("utf8");
    let mut saw_ack = false;
    let mut done = None;
    for wire in text.lines() {
        match parse_response(wire).expect("well-formed") {
            Response::Shutdown { mode } => {
                assert_eq!(mode, ShutdownMode::Drain);
                saw_ack = true;
            }
            d @ Response::Done { .. } => done = Some(d),
            Response::Point { .. } => {}
            other => panic!("unexpected: {other:?}"),
        }
    }
    assert!(saw_ack, "shutdown must be acknowledged");
    let Some(Response::Done {
        delivered, status, ..
    }) = done
    else {
        panic!("the in-flight sweep must drain to its done line");
    };
    assert_eq!(delivered, expected.len(), "drain mode finishes the work");
    assert_eq!(status, DoneStatus::Ok);
    assert!(server.is_shutting_down());
    assert!(await_drained(&server, Duration::from_secs(5)));

    // A later connection is refused.
    let refused = run(&server, &format!("{}\n", sweep_line("too-late", "")));
    let errors = &refused["too-late"].errors;
    assert_eq!(errors.len(), 1);
    assert!(
        errors[0].contains("shutting down"),
        "the refusal says why: {errors:?}"
    );
}

/// Graceful shutdown, abort mode: a slow in-flight sweep on another
/// connection is cancelled (its done line arrives with balanced
/// accounting and aborted points), the accept loop exits, and the queue
/// drains.
#[test]
fn shutdown_abort_cancels_in_flight_work_everywhere() {
    let _guard = faults();
    let server = Arc::new(SweepServer::new());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let port = listener.local_addr().expect("addr").port();
    let accept_loop = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || serve_tcp(&server, &listener))
    };

    fault::slow_every_point_ms(400);
    let wide = "sweep id=doomed trace=TRFD iterations=120 machines=dm,swsm \
                windows=4,8,16,32 mds=0,20,40,60 mode=stream";
    let mut victim = TcpStream::connect(("127.0.0.1", port)).expect("connect");
    let mut victim_reader = BufReader::new(victim.try_clone().expect("clone"));
    writeln!(victim, "{wide}").unwrap();
    // Let the submission land and the first points start sleeping.
    std::thread::sleep(Duration::from_millis(100));
    assert!(server.queue_depth() > 0, "the sweep must be in flight");

    let mut admin = TcpStream::connect(("127.0.0.1", port)).expect("connect admin");
    let mut admin_reader = BufReader::new(admin.try_clone().expect("clone admin"));
    writeln!(admin, "shutdown mode=abort").unwrap();
    let mut ack = String::new();
    assert!(admin_reader.read_line(&mut ack).expect("ack") > 0);
    assert!(
        matches!(
            parse_response(ack.trim_end()),
            Ok(Response::Shutdown {
                mode: ShutdownMode::Abort
            })
        ),
        "unexpected ack: {ack}"
    );

    // The victim's done line arrives promptly — cancelled, balanced.
    let done = loop {
        let mut line = String::new();
        assert!(
            victim_reader.read_line(&mut line).expect("victim read") > 0,
            "victim connection must carry a done line"
        );
        match parse_response(line.trim_end()).expect("well-formed") {
            done @ Response::Done { .. } => break done,
            Response::Point { .. } | Response::Error { .. } => {}
            other => panic!("unexpected: {other:?}"),
        }
    };
    let Response::Done {
        points,
        delivered,
        dropped,
        aborted,
        failed,
        status,
        ..
    } = done
    else {
        unreachable!()
    };
    assert_eq!(delivered + dropped + aborted + failed, points);
    assert!(
        dropped + aborted > 0,
        "abort-mode shutdown cancels the in-flight sweep"
    );
    assert_eq!(status, DoneStatus::Cancelled);
    assert!(
        await_drained(&server, Duration::from_secs(5)),
        "the queue drains after an abort shutdown"
    );
    accept_loop
        .join()
        .expect("accept loop exits")
        .expect("accept loop exits cleanly");
}

/// Spawns a real `dae-serve` backend process on an ephemeral TCP port,
/// with `envs` set (the `DAE_FAULT_*` variables arm the fault hooks
/// inside the child), returning the child and its dialable address.
fn spawn_backend(envs: &[(&str, &str)]) -> (Child, String) {
    let mut command = Command::new(env!("CARGO_BIN_EXE_dae-serve"));
    command
        .args(["--tcp", "127.0.0.1:0"])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped());
    for (name, value) in envs {
        command.env(name, value);
    }
    let mut child = command.spawn().expect("spawn backend process");
    let stderr = child.stderr.take().expect("stderr is piped");
    let mut reader = BufReader::new(stderr);
    let addr = loop {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).expect("read backend stderr") > 0,
            "backend exited before announcing its address"
        );
        if let Some(rest) = line.strip_prefix("dae-serve: listening on tcp ") {
            break rest
                .split_whitespace()
                .next()
                .expect("an address after the banner")
                .to_string();
        }
    };
    std::thread::spawn(move || {
        let mut sink = String::new();
        while reader.read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
            sink.clear();
        }
    });
    (child, addr)
}

/// A connected loopback byte-stream pair (client half, server half), so a
/// blocking `serve_coordinator_connection` can run on a thread while the
/// test reads its output incrementally.
fn socket_pair() -> (TcpStream, TcpStream) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind pair");
    let addr = listener.local_addr().expect("pair addr");
    let client = TcpStream::connect(addr).expect("connect pair");
    let (server, _) = listener.accept().expect("accept pair");
    (client, server)
}

/// The sharded fault test: one of two real backend processes is killed
/// mid-grid (its points are still sleeping on an env-armed slow hook when
/// the process dies), and the grid must still complete — every point
/// delivered exactly once, bit-for-bit equal to the in-process oracle,
/// with balanced `status=ok` accounting — because the coordinator
/// re-dispatches the dead backend's undelivered points to the survivor.
/// The coordinator keeps serving afterwards on the one surviving backend,
/// and its stats record the death and the re-dispatch traffic.
#[test]
fn killing_a_backend_mid_grid_completes_the_sweep_bit_for_bit() {
    let _guard = faults();
    // The victim sleeps 400 ms per point (armed via the environment, so
    // the hook fires inside the child process); the survivor is fast.
    let (mut victim, victim_addr) = spawn_backend(&[("DAE_FAULT_SLOW_POINT_MS", "400")]);
    let (mut survivor, survivor_addr) = spawn_backend(&[]);
    let coordinator =
        Arc::new(Coordinator::connect(&[victim_addr, survivor_addr]).expect("connect the fleet"));

    let grid = "sweep id=resilient trace=TRFD iterations=120 machines=dm,swsm \
                windows=4,8,16,32 mds=0,20,40,60 mode=stream";
    let expected = oracle(grid);
    let follow_up = "sweep id=after-death trace=MDG iterations=100 machines=dm windows=16,64 \
                     mds=0,60 mode=stream";
    let follow_up_expected = oracle(follow_up);

    let (mut client, server_half) = socket_pair();
    let serve = {
        let coordinator = Arc::clone(&coordinator);
        let reader = BufReader::new(server_half.try_clone().expect("clone server half"));
        std::thread::spawn(move || serve_coordinator_connection(&coordinator, reader, server_half))
    };
    let mut replies = BufReader::new(client.try_clone().expect("clone client half"));

    writeln!(client, "{grid}").unwrap();
    // The survivor's share of the grid streams back within milliseconds;
    // the victim's points are still inside their 400 ms sleeps.  Kill the
    // victim as soon as the first point proves the grid is in flight.
    let mut first = String::new();
    assert!(replies.read_line(&mut first).expect("first point") > 0);
    assert!(
        first.starts_with("point "),
        "unexpected first line: {first}"
    );
    victim.kill().expect("kill the victim backend");
    victim.wait().expect("reap the victim");

    let mut points: HashMap<usize, u64> = HashMap::new();
    {
        let Ok(Response::Point { index, cycles, .. }) = parse_response(first.trim_end()) else {
            panic!("unparsable first point: {first}");
        };
        points.insert(index, cycles);
    }
    let done = loop {
        let mut line = String::new();
        assert!(
            replies.read_line(&mut line).expect("read reply") > 0,
            "coordinator connection closed before the done line"
        );
        match parse_response(line.trim_end()).expect("well-formed response") {
            Response::Point { index, cycles, .. } => {
                assert!(
                    points.insert(index, cycles).is_none(),
                    "point {index} delivered twice through the failover"
                );
            }
            done @ Response::Done { .. } => break done,
            other => panic!("unexpected response: {other:?}"),
        }
    };
    let Response::Done {
        points: total,
        delivered,
        dropped,
        aborted,
        failed,
        status,
        ..
    } = done
    else {
        unreachable!()
    };
    assert_eq!(total, expected.len());
    assert_eq!(
        delivered,
        expected.len(),
        "every point must survive the backend death"
    );
    assert_eq!(delivered + dropped + aborted + failed, total);
    assert_eq!(status, DoneStatus::Ok);
    assert_eq!(points.len(), expected.len());
    for (index, cycles) in expected.iter().enumerate() {
        assert_eq!(
            points[&index], *cycles,
            "failover point {index} must be bit-for-bit the oracle result"
        );
    }

    // The coordinator keeps serving on the surviving backend.
    writeln!(client, "{follow_up}").unwrap();
    let mut follow_points: HashMap<usize, u64> = HashMap::new();
    loop {
        let mut line = String::new();
        assert!(
            replies.read_line(&mut line).expect("read follow-up") > 0,
            "coordinator connection closed before the follow-up done line"
        );
        match parse_response(line.trim_end()).expect("well-formed response") {
            Response::Point { index, cycles, .. } => {
                follow_points.insert(index, cycles);
            }
            Response::Done {
                delivered, status, ..
            } => {
                assert_eq!(delivered, follow_up_expected.len());
                assert_eq!(status, DoneStatus::Ok);
                break;
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    for (index, cycles) in follow_up_expected.iter().enumerate() {
        assert_eq!(follow_points[&index], *cycles, "post-death point {index}");
    }

    // The death and the re-dispatch traffic are visible in stats.
    writeln!(client, "stats").unwrap();
    let mut line = String::new();
    assert!(replies.read_line(&mut line).expect("stats reply") > 0);
    let Ok(Response::Stats { fields }) = parse_response(line.trim_end()) else {
        panic!("expected a stats line, got '{line}'");
    };
    let field = |name: &str| {
        fields
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("coordinator stats must report {name}: {fields:?}"))
            .1
    };
    assert_eq!(field("backends_total"), 2);
    assert_eq!(field("backends_alive"), 1);
    assert_eq!(field("backend_deaths"), 1);
    assert!(
        field("redispatched_points") >= 1,
        "the victim's sleeping points must have been re-dispatched: {fields:?}"
    );
    assert_eq!(field("coordinator_pending"), 0, "everything settled");

    drop(client);
    drop(replies);
    serve
        .join()
        .expect("serve thread")
        .expect("serve returns cleanly at EOF");
    survivor.kill().expect("kill the survivor backend");
    survivor.wait().expect("reap the survivor");
}

/// The scheduling tentpole, end to end: with a slow 64-point bulk grid
/// (`priority=bulk`) queued by one client, a `priority=interactive`
/// single-point probe from another client is claimed ahead of every queued
/// bulk point — it completes (bit-for-bit correct) while most of the bulk
/// grid is still waiting, instead of queueing behind it.
#[test]
fn an_interactive_probe_overtakes_a_queued_bulk_grid() {
    let _guard = faults();
    let server = Arc::new(SweepServer::new());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let port = listener.local_addr().expect("addr").port();
    {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            let _ = serve_tcp(&server, &listener);
        });
    }

    // Every point sleeps 60 ms: the 64-point bulk grid is ~4 s of queued
    // work for one worker, and still far from drained on a wide pool when
    // the probe lands.
    fault::slow_every_point_ms(60);
    let bulk = "sweep id=bulkload trace=TRFD iterations=120 machines=dm,swsm \
                windows=4,8,12,16,24,32,48,64 mds=0,20,40,60 mode=stream priority=bulk";
    let mut bulk_client = TcpStream::connect(("127.0.0.1", port)).expect("connect bulk");
    let mut bulk_reader = BufReader::new(bulk_client.try_clone().expect("clone bulk"));
    writeln!(bulk_client, "{bulk}").unwrap();
    let submitted = Instant::now();
    while server.queue_depth() == 0 {
        assert!(
            submitted.elapsed() < Duration::from_secs(5),
            "bulk grid must be admitted"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // Let the workers claim their first bulk points before probing.
    std::thread::sleep(Duration::from_millis(80));

    let probe = "sweep id=probe trace=TRFD iterations=120 machines=dm windows=16 mds=60 \
                 mode=stream priority=interactive";
    let expected = oracle(probe);
    let mut probe_client = TcpStream::connect(("127.0.0.1", port)).expect("connect probe");
    let mut probe_reader = BufReader::new(probe_client.try_clone().expect("clone probe"));
    let started = Instant::now();
    writeln!(probe_client, "{probe}").unwrap();
    let mut probe_cycles = None;
    let done = loop {
        let mut line = String::new();
        assert!(
            probe_reader.read_line(&mut line).expect("probe read") > 0,
            "probe connection must carry a done line"
        );
        match parse_response(line.trim_end()).expect("well-formed") {
            Response::Point { cycles, .. } => probe_cycles = Some(cycles),
            done @ Response::Done { .. } => break done,
            other => panic!("unexpected: {other:?}"),
        }
    };
    let probe_latency = started.elapsed();
    let backlog_at_done = server.queue_depth();
    let Response::Done {
        delivered, status, ..
    } = done
    else {
        unreachable!()
    };
    assert_eq!(delivered, 1);
    assert_eq!(status, DoneStatus::Ok);
    assert_eq!(
        probe_cycles,
        Some(expected[0]),
        "priority scheduling must not change results"
    );
    // The probe waited for at most the points already *running* (one per
    // worker, 60 ms each) plus its own sleep — never for the queued bulk
    // backlog, which alone is seconds of work.
    assert!(
        probe_latency < Duration::from_millis(1_000),
        "an interactive probe must overtake the queued bulk grid: {probe_latency:?}"
    );
    assert!(
        backlog_at_done > 8,
        "most of the bulk grid must still be queued when the probe finishes \
         (backlog={backlog_at_done})"
    );

    // Wind the bulk grid down quickly and check its accounting balances.
    writeln!(bulk_client, "cancel id=bulkload").unwrap();
    let done = loop {
        let mut line = String::new();
        assert!(
            bulk_reader.read_line(&mut line).expect("bulk read") > 0,
            "bulk connection must carry a done line"
        );
        match parse_response(line.trim_end()).expect("well-formed") {
            done @ Response::Done { .. } => break done,
            Response::Point { .. } | Response::Cancelled { .. } => {}
            other => panic!("unexpected: {other:?}"),
        }
    };
    let Response::Done {
        points,
        delivered,
        dropped,
        aborted,
        failed,
        status,
        ..
    } = done
    else {
        unreachable!()
    };
    assert_eq!(points, 64);
    assert_eq!(delivered + dropped + aborted + failed, points);
    assert_eq!(status, DoneStatus::Cancelled);

    assert_still_serving(&server, "after-probe");
}
