//! End-to-end server tests: clients over real sockets (and the stdin-shaped
//! in-memory path) must receive exactly the in-process `SweepSession`
//! results, correctly tagged per request, with the cache answering repeats
//! and cancellation dropping pending points.

use dae_core::{SweepSession, TraceId};
use dae_serve::{
    parse_request, parse_response, serve_connection, serve_coordinator_connection, serve_local,
    serve_tcp, Coordinator, Request, Response, SweepServer,
};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Starts a server on an ephemeral TCP port, returning the port.
fn start_tcp_server() -> u16 {
    let server = Arc::new(SweepServer::new());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let port = listener.local_addr().expect("local addr").port();
    std::thread::spawn(move || {
        let _ = serve_tcp(&server, &listener);
    });
    port
}

/// The in-process oracle: the request's canonical grid run on a private
/// session, exactly what the served `point` lines must reproduce.
fn oracle(line: &str) -> Vec<u64> {
    let Ok(Request::Sweep(request)) = parse_request(line) else {
        panic!("oracle line must be a sweep request: {line}");
    };
    let mut session = SweepSession::new();
    let trace = request
        .source
        .trace(request.iterations)
        .expect("oracle source expands");
    let id = session.pin_trace(&trace);
    session.sweep_multi(&request.points(id))
}

/// Grid size of a request line.
fn grid_len(line: &str) -> usize {
    let Ok(Request::Sweep(request)) = parse_request(line) else {
        panic!("not a sweep request: {line}");
    };
    request.points(TraceId::from_raw_for_tests()).len()
}

/// One request's collected responses: cycles by grid index plus the final
/// `done` accounting.
struct Collected {
    points: HashMap<usize, u64>,
    done: Option<Response>,
}

/// Reads tagged responses until a `done` line has arrived for every id in
/// `ids`; panics on `error` lines and on points tagged for unknown
/// requests.
fn read_all<R: BufRead>(reader: &mut R, ids: &[&str]) -> HashMap<String, Collected> {
    let mut collected: HashMap<String, Collected> = ids
        .iter()
        .map(|&id| {
            (
                id.to_string(),
                Collected {
                    points: HashMap::new(),
                    done: None,
                },
            )
        })
        .collect();
    while collected.values().any(|c| c.done.is_none()) {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).expect("read response") > 0,
            "connection closed with requests outstanding"
        );
        match parse_response(line.trim_end()).expect("well-formed response") {
            Response::Point {
                id, index, cycles, ..
            } => {
                let entry = collected
                    .get_mut(&id)
                    .unwrap_or_else(|| panic!("point tagged for unknown request '{id}'"));
                assert!(
                    entry.points.insert(index, cycles).is_none(),
                    "point {index} of {id} delivered twice"
                );
            }
            done @ Response::Done { .. } => {
                let Response::Done { ref id, .. } = done else {
                    unreachable!()
                };
                let entry = collected
                    .get_mut(id)
                    .unwrap_or_else(|| panic!("done tagged for unknown request '{id}'"));
                assert!(entry.done.is_none(), "two done lines for {id}");
                entry.done = Some(done);
            }
            Response::Cancelled { .. } => {}
            other => panic!("unexpected response: {other:?}"),
        }
    }
    collected
}

trait TraceIdTestExt {
    fn from_raw_for_tests() -> TraceId;
}

impl TraceIdTestExt for TraceId {
    /// Grid sizing only needs *a* TraceId; borrow one from a scratch
    /// session.
    fn from_raw_for_tests() -> TraceId {
        let mut session = SweepSession::new();
        session.pin_trace(&dae_workloads::stream().trace(1))
    }
}

/// Two clients on separate sockets, submitting interleaved grids (one of
/// them two tagged requests on one connection), receive exactly the
/// in-process session results.
#[test]
fn interleaved_tcp_clients_receive_in_process_results() {
    let alpha = "sweep id=alpha trace=TRFD iterations=120 machines=dm,swsm windows=8,32 mds=0,60 mode=stream";
    let gamma =
        "sweep id=gamma trace=stream iterations=100 machines=dm windows=16 mds=0,60 mode=stream";
    let beta =
        "sweep id=beta trace=MDG iterations=120 machines=dm,scalar windows=16,64 mds=60 mode=batch";

    let port = start_tcp_server();
    let mut client_a = TcpStream::connect(("127.0.0.1", port)).expect("connect a");
    let mut client_b = TcpStream::connect(("127.0.0.1", port)).expect("connect b");
    let mut reader_a = BufReader::new(client_a.try_clone().expect("clone a"));
    let mut reader_b = BufReader::new(client_b.try_clone().expect("clone b"));

    // Interleave submissions: both of client A's requests are in flight
    // together, concurrently with client B's.
    writeln!(client_a, "{alpha}").unwrap();
    writeln!(client_b, "{beta}").unwrap();
    writeln!(client_a, "{gamma}").unwrap();

    let from_a = read_all(&mut reader_a, &["alpha", "gamma"]);
    let from_b = read_all(&mut reader_b, &["beta"]);

    for (line, id, client) in [
        (alpha, "alpha", &from_a),
        (gamma, "gamma", &from_a),
        (beta, "beta", &from_b),
    ] {
        let expected = oracle(line);
        let got = &client[id];
        assert_eq!(got.points.len(), expected.len(), "{line}");
        for (index, cycles) in expected.iter().enumerate() {
            assert_eq!(got.points[&index], *cycles, "point {index} of '{line}'");
        }
        let Some(Response::Done {
            points: total,
            delivered,
            dropped,
            ..
        }) = got.done
        else {
            unreachable!()
        };
        assert_eq!(total, expected.len());
        assert_eq!(delivered, expected.len());
        assert_eq!(dropped, 0);
    }
}

/// A repeated request over the socket is answered from the sweep-result
/// cache — identical cycles, `done cached=` equal to the grid size.
#[test]
fn repeated_requests_hit_the_cache_across_the_wire() {
    let first = "sweep id=r1 trace=FLO52Q iterations=100 machines=dm,swsm windows=8,32 mds=0,60 mode=stream";
    let second = "sweep id=r2 trace=FLO52Q iterations=100 machines=dm,swsm windows=8,32 mds=0,60 mode=stream";

    let port = start_tcp_server();
    let mut client = TcpStream::connect(("127.0.0.1", port)).expect("connect");
    let mut reader = BufReader::new(client.try_clone().expect("clone"));

    writeln!(client, "{first}").unwrap();
    let cold = read_all(&mut reader, &["r1"]).remove("r1").unwrap();
    // Submitted only after r1's done line: every point is resident now.
    writeln!(client, "{second}").unwrap();
    let warm = read_all(&mut reader, &["r2"]).remove("r2").unwrap();

    let n = grid_len(first);
    assert_eq!(cold.points.len(), n);
    assert_eq!(
        warm.points, cold.points,
        "cached repeat must be bit-for-bit identical"
    );
    let Some(Response::Done { cached, .. }) = cold.done else {
        unreachable!()
    };
    assert_eq!(cached, 0, "a cold request simulates everything");
    let Some(Response::Done { cached, .. }) = warm.done else {
        unreachable!()
    };
    assert_eq!(
        cached, n as u64,
        "a warm repeat is answered entirely from cache"
    );
}

/// Cancelling an in-flight request drops its pending points: the `done`
/// accounting always balances and delivered points are still bit-for-bit
/// correct.  Whether any point is still pending when the cancel lands is
/// a race (guaranteed-drop semantics are pinned deterministically at the
/// session layer by `a_cancelled_stream_skips_pending_points`), so the
/// wire-path drop is asserted over a few attempts on fresh servers — a
/// fresh server each time, because a warm cache would deliver every
/// point at submission and leave nothing pending.
#[test]
fn cancellation_drops_pending_points_and_accounting_balances() {
    let big = "sweep id=big trace=QCD iterations=200 machines=dm,swsm windows=4,8,12,16,24,32,48,64 mds=0,20,40,60,80,100,120,140 mode=stream";
    let total = grid_len(big);
    let expected = oracle(big);
    let mut any_dropped = false;

    for attempt in 0..5 {
        let port = start_tcp_server();
        let mut client = TcpStream::connect(("127.0.0.1", port)).expect("connect");
        let mut reader = BufReader::new(client.try_clone().expect("clone"));

        writeln!(client, "{big}").unwrap();
        writeln!(client, "cancel id=big").unwrap();

        let mut saw_ack = false;
        let mut delivered_points: HashMap<usize, u64> = HashMap::new();
        let done = loop {
            let mut line = String::new();
            assert!(
                reader.read_line(&mut line).expect("read") > 0,
                "closed early"
            );
            match parse_response(line.trim_end()).expect("well-formed response") {
                Response::Cancelled { id } => {
                    assert_eq!(id, "big");
                    saw_ack = true;
                }
                Response::Point { index, cycles, .. } => {
                    delivered_points.insert(index, cycles);
                }
                done @ Response::Done { .. } => break done,
                // The cancel can lose the race with the last point: the
                // server then reports it as no longer active.
                Response::Error { id, .. } => assert_eq!(id.as_deref(), Some("big")),
                other => panic!("unexpected: {other:?}"),
            }
        };

        let Response::Done {
            points,
            delivered,
            dropped,
            aborted,
            failed,
            status,
            ..
        } = done
        else {
            unreachable!()
        };
        assert_eq!(points, total);
        assert_eq!(
            delivered + dropped + aborted + failed,
            points,
            "accounting must balance"
        );
        assert_eq!(failed, 0, "nothing injects faults here");
        assert_eq!(delivered, delivered_points.len());
        assert!(
            saw_ack || dropped + aborted == 0,
            "dropped or aborted points require an acknowledged cancel"
        );
        if dropped + aborted > 0 {
            assert_eq!(status, dae_serve::DoneStatus::Cancelled);
        }
        // The delivered subset still matches the oracle.
        for (index, cycles) in &delivered_points {
            assert_eq!(*cycles, expected[*index], "delivered point {index}");
        }
        if dropped + aborted > 0 {
            any_dropped = true;
            break;
        }
        eprintln!("attempt {attempt}: cancel lost the race (all {points} points ran); retrying");
    }
    assert!(
        any_dropped,
        "a cancel racing a {total}-point grid should drop or abort points in at least one of 5 attempts"
    );
}

/// The stdin-shaped path (one in-memory connection, no sockets): tagged
/// concurrent sweeps, a stats reply and error replies all arrive on one
/// writer, and sweep results equal the oracle.
#[test]
fn stdin_shaped_connections_serve_tagged_requests_and_stats() {
    let one = "sweep id=one trace=TRACK iterations=90 machines=dm windows=8,32 mds=60 mode=stream";
    let two = "sweep id=two kernel=i;ld:%0;ld:%0;mul:%1,$0;add:%3,%2;st:%4,%0 iterations=150 machines=dm,swsm windows=16 mds=0,60 mode=batch";
    let input = format!("{one}\n{two}\nstats\nnonsense here\n");

    let server = Arc::new(SweepServer::new());
    let mut output = Vec::new();
    serve_connection(&server, input.as_bytes(), &mut output).expect("serve");
    let text = String::from_utf8(output).expect("utf8 output");

    let mut per_id: HashMap<String, HashMap<usize, u64>> = HashMap::new();
    let mut dones = 0;
    let mut saw_stats = false;
    let mut saw_error = false;
    for line in text.lines() {
        match parse_response(line).expect("well-formed response") {
            Response::Point {
                id, index, cycles, ..
            } => {
                per_id.entry(id).or_default().insert(index, cycles);
            }
            Response::Done {
                delivered, points, ..
            } => {
                assert_eq!(delivered, points);
                dones += 1;
            }
            Response::Stats { fields } => {
                saw_stats = true;
                for required in [
                    "cache_entries",
                    "queue_depth",
                    "clients",
                    "aborted_points",
                    "failed_points",
                    "timeout_requests",
                    "busy_rejections",
                ] {
                    assert!(
                        fields.iter().any(|(name, _)| name == required),
                        "stats must report {required}: {fields:?}"
                    );
                }
                // This connection is registered, so its in-flight count
                // appears under its server-assigned client id.
                assert!(
                    fields.iter().any(|(name, _)| name.starts_with("client_")),
                    "stats must report per-client in-flight points: {fields:?}"
                );
            }
            Response::Error { message, .. } => {
                saw_error = true;
                assert!(message.contains("unknown verb"));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }
    assert_eq!(dones, 2);
    assert!(saw_stats && saw_error);
    for line in [one, two] {
        let Ok(Request::Sweep(request)) = parse_request(line) else {
            unreachable!()
        };
        let expected = oracle(line);
        let got = &per_id[&request.id];
        assert_eq!(got.len(), expected.len());
        for (index, cycles) in expected.iter().enumerate() {
            assert_eq!(got[&index], *cycles, "{line} point {index}");
        }
    }
}

/// Spawns one real `dae-serve` backend process on an ephemeral TCP port
/// and returns the child plus its dialable address (parsed from the
/// binary's "listening on tcp" stderr line).
fn spawn_backend() -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_dae-serve"))
        .args(["--tcp", "127.0.0.1:0"])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn backend process");
    let stderr = child.stderr.take().expect("stderr is piped");
    let mut reader = BufReader::new(stderr);
    let addr = loop {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).expect("read backend stderr") > 0,
            "backend exited before announcing its address"
        );
        if let Some(rest) = line.strip_prefix("dae-serve: listening on tcp ") {
            break rest
                .split_whitespace()
                .next()
                .expect("an address after the banner")
                .to_string();
        }
    };
    // Keep draining stderr so later diagnostics can never fill the pipe
    // and wedge the backend.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while reader.read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
            sink.clear();
        }
    });
    (child, addr)
}

/// Waits for a child process to exit, panicking after `timeout`.
fn await_exit(child: &mut Child, timeout: Duration, who: &str) {
    let deadline = Instant::now() + timeout;
    loop {
        if child.try_wait().expect("poll child").is_some() {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{who} did not exit in {timeout:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The sharded differential test: the same grids run three ways — through
/// a coordinator over two real backend processes, through a single
/// in-process server, and on a private `SweepSession` (the oracle) — must
/// produce bit-for-bit identical cycles with clean accounting; the
/// coordinator's `stats` reports the fleet; and a `shutdown` through the
/// coordinator fans out and terminates both backends.
#[test]
fn a_two_backend_coordinator_matches_single_server_and_session_bit_for_bit() {
    let stream_line = "sweep id=shard-s trace=TRFD iterations=120 machines=dm,swsm windows=8,32 \
                       mds=0,60 mode=stream";
    let batch_line = "sweep id=shard-b trace=MDG iterations=100 machines=dm,scalar windows=16,64 \
                      mds=0,60 mode=batch";
    let input = format!("{stream_line}\n{batch_line}\nstats\n");

    let (mut backend_one, addr_one) = spawn_backend();
    let (mut backend_two, addr_two) = spawn_backend();
    let coordinator =
        Arc::new(Coordinator::connect(&[addr_one, addr_two]).expect("connect the fleet"));

    let mut sharded = Vec::new();
    serve_coordinator_connection(&coordinator, input.as_bytes(), &mut sharded)
        .expect("coordinated serve");

    let mut single = Vec::new();
    let server = Arc::new(SweepServer::new());
    serve_connection(&server, input.as_bytes(), &mut single).expect("single serve");

    // Group both outputs by request id; any error line is a failure.
    let collect = |output: &[u8]| {
        let mut points: HashMap<String, HashMap<usize, u64>> = HashMap::new();
        let mut dones: HashMap<String, Response> = HashMap::new();
        let mut stats = None;
        for line in String::from_utf8(output.to_vec()).expect("utf8").lines() {
            match parse_response(line).expect("well-formed response") {
                Response::Point {
                    id, index, cycles, ..
                } => {
                    assert!(
                        points
                            .entry(id)
                            .or_default()
                            .insert(index, cycles)
                            .is_none(),
                        "a point delivered twice"
                    );
                }
                done @ Response::Done { .. } => {
                    let Response::Done { ref id, .. } = done else {
                        unreachable!()
                    };
                    dones.insert(id.clone(), done);
                }
                Response::Stats { fields } => stats = Some(fields),
                other => panic!("unexpected response: {other:?}"),
            }
        }
        (points, dones, stats)
    };
    let (sharded_points, sharded_dones, sharded_stats) = collect(&sharded);
    let (single_points, _, _) = collect(&single);

    let mut forwarded_total = 0;
    for line in [stream_line, batch_line] {
        let Ok(Request::Sweep(request)) = parse_request(line) else {
            unreachable!()
        };
        let expected = oracle(line);
        forwarded_total += expected.len();
        let via_coordinator = &sharded_points[&request.id];
        let via_single = &single_points[&request.id];
        assert_eq!(via_coordinator.len(), expected.len(), "{line}");
        for (index, cycles) in expected.iter().enumerate() {
            assert_eq!(
                via_coordinator[&index], *cycles,
                "sharded point {index} of '{line}' vs the session oracle"
            );
            assert_eq!(
                via_single[&index], *cycles,
                "single-server point {index} of '{line}' vs the session oracle"
            );
        }
        let Some(Response::Done {
            points,
            delivered,
            dropped,
            aborted,
            failed,
            status,
            ..
        }) = sharded_dones.get(&request.id)
        else {
            panic!("no done line for {line}");
        };
        assert_eq!(*points, expected.len());
        assert_eq!(*delivered, expected.len());
        assert_eq!(delivered + dropped + aborted + failed, *points);
        assert_eq!(*status, dae_serve::DoneStatus::Ok);
    }

    // The aggregated stats name the fleet and the forwarding traffic, and
    // carry the backends' summed session counters.
    let fields = sharded_stats.expect("the coordinator answers stats");
    let field = |name: &str| {
        fields
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("coordinator stats must report {name}: {fields:?}"))
            .1
    };
    assert_eq!(field("backends_total"), 2);
    assert_eq!(field("backends_alive"), 2);
    assert!(field("forwarded_points") >= forwarded_total as u64);
    assert_eq!(field("backend_deaths"), 0);
    assert!(
        fields.iter().any(|(n, _)| n == "cache_entries"),
        "backend session counters must be aggregated: {fields:?}"
    );

    // A shutdown through the coordinator is acknowledged and fans out:
    // both backend processes exit.
    let mut shutdown_out = Vec::new();
    serve_coordinator_connection(&coordinator, "shutdown\n".as_bytes(), &mut shutdown_out)
        .expect("shutdown path");
    let ack = String::from_utf8(shutdown_out).expect("utf8");
    assert!(
        matches!(
            parse_response(ack.trim_end()),
            Ok(Response::Shutdown {
                mode: dae_serve::ShutdownMode::Drain
            })
        ),
        "unexpected shutdown ack: {ack}"
    );
    await_exit(&mut backend_one, Duration::from_secs(20), "backend one");
    await_exit(&mut backend_two, Duration::from_secs(20), "backend two");
}

/// The `cache` verb and `--cache-dir` persistence, end to end: a cold
/// server simulates a grid and compacts its store on shutdown; a fresh
/// server attached to the same directory answers the identical grid
/// entirely from the loaded entries (the `done` line's `cached` count
/// equals the grid), `cache limit=` bounds the resident set, `cache
/// clear` empties it, and `stats` reports the persistence counters.
#[test]
fn cache_verb_and_cache_dir_restarts_answer_grids_warm() {
    let dir = std::env::temp_dir().join(format!("dae-serve-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let sweep =
        "sweep id=warm trace=TRFD iterations=90 machines=dm,swsm windows=8,32 mds=0,60 mode=batch";
    let expected = oracle(sweep);

    // Cold run: everything simulated, nothing cached yet.
    let cold = Arc::new(SweepServer::new());
    assert_eq!(cold.attach_cache_store(&dir).expect("fresh dir"), 0);
    let mut output = Vec::new();
    serve_local(&cold, format!("{sweep}\n").as_bytes(), &mut output).expect("cold serve");
    let text = String::from_utf8(output).expect("utf8");
    let done = text.lines().last().expect("a done line");
    let Ok(Response::Done {
        cached, delivered, ..
    }) = parse_response(done)
    else {
        panic!("expected a done line, got '{done}'");
    };
    assert_eq!(delivered, expected.len());
    assert_eq!(cached, 0, "a cold store cannot answer anything");
    cold.persist_cache().expect("shutdown compaction");
    drop(cold);

    // "Restart": a fresh server, fresh session, same directory.
    let warm = Arc::new(SweepServer::new());
    let loaded = warm.attach_cache_store(&dir).expect("warm dir");
    assert_eq!(loaded as usize, expected.len(), "every record replays");
    let input = format!("{sweep}\ncache limit=2\ncache clear\nstats\n");
    let mut output = Vec::new();
    serve_local(&warm, input.as_bytes(), &mut output).expect("warm serve");
    let text = String::from_utf8(output).expect("utf8");

    let mut cycles_by_index = HashMap::new();
    let mut cache_replies = Vec::new();
    let mut done_cached = None;
    let mut stats_fields = None;
    for line in text.lines() {
        match parse_response(line).expect("well-formed response") {
            Response::Point { index, cycles, .. } => {
                cycles_by_index.insert(index, cycles);
            }
            Response::Done {
                cached, delivered, ..
            } => {
                assert_eq!(delivered, expected.len());
                done_cached = Some(cached);
            }
            Response::Cache { entries, limit } => cache_replies.push((entries, limit)),
            Response::Stats { fields } => stats_fields = Some(fields),
            other => panic!("unexpected: {other:?}"),
        }
    }
    for (index, cycles) in expected.iter().enumerate() {
        assert_eq!(
            cycles_by_index[&index], *cycles,
            "warm point {index} must be bit-for-bit the cold result"
        );
    }
    assert_eq!(
        done_cached,
        Some(expected.len() as u64),
        "the restarted server simulated nothing"
    );
    // limit=2 evicted down to two entries; clear then emptied the map
    // (the bound itself stays in force).
    assert_eq!(cache_replies, vec![(2, Some(2)), (0, Some(2))]);
    let fields = stats_fields.expect("a stats line");
    let field = |name: &str| {
        fields
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("stats must report {name}: {fields:?}"))
            .1
    };
    assert_eq!(field("cache_loaded") as usize, expected.len());
    assert_eq!(field("cache_misses"), 0, "no warm miss");
    assert_eq!(field("cache_hits"), expected.len() as u64);
    assert_eq!(field("cache_lookups"), expected.len() as u64);
    assert_eq!(field("cache_corrupt_records"), 0);
    assert!(field("cache_evictions") >= 1, "limit=2 must evict");
    assert_eq!(field("cache_persisted"), 0, "nothing new was simulated");
    let _ = std::fs::remove_dir_all(&dir);
}
