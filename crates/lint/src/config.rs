//! Lint configuration: which files each rule reads and the pinned
//! invariants it enforces.
//!
//! The defaults ([`LintConfig::workspace`]) encode the *live* workspace's
//! invariants — the designated hot regions of PR 3, the single-unsafe
//! census of PR 4, the serve request path of PR 5/6, the Fx-hashed hot
//! crates of PR 2 and the lock-bearing modules of PR 5–7.  The fixture
//! tests build custom configs over `crates/lint/fixtures/` instead, so
//! every rule is proven to fire without seeding violations in real code.

use std::path::PathBuf;

/// A designated allocation-free region: a file (suffix-matched against the
/// workspace-relative path) and the functions inside it that the hot-path
/// allocation rule scans.
#[derive(Debug, Clone)]
pub struct HotRegion {
    /// Workspace-relative file path (or unique suffix of one).
    pub file: String,
    /// The function names designated allocation-free in that file.
    pub functions: Vec<String>,
}

/// Everything the rules need to know about the tree under scrutiny.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// The directory the walk starts from (the workspace root, or a
    /// fixture directory in tests).
    pub root: PathBuf,
    /// Designated allocation-free regions (hot-path-alloc rule).
    pub hot_regions: Vec<HotRegion>,
    /// Files on the server request path (panic-path rule); suffix match.
    pub panic_path_files: Vec<String>,
    /// Path prefixes of the hot crates that must not use the default
    /// SipHash hasher (default-hasher rule).
    pub hasher_paths: Vec<String>,
    /// Path prefixes of the lock-bearing modules the lock-order rule
    /// analyses.
    pub lock_paths: Vec<String>,
    /// The pinned unsafe census: exactly these files may contain `unsafe`,
    /// with exactly these occurrence counts (unsafe-audit rule).
    pub unsafe_allowlist: Vec<(String, usize)>,
}

impl LintConfig {
    /// The live workspace configuration rooted at `root`.
    #[must_use]
    pub fn workspace(root: PathBuf) -> Self {
        let hot = |file: &str, functions: &[&str]| HotRegion {
            file: file.to_string(),
            functions: functions.iter().map(ToString::to_string).collect(),
        };
        LintConfig {
            root,
            // PR 3's allocation-free property: the engine run loops, the
            // scheduler's step/event/ready path, and the pooled sweep path.
            // `EventRing::grow` and the pool-fill paths are deliberately
            // NOT designated — they allocate by design (amortised growth /
            // cold-start), see docs/LINTS.md.
            hot_regions: vec![
                hot(
                    "crates/machines/src/engine.rs",
                    &["run_event", "run_event_single", "run_lockstep"],
                ),
                hot(
                    "crates/ooo/src/unit.rs",
                    &[
                        "step",
                        "process_events",
                        "evaluate",
                        "retire",
                        "unlink",
                        "dispatch",
                        "issue",
                        "complete_issue",
                        "is_ready",
                        "execute",
                        "next_activity",
                        "idle_advance",
                        "schedule_reeval",
                    ],
                ),
                hot(
                    "crates/ooo/src/calendar.rs",
                    &[
                        "push_complete",
                        "push_reeval",
                        "next_cycle",
                        "take_at",
                        "chain_next",
                        "advance_base",
                        "slot_for",
                        "mark",
                        "insert",
                        "remove",
                        "peek_ge",
                    ],
                ),
                hot(
                    "crates/machines/src/pool.rs",
                    &["take_unit", "put_unit", "consumer_counts"],
                ),
            ],
            // PR 5/6: a request must answer with an `error` line, not
            // unwind.
            panic_path_files: vec![
                "crates/serve/src/lib.rs".to_string(),
                "crates/serve/src/protocol.rs".to_string(),
                "crates/serve/src/server.rs".to_string(),
                "crates/serve/src/main.rs".to_string(),
                // PR 10: the coordinator forwards malformed backend bytes
                // through the same guarantee — count or ignore, never
                // unwind.
                "crates/serve/src/coordinator.rs".to_string(),
                // PR 9: the persistent cache store must tolerate any
                // on-disk corruption without panicking.
                "crates/core/src/store.rs".to_string(),
            ],
            // PR 2: Fx hashing in the hot crates.
            hasher_paths: vec![
                "crates/ooo/src".to_string(),
                "crates/mem/src".to_string(),
                "crates/machines/src".to_string(),
            ],
            // PR 5-7: the four lock-bearing modules the server multiplexes.
            lock_paths: vec![
                "crates/serve/src".to_string(),
                "crates/core/src".to_string(),
                "crates/bench/src".to_string(),
                "vendor/rayon/src".to_string(),
            ],
            // PR 4/7: the workspace carries exactly one unsafe block — the
            // rayon stub's batch lifetime erasure.
            unsafe_allowlist: vec![("vendor/rayon/src/lib.rs".to_string(), 1)],
        }
    }

    /// An empty config over `root`: only the workspace-wide rules (unsafe
    /// audit with an empty allowlist) apply.  Fixture tests start here.
    #[must_use]
    pub fn bare(root: PathBuf) -> Self {
        LintConfig {
            root,
            hot_regions: Vec::new(),
            panic_path_files: Vec::new(),
            hasher_paths: Vec::new(),
            lock_paths: Vec::new(),
            unsafe_allowlist: Vec::new(),
        }
    }
}
