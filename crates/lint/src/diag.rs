//! Structured lint diagnostics.

use std::fmt;

/// One finding: `file:line · rule-id · message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line of the finding (1 for whole-file findings).
    pub line: u32,
    /// The rule that produced the finding (its suppression key).
    pub rule: &'static str,
    /// Human-readable description, one line.
    pub message: String,
}

impl Diagnostic {
    /// A new diagnostic.
    #[must_use]
    pub fn new(path: &str, line: u32, rule: &'static str, message: String) -> Self {
        Diagnostic {
            path: path.to_string(),
            line,
            rule,
            message,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} · {} · {}",
            self.path, self.line, self.rule, self.message
        )
    }
}
