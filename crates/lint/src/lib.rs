//! `dae-lint`: workspace-native static analysis for the DAE simulator.
//!
//! The serving stack's load-bearing invariants — the allocation-free sweep
//! hot path (PR 3), the single-`unsafe` census (PR 4/7), Fx hashing in the
//! hot crates (PR 2), panic-free request handling (PR 6) and a cycle-free
//! lock order (PRs 5–7) — exist in reviewers' heads and in prose.  This
//! crate checks them mechanically: an offline, dependency-free linter with
//! its own lightweight Rust lexer (no `syn`, per the vendored-stub
//! policy), a rule-trait pass infrastructure, and structured diagnostics
//! (`file:line · rule-id · message`).
//!
//! Run it as `cargo run -p dae-lint` (or `scripts/lint.sh`); it exits
//! non-zero on findings and gates CI.  Suppress an individual finding with
//! `// lint:allow(rule-id): reason` on the finding's line or the line
//! above — a bare `lint:allow` without a reason is itself a finding.  The
//! rule catalog lives in `docs/LINTS.md`.

mod config;
mod diag;
mod engine;
mod lexer;
mod rules;

pub use config::{HotRegion, LintConfig};
pub use diag::Diagnostic;
pub use engine::{lex_workspace, run, run_on};
pub use lexer::{Comment, SourceFile, TokKind, Token};
pub use rules::unsafe_census;
