//! The lint driver: walk the tree, lex, run every rule, apply
//! suppressions, sort.

use std::fs;
use std::path::{Path, PathBuf};

use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::lexer::SourceFile;
use crate::rules;

/// Directory names the walker never descends into.  `fixtures` holds the
/// seeded-violation corpus — linting it would report the violations it
/// exists to seed.
const SKIP_DIRS: &[&str] = &["target", "fixtures"];

/// One parsed `lint:allow` suppression comment.
#[derive(Debug)]
struct Allow {
    path: String,
    line: u32,
    rule: String,
    /// Whether a non-empty `: reason` followed the rule id.
    reasoned: bool,
}

/// Lexes every `.rs` file under `root` (skipping `target`, `fixtures` and
/// dot-directories), with workspace-relative `/`-separated paths, sorted.
///
/// Public so the unsafe-census pin test can run [`rules::unsafe_census`]
/// over exactly the files the linter sees.
#[must_use]
pub fn lex_workspace(root: &Path) -> Vec<SourceFile> {
    let mut paths = Vec::new();
    walk(root, &mut paths);
    paths.sort();
    paths
        .iter()
        .filter_map(|p| {
            let text = fs::read_to_string(p).ok()?;
            let rel = p
                .strip_prefix(root)
                .unwrap_or(p)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            Some(SourceFile::parse(&rel, &text))
        })
        .collect()
}

/// Recursively collects `.rs` paths under `dir`.
fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if !name.starts_with('.') && !SKIP_DIRS.contains(&name.as_str()) {
                walk(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Runs every rule over the tree described by `cfg` and returns the
/// surviving findings, sorted by path, line and rule.
///
/// Suppression: a `// lint:allow(rule): reason` comment on the finding's
/// line (or the line directly above) silences it.  A *bare* allow —
/// `// lint:allow(rule)` with no reason — still silences its target but is
/// itself reported as a `lint-allow` finding, unconditionally: the whole
/// point of the syntax is that every suppression carries a written
/// justification a reviewer signed off on.
#[must_use]
pub fn run(cfg: &LintConfig) -> Vec<Diagnostic> {
    let files = lex_workspace(&cfg.root);
    run_on(cfg, &files)
}

/// [`run`] over an already-lexed file set.
#[must_use]
pub fn run_on(cfg: &LintConfig, files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut findings = Vec::new();
    let mut rules = rules::all();
    for rule in &mut rules {
        for file in files {
            rule.check_file(file, cfg, &mut findings);
        }
        rule.finish(cfg, &mut findings);
    }

    let allows = collect_allows(files);
    let mut out: Vec<Diagnostic> = findings
        .into_iter()
        .filter(|d| {
            !allows.iter().any(|a| {
                a.path == d.path && a.rule == d.rule && (a.line == d.line || a.line + 1 == d.line)
            })
        })
        .collect();
    for a in &allows {
        if !a.reasoned {
            out.push(Diagnostic::new(
                &a.path,
                a.line,
                "lint-allow",
                format!(
                    "bare `lint:allow({})` without a reason — append `: <why this is \
                     sound>`",
                    a.rule
                ),
            ));
        }
    }

    out.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
            b.path.as_str(),
            b.line,
            b.rule,
            b.message.as_str(),
        ))
    });
    out.dedup();
    out
}

/// Parses `lint:allow(rule)[: reason]` suppression directives.  The
/// directive must *start* the comment (after doc-comment markers), so
/// prose that merely mentions the syntax — like this sentence — is not a
/// suppression.
fn collect_allows(files: &[SourceFile]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for file in files {
        for comment in &file.comments {
            let text = comment.text.trim_start_matches(['/', '!']).trim_start();
            let Some(rest) = text.strip_prefix("lint:allow(") else {
                continue;
            };
            let Some(close) = rest.find(')') else {
                continue;
            };
            let rule = rest[..close].trim().to_string();
            let reasoned = rest[close + 1..]
                .strip_prefix(':')
                .is_some_and(|r| !r.trim().is_empty());
            allows.push(Allow {
                path: file.path.clone(),
                line: comment.line,
                rule,
                reasoned,
            });
        }
    }
    allows
}
