//! Rule `panic-path`: no panicking constructs on the server request path.
//!
//! PR 6's fault-tolerance contract is that a request answers with an
//! `error` line — it never unwinds the connection thread.  This rule flags
//! every non-test `.unwrap()` / `.expect(` / `panic!` / `unreachable!` in
//! the configured request-path files; each site must either be rewritten
//! as a structured error or carry a reasoned `lint:allow(panic-path)`.

use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::lexer::SourceFile;
use crate::rules::{suffix_match, Rule};

/// Panicking token sequences.
const PATTERNS: &[(&[&str], &str)] = &[
    (&[".", "unwrap", "(", ")"], ".unwrap()"),
    (&[".", "expect", "("], ".expect(…)"),
    (&["panic", "!"], "panic!"),
    (&["unreachable", "!"], "unreachable!"),
];

/// The `panic-path` rule; see module docs.
#[derive(Debug, Default)]
pub struct PanicPath;

impl Rule for PanicPath {
    fn id(&self) -> &'static str {
        "panic-path"
    }

    fn check_file(&mut self, file: &SourceFile, cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        if !cfg
            .panic_path_files
            .iter()
            .any(|p| suffix_match(&file.path, p))
        {
            return;
        }
        for (i, tok) in file.tokens.iter().enumerate() {
            if tok.test {
                continue;
            }
            for (pat, name) in PATTERNS {
                if file.match_seq(i, pat) {
                    out.push(Diagnostic::new(
                        &file.path,
                        tok.line,
                        self.id(),
                        format!(
                            "`{name}` on the serve request path — answer with a structured \
                             `error` reply instead, or suppress with a written reason"
                        ),
                    ));
                    break;
                }
            }
        }
    }
}
