//! Rule `default-hasher`: no default-hashed `HashMap`/`HashSet` in the
//! hot crates.
//!
//! PR 2 replaced SipHash with the Fx hasher on the per-access paths
//! (`dae-mem`'s prefetch scratch and LRU, and everything layered on them)
//! for a measured double-digit throughput win.  This rule keeps the
//! mandate: inside the configured hasher paths, any non-test use of the
//! `HashMap`/`HashSet` identifiers is a finding *unless* the type names an
//! explicit hasher parameter (`HashMap<K, V, FxBuildHasher>` — which is
//! exactly how `dae-mem::fx` defines `FxHashMap` in the first place).

use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::lexer::SourceFile;
use crate::rules::{prefix_match, Rule};

/// The `default-hasher` rule; see module docs.
#[derive(Debug, Default)]
pub struct DefaultHasher;

impl Rule for DefaultHasher {
    fn id(&self) -> &'static str {
        "default-hasher"
    }

    fn check_file(&mut self, file: &SourceFile, cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        if !cfg.hasher_paths.iter().any(|p| prefix_match(&file.path, p)) {
            return;
        }
        for (i, tok) in file.tokens.iter().enumerate() {
            if tok.test {
                continue;
            }
            let (name, hashed_params) = match tok.text.as_str() {
                // HashMap<K, V, S> / HashSet<T, S>: the hasher is the
                // 3rd / 2nd generic parameter.
                "HashMap" => ("HashMap", 3),
                "HashSet" => ("HashSet", 2),
                _ => continue,
            };
            if has_explicit_hasher(file, i, hashed_params) {
                continue;
            }
            out.push(Diagnostic::new(
                &file.path,
                tok.line,
                self.id(),
                format!(
                    "default-hashed `{name}` in a hot crate — use `dae_mem::FxHashMap` \
                     (or pass an explicit hasher) per the PR 2 Fx mandate"
                ),
            ));
        }
    }
}

/// Whether the `HashMap`/`HashSet` ident at `i` is followed by a generic
/// argument list supplying at least `want` top-level parameters (i.e. an
/// explicit hasher).
fn has_explicit_hasher(file: &SourceFile, i: usize, want: usize) -> bool {
    let Some(next) = file.tokens.get(i + 1) else {
        return false;
    };
    if next.text != "<" {
        // `HashMap::new`, a bare import, `HashMap::default()` — all
        // default-hashed.
        return false;
    }
    let mut depth = 0usize;
    let mut params = 1usize;
    for tok in &file.tokens[i + 1..] {
        match tok.text.as_str() {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return params >= want;
                }
            }
            "," if depth == 1 => params += 1,
            _ => {}
        }
    }
    false
}
