//! The rule-trait pass infrastructure and the five shipped rules.

mod default_hasher;
mod hot_alloc;
mod lock_order;
mod panic_path;
mod unsafe_audit;

pub use unsafe_audit::census as unsafe_census;

use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::lexer::SourceFile;

/// One lint pass.  The engine feeds every workspace file through
/// [`Rule::check_file`] and calls [`Rule::finish`] once at the end —
/// workspace-wide rules (the unsafe census, the lock graph) accumulate
/// state across files and report from `finish`.
pub trait Rule {
    /// The rule's id: its diagnostic tag and its `lint:allow(…)` key.
    fn id(&self) -> &'static str;

    /// Inspects one file, appending findings to `out`.
    fn check_file(&mut self, file: &SourceFile, cfg: &LintConfig, out: &mut Vec<Diagnostic>);

    /// Reports whatever needs the whole workspace seen first.
    fn finish(&mut self, cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        let _ = (cfg, out);
    }
}

/// The shipped rule set, in reporting order.
#[must_use]
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(hot_alloc::HotAlloc::default()),
        Box::new(unsafe_audit::UnsafeAudit::default()),
        Box::new(lock_order::LockOrder::default()),
        Box::new(default_hasher::DefaultHasher),
        Box::new(panic_path::PanicPath),
    ]
}

/// Whether `path` (workspace-relative, `/`-separated) matches `pat` as a
/// whole path or a path suffix on a component boundary.
pub(crate) fn suffix_match(path: &str, pat: &str) -> bool {
    path == pat || path.ends_with(&format!("/{pat}")) || path.ends_with(pat)
}

/// Whether `path` starts with `prefix` (on a component boundary) or
/// `prefix` is empty.
pub(crate) fn prefix_match(path: &str, prefix: &str) -> bool {
    prefix.is_empty()
        || path == prefix
        || path
            .strip_prefix(prefix)
            .is_some_and(|rest| rest.starts_with('/'))
}
