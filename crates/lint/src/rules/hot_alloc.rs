//! Rule `hot-path-alloc`: the designated hot regions must not allocate.
//!
//! PR 3 made the sweep hot path allocation-free and proved it dynamically
//! with reuse counters; this rule pins the property statically.  Each
//! [`HotRegion`](crate::config::HotRegion) names a file and the functions
//! inside it that run per-event or per-cycle; any allocating construct in
//! one of those bodies is a finding.  A designation that no longer matches
//! a function is *also* a finding ("stale hot-region designation"), so the
//! config cannot silently rot as code is renamed.

use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::lexer::SourceFile;
use crate::rules::{suffix_match, Rule};

/// Allocating token sequences.  `::` lexes as two `:` puncts.
const PATTERNS: &[(&[&str], &str)] = &[
    (&["Vec", ":", ":", "new"], "Vec::new"),
    (&["Vec", ":", ":", "with_capacity"], "Vec::with_capacity"),
    (&["vec", "!"], "vec!"),
    (&["Box", ":", ":", "new"], "Box::new"),
    (&["format", "!"], "format!"),
    (&["String", ":", ":", "new"], "String::new"),
    (&["String", ":", ":", "from"], "String::from"),
    (&[".", "to_string", "("], ".to_string()"),
    (&[".", "to_owned", "("], ".to_owned()"),
    (&[".", "to_vec", "("], ".to_vec()"),
    (&[".", "collect", "("], ".collect()"),
    (&[".", "collect", ":", ":"], ".collect::<…>()"),
    (&["HashMap", ":", ":", "new"], "HashMap::new"),
    (
        &["HashMap", ":", ":", "with_capacity"],
        "HashMap::with_capacity",
    ),
    (&["HashSet", ":", ":", "new"], "HashSet::new"),
    (&["BTreeMap", ":", ":", "new"], "BTreeMap::new"),
];

/// The `hot-path-alloc` rule; see module docs.
#[derive(Debug, Default)]
pub struct HotAlloc {
    /// `(file pattern, function)` designations that matched a body.
    matched: Vec<(String, String)>,
}

impl Rule for HotAlloc {
    fn id(&self) -> &'static str {
        "hot-path-alloc"
    }

    fn check_file(&mut self, file: &SourceFile, cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        for region in &cfg.hot_regions {
            if !suffix_match(&file.path, &region.file) {
                continue;
            }
            for func in &region.functions {
                let bodies = file.function_bodies(func);
                if !bodies.is_empty() {
                    self.matched.push((region.file.clone(), func.clone()));
                }
                for (start, end) in bodies {
                    scan_body(file, func, start, end, out);
                }
            }
        }
    }

    fn finish(&mut self, cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        // Designations that never matched a function body are stale: the
        // function was renamed or removed and the guard silently lapsed.
        for region in &cfg.hot_regions {
            for func in &region.functions {
                let hit = self
                    .matched
                    .iter()
                    .any(|(f, g)| f == &region.file && g == func);
                if !hit {
                    out.push(Diagnostic::new(
                        &region.file,
                        1,
                        self.id(),
                        format!(
                            "stale hot-region designation: no function `{func}` found — \
                             update the designated hot regions in crates/lint/src/config.rs"
                        ),
                    ));
                }
            }
        }
    }
}

/// Scans one designated function body for allocating constructs.
fn scan_body(file: &SourceFile, func: &str, start: usize, end: usize, out: &mut Vec<Diagnostic>) {
    let mut i = start;
    while i < end {
        if file.tokens[i].test {
            i += 1;
            continue;
        }
        let mut hit = None;
        for (pat, name) in PATTERNS {
            if file.match_seq(i, pat) && i + pat.len() <= end {
                hit = Some(*name);
                break;
            }
        }
        if let Some(name) = hit {
            out.push(Diagnostic::new(
                &file.path,
                file.tokens[i].line,
                "hot-path-alloc",
                format!("allocating construct `{name}` in designated hot region `{func}`"),
            ));
            // Skip past the match so `.collect::<…>` does not double-report
            // via the `.collect(` pattern.
            i += 2;
            continue;
        }
        i += 1;
    }
}
