//! Rule `unsafe-audit`: every `unsafe` carries a `SAFETY:` comment, and
//! the workspace unsafe census is pinned to an allowlist.
//!
//! PR 4 vendored a work-stealing pool whose one lifetime-erasure block is
//! the workspace's entire unsafe surface, and `ROADMAP.md` / the vendor
//! README assert as much.  This rule turns the assertion into a gate:
//!
//! * any `unsafe` without a `SAFETY:` comment within the 3 lines above it
//!   (or on its own line) is a finding;
//! * any file containing `unsafe` that is not on the allowlist — or whose
//!   occurrence count differs from the pinned count — is a finding;
//! * an allowlist entry that no longer matches anything is a stale-pin
//!   finding, so the list cannot over-claim either.

use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::lexer::SourceFile;
use crate::rules::Rule;

/// How many lines above an `unsafe` token the `SAFETY:` comment may sit.
const SAFETY_WINDOW: u32 = 3;

/// The `unsafe-audit` rule; see module docs.
#[derive(Debug, Default)]
pub struct UnsafeAudit {
    /// Per-file `unsafe` occurrence counts, in walk order.
    counts: Vec<(String, usize)>,
}

impl Rule for UnsafeAudit {
    fn id(&self) -> &'static str {
        "unsafe-audit"
    }

    fn check_file(&mut self, file: &SourceFile, _cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        let mut count = 0usize;
        for tok in &file.tokens {
            // The lexer emits `unsafe_code` (the lint name in attributes)
            // as a single distinct ident, so this matches only the keyword.
            if tok.text != "unsafe" {
                continue;
            }
            count += 1;
            if !has_safety_comment(file, tok.line) {
                out.push(Diagnostic::new(
                    &file.path,
                    tok.line,
                    self.id(),
                    format!("`unsafe` without a `SAFETY:` comment within {SAFETY_WINDOW} lines"),
                ));
            }
        }
        if count > 0 {
            self.counts.push((file.path.clone(), count));
        }
    }

    fn finish(&mut self, cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        for (path, count) in &self.counts {
            match cfg.unsafe_allowlist.iter().find(|(p, _)| p == path) {
                None => out.push(Diagnostic::new(
                    path,
                    1,
                    self.id(),
                    format!(
                        "file contains {count} `unsafe` occurrence(s) but is not on the \
                         unsafe allowlist — allowlist it deliberately in \
                         crates/lint/src/config.rs with a reviewed soundness argument"
                    ),
                )),
                Some((_, pinned)) if pinned != count => out.push(Diagnostic::new(
                    path,
                    1,
                    self.id(),
                    format!(
                        "unsafe census drift: {count} occurrence(s) found, allowlist pins \
                         {pinned}"
                    ),
                )),
                Some(_) => {}
            }
        }
        for (path, pinned) in &cfg.unsafe_allowlist {
            if !self.counts.iter().any(|(p, _)| p == path) {
                out.push(Diagnostic::new(
                    path,
                    1,
                    self.id(),
                    format!(
                        "stale unsafe allowlist entry: pins {pinned} occurrence(s) but the \
                         file contains none — remove the entry"
                    ),
                ));
            }
        }
    }
}

/// Whether a `SAFETY:` comment covers the `unsafe` on `line`: either
/// directly within the window, or anywhere in a contiguous comment block
/// whose tail reaches into the window (a long soundness argument keeps its
/// `SAFETY:` tag on the first line).
fn has_safety_comment(file: &SourceFile, line: u32) -> bool {
    let from = line.saturating_sub(SAFETY_WINDOW);
    if file.comment_in_range_contains(from, line, "SAFETY:") {
        return true;
    }
    // Walk upward through the contiguous comment block from the highest
    // commented line inside the window.
    let mut l = (from..=line)
        .rev()
        .find(|l| file.comments_on(*l).next().is_some());
    while let Some(cur) = l {
        if file.comments_on(cur).any(|t| t.contains("SAFETY:")) {
            return true;
        }
        l = (cur > 1 && file.comments_on(cur - 1).next().is_some()).then(|| cur - 1);
    }
    false
}

/// The workspace unsafe census: `(path, occurrence count)` for every file
/// containing the `unsafe` keyword, sorted by path.  Exposed so the census
/// pin test can assert the exact workspace-wide surface.
#[must_use]
pub fn census(files: &[SourceFile]) -> Vec<(String, usize)> {
    let mut counts: Vec<(String, usize)> = files
        .iter()
        .filter_map(|f| {
            let n = f.tokens.iter().filter(|t| t.text == "unsafe").count();
            (n > 0).then(|| (f.path.clone(), n))
        })
        .collect();
    counts.sort();
    counts
}
