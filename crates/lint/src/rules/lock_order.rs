//! Rule `lock-order`: build the workspace lock graph and report cycles.
//!
//! The server multiplexes four lock-bearing modules (PRs 5–7): the serve
//! `ServerState`, the session result cache, the bench harness and the
//! vendored rayon scheduler.  Their acquisition order is pure convention;
//! this rule makes it checkable.  Per function it extracts `Mutex` /
//! `RwLock` acquisitions, tracks acquired-while-held pairs through lexical
//! scopes plus one level of intra-crate call resolution, builds the
//! directed lock graph, and reports every cycle as a potential deadlock.
//! It also flags bare `.lock().unwrap()` — the workspace convention is
//! poison recovery (`unwrap_or_else(PoisonError::into_inner)`) or an
//! `.expect` with a message.
//!
//! The scope model is a deliberate approximation (this is a linter, not a
//! borrow checker):
//!
//! * a lock chain that terminates a `let` initializer is a guard held to
//!   the end of the enclosing block (released early by `drop(name)`);
//! * a chain that keeps going (`.lock().expect(…).push(x)`) is a
//!   temporary, released at the next `;` at its own depth;
//! * closures handed to `spawn` / `spawn_prioritized` run on another
//!   thread later, so the held set is empty inside them (otherwise the
//!   pool's `ensure_workers` — which spawns `worker_loop` while holding
//!   the handle list — would manufacture a false cycle);
//! * `.read()` / `.write()` count only when the receiver is a declared
//!   `RwLock` (so `io::Write::write` never matches), and a chain hanging
//!   off a call result (`stdin().lock()`) is not a `Mutex` acquisition;
//! * call resolution covers `self.f(…)` / `Self::f(…)` / bare `f(…)` to
//!   functions in the same crate — method calls on other objects are left
//!   unresolved so that iterator adapters like `.map(…)` never resolve to
//!   an unrelated lock-taking method of the same name.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::lexer::{SourceFile, TokKind};
use crate::rules::{prefix_match, Rule};

/// How long a held lock lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scope {
    /// A temporary: released at the next `;` (or when its block closes).
    Stmt(i32),
    /// A `let`-bound guard: released when the block at this depth closes.
    Block(i32),
}

/// One currently-held lock during a function scan.
#[derive(Debug, Clone)]
struct Held {
    /// Crate-qualified lock id (`serve::state`, `rayon::sleep`, …).
    id: String,
    /// Release point.
    scope: Scope,
    /// The `let` binding name, for `drop(name)` release.
    bind: Option<String>,
}

/// One function slated for analysis.
#[derive(Debug)]
struct Func {
    file_idx: usize,
    crate_name: String,
    name: String,
    start: usize,
    end: usize,
}

/// The `lock-order` rule; see module docs.
#[derive(Debug, Default)]
pub struct LockOrder {
    /// Lock-path files, retained for whole-workspace analysis in `finish`.
    files: Vec<SourceFile>,
}

impl Rule for LockOrder {
    fn id(&self) -> &'static str {
        "lock-order"
    }

    fn check_file(&mut self, file: &SourceFile, cfg: &LintConfig, _out: &mut Vec<Diagnostic>) {
        if cfg.lock_paths.iter().any(|p| prefix_match(&file.path, p)) {
            self.files.push(file.clone());
        }
    }

    fn finish(&mut self, _cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        let rwlocks = rwlock_names(&self.files);
        let funcs = collect_functions(&self.files);

        // Pass 1: each function's direct acquisitions, keyed by
        // (crate, name) for one-level call resolution.
        let mut direct: HashMap<(String, String), Vec<String>> = HashMap::new();
        for f in &funcs {
            let mut acq = Vec::new();
            scan(
                &self.files[f.file_idx],
                f,
                &rwlocks,
                None,
                &mut acq,
                &mut Vec::new(),
                &mut Vec::new(),
            );
            let entry = direct
                .entry((f.crate_name.clone(), f.name.clone()))
                .or_default();
            for (id, _) in acq {
                if !entry.contains(&id) {
                    entry.push(id);
                }
            }
        }

        // Pass 2: acquired-while-held edges, with calls resolved.
        let mut edges: Vec<(String, String, String, u32)> = Vec::new();
        for f in &funcs {
            scan(
                &self.files[f.file_idx],
                f,
                &rwlocks,
                Some(&direct),
                &mut Vec::new(),
                &mut edges,
                out,
            );
        }

        // Self-edges are re-acquisitions: an immediate deadlock with
        // std's non-reentrant Mutex.
        let mut evidence: HashMap<(String, String), (String, u32)> = HashMap::new();
        let mut graph: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (from, to, path, line) in edges {
            if from == to {
                out.push(Diagnostic::new(
                    &path,
                    line,
                    self.id(),
                    format!("lock `{from}` acquired while already held (self-deadlock)"),
                ));
                continue;
            }
            evidence
                .entry((from.clone(), to.clone()))
                .or_insert((path, line));
            graph.entry(from).or_default().insert(to);
        }

        for cycle in find_cycles(&graph) {
            let chain = cycle
                .iter()
                .chain(cycle.first())
                .cloned()
                .collect::<Vec<_>>()
                .join(" → ");
            let sites: Vec<String> = cycle
                .iter()
                .zip(cycle.iter().cycle().skip(1))
                .filter_map(|(a, b)| evidence.get(&(a.clone(), b.clone())))
                .map(|(p, l)| format!("{p}:{l}"))
                .collect();
            let (path, line) = evidence
                .get(&(cycle[0].clone(), cycle[1 % cycle.len()].clone()))
                .cloned()
                .unwrap_or_else(|| (cycle[0].clone(), 1));
            out.push(Diagnostic::new(
                &path,
                line,
                self.id(),
                format!(
                    "potential deadlock: lock-order cycle {chain} (acquisition sites: {})",
                    sites.join(", ")
                ),
            ));
        }
    }
}

/// The crate a workspace-relative path belongs to (`crates/serve/…` →
/// `serve`, `vendor/rayon/…` → `rayon`, `src/…` → `dae`).
fn crate_of(path: &str) -> String {
    let mut parts = path.split('/');
    match parts.next() {
        Some("crates" | "vendor") => parts.next().unwrap_or("dae").to_string(),
        Some("src") => "dae".to_string(),
        _ => "dae".to_string(),
    }
}

/// Every field or binding declared as an `RwLock`, across all files.
fn rwlock_names(files: &[SourceFile]) -> HashSet<String> {
    let mut names = HashSet::new();
    for file in files {
        for i in 0..file.tokens.len() {
            // `name: RwLock<…>` (struct field / param).
            if file.tokens[i].kind == TokKind::Ident && file.match_seq(i + 1, &[":", "RwLock", "<"])
            {
                names.insert(file.tokens[i].text.clone());
            }
            // `let [mut] name = RwLock::new(…)`.
            if file.tokens[i].text == "let" {
                let mut j = i + 1;
                if file.tokens.get(j).is_some_and(|t| t.text == "mut") {
                    j += 1;
                }
                if file.tokens.get(j).is_some_and(|t| t.kind == TokKind::Ident)
                    && file.match_seq(j + 1, &["=", "RwLock", ":", ":", "new"])
                {
                    names.insert(file.tokens[j].text.clone());
                }
            }
        }
    }
    names
}

/// Enumerates every non-test function body in the retained files.
fn collect_functions(files: &[SourceFile]) -> Vec<Func> {
    let mut funcs = Vec::new();
    for (file_idx, file) in files.iter().enumerate() {
        let crate_name = crate_of(&file.path);
        let mut i = 0;
        while i + 1 < file.tokens.len() {
            if file.tokens[i].text == "fn"
                && !file.tokens[i].test
                && file.tokens[i + 1].kind == TokKind::Ident
            {
                let name = file.tokens[i + 1].text.clone();
                let mut j = i + 2;
                let mut nest = 0usize;
                while j < file.tokens.len() && file.tokens[j].text != "{" {
                    match file.tokens[j].text.as_str() {
                        "(" | "[" => nest += 1,
                        ")" | "]" => nest = nest.saturating_sub(1),
                        ";" if nest == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                if j < file.tokens.len() && file.tokens[j].text == "{" {
                    let end = file.matching_brace_end(j);
                    funcs.push(Func {
                        file_idx,
                        crate_name: crate_name.clone(),
                        name,
                        start: j + 1,
                        end: end.saturating_sub(1),
                    });
                    i = end;
                    continue;
                }
            }
            i += 1;
        }
    }
    funcs
}

/// Index just past the `)` matching the `(` at `open`.
fn matching_paren_end(file: &SourceFile, open: usize) -> usize {
    let mut depth = 0usize;
    for (i, tok) in file.tokens.iter().enumerate().skip(open) {
        match tok.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
    }
    file.tokens.len()
}

/// Scans one function body.  With `resolve` set (pass 2) it records
/// acquired-while-held `edges` and bare-unwrap findings in `diags`;
/// without (pass 1) it only collects direct `acquisitions`.
#[allow(clippy::too_many_lines)]
fn scan(
    file: &SourceFile,
    f: &Func,
    rwlocks: &HashSet<String>,
    resolve: Option<&HashMap<(String, String), Vec<String>>>,
    acquisitions: &mut Vec<(String, u32)>,
    edges: &mut Vec<(String, String, String, u32)>,
    diags: &mut Vec<Diagnostic>,
) {
    let toks = &file.tokens;
    let mut holds: Vec<Held> = Vec::new();
    let mut barriers: Vec<(i32, Vec<Held>)> = Vec::new();
    let mut brace: i32 = 0;
    let mut paren: i32 = 0;
    let mut stmt_let: Option<String> = None;
    let mut i = f.start;

    while i < f.end {
        let t = &toks[i];
        match t.text.as_str() {
            "{" => {
                brace += 1;
                stmt_let = None;
            }
            "}" => {
                brace -= 1;
                holds.retain(|h| match h.scope {
                    Scope::Block(d) | Scope::Stmt(d) => d <= brace,
                });
                stmt_let = None;
            }
            "(" => paren += 1,
            ")" => {
                paren -= 1;
                // Leaving a spawn call: the closure ran with an empty held
                // set; restore the caller's.
                while barriers.last().is_some_and(|(d, _)| *d == paren) {
                    let (_, saved) = barriers.pop().expect("just checked");
                    holds = saved;
                }
            }
            ";" => {
                holds.retain(|h| !matches!(h.scope, Scope::Stmt(_)));
                stmt_let = None;
            }
            "let" => {
                let mut j = i + 1;
                if toks.get(j).is_some_and(|t| t.text == "mut") {
                    j += 1;
                }
                if let Some(tok) = toks.get(j) {
                    if tok.kind == TokKind::Ident {
                        stmt_let = Some(tok.text.clone());
                    }
                }
            }
            "drop" if file.match_seq(i + 1, &["("]) => {
                // `drop(name)` releases a named guard early.
                if let (Some(arg), Some(close)) = (toks.get(i + 2), toks.get(i + 3)) {
                    if arg.kind == TokKind::Ident && close.text == ")" {
                        holds.retain(|h| h.bind.as_deref() != Some(arg.text.as_str()));
                    }
                }
            }
            "." => {
                if let Some((id, bare, after)) = acquisition_at(file, f, i, rwlocks) {
                    let line = t.line;
                    if resolve.is_some() && bare {
                        diags.push(Diagnostic::new(
                            &file.path,
                            line,
                            "lock-order",
                            format!(
                                "bare `.lock().unwrap()` on `{id}` — recover from poison \
                                 (`unwrap_or_else(PoisonError::into_inner)`) or `.expect` \
                                 with a message"
                            ),
                        ));
                    }
                    acquisitions.push((id.clone(), line));
                    for h in &holds {
                        edges.push((h.id.clone(), id.clone(), file.path.clone(), line));
                    }
                    let chained = after < f.end && toks[after].text == ".";
                    let (scope, bind) = if chained {
                        (Scope::Stmt(brace), None)
                    } else if let Some(name) = stmt_let.clone() {
                        (Scope::Block(brace), Some(name))
                    } else {
                        (Scope::Stmt(brace), None)
                    };
                    holds.push(Held { id, scope, bind });
                    i += 2;
                    continue;
                }
            }
            name if t.kind == TokKind::Ident => {
                let is_call = toks.get(i + 1).is_some_and(|t| t.text == "(")
                    && (i == 0 || toks[i - 1].text != "fn");
                if is_call {
                    // One-level call resolution: self.f(…) / Self::f(…) /
                    // bare f(…) only — method calls on other receivers stay
                    // unresolved (an iterator `.map(…)` must never resolve
                    // to an unrelated lock-taking method named `map`).
                    let self_call = i >= 2 && toks[i - 1].text == "." && toks[i - 2].text == "self";
                    let assoc_call = i >= 3
                        && toks[i - 1].text == ":"
                        && toks[i - 2].text == ":"
                        && toks[i - 3].text == "Self";
                    let bare_call = i == 0 || (toks[i - 1].text != "." && toks[i - 1].text != ":");
                    if let Some(map) = resolve {
                        if (self_call || assoc_call || bare_call) && name != f.name {
                            if let Some(callee_locks) =
                                map.get(&(f.crate_name.clone(), name.to_string()))
                            {
                                let call_end = matching_paren_end(file, i + 1);
                                let terminal = call_end >= f.end
                                    || toks.get(call_end).is_none_or(|t| t.text != ".");
                                for id in callee_locks {
                                    for h in &holds {
                                        edges.push((
                                            h.id.clone(),
                                            id.clone(),
                                            file.path.clone(),
                                            t.line,
                                        ));
                                    }
                                    // `let g = self.lock_state();` — the
                                    // callee's guard comes back to us.
                                    if terminal {
                                        if let Some(bind) = stmt_let.clone() {
                                            holds.push(Held {
                                                id: id.clone(),
                                                scope: Scope::Block(brace),
                                                bind: Some(bind),
                                            });
                                        }
                                    }
                                }
                            }
                        }
                    }
                    // Closures passed to spawn run later, elsewhere: empty
                    // held set inside.
                    if name == "spawn" || name == "spawn_prioritized" {
                        barriers.push((paren, std::mem::take(&mut holds)));
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// If the `.` at `i` starts a lock acquisition chain, returns
/// `(crate-qualified lock id, is bare .unwrap(), index past the chain's
/// adapters)`.
fn acquisition_at(
    file: &SourceFile,
    f: &Func,
    i: usize,
    rwlocks: &HashSet<String>,
) -> Option<(String, bool, usize)> {
    let toks = &file.tokens;
    let method = toks.get(i + 1)?;
    let is_lock = method.text == "lock";
    let is_rw = method.text == "read" || method.text == "write";
    if !is_lock && !is_rw {
        return None;
    }
    if toks.get(i + 2)?.text != "(" || toks.get(i + 3)?.text != ")" {
        return None;
    }
    if i == 0 || i <= f.start {
        return None;
    }

    // The receiver: the last path segment before the `.`, stepping over an
    // index expression (`deques[i].lock()` → `deques`).
    let mut j = i - 1;
    if toks[j].text == "]" {
        let mut depth = 0usize;
        loop {
            match toks[j].text.as_str() {
                "]" => depth += 1,
                "[" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if j == 0 {
                return None;
            }
            j -= 1;
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
    if toks[j].kind != TokKind::Ident {
        // `)` → chain off a call result (`stdin().lock()`): not a Mutex
        // field acquisition.
        return None;
    }
    let field = toks[j].text.clone();
    if is_rw && !rwlocks.contains(&field) {
        return None;
    }
    // Walk to the front of the receiver chain; a call result anywhere
    // upstream disqualifies it.
    while j >= 2 && toks[j - 1].text == "." && toks[j - 2].kind == TokKind::Ident {
        j -= 2;
    }
    if j >= 1 && (toks[j - 1].text == ")" || toks[j - 1].text == ".") {
        return None;
    }

    // Step over the poison adapter, noting a bare `.unwrap()`.
    let mut k = i + 4;
    let mut bare = false;
    if file.match_seq(k, &[".", "unwrap", "(", ")"]) {
        bare = true;
        k += 4;
    } else if toks.get(k).is_some_and(|t| t.text == ".")
        && toks
            .get(k + 1)
            .is_some_and(|t| t.text == "expect" || t.text == "unwrap_or_else")
        && toks.get(k + 2).is_some_and(|t| t.text == "(")
    {
        k = matching_paren_end(file, k + 2);
    }

    Some((format!("{}::{field}", f.crate_name), bare, k))
}

/// Every elementary cycle in the lock graph, normalised (rotated so the
/// smallest id is first) and deduplicated.
fn find_cycles(graph: &BTreeMap<String, BTreeSet<String>>) -> Vec<Vec<String>> {
    let mut cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in graph.keys() {
        let mut path = vec![start.clone()];
        dfs(graph, start, &mut path, &mut cycles);
    }
    cycles.into_iter().collect()
}

/// Depth-first search collecting cycles that return to a node on the
/// current path.
fn dfs(
    graph: &BTreeMap<String, BTreeSet<String>>,
    node: &str,
    path: &mut Vec<String>,
    cycles: &mut BTreeSet<Vec<String>>,
) {
    if path.len() > 16 {
        return; // depth guard; the workspace graph is tiny
    }
    let Some(nexts) = graph.get(node) else {
        return;
    };
    for next in nexts {
        if let Some(pos) = path.iter().position(|n| n == next) {
            let mut cycle: Vec<String> = path[pos..].to_vec();
            let min = cycle
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.as_str())
                .map_or(0, |(k, _)| k);
            cycle.rotate_left(min);
            cycles.insert(cycle);
        } else {
            path.push(next.clone());
            dfs(graph, next, path, cycles);
            path.pop();
        }
    }
}
