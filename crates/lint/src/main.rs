//! The `dae-lint` binary: lint the workspace, print findings, exit
//! non-zero if any survive suppression.

use std::path::PathBuf;
use std::process::ExitCode;

use dae_lint::LintConfig;

/// The workspace root: `--root <path>` if given, else two levels up from
/// this crate's manifest (`crates/lint` → the repository root).
fn root_from_args() -> PathBuf {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--root" {
            if let Some(path) = args.next() {
                return PathBuf::from(path);
            }
        }
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() -> ExitCode {
    let root = root_from_args();
    let cfg = LintConfig::workspace(root);
    let findings = dae_lint::run(&cfg);
    if findings.is_empty() {
        println!("dae-lint: clean");
        return ExitCode::SUCCESS;
    }
    for finding in &findings {
        println!("{finding}");
    }
    println!("dae-lint: {} finding(s)", findings.len());
    ExitCode::FAILURE
}
