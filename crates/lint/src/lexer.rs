//! A lightweight Rust lexer: just enough structure for invariant linting.
//!
//! The linter's rules are token-sequence matchers, and the one thing a
//! text-level matcher must never do is fire on prose — a doc comment that
//! *mentions* `.unwrap()`, a test string containing `unsafe`, a protocol
//! transcript embedding `format!`.  This lexer removes that whole failure
//! class at the source: string literals, character literals and comments
//! are stripped out of the code stream (comments are kept on the side,
//! because two rules — `SAFETY:` auditing and `lint:allow` suppression —
//! read them deliberately), and what remains is a flat token list with
//! line numbers.
//!
//! It is deliberately *not* a parser.  There is no `syn` in the vendored
//! workspace and pulling one in would violate the offline-stub policy
//! (`vendor/README.md`); the rules only need tokens plus two structural
//! facts this module also provides: which tokens sit inside `#[cfg(test)]`
//! items (test code may unwrap and lock as it pleases), and matching-brace
//! navigation for function extents.

/// The coarse class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`unsafe`, `lock`, `Vec`, …).
    Ident,
    /// A single punctuation character (`.`, `:`, `{`, `!`, …).
    Punct,
    /// A string literal (content stripped; text is empty).
    Str,
    /// A character literal (content stripped; text is empty).
    Char,
    /// A numeric literal.
    Num,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
}

/// One lexed token: its class, its (stripped) text and the 1-based source
/// line it starts on, plus whether it sits inside a `#[cfg(test)]` item.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token's class.
    pub kind: TokKind,
    /// The token text (empty for string/char literals).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
    /// Whether the token is inside a `#[cfg(test)]` item.
    pub test: bool,
}

/// One comment (line `//…` or block `/*…*/` segment): the 1-based line it
/// sits on and its text without the delimiters.  A block comment spanning
/// several lines yields one entry per line, so "within N lines" checks
/// work uniformly.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based source line.
    pub line: u32,
    /// Comment text without `//` / `/*` delimiters.
    pub text: String,
}

/// A lexed source file: workspace-relative path, code tokens and comments.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// The code token stream (strings/chars stripped, comments removed).
    pub tokens: Vec<Token>,
    /// Every comment, one entry per source line it covers.
    pub comments: Vec<Comment>,
}

impl SourceFile {
    /// Lexes `text` as the contents of `path`.
    #[must_use]
    pub fn parse(path: &str, text: &str) -> SourceFile {
        let (mut tokens, comments) = lex(text);
        mark_test_items(&mut tokens);
        SourceFile {
            path: path.to_string(),
            tokens,
            comments,
        }
    }

    /// Whether the token sequence starting at `i` matches `pat` texts
    /// exactly.
    #[must_use]
    pub fn match_seq(&self, i: usize, pat: &[&str]) -> bool {
        self.tokens.len().saturating_sub(i) >= pat.len()
            && pat
                .iter()
                .enumerate()
                .all(|(k, p)| self.tokens[i + k].text == *p)
    }

    /// All comment texts on `line`.
    pub fn comments_on(&self, line: u32) -> impl Iterator<Item = &str> {
        self.comments
            .iter()
            .filter(move |c| c.line == line)
            .map(|c| c.text.as_str())
    }

    /// Whether any comment on lines `[from, to]` contains `needle`.
    #[must_use]
    pub fn comment_in_range_contains(&self, from: u32, to: u32, needle: &str) -> bool {
        self.comments
            .iter()
            .any(|c| c.line >= from && c.line <= to && c.text.contains(needle))
    }

    /// The index just past the brace-balanced region opened by the `{` at
    /// `open` (i.e. the index after its matching `}`); `tokens.len()` when
    /// unbalanced.
    #[must_use]
    pub fn matching_brace_end(&self, open: usize) -> usize {
        debug_assert_eq!(self.tokens[open].text, "{");
        let mut depth = 0usize;
        for (i, tok) in self.tokens.iter().enumerate().skip(open) {
            match tok.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
        }
        self.tokens.len()
    }

    /// Token ranges `(body_start, body_end)` (exclusive of the braces) of
    /// every non-test `fn name` in the file.
    #[must_use]
    pub fn function_bodies(&self, name: &str) -> Vec<(usize, usize)> {
        let mut bodies = Vec::new();
        let mut i = 0;
        while i + 1 < self.tokens.len() {
            if self.tokens[i].text == "fn"
                && !self.tokens[i].test
                && self.tokens[i + 1].text == name
            {
                // Scan past the signature (generics, params, return type,
                // where clause — none of which contain braces) to the body.
                let mut j = i + 2;
                let mut nest = 0usize;
                while j < self.tokens.len() && self.tokens[j].text != "{" {
                    match self.tokens[j].text.as_str() {
                        "(" | "[" => nest += 1,
                        ")" | "]" => nest = nest.saturating_sub(1),
                        // A top-level `;` is a trait method without a body —
                        // nothing to scan.  (Nested ones are array types:
                        // `[U; N]`.)
                        ";" if nest == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                if j < self.tokens.len() && self.tokens[j].text == "{" {
                    let end = self.matching_brace_end(j);
                    bodies.push((j + 1, end.saturating_sub(1)));
                    i = end;
                    continue;
                }
            }
            i += 1;
        }
        bodies
    }
}

/// Lexes source text into (tokens, comments).
#[allow(clippy::too_many_lines)]
fn lex(text: &str) -> (Vec<Token>, Vec<Comment>) {
    let chars: Vec<char> = text.chars().collect();
    let mut tokens = Vec::new();
    let mut comments: Vec<Comment> = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0usize;
    let n = chars.len();

    let mut push_comment = |line: u32, text: &str| {
        comments.push(Comment {
            line,
            text: text.to_string(),
        });
    };

    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                let start = i + 2;
                let mut j = start;
                while j < n && chars[j] != '\n' {
                    j += 1;
                }
                let text: String = chars[start..j].iter().collect();
                push_comment(line, &text);
                i = j;
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                // Nested block comment; emit one Comment per covered line.
                let mut depth = 1usize;
                let mut j = i + 2;
                let mut seg_start = j;
                while j < n && depth > 0 {
                    if chars[j] == '\n' {
                        let text: String = chars[seg_start..j].iter().collect();
                        push_comment(line, &text);
                        line += 1;
                        seg_start = j + 1;
                        j += 1;
                    } else if chars[j] == '/' && j + 1 < n && chars[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if chars[j] == '*' && j + 1 < n && chars[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let end = j.saturating_sub(2).max(seg_start);
                let text: String = chars[seg_start..end.min(n)].iter().collect();
                push_comment(line, &text);
                i = j;
            }
            '"' => {
                let (next, newlines) = skip_string(&chars, i);
                tokens.push(Token {
                    kind: TokKind::Str,
                    text: String::new(),
                    line,
                    test: false,
                });
                line += newlines;
                i = next;
            }
            'r' | 'b' if starts_string(&chars, i) => {
                let (next, newlines) = skip_raw_or_byte_string(&chars, i);
                tokens.push(Token {
                    kind: TokKind::Str,
                    text: String::new(),
                    line,
                    test: false,
                });
                line += newlines;
                i = next;
            }
            '\'' => {
                // Lifetime vs char literal.
                let (kind, next) = lifetime_or_char(&chars, i);
                let text = if kind == TokKind::Lifetime {
                    chars[i..next].iter().collect()
                } else {
                    String::new()
                };
                tokens.push(Token {
                    kind,
                    text,
                    line,
                    test: false,
                });
                i = next;
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < n && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                tokens.push(Token {
                    kind: TokKind::Num,
                    text: chars[i..j].iter().collect(),
                    line,
                    test: false,
                });
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i + 1;
                while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                tokens.push(Token {
                    kind: TokKind::Ident,
                    text: chars[i..j].iter().collect(),
                    line,
                    test: false,
                });
                i = j;
            }
            c => {
                tokens.push(Token {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line,
                    test: false,
                });
                i += 1;
            }
        }
    }
    (tokens, comments)
}

/// Whether `chars[i]` begins a raw/byte string (`r"`, `r#"`, `b"`, `br"`,
/// `br#"`) rather than an identifier starting with `r`/`b`.
fn starts_string(chars: &[char], i: usize) -> bool {
    let n = chars.len();
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if j < n && chars[j] == '\'' {
            return true; // byte char b'x'
        }
    }
    if j < n && chars[j] == 'r' {
        j += 1;
        while j < n && chars[j] == '#' {
            j += 1;
        }
    }
    j < n && chars[j] == '"'
}

/// Skips a plain `"…"` string starting at `chars[i]`; returns (index past
/// the closing quote, newlines crossed).
fn skip_string(chars: &[char], i: usize) -> (usize, u32) {
    let n = chars.len();
    let mut j = i + 1;
    let mut newlines = 0;
    while j < n {
        match chars[j] {
            '\\' => j += 2,
            '\n' => {
                newlines += 1;
                j += 1;
            }
            '"' => return (j + 1, newlines),
            _ => j += 1,
        }
    }
    (n, newlines)
}

/// Skips a raw/byte string (or byte char) starting at `chars[i]`.
fn skip_raw_or_byte_string(chars: &[char], i: usize) -> (usize, u32) {
    let n = chars.len();
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if j < n && chars[j] == '\'' {
            // b'x' byte char
            let mut k = j + 1;
            while k < n {
                match chars[k] {
                    '\\' => k += 2,
                    '\'' => return (k + 1, 0),
                    _ => k += 1,
                }
            }
            return (n, 0);
        }
    }
    let mut hashes = 0usize;
    if j < n && chars[j] == 'r' {
        j += 1;
        while j < n && chars[j] == '#' {
            hashes += 1;
            j += 1;
        }
    }
    debug_assert!(j < n && chars[j] == '"');
    j += 1;
    let mut newlines = 0;
    while j < n {
        if chars[j] == '\n' {
            newlines += 1;
            j += 1;
        } else if chars[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while seen < hashes && k < n && chars[k] == '#' {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return (k, newlines);
            }
            j += 1;
        } else if hashes == 0 && chars[j] == '\\' && chars[j + 1..].first() == Some(&'"') {
            // Plain r"…" has no escapes; this arm only applies to the
            // degenerate case of a backslash before the closing quote in a
            // non-raw byte string, which skip_string would have handled —
            // keep scanning.
            j += 1;
        } else {
            j += 1;
        }
    }
    (n, newlines)
}

/// Distinguishes a lifetime from a char literal at a `'`.
fn lifetime_or_char(chars: &[char], i: usize) -> (TokKind, usize) {
    let n = chars.len();
    if i + 1 >= n {
        return (TokKind::Char, n);
    }
    let c1 = chars[i + 1];
    if c1 == '\\' {
        // '\n', '\'', '\\', '\u{…}' …
        let mut j = i + 2;
        if j < n {
            j += 1; // the escaped char (or the 'u' of \u{…})
        }
        while j < n && chars[j] != '\'' {
            j += 1;
        }
        return (TokKind::Char, (j + 1).min(n));
    }
    if c1.is_alphabetic() || c1 == '_' {
        // 'a' (char) vs 'a / 'static (lifetime): a closing quote right
        // after a single ident char means a char literal.
        let mut j = i + 2;
        while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
            j += 1;
        }
        if j < n && chars[j] == '\'' && j == i + 2 {
            return (TokKind::Char, j + 1);
        }
        return (TokKind::Lifetime, j);
    }
    // '(' , '0' … — a plain char literal.
    let mut j = i + 1;
    while j < n && chars[j] != '\'' {
        j += 1;
    }
    (TokKind::Char, (j + 1).min(n))
}

/// Marks every token inside a `#[cfg(test)]` item (module, function, use…)
/// with `test = true`.  The item is whatever follows the attribute list:
/// up to its `;` when no brace opens first, otherwise through the matching
/// close brace.
fn mark_test_items(tokens: &mut [Token]) {
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text == "#" && i + 1 < tokens.len() && tokens[i + 1].text == "[" {
            let attr_start = i;
            let (is_test_attr, after_attr) = scan_attribute(tokens, i);
            if !is_test_attr {
                i = after_attr;
                continue;
            }
            // Consume any further attributes between #[cfg(test)] and the
            // item itself.
            let mut j = after_attr;
            while j + 1 < tokens.len() && tokens[j].text == "#" && tokens[j + 1].text == "[" {
                let (_, next) = scan_attribute(tokens, j);
                j = next;
            }
            // Skip the item: to `;` if it comes before any `{`, else
            // through the matching `}`.
            let mut k = j;
            let mut end = tokens.len();
            while k < tokens.len() {
                match tokens[k].text.as_str() {
                    ";" => {
                        end = k + 1;
                        break;
                    }
                    "{" => {
                        let mut depth = 0usize;
                        while k < tokens.len() {
                            match tokens[k].text.as_str() {
                                "{" => depth += 1,
                                "}" => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            k += 1;
                        }
                        end = (k + 1).min(tokens.len());
                        break;
                    }
                    _ => k += 1,
                }
            }
            for tok in &mut tokens[attr_start..end] {
                tok.test = true;
            }
            i = end;
            continue;
        }
        i += 1;
    }
}

/// Scans the attribute starting at `#` `[`; returns (whether it contains
/// both `cfg` and `test` tokens, index past the closing `]`).
fn scan_attribute(tokens: &[Token], i: usize) -> (bool, usize) {
    let mut depth = 0usize;
    let mut has_cfg = false;
    let mut has_test = false;
    let mut j = i + 1;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return (has_cfg && has_test, j + 1);
                }
            }
            "cfg" => has_cfg = true,
            "test" => has_test = true,
            _ => {}
        }
        j += 1;
    }
    (has_cfg && has_test, tokens.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_stripped() {
        let src = r#"
// a comment mentioning unwrap()
fn f() {
    let s = "unsafe in a string";
    let c = 'u';
}
"#;
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.tokens.iter().any(|t| t.text.contains("unwrap")));
        assert!(!f.tokens.iter().any(|t| t.text == "unsafe"));
        assert_eq!(f.comments.len(), 1);
        assert!(f.comments[0].text.contains("unwrap()"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = SourceFile::parse("x.rs", "fn f<'a>(x: &'a str, c: char) { let y = 'z'; }");
        let lifetimes: Vec<_> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(
            f.tokens.iter().filter(|t| t.kind == TokKind::Char).count(),
            1
        );
        // The `str` after &'a must still lex as an ident.
        assert!(f.tokens.iter().any(|t| t.text == "str"));
    }

    #[test]
    fn cfg_test_items_are_marked() {
        let src = "
fn live() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn t() { y.unwrap(); }
}
";
        let f = SourceFile::parse("x.rs", src);
        let unwraps: Vec<_> = f.tokens.iter().filter(|t| t.text == "unwrap").collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!unwraps[0].test);
        assert!(unwraps[1].test);
    }

    #[test]
    fn multiline_chains_keep_token_order() {
        let src = "fn f() {\n    self.shared\n        .dispatcher\n        .lock()\n        .expect(\"poisoned\")\n        .push(1);\n}\n";
        let f = SourceFile::parse("x.rs", src);
        let texts: Vec<&str> = f.tokens.iter().map(|t| t.text.as_str()).collect();
        let needle = ["dispatcher", ".", "lock", "(", ")", ".", "expect"];
        assert!(texts
            .windows(needle.len())
            .any(|w| w.iter().zip(needle.iter()).all(|(a, b)| a == b)));
    }

    #[test]
    fn raw_strings_are_stripped() {
        let f = SourceFile::parse("x.rs", r##"fn f() { let s = r#"vec![unsafe]"#; }"##);
        assert!(!f.tokens.iter().any(|t| t.text == "unsafe"));
    }

    #[test]
    fn function_bodies_are_found_with_generics() {
        let src = "fn run<U, const N: usize>(x: [U; N]) -> usize { inner() }\nfn other() {}\n";
        let f = SourceFile::parse("x.rs", src);
        let bodies = f.function_bodies("run");
        assert_eq!(bodies.len(), 1);
        let (s, e) = bodies[0];
        let texts: Vec<&str> = f.tokens[s..e].iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["inner", "(", ")"]);
    }
}
