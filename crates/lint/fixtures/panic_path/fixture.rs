//! Seeded panic-path violations: one raw panic, one suppression with a
//! reason (silenced), one bare suppression (reported).

fn reply(input: Option<u64>, flag: bool) -> u64 {
    if flag {
        panic!("no reply");
    }
    // lint:allow(panic-path): startup-only path, runs before the listener binds
    let port = input.expect("port");
    // lint:allow(panic-path)
    let value = input.unwrap();
    port + value
}
