//! A seeded lock-order cycle: `forward` takes alpha then beta, `backward`
//! takes beta then alpha — a classic ABBA deadlock — plus one bare
//! `.lock().unwrap()`.

struct Pair {
    alpha: Mutex<u64>,
    beta: Mutex<u64>,
}

impl Pair {
    fn forward(&self) {
        let a = self.alpha.lock().expect("alpha");
        let b = self.beta.lock().expect("beta");
        let _ = (*a, *b);
    }

    fn backward(&self) {
        let b = self.beta.lock().expect("beta");
        let a = self.alpha.lock().expect("alpha");
        let _ = (*a, *b);
    }

    fn sloppy(&self) {
        let a = self.alpha.lock().unwrap();
        let _ = *a;
    }
}
