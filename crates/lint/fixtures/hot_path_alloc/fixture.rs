//! Seeded hot-path allocation violations.  `hot_loop` is designated hot;
//! `cold_setup` is not and may allocate freely.

struct Sim {
    data: Vec<u64>,
}

impl Sim {
    fn hot_loop(&mut self) {
        let staged = Vec::new();
        self.data = staged;
        let mapped: Vec<u64> = self.data.iter().map(|x| x + 1).collect();
        self.data = mapped;
        let boxed = Box::new(0u64);
        let _ = *boxed;
        // lint:allow(hot-path-alloc): scratch label built once per sweep, not per event
        let label = format!("sim");
        let _ = label;
    }

    fn cold_setup(&mut self) {
        self.data = vec![0; 8];
    }
}
