//! Seeded unsafe-audit violations: the first block carries its soundness
//! argument, the second does not, and the census pin expects one block.

fn erased() -> u64 {
    // SAFETY: the value is a plain integer read through a valid reference.
    let a = unsafe { core::ptr::read(&7u64) };
    let x = a + 1;
    let y = x * 2;
    let z = y - 3;
    let b = unsafe { core::ptr::read(&z) };
    a + b
}
