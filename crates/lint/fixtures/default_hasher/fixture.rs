//! Seeded default-hasher violations; only `fast` names an explicit hasher.

use std::collections::HashMap;

struct Scratch {
    slow: HashMap<u64, u64>,
    fast: HashMap<u64, u64, FxBuildHasher>,
    names: HashSet<String>,
}

fn build() -> HashMap<u64, u64> {
    HashMap::new()
}
