//! The self-check and the census pin: `cargo test` alone catches drift.

use std::path::PathBuf;

use dae_lint::LintConfig;

/// The repository root (two levels up from this crate's manifest).
fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .expect("crates/lint sits two levels below the workspace root")
}

/// The linter must run clean over the live workspace — a finding anywhere
/// (or a heuristic regression producing a false positive) fails the test
/// suite, not just the separate CI lint step.
#[test]
fn live_workspace_is_clean() {
    let cfg = LintConfig::workspace(workspace_root());
    let findings = dae_lint::run(&cfg);
    assert!(
        findings.is_empty(),
        "dae-lint found {} issue(s) in the live workspace:\n{}",
        findings.len(),
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// `ROADMAP.md` and `vendor/README.md` claim the workspace carries exactly
/// one `unsafe` block — the rayon stub's batch lifetime erasure.  Pin the
/// census so the claim is enforced, not asserted: any new `unsafe` (or a
/// removal that strands the allowlist) fails here with the exact file list.
#[test]
fn unsafe_census_is_pinned() {
    let files = dae_lint::lex_workspace(&workspace_root());
    let census = dae_lint::unsafe_census(&files);
    assert_eq!(
        census,
        vec![("vendor/rayon/src/lib.rs".to_string(), 1)],
        "the workspace unsafe census drifted; update the allowlist in \
         crates/lint/src/config.rs and the docs only after review"
    );
}
