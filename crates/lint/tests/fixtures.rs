//! The seeded-violation corpus: every rule must fire on its fixture and
//! the findings must match the golden file exactly, so a silently dead
//! rule (or a drifting message format) fails `cargo test`.

use std::fs;
use std::path::PathBuf;

use dae_lint::{HotRegion, LintConfig};

/// The fixture directory for `rule`.
fn fixture_root(rule: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(rule)
}

/// Runs the linter over a fixture and compares against `expected.txt`.
/// Set `DAE_LINT_UPDATE_GOLDENS=1` to rewrite the goldens instead (then
/// review the diff).
fn check(rule: &str, cfg: &LintConfig) {
    let actual = dae_lint::run(cfg)
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("\n");
    let golden_path = fixture_root(rule).join("expected.txt");
    if std::env::var_os("DAE_LINT_UPDATE_GOLDENS").is_some() {
        fs::write(&golden_path, format!("{actual}\n"))
            .unwrap_or_else(|e| panic!("write {}: {e}", golden_path.display()));
        return;
    }
    let expected = fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", golden_path.display()));
    assert_eq!(
        actual.trim(),
        expected.trim(),
        "fixture `{rule}` findings drifted from the golden file"
    );
}

#[test]
fn hot_path_alloc_fires() {
    let mut cfg = LintConfig::bare(fixture_root("hot_path_alloc"));
    cfg.hot_regions = vec![HotRegion {
        file: "fixture.rs".to_string(),
        // `vanished` seeds the stale-designation finding.
        functions: vec!["hot_loop".to_string(), "vanished".to_string()],
    }];
    check("hot_path_alloc", &cfg);
}

#[test]
fn unsafe_audit_fires() {
    let mut cfg = LintConfig::bare(fixture_root("unsafe_audit"));
    // The fixture carries two blocks; the pin says one → census drift.
    cfg.unsafe_allowlist = vec![("fixture.rs".to_string(), 1)];
    check("unsafe_audit", &cfg);
}

#[test]
fn lock_order_detects_cycle() {
    let mut cfg = LintConfig::bare(fixture_root("lock_order"));
    cfg.lock_paths = vec![String::new()];
    check("lock_order", &cfg);
}

#[test]
fn default_hasher_fires() {
    let mut cfg = LintConfig::bare(fixture_root("default_hasher"));
    cfg.hasher_paths = vec![String::new()];
    check("default_hasher", &cfg);
}

#[test]
fn panic_path_fires_and_suppression_round_trips() {
    let mut cfg = LintConfig::bare(fixture_root("panic_path"));
    cfg.panic_path_files = vec!["fixture.rs".to_string()];
    check("panic_path", &cfg);
}
