//! Suppression semantics, pinned on in-memory sources: an allow with a
//! reason silences its finding; a bare allow silences the finding but is
//! itself reported; an allow for a different rule suppresses nothing.

use dae_lint::{LintConfig, SourceFile};

/// Runs the panic-path rule over one in-memory file.
fn lint(src: &str) -> Vec<String> {
    let mut cfg = LintConfig::bare(std::env::temp_dir());
    cfg.panic_path_files = vec!["mem.rs".to_string()];
    let files = vec![SourceFile::parse("mem.rs", src)];
    dae_lint::run_on(&cfg, &files)
        .iter()
        .map(ToString::to_string)
        .collect()
}

#[test]
fn reasoned_allow_silences() {
    let out = lint(
        "fn f(x: Option<u64>) -> u64 {\n\
         \x20   // lint:allow(panic-path): checked by the caller, cannot be None\n\
         \x20   x.unwrap()\n\
         }\n",
    );
    assert!(out.is_empty(), "expected clean, got: {out:?}");
}

#[test]
fn reasoned_allow_on_same_line_silences() {
    let out = lint(
        "fn f(x: Option<u64>) -> u64 {\n\
         \x20   x.unwrap() // lint:allow(panic-path): checked by the caller\n\
         }\n",
    );
    assert!(out.is_empty(), "expected clean, got: {out:?}");
}

#[test]
fn bare_allow_is_reported() {
    let out = lint(
        "fn f(x: Option<u64>) -> u64 {\n\
         \x20   // lint:allow(panic-path)\n\
         \x20   x.unwrap()\n\
         }\n",
    );
    assert_eq!(out.len(), 1, "got: {out:?}");
    assert!(out[0].contains("lint-allow"), "got: {out:?}");
    assert!(!out[0].contains("panic-path ·"), "got: {out:?}");
}

#[test]
fn allow_for_another_rule_does_not_silence() {
    let out = lint(
        "fn f(x: Option<u64>) -> u64 {\n\
         \x20   // lint:allow(hot-path-alloc): wrong rule on purpose\n\
         \x20   x.unwrap()\n\
         }\n",
    );
    assert_eq!(out.len(), 1, "got: {out:?}");
    assert!(out[0].contains("panic-path"), "got: {out:?}");
}

#[test]
fn prose_mentioning_the_syntax_is_not_a_directive() {
    let out = lint(
        "/// Callers may suppress with `lint:allow(panic-path): reason`.\n\
         fn f(x: Option<u64>) -> u64 {\n\
         \x20   x.unwrap()\n\
         }\n",
    );
    assert_eq!(out.len(), 1, "got: {out:?}");
    assert!(out[0].contains("panic-path"), "got: {out:?}");
}
