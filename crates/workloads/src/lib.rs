//! # dae-workloads — workload models for the DAE prefetching study
//!
//! The paper evaluates its two machines on traces of seven PERFECT Club
//! benchmarks.  Those Fortran programs (and the authors' tracing
//! infrastructure) are not available, so this crate provides calibrated
//! synthetic stand-ins — see [`PerfectProgram`] and the module documentation
//! of the [`PerfectProgram`] models — plus a handful of micro-pattern
//! kernels and a random-kernel generator used by property tests.
//!
//! Every workload is a [`Workload`]: a static kernel plus metadata (expected
//! latency-hiding band, default trace length).  Expanding a workload yields
//! a [`Trace`](dae_trace::Trace) ready for any of the machine models.
//!
//! ## Example
//!
//! ```
//! use dae_workloads::{PerfectProgram, suite};
//!
//! // The full Table 1 suite, in the paper's order.
//! let all = suite();
//! assert_eq!(all.len(), 7);
//!
//! // The paper's three representative programs.
//! let flo = PerfectProgram::Flo52q.workload();
//! let trace = flo.trace(500);
//! assert!(trace.stats().memory_fraction() > 0.3);
//! ```

mod meta;
mod perfect;
mod synthetic;

pub use meta::{LatencyHidingBand, Workload, WorkloadMeta};
pub use perfect::{adm, dyfesm, flo52q, mdg, qcd, suite, track, trfd, PerfectProgram};
pub use synthetic::{
    gather_scatter, pointer_chase, random_kernel, reduction, stencil, stream, synthetic_suite,
};
