//! Extra synthetic kernels: micro-patterns and randomised kernels.
//!
//! These are not part of the paper's suite; they exist for examples,
//! ablation experiments and property-based testing of the simulators
//! (randomised kernels exercise lowering and machine invariants on shapes no
//! hand-written workload covers).

use crate::{Workload, WorkloadMeta};
use dae_isa::{Kernel, KernelBuilder, Operand};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn wrap(kernel: Kernel, iterations: u64, description: &str) -> Workload {
    let name = kernel.name().to_string();
    Workload::new(
        kernel,
        WorkloadMeta {
            name,
            description: description.to_string(),
            expected_band: None,
            default_iterations: iterations,
        },
    )
}

/// `stream`: a pure copy/scale loop (`y[i] = a * x[i]`) — the friendliest
/// possible workload for any latency-hiding scheme.
#[must_use]
pub fn stream() -> Workload {
    let mut b = KernelBuilder::new("stream");
    b.describe("y[i] = a * x[i]");
    let i = b.induction();
    let x = b.load_strided(&[Operand::Local(i)], 0x0100_0000, 8);
    let y = b.fp_mul(&[Operand::Local(x), Operand::Invariant(0)]);
    b.store_strided(&[Operand::Local(y), Operand::Local(i)], 0x0200_0000, 8);
    wrap(
        b.build().expect("stream kernel is valid"),
        4000,
        "streaming scale: perfectly decoupled, memory-bandwidth bound",
    )
}

/// `stencil`: a 3-point stencil with reused neighbours — exposes temporal
/// locality for the bypass / cache experiments.
#[must_use]
pub fn stencil() -> Workload {
    let mut b = KernelBuilder::new("stencil");
    b.describe("y[i] = (x[i-1] + x[i] + x[i+1]) / 3");
    let i = b.induction();
    // Neighbouring loads share lines with the previous iteration's loads.
    let xm = b.load_strided(&[Operand::Local(i)], 0x0100_0000, 8);
    let xc = b.load_strided(&[Operand::Local(i)], 0x0100_0008, 8);
    let xp = b.load_strided(&[Operand::Local(i)], 0x0100_0010, 8);
    let s1 = b.fp_add(&[Operand::Local(xm), Operand::Local(xc)]);
    let s2 = b.fp_add(&[Operand::Local(s1), Operand::Local(xp)]);
    let avg = b.fp_mul(&[Operand::Local(s2), Operand::Invariant(0)]);
    b.store_strided(&[Operand::Local(avg), Operand::Local(i)], 0x0300_0000, 8);
    wrap(
        b.build().expect("stencil kernel is valid"),
        3000,
        "3-point stencil: each value is re-loaded by the next two iterations",
    )
}

/// `pointer_chase`: a single serial linked-list walk — the adversarial case
/// no machine can hide.
#[must_use]
pub fn pointer_chase() -> Workload {
    let mut b = KernelBuilder::new("pointer-chase");
    b.describe("p = *p with one floating point operation per node");
    let p_id = b.len();
    let p = b.load_indirect(
        &[Operand::Carried {
            stmt: p_id,
            distance: 1,
        }],
        0x0100_0000,
        1 << 20,
        0,
    );
    b.fp_add_carried_self(&[Operand::Local(p)]);
    wrap(
        b.build().expect("pointer-chase kernel is valid"),
        1500,
        "serial pointer chase: every load's address depends on the previous load",
    )
}

/// `reduction`: a dot product — a long floating point recurrence over
/// streaming loads.
#[must_use]
pub fn reduction() -> Workload {
    let mut b = KernelBuilder::new("reduction");
    b.describe("acc += x[i] * y[i]");
    let i = b.induction();
    let x = b.load_strided(&[Operand::Local(i)], 0x0100_0000, 8);
    let y = b.load_strided(&[Operand::Local(i)], 0x0200_0000, 8);
    let m = b.fp_mul(&[Operand::Local(x), Operand::Local(y)]);
    b.fp_add_carried_self(&[Operand::Local(m)]);
    wrap(
        b.build().expect("reduction kernel is valid"),
        3000,
        "dot product: loads stream freely, the accumulation serialises the DU",
    )
}

/// `gather_scatter`: indexed loads and stores through an index vector — the
/// canonical AU-self-load workload.
#[must_use]
pub fn gather_scatter() -> Workload {
    let mut b = KernelBuilder::new("gather-scatter");
    b.describe("y[ix[i]] = f(x[ix[i]])");
    let i = b.induction();
    let ix = b.load_strided(&[Operand::Local(i)], 0x0100_0000, 4);
    let x = b.load_indirect(&[Operand::Local(ix)], 0x0200_0000, 1 << 20, 0);
    let f = b.fp_mul(&[Operand::Local(x), Operand::Invariant(0)]);
    let g = b.fp_add(&[Operand::Local(f), Operand::Invariant(1)]);
    b.store_indirect(
        &[Operand::Local(g), Operand::Local(ix)],
        0x0300_0000,
        1 << 20,
        1,
    );
    wrap(
        b.build().expect("gather-scatter kernel is valid"),
        3000,
        "indexed gather and scatter: every iteration performs an AU self load",
    )
}

/// All named synthetic workloads.
#[must_use]
pub fn synthetic_suite() -> Vec<Workload> {
    vec![
        stream(),
        stencil(),
        pointer_chase(),
        reduction(),
        gather_scatter(),
    ]
}

/// Generates a random — but always valid — kernel from a seed.
///
/// Used by property-based tests to exercise the lowerings and machines on
/// dependence shapes no hand-written kernel covers.  The kernel always
/// starts with an induction variable and contains at least one load so every
/// machine model has work to do.
#[must_use]
pub fn random_kernel(seed: u64, statements: usize) -> Kernel {
    let mut rng = StdRng::seed_from_u64(seed);
    let statements = statements.clamp(3, 128);
    let mut b = KernelBuilder::new(format!("random-{seed}"));
    b.describe("randomly generated kernel for property tests");
    let i = b.induction();
    let first_load = b.load_strided(&[Operand::Local(i)], 0x0100_0000, 8);
    let mut producers: Vec<usize> = vec![first_load];

    while b.len() < statements {
        let pick = |rng: &mut StdRng, producers: &[usize]| -> Operand {
            let idx = rng.gen_range(0..producers.len());
            Operand::Local(producers[idx])
        };
        let choice = rng.gen_range(0..100);
        let id = if choice < 20 {
            // Strided load indexed by the induction variable.
            let base = 0x0100_0000 + u64::from(rng.gen_range(1u32..16)) * 0x0100_0000;
            b.load_strided(&[Operand::Local(i)], base, 8)
        } else if choice < 32 {
            // Gather through an existing value.
            let src = pick(&mut rng, &producers);
            b.load_indirect(&[src], 0x2000_0000, 1 << 18, 0)
        } else if choice < 42 {
            // Integer address arithmetic.
            let src = pick(&mut rng, &producers);
            b.int(&[src, Operand::Local(i)])
        } else if choice < 52 && b.len() + 1 < statements {
            // A store consumes a value and does not produce one.
            let src = pick(&mut rng, &producers);
            b.store_strided(&[src, Operand::Local(i)], 0x3000_0000, 8);
            continue;
        } else if choice < 62 {
            // A floating point recurrence.
            let src = pick(&mut rng, &producers);
            b.fp_add_carried_self(&[src])
        } else {
            // Ordinary floating point work.
            let a = pick(&mut rng, &producers);
            let c = pick(&mut rng, &producers);
            if rng.gen_bool(0.5) {
                b.fp_add(&[a, c])
            } else {
                b.fp_mul(&[a, c])
            }
        };
        producers.push(id);
    }

    b.build().expect("random kernels are valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_isa::{OpKind, Statement, UnitClass};
    use dae_trace::{expand, expand_swsm, lower_scalar, partition, PartitionMode};

    #[test]
    fn named_synthetics_build_and_expand() {
        for w in synthetic_suite() {
            assert!(w.kernel().validate().is_ok(), "{}", w.name());
            let trace = w.trace(50);
            assert_eq!(trace.len(), 50 * w.kernel().len());
        }
    }

    #[test]
    fn pointer_chase_is_fully_serial_through_memory() {
        let w = pointer_chase();
        let trace = w.trace(10);
        let stats = trace.stats();
        assert_eq!(stats.loads, 10);
        assert_eq!(stats.indirect_loads, 9, "all but the first are chained");
    }

    #[test]
    fn gather_scatter_produces_au_self_loads() {
        let trace = gather_scatter().trace(100);
        let dm = partition(&trace, PartitionMode::Tagged);
        assert_eq!(dm.stats.au_self_loads, 100);
        assert_eq!(dm.stats.copies_du_to_au, 0);
    }

    #[test]
    fn random_kernels_are_valid_and_lower_cleanly() {
        for seed in 0..25u64 {
            let kernel = random_kernel(seed, 24);
            assert!(kernel.validate().is_ok(), "seed {seed}");
            let trace = expand(&kernel, 40);
            let dm = partition(&trace, PartitionMode::Tagged);
            let swsm = expand_swsm(&trace);
            let scalar = lower_scalar(&trace);
            assert_eq!(scalar.insts.len(), trace.len());
            assert!(dm.au.len() + dm.du.len() >= trace.len());
            assert!(swsm.insts.len() >= trace.len());
        }
    }

    #[test]
    fn random_kernels_are_deterministic_per_seed() {
        assert_eq!(random_kernel(7, 20), random_kernel(7, 20));
        assert_ne!(random_kernel(7, 20), random_kernel(8, 20));
    }

    #[test]
    fn random_kernel_clamps_statement_counts() {
        assert!(random_kernel(1, 0).len() >= 3);
        assert!(random_kernel(1, 1000).len() <= 128);
    }

    #[test]
    fn statement_kinds_match_unit_defaults() {
        // Sanity-check a hand-built statement to guard the Statement API used
        // by the generators.
        let s = Statement::arith(OpKind::FpAdd, UnitClass::Compute, vec![]);
        assert_eq!(s.unit, UnitClass::Compute);
        assert!(s.address.is_none());
    }
}
