//! Synthetic models of the seven PERFECT Club programs used by the paper.
//!
//! The paper drives its simulators with traces of seven PERFECT Club
//! benchmarks (TRFD, ADM, FLO52Q, DYFESM, QCD, MDG, TRACK).  Those Fortran
//! programs and the authors' tracing compiler are not available, so this
//! module provides *structural stand-ins*: small loop kernels whose dynamic
//! dependence structure is calibrated to reproduce the properties the
//! paper's results depend on (see DESIGN.md §1):
//!
//! * **memory intensity** — loads/stores per floating point operation;
//! * **index loads** — array subscripts loaded from memory ("AU self
//!   loads"), present in every program, which bound how far the address
//!   unit can run ahead of an outstanding load within a finite window;
//! * **memory-carried recurrences** — loads whose addresses depend on
//!   values loaded a configurable number of iterations earlier; their
//!   *distance* controls how much memory latency appears on the dataflow
//!   critical path and therefore which latency-hiding band the program
//!   falls into;
//! * **floating point recurrences and intra-iteration chains** — the
//!   instruction-level-parallelism profile;
//! * **loss-of-decoupling events** — addresses computed from floating point
//!   data, forcing DU→AU copies (prominent only in TRACK).
//!
//! The three programs the paper examines in detail keep their published
//! characters: FLO52Q is highly parallel and decouples well, MDG sits in the
//! middle band, and TRACK is serial with data-dependent addressing.

use crate::{LatencyHidingBand, Workload, WorkloadMeta};
use dae_isa::{Kernel, KernelBuilder, Operand, StmtId, UnitClass};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Base addresses of the simulated data regions, spaced far apart so the
/// streams of one kernel never alias.
mod region {
    pub const A: u64 = 0x0100_0000;
    pub const B: u64 = 0x0200_0000;
    pub const C: u64 = 0x0300_0000;
    pub const D: u64 = 0x0400_0000;
    pub const E: u64 = 0x0500_0000;
    pub const F: u64 = 0x0600_0000;
    pub const INDEX: u64 = 0x0700_0000;
    pub const GATHER: u64 = 0x0800_0000;
    pub const CHASE: u64 = 0x0900_0000;
    pub const OUT: u64 = 0x0a00_0000;
    pub const OUT2: u64 = 0x0b00_0000;
}

/// Adds an index load (`idx = load index[i]`) and returns its statement id.
///
/// Index loads are the paper's "AU self loads": their values are consumed by
/// the address unit itself to form further addresses.
fn index_load(b: &mut KernelBuilder, i: StmtId, stride: u64) -> StmtId {
    let idx = b.load_strided(&[Operand::Local(i)], region::INDEX, stride);
    b.label_last("index-load");
    idx
}

/// Adds a gather (`x = load table[idx]`) through a previously loaded index.
fn gather(b: &mut KernelBuilder, idx: StmtId, base: u64, span: u64) -> StmtId {
    let g = b.load_indirect(&[Operand::Local(idx)], base, span, 0);
    b.label_last("gather");
    g
}

/// Adds a pointer-chasing load: its address depends on its own value from
/// `distance` iterations earlier (`p[k] = load *p[k - distance]`), modelling
/// `distance` independent linked traversals processed round-robin.
///
/// The distance is the calibration knob for the latency-hiding bands: the
/// memory latency divided by the distance is the number of cycles this chain
/// adds to every iteration of the critical path.
fn chase_load(b: &mut KernelBuilder, distance: u32, span: u64) -> StmtId {
    let id = b.len();
    let p = b.load_indirect(
        &[Operand::Carried { stmt: id, distance }],
        region::CHASE,
        span,
        0,
    );
    debug_assert_eq!(p, id);
    b.label_last("chase-load");
    p
}

fn workload(
    kernel: Kernel,
    band: LatencyHidingBand,
    iterations: u64,
    description: &str,
) -> Workload {
    let name = kernel.name().to_string();
    Workload::new(
        kernel,
        WorkloadMeta {
            name,
            description: description.to_string(),
            expected_band: Some(band),
            default_iterations: iterations,
        },
    )
}

/// TRFD — two-electron integral transformation.
///
/// Dense, regular linear algebra: block products of matrices with one
/// indexed operand.  High arithmetic regularity, no memory-carried
/// recurrences: the top of the latency-hiding table.
#[must_use]
pub fn trfd() -> Workload {
    let mut b = KernelBuilder::new("TRFD");
    b.describe("two-electron integral transformation (dense matrix products)");
    let i = b.induction();
    let idx = index_load(&mut b, i, 4);
    let a1 = gather(&mut b, idx, region::A, 1 << 20);
    let a2 = b.load_strided(&[Operand::Local(i)], region::B, 8);
    let b1 = b.load_strided(&[Operand::Local(i)], region::C, 8);
    let b2 = b.load_strided(&[Operand::Local(i)], region::D, 8);
    let m1 = b.fp_mul(&[Operand::Local(a1), Operand::Local(b1)]);
    let m2 = b.fp_mul(&[Operand::Local(a2), Operand::Local(b2)]);
    let s1 = b.fp_add(&[Operand::Local(m1), Operand::Local(m2)]);
    let m3 = b.fp_mul(&[Operand::Local(a1), Operand::Local(b2)]);
    let m4 = b.fp_mul(&[Operand::Local(a2), Operand::Local(b1)]);
    let s2 = b.fp_add(&[Operand::Local(m3), Operand::Local(m4)]);
    b.store_strided(&[Operand::Local(s1), Operand::Local(i)], region::OUT, 8);
    b.store_strided(&[Operand::Local(s2), Operand::Local(i)], region::OUT2, 8);
    workload(
        b.build().expect("TRFD kernel is valid"),
        LatencyHidingBand::High,
        2000,
        "dense block products; fully strided except one gathered operand; no memory-carried recurrence",
    )
}

/// ADM — air pollution model (pseudospectral transport).
///
/// Regular field sweeps with one indexed lookup and a very long-distance
/// pointer chain (the species table walk): still in the high band.
#[must_use]
pub fn adm() -> Workload {
    let mut b = KernelBuilder::new("ADM");
    b.describe("pseudospectral air pollution model (regular field sweeps)");
    let i = b.induction();
    let idx = index_load(&mut b, i, 4);
    let x1 = gather(&mut b, idx, region::A, 2 << 20);
    let x2 = b.load_strided(&[Operand::Local(i)], region::B, 8);
    let ptr = chase_load(&mut b, 40, 1 << 20);
    let t1 = b.fp_mul(&[Operand::Local(x1), Operand::Invariant(0)]);
    let t2 = b.fp_add(&[Operand::Local(t1), Operand::Local(x2)]);
    let t3 = b.fp_mul(&[Operand::Local(t2), Operand::Invariant(1)]);
    let p1 = b.fp_add(&[Operand::Local(t3), Operand::Local(ptr)]);
    b.store_strided(&[Operand::Local(p1), Operand::Local(i)], region::OUT, 8);
    workload(
        b.build().expect("ADM kernel is valid"),
        LatencyHidingBand::High,
        2500,
        "regular sweeps with one gather and a distance-40 memory-carried chain",
    )
}

/// FLO52Q — transonic flow solver (the paper's highly parallel example).
///
/// A wide stencil body with many independent operations per point: the
/// program for which the paper reports the largest gap between the
/// decoupled machine and the superscalar.
#[must_use]
pub fn flo52q() -> Workload {
    let mut b = KernelBuilder::new("FLO52Q");
    b.describe("transonic flow multigrid solver (wide stencil, highly parallel)");
    let i = b.induction();
    let idx = index_load(&mut b, i, 4);
    let w0 = gather(&mut b, idx, region::A, 4 << 20);
    let w1 = b.load_strided(&[Operand::Local(i)], region::B, 8);
    let w2 = b.load_strided(&[Operand::Local(i)], region::C, 8);
    let w3 = b.load_strided(&[Operand::Local(i)], region::D, 8);
    let w4 = b.load_strided(&[Operand::Local(i)], region::E, 8);
    let ptr = chase_load(&mut b, 28, 1 << 20);
    let f1 = b.fp_mul(&[Operand::Local(w0), Operand::Local(w1)]);
    let f2 = b.fp_mul(&[Operand::Local(w2), Operand::Local(w3)]);
    let f3 = b.fp_add(&[Operand::Local(f1), Operand::Local(f2)]);
    let f4 = b.fp_mul(&[Operand::Local(f3), Operand::Local(w4)]);
    let g1 = b.fp_add(&[Operand::Local(w1), Operand::Local(w2)]);
    let g2 = b.fp_mul(&[Operand::Local(g1), Operand::Invariant(0)]);
    let g3 = b.fp_add(&[Operand::Local(g2), Operand::Local(f4)]);
    let h1 = b.fp_add(&[Operand::Local(ptr), Operand::Local(f3)]);
    b.store_strided(&[Operand::Local(g3), Operand::Local(i)], region::OUT, 8);
    b.store_strided(&[Operand::Local(h1), Operand::Local(i)], region::OUT2, 8);
    workload(
        b.build().expect("FLO52Q kernel is valid"),
        LatencyHidingBand::High,
        1800,
        "five-point stencil sweep with one gather and a distance-28 memory-carried chain; high ILP",
    )
}

/// DYFESM — structural dynamics finite-element solver.
///
/// Element gathers and scatters through index vectors with a moderate
/// memory-carried recurrence: the middle band.
#[must_use]
pub fn dyfesm() -> Workload {
    let mut b = KernelBuilder::new("DYFESM");
    b.describe("finite-element structural dynamics (gather/scatter element loops)");
    let i = b.induction();
    let idx = index_load(&mut b, i, 4);
    let u = gather(&mut b, idx, region::A, 1 << 20);
    let v = b.load_strided(&[Operand::Local(i)], region::B, 8);
    let ptr = chase_load(&mut b, 20, 1 << 20);
    let e1 = b.fp_mul(&[Operand::Local(u), Operand::Local(v)]);
    let e2 = b.fp_add(&[Operand::Local(e1), Operand::Local(ptr)]);
    let e3 = b.fp_mul(&[Operand::Local(e2), Operand::Invariant(0)]);
    let e4 = b.fp_add(&[Operand::Local(e3), Operand::Invariant(1)]);
    let acc_id = b.len();
    b.push(dae_isa::Statement::arith(
        dae_isa::OpKind::FpAdd,
        UnitClass::Compute,
        vec![
            Operand::Local(e4),
            Operand::Carried {
                stmt: acc_id,
                distance: 2,
            },
        ],
    ));
    b.store_indirect(
        &[Operand::Local(e4), Operand::Local(idx)],
        region::F,
        1 << 20,
        1,
    );
    workload(
        b.build().expect("DYFESM kernel is valid"),
        LatencyHidingBand::Moderate,
        2200,
        "element gather/scatter with a distance-20 memory-carried chain and a distance-2 reduction",
    )
}

/// QCD — lattice gauge theory.
///
/// Link gathers through site indices with complex-arithmetic chains and a
/// distance-16 memory-carried chain: middle band.
#[must_use]
pub fn qcd() -> Workload {
    let mut b = KernelBuilder::new("QCD");
    b.describe("lattice gauge theory (link gathers, complex arithmetic)");
    let i = b.induction();
    let idx = index_load(&mut b, i, 4);
    let l1 = gather(&mut b, idx, region::A, 2 << 20);
    let l2 = gather(&mut b, idx, region::B, 2 << 20);
    let l3 = b.load_strided(&[Operand::Local(i)], region::C, 8);
    let ptr = chase_load(&mut b, 16, 1 << 20);
    let c1 = b.fp_mul(&[Operand::Local(l1), Operand::Local(l2)]);
    let c2 = b.fp_mul(&[Operand::Local(l1), Operand::Local(l3)]);
    let c3 = b.fp_add(&[Operand::Local(c1), Operand::Local(c2)]);
    let c4 = b.fp_mul(&[Operand::Local(c3), Operand::Local(ptr)]);
    let c5 = b.fp_add(&[Operand::Local(c4), Operand::Invariant(0)]);
    let c6 = b.fp_mul(&[Operand::Local(c5), Operand::Invariant(1)]);
    b.store_strided(&[Operand::Local(c6), Operand::Local(i)], region::OUT, 8);
    workload(
        b.build().expect("QCD kernel is valid"),
        LatencyHidingBand::Moderate,
        2000,
        "two link gathers per site and a distance-16 memory-carried chain",
    )
}

/// MDG — molecular dynamics of water.
///
/// Neighbour-list gathers, a reciprocal (divide) per pair, accumulations and
/// a distance-14 memory-carried chain: the lower middle band and the paper's
/// middle representative program.
#[must_use]
pub fn mdg() -> Workload {
    let mut b = KernelBuilder::new("MDG");
    b.describe("molecular dynamics of water (neighbour-list pair interactions)");
    let i = b.induction();
    let nbr = index_load(&mut b, i, 4);
    let x = gather(&mut b, nbr, region::A, 2 << 20);
    let y = gather(&mut b, nbr, region::B, 2 << 20);
    let ptr = chase_load(&mut b, 14, 1 << 20);
    let dx = b.fp_add(&[Operand::Local(x), Operand::Invariant(0)]);
    let dy = b.fp_add(&[Operand::Local(y), Operand::Invariant(1)]);
    let m1 = b.fp_mul(&[Operand::Local(dx), Operand::Local(dx)]);
    let m2 = b.fp_mul(&[Operand::Local(dy), Operand::Local(dy)]);
    let r2 = b.fp_add(&[Operand::Local(m1), Operand::Local(m2)]);
    // The reciprocal is computed but kept off the accumulation chain, as a
    // compiler scheduling for the pair energy would do.
    let fr = b.fp_div(&[Operand::Local(r2)]);
    let e = b.fp_mul(&[Operand::Local(r2), Operand::Local(ptr)]);
    let acc_id = b.len();
    b.push(dae_isa::Statement::arith(
        dae_isa::OpKind::FpAdd,
        UnitClass::Compute,
        vec![
            Operand::Local(e),
            Operand::Carried {
                stmt: acc_id,
                distance: 2,
            },
        ],
    ));
    b.store_indirect(
        &[Operand::Local(fr), Operand::Local(nbr)],
        region::F,
        2 << 20,
        1,
    );
    workload(
        b.build().expect("MDG kernel is valid"),
        LatencyHidingBand::Moderate,
        2000,
        "neighbour-list gathers, one reciprocal per pair, distance-14 memory-carried chain",
    )
}

/// TRACK — missile tracking.
///
/// The paper's serial example: short iterations, track-record pointer
/// chasing at short distance, and addresses computed from floating point
/// data (loss-of-decoupling events).  Bottom band; little difference between
/// the two machines.
#[must_use]
pub fn track() -> Workload {
    let mut b = KernelBuilder::new("TRACK");
    b.describe("missile tracking (serial track-record updates, data-dependent addressing)");
    let i = b.induction();
    let obs = b.load_strided(&[Operand::Local(i)], region::A, 8);
    let ptr = chase_load(&mut b, 6, 1 << 18);
    let t1 = b.fp_add(&[Operand::Local(ptr), Operand::Local(obs)]);
    let t2 = b.fp_mul(&[Operand::Local(t1), Operand::Invariant(0)]);
    // The gate selection index is computed from floating point data on the
    // DU, so the gather's address needs a DU -> AU copy: a loss-of-decoupling
    // event every iteration.
    let sel = b.int_on(UnitClass::Compute, &[Operand::Local(t2)]);
    let g = b.load_indirect(&[Operand::Local(sel)], region::GATHER, 1 << 16, 0);
    let t3 = b.fp_add(&[Operand::Local(g), Operand::Local(t2)]);
    let acc_id = b.len();
    b.push(dae_isa::Statement::arith(
        dae_isa::OpKind::FpAdd,
        UnitClass::Compute,
        vec![
            Operand::Local(t2),
            Operand::Carried {
                stmt: acc_id,
                distance: 1,
            },
        ],
    ));
    b.store_strided(&[Operand::Local(t3), Operand::Local(i)], region::OUT, 8);
    workload(
        b.build().expect("TRACK kernel is valid"),
        LatencyHidingBand::Poor,
        2500,
        "distance-6 track-record chase, gate index computed from FP data (loss of decoupling), serial state update",
    )
}

/// The seven PERFECT Club programs modelled by this crate, in the order of
/// Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PerfectProgram {
    /// Two-electron integral transformation.
    Trfd,
    /// Air pollution model.
    Adm,
    /// Transonic flow solver.
    Flo52q,
    /// Structural dynamics finite-element solver.
    Dyfesm,
    /// Lattice gauge theory.
    Qcd,
    /// Molecular dynamics of water.
    Mdg,
    /// Missile tracking.
    Track,
}

impl PerfectProgram {
    /// All seven programs, in the order of Table 1 of the paper.
    pub const ALL: [PerfectProgram; 7] = [
        PerfectProgram::Trfd,
        PerfectProgram::Adm,
        PerfectProgram::Flo52q,
        PerfectProgram::Dyfesm,
        PerfectProgram::Qcd,
        PerfectProgram::Mdg,
        PerfectProgram::Track,
    ];

    /// The three programs the paper examines in detail (figures 4–9).
    pub const REPRESENTATIVE: [PerfectProgram; 3] = [
        PerfectProgram::Flo52q,
        PerfectProgram::Mdg,
        PerfectProgram::Track,
    ];

    /// The program's conventional upper-case name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PerfectProgram::Trfd => "TRFD",
            PerfectProgram::Adm => "ADM",
            PerfectProgram::Flo52q => "FLO52Q",
            PerfectProgram::Dyfesm => "DYFESM",
            PerfectProgram::Qcd => "QCD",
            PerfectProgram::Mdg => "MDG",
            PerfectProgram::Track => "TRACK",
        }
    }

    /// Parses a program name (case insensitive).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        let lower = name.to_ascii_lowercase();
        PerfectProgram::ALL
            .into_iter()
            .find(|p| p.name().to_ascii_lowercase() == lower)
    }

    /// Builds the program's workload model.
    #[must_use]
    pub fn workload(self) -> Workload {
        match self {
            PerfectProgram::Trfd => trfd(),
            PerfectProgram::Adm => adm(),
            PerfectProgram::Flo52q => flo52q(),
            PerfectProgram::Dyfesm => dyfesm(),
            PerfectProgram::Qcd => qcd(),
            PerfectProgram::Mdg => mdg(),
            PerfectProgram::Track => track(),
        }
    }

    /// The latency-hiding band the model is calibrated to fall into at a
    /// memory differential of 60 cycles and unlimited windows.
    #[must_use]
    pub fn expected_band(self) -> LatencyHidingBand {
        match self {
            PerfectProgram::Trfd | PerfectProgram::Adm | PerfectProgram::Flo52q => {
                LatencyHidingBand::High
            }
            PerfectProgram::Dyfesm | PerfectProgram::Qcd | PerfectProgram::Mdg => {
                LatencyHidingBand::Moderate
            }
            PerfectProgram::Track => LatencyHidingBand::Poor,
        }
    }
}

impl fmt::Display for PerfectProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The full suite: one workload per PERFECT program, in Table 1 order.
#[must_use]
pub fn suite() -> Vec<Workload> {
    PerfectProgram::ALL.iter().map(|p| p.workload()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_trace::{classification_disagreement, expand, partition, PartitionMode};

    #[test]
    fn all_seven_programs_build_valid_kernels() {
        for program in PerfectProgram::ALL {
            let w = program.workload();
            assert_eq!(w.name(), program.name());
            assert!(w.kernel().validate().is_ok(), "{program}");
            assert!(w.kernel().len() >= 8, "{program} should be non-trivial");
            assert_eq!(w.meta().expected_band, Some(program.expected_band()));
        }
    }

    #[test]
    fn every_program_has_an_index_load_and_memory_traffic() {
        for program in PerfectProgram::ALL {
            let w = program.workload();
            let stats = w.kernel().stats();
            assert!(stats.loads >= 2, "{program} loads");
            assert!(stats.stores >= 1, "{program} stores");
            assert!(stats.indirect_loads >= 1, "{program} gathers");
            assert!(stats.fp_ops >= 4, "{program} fp ops");
        }
    }

    #[test]
    fn default_traces_have_tens_of_thousands_of_instructions() {
        for program in PerfectProgram::ALL {
            let w = program.workload();
            let len = w.kernel().len() as u64 * w.meta().default_iterations;
            assert!(
                (15_000..60_000).contains(&len),
                "{program}: default trace would be {len} instructions"
            );
        }
    }

    #[test]
    fn partition_structure_matches_each_programs_character() {
        for program in PerfectProgram::ALL {
            let trace = program.workload().trace(200);
            let dm = partition(&trace, PartitionMode::Tagged);
            // Every program performs index loads, so it has AU self loads.
            assert!(dm.stats.au_self_loads > 0, "{program} self loads");
            if program == PerfectProgram::Track {
                assert!(
                    dm.stats.copies_du_to_au >= 200,
                    "TRACK loses decoupling every iteration"
                );
            } else {
                assert_eq!(
                    dm.stats.copies_du_to_au, 0,
                    "{program} should not lose decoupling"
                );
            }
        }
    }

    #[test]
    fn tags_agree_with_the_automatic_classifier_except_for_track() {
        // TRACK deliberately computes an address index on the DU (the
        // loss-of-decoupling device); every other program's tags must agree
        // with the slice-based classifier exactly.
        for program in PerfectProgram::ALL {
            let trace = program.workload().trace(100);
            let disagreement = classification_disagreement(&trace);
            if program == PerfectProgram::Track {
                assert!(disagreement > 0.0 && disagreement < 0.2);
            } else {
                assert_eq!(disagreement, 0.0, "{program}");
            }
        }
    }

    #[test]
    fn representative_programs_span_the_bands() {
        let bands: Vec<_> = PerfectProgram::REPRESENTATIVE
            .iter()
            .map(|p| p.expected_band())
            .collect();
        assert_eq!(
            bands,
            vec![
                LatencyHidingBand::High,
                LatencyHidingBand::Moderate,
                LatencyHidingBand::Poor
            ]
        );
    }

    #[test]
    fn name_round_trip() {
        for program in PerfectProgram::ALL {
            assert_eq!(PerfectProgram::from_name(program.name()), Some(program));
            assert_eq!(
                PerfectProgram::from_name(&program.name().to_lowercase()),
                Some(program)
            );
        }
        assert_eq!(PerfectProgram::from_name("nosuch"), None);
    }

    #[test]
    fn suite_contains_all_seven_in_order() {
        let suite = suite();
        assert_eq!(suite.len(), 7);
        assert_eq!(suite[0].name(), "TRFD");
        assert_eq!(suite[6].name(), "TRACK");
    }

    #[test]
    fn chase_loads_reference_their_own_previous_value() {
        let w = mdg();
        let trace = expand(w.kernel(), 30);
        // Find a chase load past the warm-up distance and check its address
        // dependence points at the same statement, 14 iterations earlier.
        let chase_stmt = w
            .kernel()
            .statements()
            .iter()
            .position(|s| s.label.as_deref() == Some("chase-load"))
            .expect("MDG has a chase load");
        let inst = trace
            .iter()
            .find(|inst| inst.stmt == chase_stmt && inst.iteration == 20)
            .expect("instance exists");
        let producer = &trace[inst.deps[0].producer];
        assert_eq!(producer.stmt, chase_stmt);
        assert_eq!(producer.iteration, 6);
    }
}
