//! Workload metadata and the `Workload` wrapper.

use dae_isa::Kernel;
use dae_trace::{expand, Trace};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three latency-hiding-effectiveness bands of Table 1 of the paper.
///
/// With unlimited windows and a 60-cycle memory differential the seven
/// PERFECT programs split into programs that hide latency almost completely,
/// a middle band, and programs that hide very little.  The workload models
/// in this crate are calibrated to land in the same bands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LatencyHidingBand {
    /// Latency is almost completely hidden (LHE close to 1).
    High,
    /// A substantial part of the latency is hidden.
    Moderate,
    /// Little of the latency can be hidden.
    Poor,
}

impl fmt::Display for LatencyHidingBand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            LatencyHidingBand::High => "high",
            LatencyHidingBand::Moderate => "moderate",
            LatencyHidingBand::Poor => "poor",
        };
        f.write_str(name)
    }
}

/// Descriptive metadata attached to a workload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadMeta {
    /// Short name (the PERFECT program name for the suite workloads).
    pub name: String,
    /// One-line description of the program being modelled and of the
    /// synthetic structure standing in for it.
    pub description: String,
    /// The latency-hiding band the workload is expected to fall into at a
    /// memory differential of 60 cycles (None for synthetic extras).
    pub expected_band: Option<LatencyHidingBand>,
    /// The iteration count used by [`Workload::default_trace`]; chosen so
    /// that the default trace has a few tens of thousands of dynamic
    /// instructions.
    pub default_iterations: u64,
}

/// A workload: a kernel plus metadata, ready to be expanded into traces.
///
/// # Example
///
/// ```
/// use dae_workloads::PerfectProgram;
///
/// let workload = PerfectProgram::Flo52q.workload();
/// let trace = workload.trace(100);
/// assert_eq!(trace.iterations(), 100);
/// assert!(trace.stats().loads > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workload {
    kernel: Kernel,
    meta: WorkloadMeta,
}

impl Workload {
    /// Wraps a kernel with its metadata.
    #[must_use]
    pub fn new(kernel: Kernel, meta: WorkloadMeta) -> Self {
        Workload { kernel, meta }
    }

    /// The workload's short name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.meta.name
    }

    /// The workload's metadata.
    #[must_use]
    pub fn meta(&self) -> &WorkloadMeta {
        &self.meta
    }

    /// The underlying static kernel.
    #[must_use]
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Expands the kernel into a trace of `iterations` iterations.
    #[must_use]
    pub fn trace(&self, iterations: u64) -> Trace {
        expand(&self.kernel, iterations)
    }

    /// Expands the kernel for the default iteration count.
    #[must_use]
    pub fn default_trace(&self) -> Trace {
        self.trace(self.meta.default_iterations)
    }

    /// A smaller trace (a quarter of the default iterations, at least 64)
    /// for quick experiments and tests.
    #[must_use]
    pub fn small_trace(&self) -> Trace {
        self.trace((self.meta.default_iterations / 4).max(64))
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} statements/iteration): {}",
            self.meta.name,
            self.kernel.len(),
            self.meta.description
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_isa::{KernelBuilder, Operand};

    fn tiny_workload() -> Workload {
        let mut b = KernelBuilder::new("tiny");
        let i = b.induction();
        let x = b.load_strided(&[Operand::Local(i)], 0, 8);
        b.fp_add(&[Operand::Local(x)]);
        Workload::new(
            b.build().unwrap(),
            WorkloadMeta {
                name: "tiny".to_string(),
                description: "a tiny test workload".to_string(),
                expected_band: Some(LatencyHidingBand::High),
                default_iterations: 256,
            },
        )
    }

    #[test]
    fn traces_scale_with_iteration_count() {
        let w = tiny_workload();
        assert_eq!(w.trace(10).len(), 30);
        assert_eq!(w.default_trace().len(), 3 * 256);
        assert_eq!(w.small_trace().iterations(), 64);
    }

    #[test]
    fn accessors_expose_metadata() {
        let w = tiny_workload();
        assert_eq!(w.name(), "tiny");
        assert_eq!(w.kernel().len(), 3);
        assert_eq!(w.meta().expected_band, Some(LatencyHidingBand::High));
        assert!(format!("{w}").contains("tiny"));
    }

    #[test]
    fn bands_order_from_best_to_worst() {
        assert!(LatencyHidingBand::High < LatencyHidingBand::Moderate);
        assert!(LatencyHidingBand::Moderate < LatencyHidingBand::Poor);
        assert_eq!(format!("{}", LatencyHidingBand::Moderate), "moderate");
    }
}
