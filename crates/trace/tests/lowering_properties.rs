//! Property-based tests of the machine lowerings on hand-rolled random
//! dependence shapes (independent of the `dae-workloads` generator, so the
//! two random sources cross-check each other).

use dae_isa::{AddressSpec, Kernel, OpKind, Operand, Statement, UnitClass};
use dae_trace::{expand, expand_swsm, lower_scalar, partition, ExecKind, PartitionMode, Trace};
use proptest::prelude::*;

/// Builds a small valid kernel from a compact recipe: a list of (kind,
/// operand-offset) pairs.  Offsets select an earlier value-producing
/// statement; memory statements get strided addresses derived from the
/// statement index so they never collide.
fn kernel_from_recipe(recipe: &[(u8, u8)]) -> Kernel {
    let mut statements = vec![Statement::arith(
        OpKind::IntAlu,
        UnitClass::Access,
        vec![Operand::Carried {
            stmt: 0,
            distance: 1,
        }],
    )];
    let mut producers = vec![0usize];
    for (idx, &(kind, offset)) in recipe.iter().enumerate() {
        let source = producers[offset as usize % producers.len()];
        let id = statements.len();
        let stmt = match kind % 5 {
            0 => Statement::arith(
                OpKind::IntAlu,
                UnitClass::Access,
                vec![Operand::Local(source)],
            ),
            1 => Statement::arith(
                OpKind::FpAdd,
                UnitClass::Compute,
                vec![Operand::Local(source)],
            ),
            2 => Statement::memory(
                OpKind::Load,
                UnitClass::Access,
                vec![Operand::Local(source)],
                AddressSpec::strided(0x1000 * (idx as u64 + 1) * 0x1000, 8),
            ),
            3 => Statement::memory(
                OpKind::Store,
                UnitClass::Access,
                vec![Operand::Local(source), Operand::Local(0)],
                AddressSpec::strided(0x2000_0000 + 0x1000 * idx as u64, 8),
            ),
            _ => Statement::arith(
                OpKind::FpMul,
                UnitClass::Compute,
                vec![Operand::Local(source), Operand::Invariant(0)],
            ),
        };
        let produces = stmt.op.produces_value();
        statements.push(stmt);
        if produces {
            producers.push(id);
        }
    }
    Kernel::new("recipe", "proptest recipe kernel", statements).expect("recipe kernels are valid")
}

fn trace_from_recipe(recipe: &[(u8, u8)], iterations: u64) -> Trace {
    expand(&kernel_from_recipe(recipe), iterations)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// In the decoupled lowering every transaction tag is requested exactly
    /// once, every consume refers to an existing request, and the AU carries
    /// every memory request.
    #[test]
    fn partition_tags_are_well_formed(
        recipe in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..25),
        iterations in 1u64..25,
    ) {
        let trace = trace_from_recipe(&recipe, iterations);
        let dm = partition(&trace, PartitionMode::Tagged);

        let mut requests = vec![0u32; dm.transactions as usize];
        let mut consumes = vec![0u32; dm.transactions as usize];
        for inst in dm.au.iter().chain(dm.du.iter()) {
            match inst.kind {
                ExecKind::LoadRequest => requests[inst.tag.unwrap() as usize] += 1,
                ExecKind::LoadConsume => consumes[inst.tag.unwrap() as usize] += 1,
                _ => {}
            }
        }
        let stats = trace.stats();
        prop_assert_eq!(requests.iter().filter(|&&c| c == 1).count(), stats.loads);
        prop_assert!(requests.iter().all(|&c| c <= 1));
        // Consumes only exist for requested loads (stores share the tag space
        // but never have consumes).
        for (tag, &count) in consumes.iter().enumerate() {
            if count > 0 {
                prop_assert_eq!(requests[tag], 1, "consume of tag {} without a request", tag);
                prop_assert!(count <= 2, "at most one consume per unit");
            }
        }
        // Memory requests all live on the AU.
        prop_assert!(dm.du.iter().all(|inst| inst.kind != ExecKind::LoadRequest));
        prop_assert_eq!(
            dm.stats.du_consumed_loads + dm.stats.au_self_loads,
            consumes.iter().map(|&c| c as usize).sum::<usize>()
        );
    }

    /// Cross-unit dependences always reference an instruction of the *other*
    /// stream that produces a value, and the copy counts in the statistics
    /// match the instructions actually emitted.
    #[test]
    fn cross_dependences_and_copies_are_consistent(
        recipe in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..25),
        iterations in 1u64..20,
    ) {
        let trace = trace_from_recipe(&recipe, iterations);
        let dm = partition(&trace, PartitionMode::Tagged);
        for (stream, other) in [(&dm.au, &dm.du), (&dm.du, &dm.au)] {
            for inst in stream.iter() {
                for dep in &inst.deps {
                    if dep.is_cross() {
                        let idx = dep.index();
                        prop_assert!(idx < other.len());
                        // A cross dependence names either a value producer
                        // (a copy, an arithmetic result, a load consume) or
                        // the AU load request the consume is paired with
                        // (an ordering dependence rather than a value one).
                        prop_assert!(
                            other[idx].kind.produces_value()
                                || other[idx].kind == ExecKind::LoadRequest
                        );
                    }
                }
            }
        }
        let emitted_copies = dm
            .au
            .iter()
            .chain(dm.du.iter())
            .filter(|i| i.kind == ExecKind::CopySend)
            .count();
        prop_assert_eq!(emitted_copies, dm.stats.total_copies());
        let au_copies = dm.au.iter().filter(|i| i.kind == ExecKind::CopySend).count();
        let du_copies = dm.du.iter().filter(|i| i.kind == ExecKind::CopySend).count();
        prop_assert_eq!(au_copies, dm.stats.copies_au_to_du);
        prop_assert_eq!(du_copies, dm.stats.copies_du_to_au);
    }

    /// The SWSM expansion emits exactly one prefetch and one access per
    /// memory operation, in program order, and never uses cross
    /// dependences.
    #[test]
    fn swsm_expansion_is_well_formed(
        recipe in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..25),
        iterations in 1u64..20,
    ) {
        let trace = trace_from_recipe(&recipe, iterations);
        let stats = trace.stats();
        let swsm = expand_swsm(&trace);
        prop_assert_eq!(swsm.insts.len(), trace.len() + stats.loads + stats.stores);
        prop_assert_eq!(swsm.transactions as usize, stats.loads + stats.stores);
        prop_assert!(swsm.insts.iter().all(|i| i.deps.iter().all(|d| !d.is_cross())));
        for pair in swsm.insts.windows(2) {
            prop_assert!(pair[0].trace_pos <= pair[1].trace_pos);
        }
        // Each prefetch is immediately followed by its access with the same
        // tag and address.
        for (pos, inst) in swsm.insts.iter().enumerate() {
            if inst.kind == ExecKind::LoadRequest {
                let access = &swsm.insts[pos + 1];
                prop_assert_eq!(access.tag, inst.tag);
                prop_assert_eq!(access.addr, inst.addr);
                prop_assert!(matches!(access.kind, ExecKind::LoadConsume | ExecKind::StoreOp));
            }
        }
    }

    /// The scalar lowering is a one-to-one, order-preserving map.
    #[test]
    fn scalar_lowering_is_one_to_one(
        recipe in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..25),
        iterations in 1u64..20,
    ) {
        let trace = trace_from_recipe(&recipe, iterations);
        let scalar = lower_scalar(&trace);
        prop_assert_eq!(scalar.insts.len(), trace.len());
        for (pos, (lowered, original)) in scalar.insts.iter().zip(trace.iter()).enumerate() {
            prop_assert_eq!(lowered.trace_pos, pos);
            prop_assert_eq!(lowered.op, original.op);
            prop_assert_eq!(lowered.deps.len(), original.deps.len());
        }
    }
}
