//! Automatic access / compute classification of a trace.

use crate::{DepRole, Trace};
use dae_isa::{OpKind, UnitClass};

/// Classifies every instruction of `trace` as access (AU) or compute (DU)
/// using the standard decoupled access/execute partition rule:
///
/// 1. loads and stores always belong to the access stream;
/// 2. floating point operations always belong to the compute stream (if a
///    floating point value feeds an address, the value is *copied* to the
///    AU rather than moving the computation, which is exactly the
///    loss-of-decoupling situation the paper discusses);
/// 3. an integer operation belongs to the access stream if its value
///    (transitively, through integer operations only) feeds an address
///    operand of some memory operation — i.e. it is part of the backward
///    slice of an address; otherwise it is data manipulation and belongs to
///    the compute stream.
///
/// The result is index-aligned with the trace.
///
/// # Example
///
/// ```
/// use dae_isa::{KernelBuilder, Operand, UnitClass};
/// use dae_trace::{classify, expand};
///
/// let mut b = KernelBuilder::new("axpy");
/// let i = b.induction();
/// let x = b.load_strided(&[Operand::Local(i)], 0, 8);
/// let y = b.fp_mul(&[Operand::Local(x), Operand::Invariant(0)]);
/// b.store_strided(&[Operand::Local(y), Operand::Local(i)], 0x1000, 8);
/// let trace = expand(&b.build()?, 2);
///
/// let classes = classify(&trace);
/// assert_eq!(classes[0], UnitClass::Access);   // induction feeds addresses
/// assert_eq!(classes[1], UnitClass::Access);   // load
/// assert_eq!(classes[2], UnitClass::Compute);  // fp multiply
/// assert_eq!(classes[3], UnitClass::Access);   // store
/// # Ok::<(), dae_isa::KernelError>(())
/// ```
#[must_use]
pub fn classify(trace: &Trace) -> Vec<UnitClass> {
    let n = trace.len();
    // `feeds_address[i]` is true when instruction i's value is (transitively,
    // through integer operations) consumed to form an effective address.
    let mut feeds_address = vec![false; n];

    // Walk consumers before producers (reverse program order): dependences
    // always point backwards, so by the time we reach a producer every one of
    // its consumers has already propagated its requirement.
    for inst in trace.insts().iter().rev() {
        let propagate_data = inst.op == OpKind::IntAlu && feeds_address[inst.id];
        for dep in &inst.deps {
            let marks = match dep.role {
                DepRole::Address => true,
                DepRole::Data => propagate_data,
            };
            if marks {
                feeds_address[dep.producer] = true;
            }
        }
    }

    trace
        .iter()
        .map(|inst| match inst.op {
            OpKind::Load | OpKind::Store => UnitClass::Access,
            OpKind::FpAdd | OpKind::FpMul | OpKind::FpDiv => UnitClass::Compute,
            OpKind::IntAlu => {
                if feeds_address[inst.id] {
                    UnitClass::Access
                } else {
                    UnitClass::Compute
                }
            }
        })
        .collect()
}

/// How often the automatic classification disagrees with the workload
/// generator's intended unit tags.
///
/// Used by tests and by the workload documentation to demonstrate that the
/// synthetic kernels have the partition structure they claim to have.
#[must_use]
pub fn classification_disagreement(trace: &Trace) -> f64 {
    if trace.is_empty() {
        return 0.0;
    }
    let classes = classify(trace);
    let disagreements = trace
        .iter()
        .zip(classes.iter())
        .filter(|(inst, class)| inst.unit_hint != **class)
        .count();
    disagreements as f64 / trace.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand;
    use dae_isa::{KernelBuilder, Operand};

    #[test]
    fn memory_is_always_access_and_fp_always_compute() {
        let mut b = KernelBuilder::new("k");
        let i = b.induction();
        let x = b.load_strided(&[Operand::Local(i)], 0, 8);
        let f = b.fp_div(&[Operand::Local(x)]);
        b.store_strided(&[Operand::Local(f), Operand::Local(i)], 0x100, 8);
        let trace = expand(&b.build().unwrap(), 3);
        let classes = classify(&trace);
        for inst in trace.iter() {
            match inst.op {
                OpKind::Load | OpKind::Store => assert_eq!(classes[inst.id], UnitClass::Access),
                OpKind::FpAdd | OpKind::FpMul | OpKind::FpDiv => {
                    assert_eq!(classes[inst.id], UnitClass::Compute)
                }
                _ => {}
            }
        }
    }

    #[test]
    fn address_arithmetic_chain_is_access() {
        // i -> scaled -> offset -> load : the whole integer chain feeds an
        // address and must be classified access.
        let mut b = KernelBuilder::new("chain");
        let i = b.induction();
        let scaled = b.int(&[Operand::Local(i), Operand::Invariant(0)]);
        let offset = b.int(&[Operand::Local(scaled), Operand::Invariant(1)]);
        let x = b.load_strided(&[Operand::Local(offset)], 0, 8);
        b.fp_add(&[Operand::Local(x)]);
        let trace = expand(&b.build().unwrap(), 2);
        let classes = classify(&trace);
        for inst in trace.iter() {
            if inst.op == OpKind::IntAlu {
                assert_eq!(classes[inst.id], UnitClass::Access, "inst {}", inst.id);
            }
        }
    }

    #[test]
    fn pure_data_integer_work_is_compute() {
        // An integer op that only post-processes a loaded value and feeds a
        // store's *data* operand is data manipulation, not address work.
        let mut b = KernelBuilder::new("intdata");
        let i = b.induction();
        let x = b.load_strided(&[Operand::Local(i)], 0, 8);
        let masked = b.int_on(dae_isa::UnitClass::Compute, &[Operand::Local(x)]);
        b.store_strided(&[Operand::Local(masked), Operand::Local(i)], 0x100, 8);
        let trace = expand(&b.build().unwrap(), 2);
        let classes = classify(&trace);
        for inst in trace.iter() {
            if inst.op == OpKind::IntAlu && inst.stmt == masked {
                assert_eq!(classes[inst.id], UnitClass::Compute);
            }
        }
        assert_eq!(classification_disagreement(&trace), 0.0);
    }

    #[test]
    fn fp_feeding_an_address_stays_compute() {
        // A floating point value used (via an integer conversion) to index an
        // array: the fp op stays on the DU; only the integer conversion moves
        // to the AU.
        let mut b = KernelBuilder::new("fpaddr");
        let i = b.induction();
        let x = b.load_strided(&[Operand::Local(i)], 0, 8);
        let f = b.fp_mul(&[Operand::Local(x), Operand::Invariant(0)]);
        let idx = b.int(&[Operand::Local(f)]);
        b.load_indirect(&[Operand::Local(idx)], 0x10_000, 1 << 12, 0);
        let trace = expand(&b.build().unwrap(), 2);
        let classes = classify(&trace);
        for inst in trace.iter() {
            match inst.stmt {
                s if s == f => assert_eq!(classes[inst.id], UnitClass::Compute),
                s if s == idx => assert_eq!(classes[inst.id], UnitClass::Access),
                _ => {}
            }
        }
    }

    #[test]
    fn disagreement_is_zero_for_consistently_tagged_kernels() {
        let mut b = KernelBuilder::new("tagged");
        let i = b.induction();
        let x = b.load_strided(&[Operand::Local(i)], 0, 8);
        let y = b.fp_add(&[Operand::Local(x)]);
        b.store_strided(&[Operand::Local(y), Operand::Local(i)], 0x200, 8);
        let trace = expand(&b.build().unwrap(), 10);
        assert_eq!(classification_disagreement(&trace), 0.0);
    }

    #[test]
    fn empty_trace_has_no_disagreement() {
        let mut b = KernelBuilder::new("empty-ish");
        b.induction();
        let trace = expand(&b.build().unwrap(), 0);
        assert_eq!(classification_disagreement(&trace), 0.0);
    }
}
