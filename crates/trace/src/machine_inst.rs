//! The lowered ("machine") instruction representation consumed by the
//! cycle-level simulators.
//!
//! An architectural [`Trace`](crate::Trace) is lowered differently for each
//! machine model of the paper:
//!
//! * the **decoupled machine** splits it into an AU stream and a DU stream
//!   ([`partition`](crate::partition)), turning every load into an address
//!   *request* on the AU and a data *consume* on the unit that uses the
//!   value, and inserting explicit copy instructions for cross-unit value
//!   traffic;
//! * the **single-window superscalar** expands every memory operation into a
//!   *prefetch* plus an *access* ([`expand_swsm`](crate::expand_swsm));
//! * the **scalar reference** keeps loads blocking
//!   ([`lower_scalar`](crate::lower_scalar)).
//!
//! All three produce streams of [`MachineInst`], so the out-of-order unit in
//! `dae-ooo` and the machines in `dae-machines` share one instruction format.

use dae_isa::{Address, OpKind};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Deref;

/// Identifies one memory transaction (a request / consume pair, or a
/// prefetch / access pair).  Tags are dense indices assigned by the
/// lowerings, so simulators can use them to index flat arrays.
pub type MemTag = u32;

/// How a lowered instruction executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecKind {
    /// A fixed-latency arithmetic operation (latency given by the
    /// [`LatencyModel`](dae_isa::LatencyModel) for [`MachineInst::op`]).
    Arith,
    /// Sends a load address to the memory system and completes in one cycle;
    /// the data arrives `memory differential` cycles later under
    /// [`MachineInst::tag`].  Used for the AU side of a decoupled load and
    /// for the SWSM prefetch.
    LoadRequest,
    /// Consumes the data of a previously requested transaction.  The
    /// instruction only becomes ready once the data has arrived (the
    /// simulators gate readiness on the tag) and then completes in one
    /// cycle, modelling the paper's single-cycle decoupled-memory /
    /// prefetch-buffer access.
    LoadConsume,
    /// A load with no prefetching at all: it issues, travels to memory and
    /// completes `1 + memory differential` cycles later.  Used by the scalar
    /// reference machine.
    LoadBlocking,
    /// A store-side operation (address generation, data delivery or the
    /// SWSM store access).  One cycle, fire and forget: nothing ever depends
    /// on its value.
    StoreOp,
    /// Copies a value towards the other unit of the decoupled machine.  One
    /// cycle on the sending unit; the consumer on the other side sees an
    /// additional transfer latency.
    CopySend,
}

impl ExecKind {
    /// Returns `true` if this kind produces a value other instructions can
    /// consume.
    #[must_use]
    pub fn produces_value(self) -> bool {
        !matches!(self, ExecKind::StoreOp | ExecKind::LoadRequest)
    }

    /// Returns `true` if this instruction interacts with the memory system.
    #[must_use]
    pub fn touches_memory(self) -> bool {
        matches!(
            self,
            ExecKind::LoadRequest
                | ExecKind::LoadConsume
                | ExecKind::LoadBlocking
                | ExecKind::StoreOp
        )
    }
}

impl fmt::Display for ExecKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ExecKind::Arith => "arith",
            ExecKind::LoadRequest => "ld.req",
            ExecKind::LoadConsume => "ld.use",
            ExecKind::LoadBlocking => "ld.blk",
            ExecKind::StoreOp => "store",
            ExecKind::CopySend => "copy",
        };
        f.write_str(name)
    }
}

/// A dependence of a lowered instruction, packed into one `u32`.
///
/// Bits 0–30 hold the producer's stream index; bit 31 is the **cross
/// flag**.  A *local* dependence names an earlier instruction of the *same*
/// stream; a *cross* dependence names an instruction of the *other* unit's
/// stream (only produced by the decoupled-machine partition) and incurs the
/// machine's cross-unit transfer latency.
///
/// The packing matters because streams are the simulator's working set: a
/// `Dep` used to be a 16-byte enum (`usize` payload plus discriminant plus
/// padding), which put [`DepList`]'s two inline edges at 32 bytes and
/// [`MachineInst`] at 80.  Packed, two inline edges are 8 bytes and the
/// whole instruction fits in 56 (asserted by a test below).  Streams are
/// bounded far below 2³¹ — `UnitSim` already asserts `u32` index range —
/// so the narrowing loses nothing.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dep(u32);

/// Bit 31 of a packed [`Dep`]: set for cross-unit dependences.
const CROSS_FLAG: u32 = 1 << 31;

/// The default is a placeholder (`local(0)`) used only to pre-initialise
/// the inline storage of a [`DepList`]; it never appears as an actual edge.
impl Default for Dep {
    fn default() -> Self {
        Dep::local(0)
    }
}

impl Dep {
    /// A dependence on instruction `index` of the same stream.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in 31 bits (streams are orders of
    /// magnitude shorter).
    #[must_use]
    #[inline]
    pub fn local(index: usize) -> Self {
        let raw = u32::try_from(index).expect("stream index exceeds u32");
        assert_eq!(raw & CROSS_FLAG, 0, "stream index exceeds 31 bits");
        Dep(raw)
    }

    /// A dependence on instruction `index` of the other unit's stream.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in 31 bits.
    #[must_use]
    #[inline]
    pub fn cross(index: usize) -> Self {
        let raw = u32::try_from(index).expect("stream index exceeds u32");
        assert_eq!(raw & CROSS_FLAG, 0, "stream index exceeds 31 bits");
        Dep(raw | CROSS_FLAG)
    }

    /// The producer index regardless of which stream it lives in.
    #[must_use]
    #[inline]
    pub fn index(self) -> usize {
        (self.0 & !CROSS_FLAG) as usize
    }

    /// Returns `true` for cross-unit dependences.
    #[must_use]
    #[inline]
    pub fn is_cross(self) -> bool {
        self.0 & CROSS_FLAG != 0
    }
}

impl fmt::Debug for Dep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = if self.is_cross() { "Cross" } else { "Local" };
        write!(f, "{kind}({})", self.index())
    }
}

/// The dependence list of a [`MachineInst`], stored inline for up to two
/// edges (covering almost every lowered instruction the kernels produce —
/// binary operations, request/consume pairs, store address/data sides) and
/// spilling to a boxed heap vector beyond that.  Lowering a long trace used
/// to perform one heap allocation per instruction just for this list; the
/// inline representation removes that, which matters because lowering
/// dominates the cost of a cold single run.  The spill vector is boxed so
/// the rare long list costs one extra indirection instead of widening every
/// instruction by a full `Vec` header: with packed [`Dep`]s the whole list
/// is 16 bytes, and `MachineInst` size is simulator cache pressure.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DepList(DepListRepr);

#[derive(Clone, PartialEq, Eq, Hash)]
enum DepListRepr {
    /// Up to two edges inline; `len` counts the valid prefix of `buf`.
    Inline { buf: [Dep; 2], len: u32 },
    /// Three or more edges (rare: only wide fan-in instructions).  The
    /// double indirection is deliberate: a bare `Vec` is 24 bytes and would
    /// widen *every* instruction; the box keeps this variant at pointer
    /// size so the common inline case dictates the footprint.
    #[allow(clippy::box_collection)]
    Spilled(Box<Vec<Dep>>),
}

impl DepList {
    /// An empty list (inline, no allocation).
    #[must_use]
    pub fn new() -> Self {
        DepList(DepListRepr::Inline {
            buf: [Dep::default(); 2],
            len: 0,
        })
    }

    /// A single-edge list (inline, no allocation).
    #[must_use]
    pub fn one(dep: Dep) -> Self {
        DepList(DepListRepr::Inline {
            buf: [dep, Dep::default()],
            len: 1,
        })
    }

    /// Appends an edge, spilling to the heap past two inline slots.
    pub fn push(&mut self, dep: Dep) {
        match &mut self.0 {
            DepListRepr::Inline { buf, len } => {
                if (*len as usize) < buf.len() {
                    buf[*len as usize] = dep;
                    *len += 1;
                } else {
                    let mut vec = Vec::with_capacity(buf.len() + 1);
                    vec.extend_from_slice(buf);
                    vec.push(dep);
                    self.0 = DepListRepr::Spilled(Box::new(vec));
                }
            }
            DepListRepr::Spilled(vec) => vec.push(dep),
        }
    }

    /// Returns `true` if the edges have spilled to the heap.
    #[must_use]
    pub fn spilled(&self) -> bool {
        matches!(self.0, DepListRepr::Spilled(_))
    }
}

impl Default for DepList {
    fn default() -> Self {
        DepList::new()
    }
}

impl Deref for DepList {
    type Target = [Dep];

    #[inline]
    fn deref(&self) -> &[Dep] {
        match &self.0 {
            DepListRepr::Inline { buf, len } => &buf[..*len as usize],
            DepListRepr::Spilled(vec) => vec,
        }
    }
}

impl fmt::Debug for DepList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl From<Vec<Dep>> for DepList {
    fn from(deps: Vec<Dep>) -> Self {
        deps.into_iter().collect()
    }
}

impl FromIterator<Dep> for DepList {
    fn from_iter<I: IntoIterator<Item = Dep>>(iter: I) -> Self {
        let mut list = DepList::new();
        for dep in iter {
            list.push(dep);
        }
        list
    }
}

impl<'a> IntoIterator for &'a DepList {
    type Item = &'a Dep;
    type IntoIter = std::slice::Iter<'a, Dep>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// One lowered instruction, as dispatched into an instruction window by the
/// simulators.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineInst {
    /// Program-order position of the architectural instruction this was
    /// lowered from (used for slippage and effective-single-window
    /// accounting).
    pub trace_pos: usize,
    /// The architectural operation kind (used for latency lookup and
    /// statistics).
    pub op: OpKind,
    /// How the instruction executes.
    pub kind: ExecKind,
    /// True dependences on earlier lowered instructions (inline up to two
    /// edges — see [`DepList`]).
    pub deps: DepList,
    /// The memory transaction this instruction participates in, if any.
    pub tag: Option<MemTag>,
    /// The effective address, for memory instructions.
    pub addr: Option<Address>,
}

impl MachineInst {
    /// Creates an arithmetic instruction.
    #[must_use]
    pub fn arith(trace_pos: usize, op: OpKind, deps: impl Into<DepList>) -> Self {
        MachineInst {
            trace_pos,
            op,
            kind: ExecKind::Arith,
            deps: deps.into(),
            tag: None,
            addr: None,
        }
    }

    /// Creates a memory-kind instruction.
    #[must_use]
    pub fn memory(
        trace_pos: usize,
        op: OpKind,
        kind: ExecKind,
        deps: impl Into<DepList>,
        tag: MemTag,
        addr: Option<Address>,
    ) -> Self {
        MachineInst {
            trace_pos,
            op,
            kind,
            deps: deps.into(),
            tag: Some(tag),
            addr,
        }
    }

    /// Creates a cross-unit copy instruction.
    #[must_use]
    pub fn copy(trace_pos: usize, deps: impl Into<DepList>) -> Self {
        MachineInst {
            trace_pos,
            op: OpKind::IntAlu,
            kind: ExecKind::CopySend,
            deps: deps.into(),
            tag: None,
            addr: None,
        }
    }
}

/// Simple aggregate counts over a lowered stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamStats {
    /// Number of lowered instructions.
    pub instructions: usize,
    /// Arithmetic instructions.
    pub arith: usize,
    /// Load requests / prefetches.
    pub load_requests: usize,
    /// Load consumes / accesses.
    pub load_consumes: usize,
    /// Blocking loads.
    pub load_blocking: usize,
    /// Store-side operations.
    pub stores: usize,
    /// Cross-unit copies.
    pub copies: usize,
    /// Cross-unit dependence edges.
    pub cross_deps: usize,
}

/// Computes [`StreamStats`] for a lowered stream.
#[must_use]
pub fn stream_stats(stream: &[MachineInst]) -> StreamStats {
    let mut st = StreamStats {
        instructions: stream.len(),
        ..StreamStats::default()
    };
    for inst in stream {
        match inst.kind {
            ExecKind::Arith => st.arith += 1,
            ExecKind::LoadRequest => st.load_requests += 1,
            ExecKind::LoadConsume => st.load_consumes += 1,
            ExecKind::LoadBlocking => st.load_blocking += 1,
            ExecKind::StoreOp => st.stores += 1,
            ExecKind::CopySend => st.copies += 1,
        }
        st.cross_deps += inst.deps.iter().filter(|d| d.is_cross()).count();
    }
    st
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_kind_value_production() {
        assert!(ExecKind::Arith.produces_value());
        assert!(ExecKind::LoadConsume.produces_value());
        assert!(ExecKind::LoadBlocking.produces_value());
        assert!(ExecKind::CopySend.produces_value());
        assert!(!ExecKind::StoreOp.produces_value());
        assert!(!ExecKind::LoadRequest.produces_value());
    }

    #[test]
    fn exec_kind_memory_classification() {
        assert!(ExecKind::LoadRequest.touches_memory());
        assert!(ExecKind::LoadConsume.touches_memory());
        assert!(ExecKind::LoadBlocking.touches_memory());
        assert!(ExecKind::StoreOp.touches_memory());
        assert!(!ExecKind::Arith.touches_memory());
        assert!(!ExecKind::CopySend.touches_memory());
    }

    #[test]
    fn dep_accessors() {
        assert_eq!(Dep::local(4).index(), 4);
        assert_eq!(Dep::cross(9).index(), 9);
        assert!(Dep::cross(9).is_cross());
        assert!(!Dep::local(4).is_cross());
        // The packing round-trips the largest representable index.
        let max = (1usize << 31) - 1;
        assert_eq!(Dep::local(max).index(), max);
        assert_eq!(Dep::cross(max).index(), max);
        assert!(Dep::cross(max).is_cross());
        assert!(!Dep::local(max).is_cross());
        assert_eq!(format!("{:?}", Dep::cross(9)), "Cross(9)");
        assert_eq!(format!("{:?}", Dep::local(4)), "Local(4)");
    }

    #[test]
    #[should_panic(expected = "exceeds 31 bits")]
    fn dep_index_beyond_31_bits_panics() {
        let _ = Dep::local(1usize << 31);
    }

    #[test]
    fn machine_inst_stays_within_the_cache_budget() {
        // Streams are the simulator's working set: tens of thousands of
        // resident `MachineInst`s per run.  The packed `Dep` and the boxed
        // spill representation exist to keep the per-instruction footprint
        // at 56 bytes (down from 80); this pins the layout so a future
        // field does not silently blow it up again.
        assert_eq!(std::mem::size_of::<Dep>(), 4);
        assert!(std::mem::size_of::<DepList>() <= 16);
        assert!(
            std::mem::size_of::<MachineInst>() <= 56,
            "MachineInst grew to {} bytes",
            std::mem::size_of::<MachineInst>()
        );
    }

    #[test]
    fn dep_list_spills_past_two_inline_edges() {
        let mut list = DepList::new();
        assert!(list.is_empty());
        list.push(Dep::local(1));
        list.push(Dep::cross(2));
        assert!(!list.spilled());
        assert_eq!(&list[..], &[Dep::local(1), Dep::cross(2)]);
        list.push(Dep::local(3));
        assert!(list.spilled());
        assert_eq!(&list[..], &[Dep::local(1), Dep::cross(2), Dep::local(3)]);
        assert!(list.contains(&Dep::cross(2)));
        // Construction from iterators and vectors agrees with pushes.
        let collected: DepList = vec![Dep::local(1), Dep::cross(2), Dep::local(3)].into();
        assert_eq!(collected, list);
        assert_eq!(DepList::one(Dep::cross(7))[0], Dep::cross(7));
    }

    #[test]
    fn stream_stats_count_kinds() {
        let stream = vec![
            MachineInst::arith(0, OpKind::IntAlu, vec![]),
            MachineInst::memory(
                1,
                OpKind::Load,
                ExecKind::LoadRequest,
                vec![Dep::local(0)],
                0,
                Some(8),
            ),
            MachineInst::memory(
                1,
                OpKind::Load,
                ExecKind::LoadConsume,
                vec![Dep::cross(1)],
                0,
                Some(8),
            ),
            MachineInst::copy(2, vec![Dep::local(2)]),
            MachineInst::memory(
                3,
                OpKind::Store,
                ExecKind::StoreOp,
                vec![Dep::local(3)],
                1,
                Some(16),
            ),
        ];
        let st = stream_stats(&stream);
        assert_eq!(st.instructions, 5);
        assert_eq!(st.arith, 1);
        assert_eq!(st.load_requests, 1);
        assert_eq!(st.load_consumes, 1);
        assert_eq!(st.copies, 1);
        assert_eq!(st.stores, 1);
        assert_eq!(st.cross_deps, 1);
    }

    #[test]
    fn display_names_are_short_and_unique() {
        let kinds = [
            ExecKind::Arith,
            ExecKind::LoadRequest,
            ExecKind::LoadConsume,
            ExecKind::LoadBlocking,
            ExecKind::StoreOp,
            ExecKind::CopySend,
        ];
        let mut seen = std::collections::HashSet::new();
        for k in kinds {
            let s = format!("{k}");
            assert!(!s.is_empty());
            assert!(seen.insert(s));
        }
    }
}
