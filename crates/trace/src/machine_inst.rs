//! The lowered ("machine") instruction representation consumed by the
//! cycle-level simulators.
//!
//! An architectural [`Trace`](crate::Trace) is lowered differently for each
//! machine model of the paper:
//!
//! * the **decoupled machine** splits it into an AU stream and a DU stream
//!   ([`partition`](crate::partition)), turning every load into an address
//!   *request* on the AU and a data *consume* on the unit that uses the
//!   value, and inserting explicit copy instructions for cross-unit value
//!   traffic;
//! * the **single-window superscalar** expands every memory operation into a
//!   *prefetch* plus an *access* ([`expand_swsm`](crate::expand_swsm));
//! * the **scalar reference** keeps loads blocking
//!   ([`lower_scalar`](crate::lower_scalar)).
//!
//! All three produce streams of [`MachineInst`], so the out-of-order unit in
//! `dae-ooo` and the machines in `dae-machines` share one instruction format.

use dae_isa::{Address, OpKind};
use serde::{Deserialize, Serialize};
use smallvec::SmallVec;
use std::fmt;

/// The dependence list of a [`MachineInst`], stored inline for up to two
/// edges (covering almost every lowered instruction the kernels produce —
/// binary operations, request/consume pairs, store address/data sides) and
/// spilling to the heap beyond that.  Lowering a long trace used to perform
/// one heap allocation per instruction just for this list; the inline
/// representation removes that, which matters because lowering dominates the
/// cost of a cold single run.  Two is also the sweet spot for instruction
/// footprint: the streams are striding working sets of tens of thousands of
/// instructions, so `MachineInst` size is simulator cache pressure.
pub type DepList = SmallVec<[Dep; 2]>;

/// Identifies one memory transaction (a request / consume pair, or a
/// prefetch / access pair).  Tags are dense indices assigned by the
/// lowerings, so simulators can use them to index flat arrays.
pub type MemTag = u32;

/// How a lowered instruction executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecKind {
    /// A fixed-latency arithmetic operation (latency given by the
    /// [`LatencyModel`](dae_isa::LatencyModel) for [`MachineInst::op`]).
    Arith,
    /// Sends a load address to the memory system and completes in one cycle;
    /// the data arrives `memory differential` cycles later under
    /// [`MachineInst::tag`].  Used for the AU side of a decoupled load and
    /// for the SWSM prefetch.
    LoadRequest,
    /// Consumes the data of a previously requested transaction.  The
    /// instruction only becomes ready once the data has arrived (the
    /// simulators gate readiness on the tag) and then completes in one
    /// cycle, modelling the paper's single-cycle decoupled-memory /
    /// prefetch-buffer access.
    LoadConsume,
    /// A load with no prefetching at all: it issues, travels to memory and
    /// completes `1 + memory differential` cycles later.  Used by the scalar
    /// reference machine.
    LoadBlocking,
    /// A store-side operation (address generation, data delivery or the
    /// SWSM store access).  One cycle, fire and forget: nothing ever depends
    /// on its value.
    StoreOp,
    /// Copies a value towards the other unit of the decoupled machine.  One
    /// cycle on the sending unit; the consumer on the other side sees an
    /// additional transfer latency.
    CopySend,
}

impl ExecKind {
    /// Returns `true` if this kind produces a value other instructions can
    /// consume.
    #[must_use]
    pub fn produces_value(self) -> bool {
        !matches!(self, ExecKind::StoreOp | ExecKind::LoadRequest)
    }

    /// Returns `true` if this instruction interacts with the memory system.
    #[must_use]
    pub fn touches_memory(self) -> bool {
        matches!(
            self,
            ExecKind::LoadRequest
                | ExecKind::LoadConsume
                | ExecKind::LoadBlocking
                | ExecKind::StoreOp
        )
    }
}

impl fmt::Display for ExecKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ExecKind::Arith => "arith",
            ExecKind::LoadRequest => "ld.req",
            ExecKind::LoadConsume => "ld.use",
            ExecKind::LoadBlocking => "ld.blk",
            ExecKind::StoreOp => "store",
            ExecKind::CopySend => "copy",
        };
        f.write_str(name)
    }
}

/// A dependence of a lowered instruction.
///
/// `Local` names an earlier instruction of the *same* stream; `Cross` names
/// an instruction of the *other* unit's stream (only produced by the
/// decoupled-machine partition) and incurs the machine's cross-unit transfer
/// latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dep {
    /// Index of the producer within the same stream.
    Local(usize),
    /// Index of the producer within the other unit's stream.
    Cross(usize),
}

/// The default is a placeholder (`Local(0)`) used only to pre-initialise
/// the inline storage of a [`DepList`]; it never appears as an actual edge.
impl Default for Dep {
    fn default() -> Self {
        Dep::Local(0)
    }
}

impl Dep {
    /// The producer index regardless of which stream it lives in.
    #[must_use]
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Dep::Local(i) | Dep::Cross(i) => i,
        }
    }

    /// Returns `true` for cross-unit dependences.
    #[must_use]
    #[inline]
    pub fn is_cross(self) -> bool {
        matches!(self, Dep::Cross(_))
    }
}

/// One lowered instruction, as dispatched into an instruction window by the
/// simulators.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineInst {
    /// Program-order position of the architectural instruction this was
    /// lowered from (used for slippage and effective-single-window
    /// accounting).
    pub trace_pos: usize,
    /// The architectural operation kind (used for latency lookup and
    /// statistics).
    pub op: OpKind,
    /// How the instruction executes.
    pub kind: ExecKind,
    /// True dependences on earlier lowered instructions (inline up to two
    /// edges — see [`DepList`]).
    pub deps: DepList,
    /// The memory transaction this instruction participates in, if any.
    pub tag: Option<MemTag>,
    /// The effective address, for memory instructions.
    pub addr: Option<Address>,
}

impl MachineInst {
    /// Creates an arithmetic instruction.
    #[must_use]
    pub fn arith(trace_pos: usize, op: OpKind, deps: impl Into<DepList>) -> Self {
        MachineInst {
            trace_pos,
            op,
            kind: ExecKind::Arith,
            deps: deps.into(),
            tag: None,
            addr: None,
        }
    }

    /// Creates a memory-kind instruction.
    #[must_use]
    pub fn memory(
        trace_pos: usize,
        op: OpKind,
        kind: ExecKind,
        deps: impl Into<DepList>,
        tag: MemTag,
        addr: Option<Address>,
    ) -> Self {
        MachineInst {
            trace_pos,
            op,
            kind,
            deps: deps.into(),
            tag: Some(tag),
            addr,
        }
    }

    /// Creates a cross-unit copy instruction.
    #[must_use]
    pub fn copy(trace_pos: usize, deps: impl Into<DepList>) -> Self {
        MachineInst {
            trace_pos,
            op: OpKind::IntAlu,
            kind: ExecKind::CopySend,
            deps: deps.into(),
            tag: None,
            addr: None,
        }
    }
}

/// Simple aggregate counts over a lowered stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamStats {
    /// Number of lowered instructions.
    pub instructions: usize,
    /// Arithmetic instructions.
    pub arith: usize,
    /// Load requests / prefetches.
    pub load_requests: usize,
    /// Load consumes / accesses.
    pub load_consumes: usize,
    /// Blocking loads.
    pub load_blocking: usize,
    /// Store-side operations.
    pub stores: usize,
    /// Cross-unit copies.
    pub copies: usize,
    /// Cross-unit dependence edges.
    pub cross_deps: usize,
}

/// Computes [`StreamStats`] for a lowered stream.
#[must_use]
pub fn stream_stats(stream: &[MachineInst]) -> StreamStats {
    let mut st = StreamStats {
        instructions: stream.len(),
        ..StreamStats::default()
    };
    for inst in stream {
        match inst.kind {
            ExecKind::Arith => st.arith += 1,
            ExecKind::LoadRequest => st.load_requests += 1,
            ExecKind::LoadConsume => st.load_consumes += 1,
            ExecKind::LoadBlocking => st.load_blocking += 1,
            ExecKind::StoreOp => st.stores += 1,
            ExecKind::CopySend => st.copies += 1,
        }
        st.cross_deps += inst.deps.iter().filter(|d| d.is_cross()).count();
    }
    st
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_kind_value_production() {
        assert!(ExecKind::Arith.produces_value());
        assert!(ExecKind::LoadConsume.produces_value());
        assert!(ExecKind::LoadBlocking.produces_value());
        assert!(ExecKind::CopySend.produces_value());
        assert!(!ExecKind::StoreOp.produces_value());
        assert!(!ExecKind::LoadRequest.produces_value());
    }

    #[test]
    fn exec_kind_memory_classification() {
        assert!(ExecKind::LoadRequest.touches_memory());
        assert!(ExecKind::LoadConsume.touches_memory());
        assert!(ExecKind::LoadBlocking.touches_memory());
        assert!(ExecKind::StoreOp.touches_memory());
        assert!(!ExecKind::Arith.touches_memory());
        assert!(!ExecKind::CopySend.touches_memory());
    }

    #[test]
    fn dep_accessors() {
        assert_eq!(Dep::Local(4).index(), 4);
        assert_eq!(Dep::Cross(9).index(), 9);
        assert!(Dep::Cross(9).is_cross());
        assert!(!Dep::Local(4).is_cross());
    }

    #[test]
    fn stream_stats_count_kinds() {
        let stream = vec![
            MachineInst::arith(0, OpKind::IntAlu, vec![]),
            MachineInst::memory(
                1,
                OpKind::Load,
                ExecKind::LoadRequest,
                vec![Dep::Local(0)],
                0,
                Some(8),
            ),
            MachineInst::memory(
                1,
                OpKind::Load,
                ExecKind::LoadConsume,
                vec![Dep::Cross(1)],
                0,
                Some(8),
            ),
            MachineInst::copy(2, vec![Dep::Local(2)]),
            MachineInst::memory(
                3,
                OpKind::Store,
                ExecKind::StoreOp,
                vec![Dep::Local(3)],
                1,
                Some(16),
            ),
        ];
        let st = stream_stats(&stream);
        assert_eq!(st.instructions, 5);
        assert_eq!(st.arith, 1);
        assert_eq!(st.load_requests, 1);
        assert_eq!(st.load_consumes, 1);
        assert_eq!(st.copies, 1);
        assert_eq!(st.stores, 1);
        assert_eq!(st.cross_deps, 1);
    }

    #[test]
    fn display_names_are_short_and_unique() {
        let kinds = [
            ExecKind::Arith,
            ExecKind::LoadRequest,
            ExecKind::LoadConsume,
            ExecKind::LoadBlocking,
            ExecKind::StoreOp,
            ExecKind::CopySend,
        ];
        let mut seen = std::collections::HashSet::new();
        for k in kinds {
            let s = format!("{k}");
            assert!(!s.is_empty());
            assert!(seen.insert(s));
        }
    }
}
