//! Dataflow analyses over traces: critical path, ideal ILP, run lengths.

use crate::Trace;
use dae_isa::{Cycle, LatencyModel};
use serde::{Deserialize, Serialize};

/// Results of the dataflow-limit analysis of a trace.
///
/// These numbers describe the program itself, independent of any machine:
/// the critical (longest dependence) path bounds how fast *any* machine with
/// the given latencies can run the trace, and the ideal ILP is the average
/// parallelism available if resources were infinite.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataflowSummary {
    /// Length of the longest dependence chain, in cycles, when every memory
    /// access costs `1 + memory_differential` cycles.
    pub critical_path: Cycle,
    /// Length of the longest dependence chain when memory accesses cost a
    /// single cycle (perfect latency hiding).
    pub critical_path_perfect: Cycle,
    /// Dynamic instruction count.
    pub instructions: usize,
    /// Total work in cycles (sum of instruction latencies, memory charged at
    /// one cycle) — the single-issue lower bound with perfect hiding.
    pub total_work: Cycle,
    /// `instructions / critical_path_perfect`: the average instruction-level
    /// parallelism exposed by the dataflow graph alone.
    pub ideal_ilp: f64,
    /// How much of the critical path consists of memory latency
    /// (`1 - critical_path_perfect / critical_path`).
    pub memory_bound_fraction: f64,
}

/// Computes the dataflow limits of `trace` under `latencies` and a fixed
/// `memory_differential` (extra cycles per memory access over a register
/// access).
///
/// The critical path treats a load as costing `1 + memory_differential`
/// cycles from issue to the availability of its value, and every other
/// operation as its functional-unit latency.  Stores cost a single cycle and
/// terminate chains (nothing depends on a store in this model).
///
/// # Example
///
/// ```
/// use dae_isa::{KernelBuilder, LatencyModel, Operand};
/// use dae_trace::{expand, dataflow_summary};
///
/// // A serial floating point recurrence: the critical path grows linearly
/// // with the iteration count.
/// let mut b = KernelBuilder::new("recurrence");
/// let i = b.induction();
/// let x = b.load_strided(&[Operand::Local(i)], 0, 8);
/// b.fp_add_carried_self(&[Operand::Local(x)]);
/// let kernel = b.build()?;
/// let trace = expand(&kernel, 50);
///
/// let summary = dataflow_summary(&trace, &LatencyModel::paper_default(), 0);
/// assert!(summary.critical_path >= 100); // 50 iterations x 2-cycle fp add
/// assert!(summary.ideal_ilp > 1.0);
/// # Ok::<(), dae_isa::KernelError>(())
/// ```
#[must_use]
pub fn dataflow_summary(
    trace: &Trace,
    latencies: &LatencyModel,
    memory_differential: Cycle,
) -> DataflowSummary {
    let critical_path = critical_path(trace, latencies, memory_differential);
    let critical_path_perfect = critical_path_inner(trace, latencies, 0);
    let instructions = trace.len();
    let total_work: Cycle = trace.iter().map(|inst| latencies.latency_of(inst.op)).sum();
    let ideal_ilp = if critical_path_perfect == 0 {
        0.0
    } else {
        instructions as f64 / critical_path_perfect as f64
    };
    let memory_bound_fraction = if critical_path == 0 {
        0.0
    } else {
        1.0 - critical_path_perfect as f64 / critical_path as f64
    };
    DataflowSummary {
        critical_path,
        critical_path_perfect,
        instructions,
        total_work,
        ideal_ilp,
        memory_bound_fraction,
    }
}

/// The length in cycles of the longest dependence chain of `trace`, charging
/// each load `1 + memory_differential` cycles.
#[must_use]
pub fn critical_path(trace: &Trace, latencies: &LatencyModel, memory_differential: Cycle) -> Cycle {
    critical_path_inner(trace, latencies, memory_differential)
}

fn critical_path_inner(trace: &Trace, latencies: &LatencyModel, md: Cycle) -> Cycle {
    // Longest-path DP over the (acyclic, topologically ordered) trace.
    let mut finish: Vec<Cycle> = Vec::with_capacity(trace.len());
    let mut longest = 0;
    for inst in trace.iter() {
        let ready = inst.all_deps().map(|p| finish[p]).max().unwrap_or(0);
        let cost = match inst.op {
            op if op.is_load() => latencies.latency_of(op) + md,
            op => latencies.latency_of(op),
        };
        let done = ready + cost;
        longest = longest.max(done);
        finish.push(done);
    }
    longest
}

/// Per-instruction depth (critical-path distance from the start of the
/// trace), useful for tests and for visualising available parallelism.
#[must_use]
pub fn dataflow_depths(trace: &Trace, latencies: &LatencyModel, md: Cycle) -> Vec<Cycle> {
    let mut finish: Vec<Cycle> = Vec::with_capacity(trace.len());
    for inst in trace.iter() {
        let ready = inst.all_deps().map(|p| finish[p]).max().unwrap_or(0);
        let cost = if inst.op.is_load() {
            latencies.latency_of(inst.op) + md
        } else {
            latencies.latency_of(inst.op)
        };
        finish.push(ready + cost);
    }
    finish
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand;
    use dae_isa::{KernelBuilder, Operand};

    fn parallel_kernel() -> dae_isa::Kernel {
        // Independent iterations: wide dataflow.
        let mut b = KernelBuilder::new("parallel");
        let i = b.induction();
        let x = b.load_strided(&[Operand::Local(i)], 0, 8);
        let y = b.fp_mul(&[Operand::Local(x), Operand::Invariant(0)]);
        b.store_strided(&[Operand::Local(y), Operand::Local(i)], 0x8000, 8);
        b.build().unwrap()
    }

    fn serial_kernel() -> dae_isa::Kernel {
        // A long floating-point recurrence: almost no parallelism.
        let mut b = KernelBuilder::new("serial");
        let i = b.induction();
        let x = b.load_strided(&[Operand::Local(i)], 0, 8);
        b.fp_add_carried_self(&[Operand::Local(x)]);
        b.build().unwrap()
    }

    #[test]
    fn serial_recurrence_has_linear_critical_path() {
        let lat = LatencyModel::paper_default();
        let t = expand(&serial_kernel(), 100);
        let cp = critical_path(&t, &lat, 0);
        // 100 iterations of a 2-cycle dependent fp add, plus the first load.
        assert!(cp >= 200, "critical path {cp}");
        assert!(cp <= 210, "critical path {cp}");
    }

    #[test]
    fn parallel_kernel_critical_path_is_short() {
        let lat = LatencyModel::paper_default();
        let t = expand(&parallel_kernel(), 100);
        let cp = critical_path(&t, &lat, 0);
        // The induction chain (1 cycle per iteration) dominates.
        assert!(cp <= 100 + 10, "critical path {cp}");
        let summary = dataflow_summary(&t, &lat, 0);
        assert!(summary.ideal_ilp > 3.0, "ilp {}", summary.ideal_ilp);
    }

    #[test]
    fn memory_differential_lengthens_the_path_of_memory_bound_code() {
        let lat = LatencyModel::paper_default();
        let t = expand(&serial_kernel(), 50);
        let near = critical_path(&t, &lat, 0);
        let far = critical_path(&t, &lat, 60);
        // Loads feed the recurrence but are not serialised by it, so the
        // increase is the one exposed load latency, not 50 of them.
        assert!(far > near);
        assert!(far >= near + 60);
        let summary = dataflow_summary(&t, &lat, 60);
        assert!(summary.memory_bound_fraction > 0.0);
        assert!(summary.memory_bound_fraction < 1.0);
    }

    #[test]
    fn depths_are_monotone_along_dependences() {
        let lat = LatencyModel::paper_default();
        let t = expand(&parallel_kernel(), 20);
        let depths = dataflow_depths(&t, &lat, 10);
        for inst in t.iter() {
            for dep in &inst.deps {
                assert!(depths[dep.producer] < depths[inst.id]);
            }
        }
        assert_eq!(
            depths.iter().copied().max().unwrap(),
            critical_path(&t, &lat, 10)
        );
    }

    #[test]
    fn empty_trace_has_zero_paths() {
        let lat = LatencyModel::paper_default();
        let t = expand(&parallel_kernel(), 0);
        assert_eq!(critical_path(&t, &lat, 60), 0);
        let s = dataflow_summary(&t, &lat, 60);
        assert_eq!(s.critical_path, 0);
        assert_eq!(s.ideal_ilp, 0.0);
        assert_eq!(s.memory_bound_fraction, 0.0);
    }

    #[test]
    fn total_work_is_sum_of_latencies() {
        let lat = LatencyModel::paper_default();
        let t = expand(&parallel_kernel(), 10);
        let s = dataflow_summary(&t, &lat, 60);
        // per iteration: int(1) + load(1) + fmul(2) + store(1) = 5
        assert_eq!(s.total_work, 50);
        assert_eq!(s.instructions, 40);
    }
}
