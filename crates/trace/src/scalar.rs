//! Lowering for the scalar reference machine (no prefetching).

use crate::{Dep, DepList, ExecKind, MachineInst, MemTag, Trace, WakeupList};
use dae_isa::OpKind;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A trace lowered for the scalar reference machine: loads block for the
/// full memory latency, nothing is prefetched.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalarProgram {
    /// The single instruction stream, in program order (reference counted
    /// so sweep drivers can share one lowering across simulation points).
    pub insts: Arc<Vec<MachineInst>>,
    /// Producer → consumers wakeup lists for the event-driven scheduler,
    /// built once per lowering.
    pub wakeups: Arc<WakeupList>,
    /// The number of memory transactions.
    pub transactions: u32,
}

/// Lowers `trace` one-to-one for the scalar reference machine.
///
/// Loads become [`ExecKind::LoadBlocking`] (they occupy the machine for
/// `1 + memory differential` cycles), stores become fire-and-forget
/// [`ExecKind::StoreOp`]s and arithmetic passes through unchanged.  This is
/// the machine the paper's speedups are measured against in this
/// reproduction (see DESIGN.md for the baseline discussion).
///
/// # Example
///
/// ```
/// use dae_isa::{KernelBuilder, Operand};
/// use dae_trace::{expand, lower_scalar};
///
/// let mut b = KernelBuilder::new("sum");
/// let i = b.induction();
/// let x = b.load_strided(&[Operand::Local(i)], 0, 8);
/// b.fp_add_carried_self(&[Operand::Local(x)]);
/// let trace = expand(&b.build()?, 8);
///
/// let scalar = lower_scalar(&trace);
/// assert_eq!(scalar.insts.len(), trace.len());
/// # Ok::<(), dae_isa::KernelError>(())
/// ```
#[must_use]
pub fn lower_scalar(trace: &Trace) -> ScalarProgram {
    let mut insts = Vec::with_capacity(trace.len());
    let mut value_of: Vec<Option<usize>> = vec![None; trace.len()];
    let mut next_tag: MemTag = 0;

    for inst in trace.iter() {
        let deps: DepList = inst
            .deps
            .iter()
            .map(|d| Dep::local(value_of[d.producer].expect("producer lowered")))
            .collect();
        let idx = insts.len();
        match inst.op {
            OpKind::Load => {
                let tag = next_tag;
                next_tag += 1;
                insts.push(MachineInst::memory(
                    inst.id,
                    OpKind::Load,
                    ExecKind::LoadBlocking,
                    deps,
                    tag,
                    inst.addr,
                ));
                value_of[inst.id] = Some(idx);
            }
            OpKind::Store => {
                let tag = next_tag;
                next_tag += 1;
                insts.push(MachineInst::memory(
                    inst.id,
                    OpKind::Store,
                    ExecKind::StoreOp,
                    deps,
                    tag,
                    inst.addr,
                ));
            }
            _ => {
                insts.push(MachineInst::arith(inst.id, inst.op, deps));
                value_of[inst.id] = Some(idx);
            }
        }
    }

    let wakeups = Arc::new(WakeupList::local(&insts));
    ScalarProgram {
        insts: Arc::new(insts),
        wakeups,
        transactions: next_tag,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{expand, stream_stats};
    use dae_isa::{KernelBuilder, Operand};

    fn trace(iters: u64) -> Trace {
        let mut b = KernelBuilder::new("sum");
        let i = b.induction();
        let x = b.load_strided(&[Operand::Local(i)], 0, 8);
        let acc = b.fp_add_carried_self(&[Operand::Local(x)]);
        b.store_strided(&[Operand::Local(acc), Operand::Local(i)], 0x1000, 8);
        expand(&b.build().unwrap(), iters)
    }

    #[test]
    fn lowering_is_one_to_one() {
        let t = trace(12);
        let scalar = lower_scalar(&t);
        assert_eq!(scalar.insts.len(), t.len());
        let st = stream_stats(&scalar.insts);
        assert_eq!(st.load_blocking, 12);
        assert_eq!(st.stores, 12);
        assert_eq!(st.load_requests, 0);
        assert_eq!(st.load_consumes, 0);
        assert_eq!(st.copies, 0);
        assert_eq!(scalar.transactions, 24);
    }

    #[test]
    fn deps_map_to_lowered_positions() {
        let t = trace(6);
        let scalar = lower_scalar(&t);
        for (pos, inst) in scalar.insts.iter().enumerate() {
            assert_eq!(inst.trace_pos, pos, "one-to-one lowering keeps positions");
            for dep in &inst.deps {
                assert!(dep.index() < pos);
                assert!(!dep.is_cross());
            }
        }
    }

    #[test]
    fn empty_trace_is_fine() {
        let t = trace(0);
        let scalar = lower_scalar(&t);
        assert!(scalar.insts.is_empty());
        assert_eq!(scalar.transactions, 0);
    }
}
