//! # dae-trace — dynamic traces and machine lowerings
//!
//! This crate turns the static kernels of [`dae_isa`] into the dynamic
//! instruction streams that the paper's simulators consume:
//!
//! 1. [`expand`] unrolls a kernel for N iterations into an architectural
//!    [`Trace`] of [`DynInst`]s with explicit true data dependences (the
//!    paper assumes perfect dependence analysis and renaming);
//! 2. [`dataflow_summary`] measures the machine-independent limits of a
//!    trace (critical path, ideal ILP, memory-boundedness);
//! 3. the three lowerings produce the per-machine instruction streams:
//!    * [`partition`] — the access decoupled machine's AU / DU streams,
//!      with load request/consume pairs, store address/data pairs,
//!      cross-unit copies and loss-of-decoupling accounting;
//!    * [`expand_swsm`] — the single-window superscalar machine's hybrid
//!      prefetch expansion (prefetch + access per memory operation);
//!    * [`lower_scalar`] — the scalar reference machine with blocking
//!      loads.
//!
//! All lowered streams use the shared [`MachineInst`] format, so a single
//! out-of-order engine (in `dae-ooo`) can execute any of them.
//!
//! ## Example: from kernel to both machines
//!
//! ```
//! use dae_isa::{KernelBuilder, Operand};
//! use dae_trace::{expand, expand_swsm, partition, PartitionMode};
//!
//! let mut b = KernelBuilder::new("axpy");
//! let i = b.induction();
//! let x = b.load_strided(&[Operand::Local(i)], 0, 8);
//! let y = b.fp_mul(&[Operand::Local(x), Operand::Invariant(0)]);
//! b.store_strided(&[Operand::Local(y), Operand::Local(i)], 0x1000, 8);
//! let trace = expand(&b.build()?, 100);
//!
//! let dm = partition(&trace, PartitionMode::Tagged);
//! let swsm = expand_swsm(&trace);
//!
//! // The decoupled machine splits work across two units; the SWSM pays for
//! // prefetches in a single stream.
//! assert_eq!(dm.au.len() + dm.du.len(), swsm.insts.len());
//! assert_eq!(dm.stats.copies_du_to_au, 0);
//! # Ok::<(), dae_isa::KernelError>(())
//! ```

mod analysis;
mod classify;
mod content;
mod dyninst;
mod expand;
mod machine_inst;
mod partition;
mod scalar;
mod swsm;
mod trace;
mod wakeup;

pub use analysis::{critical_path, dataflow_depths, dataflow_summary, DataflowSummary};
pub use classify::{classification_disagreement, classify};
pub use content::{ContentHasher, TraceHash};
pub use dyninst::{DepEdge, DepRole, DynInst, InstId};
pub use expand::{expand, operand_role};
pub use machine_inst::{stream_stats, Dep, DepList, ExecKind, MachineInst, MemTag, StreamStats};
pub use partition::{partition, DecoupledProgram, PartitionMode, PartitionStats};
pub use scalar::{lower_scalar, ScalarProgram};
pub use swsm::{expand_swsm, SwsmProgram, SwsmStats};
pub use trace::{Trace, TraceStats};
pub use wakeup::WakeupList;
