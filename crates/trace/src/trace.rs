//! The dynamic instruction trace and its aggregate statistics.

use crate::{DynInst, InstId};
use dae_isa::{OpKind, UnitClass};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Index;

/// Aggregate statistics of a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total dynamic instructions.
    pub instructions: usize,
    /// Dynamic integer / address operations.
    pub int_ops: usize,
    /// Dynamic floating point operations.
    pub fp_ops: usize,
    /// Dynamic loads.
    pub loads: usize,
    /// Dynamic stores.
    pub stores: usize,
    /// Dynamic loads whose address depends on a loaded or computed data value.
    pub indirect_loads: usize,
    /// Instructions tagged for the access stream.
    pub access_insts: usize,
    /// Instructions tagged for the compute stream.
    pub compute_insts: usize,
    /// Total dependence edges.
    pub dep_edges: usize,
}

impl TraceStats {
    /// Fraction of dynamic instructions that access memory.
    #[must_use]
    pub fn memory_fraction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            (self.loads + self.stores) as f64 / self.instructions as f64
        }
    }

    /// Fraction of dynamic loads with data-dependent addresses.
    #[must_use]
    pub fn indirect_load_fraction(&self) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            self.indirect_loads as f64 / self.loads as f64
        }
    }
}

/// A dynamic instruction trace in program order.
///
/// Traces are produced by [`expand`](crate::expand) from a static
/// [`Kernel`](dae_isa::Kernel) and consumed by the machine lowerings
/// ([`partition`](crate::partition), [`expand_swsm`](crate::expand_swsm),
/// [`lower_scalar`](crate::lower_scalar)).
///
/// # Example
///
/// ```
/// use dae_isa::{KernelBuilder, Operand};
/// use dae_trace::expand;
///
/// let mut b = KernelBuilder::new("axpy");
/// let i = b.induction();
/// let x = b.load_strided(&[Operand::Local(i)], 0, 8);
/// let y = b.fp_mul(&[Operand::Local(x), Operand::Invariant(0)]);
/// b.store_strided(&[Operand::Local(y), Operand::Local(i)], 0x1000, 8);
/// let kernel = b.build()?;
///
/// let trace = expand(&kernel, 100);
/// assert_eq!(trace.len(), 400);
/// assert_eq!(trace.stats().loads, 100);
/// assert_eq!(trace.stats().stores, 100);
/// # Ok::<(), dae_isa::KernelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    name: String,
    iterations: u64,
    kernel_len: usize,
    insts: Vec<DynInst>,
}

impl Trace {
    /// Assembles a trace from parts.  Intended for use by
    /// [`expand`](crate::expand) and by tests that build traces by hand.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if instruction ids are not consecutive from
    /// zero or if a dependence points forward.
    #[must_use]
    pub fn from_parts(
        name: impl Into<String>,
        iterations: u64,
        kernel_len: usize,
        insts: Vec<DynInst>,
    ) -> Self {
        #[cfg(debug_assertions)]
        for (pos, inst) in insts.iter().enumerate() {
            debug_assert_eq!(inst.id, pos, "instruction ids must be dense");
            for dep in &inst.deps {
                debug_assert!(dep.producer < pos, "dependence must point backwards");
            }
        }
        Trace {
            name: name.into(),
            iterations,
            kernel_len,
            insts,
        }
    }

    /// The workload / kernel name this trace was generated from.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// How many kernel iterations the trace covers.
    #[must_use]
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// The number of statements per kernel iteration.
    #[must_use]
    pub fn kernel_len(&self) -> usize {
        self.kernel_len
    }

    /// The number of dynamic instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Returns `true` if the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The instructions in program order.
    #[must_use]
    pub fn insts(&self) -> &[DynInst] {
        &self.insts
    }

    /// Iterates over the instructions in program order.
    pub fn iter(&self) -> impl Iterator<Item = &DynInst> {
        self.insts.iter()
    }

    /// Looks up an instruction by id.
    #[must_use]
    pub fn get(&self, id: InstId) -> Option<&DynInst> {
        self.insts.get(id)
    }

    /// Computes aggregate statistics over the whole trace.
    #[must_use]
    pub fn stats(&self) -> TraceStats {
        let mut st = TraceStats {
            instructions: self.insts.len(),
            ..TraceStats::default()
        };
        for inst in &self.insts {
            match inst.op {
                OpKind::IntAlu => st.int_ops += 1,
                OpKind::FpAdd | OpKind::FpMul | OpKind::FpDiv => st.fp_ops += 1,
                OpKind::Load => {
                    st.loads += 1;
                    if inst.deps.iter().any(|d| {
                        d.role == crate::DepRole::Address
                            && self.insts[d.producer].op.produces_value()
                            && (self.insts[d.producer].op.is_load()
                                || self.insts[d.producer].op.is_fp())
                    }) {
                        st.indirect_loads += 1;
                    }
                }
                OpKind::Store => st.stores += 1,
            }
            match inst.unit_hint {
                UnitClass::Access => st.access_insts += 1,
                UnitClass::Compute => st.compute_insts += 1,
            }
            st.dep_edges += inst.deps.len();
        }
        st
    }

    /// The ids of all consumers of each instruction (forward adjacency).
    ///
    /// Useful for classification and dataflow analyses that walk the graph
    /// from producers to consumers.
    #[must_use]
    pub fn consumers(&self) -> Vec<Vec<InstId>> {
        let mut out = vec![Vec::new(); self.insts.len()];
        for inst in &self.insts {
            for dep in &inst.deps {
                out[dep.producer].push(inst.id);
            }
        }
        out
    }
}

impl Index<InstId> for Trace {
    type Output = DynInst;

    fn index(&self, id: InstId) -> &DynInst {
        &self.insts[id]
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.stats();
        write!(
            f,
            "trace {} ({} iterations, {} instructions: {} int, {} fp, {} loads, {} stores)",
            self.name, self.iterations, st.instructions, st.int_ops, st.fp_ops, st.loads, st.stores
        )
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a DynInst;
    type IntoIter = std::slice::Iter<'a, DynInst>;

    fn into_iter(self) -> Self::IntoIter {
        self.insts.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DepEdge;

    fn tiny_trace() -> Trace {
        let insts = vec![
            DynInst {
                id: 0,
                op: OpKind::IntAlu,
                unit_hint: UnitClass::Access,
                deps: vec![],
                addr: None,
                stmt: 0,
                iteration: 0,
            },
            DynInst {
                id: 1,
                op: OpKind::Load,
                unit_hint: UnitClass::Access,
                deps: vec![DepEdge::address(0)],
                addr: Some(0x40),
                stmt: 1,
                iteration: 0,
            },
            DynInst {
                id: 2,
                op: OpKind::FpAdd,
                unit_hint: UnitClass::Compute,
                deps: vec![DepEdge::data(1)],
                addr: None,
                stmt: 2,
                iteration: 0,
            },
            DynInst {
                id: 3,
                op: OpKind::Store,
                unit_hint: UnitClass::Access,
                deps: vec![DepEdge::data(2), DepEdge::address(0)],
                addr: Some(0x80),
                stmt: 3,
                iteration: 0,
            },
        ];
        Trace::from_parts("tiny", 1, 4, insts)
    }

    #[test]
    fn stats_count_kinds_and_edges() {
        let t = tiny_trace();
        let st = t.stats();
        assert_eq!(st.instructions, 4);
        assert_eq!(st.int_ops, 1);
        assert_eq!(st.fp_ops, 1);
        assert_eq!(st.loads, 1);
        assert_eq!(st.stores, 1);
        assert_eq!(st.dep_edges, 4);
        assert_eq!(st.access_insts, 3);
        assert_eq!(st.compute_insts, 1);
        assert!((st.memory_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn consumers_are_forward_edges() {
        let t = tiny_trace();
        let cons = t.consumers();
        assert_eq!(cons[0], vec![1, 3]);
        assert_eq!(cons[1], vec![2]);
        assert_eq!(cons[2], vec![3]);
        assert!(cons[3].is_empty());
    }

    #[test]
    fn indexing_and_iteration() {
        let t = tiny_trace();
        assert_eq!(t[2].op, OpKind::FpAdd);
        assert_eq!(t.iter().count(), 4);
        assert_eq!((&t).into_iter().count(), 4);
        assert_eq!(t.get(3).unwrap().op, OpKind::Store);
        assert!(t.get(4).is_none());
    }

    #[test]
    fn display_mentions_counts() {
        let text = format!("{}", tiny_trace());
        assert!(text.contains("4 instructions"));
        assert!(text.contains("1 loads"));
    }

    #[test]
    #[cfg(debug_assertions)] // the guard is a debug_assert: release strips it
    #[should_panic(expected = "dependence must point backwards")]
    fn forward_dependences_panic_in_debug() {
        let insts = vec![DynInst {
            id: 0,
            op: OpKind::IntAlu,
            unit_hint: UnitClass::Access,
            deps: vec![DepEdge::data(0)],
            addr: None,
            stmt: 0,
            iteration: 0,
        }];
        let _ = Trace::from_parts("bad", 1, 1, insts);
    }
}
