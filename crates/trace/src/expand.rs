//! Expansion of a static kernel into a dynamic trace.

use crate::{DepEdge, DepRole, DynInst, Trace};
use dae_isa::{Kernel, OpKind, Operand};

/// Expands `kernel` for `iterations` iterations into a dynamic [`Trace`].
///
/// Expansion implements the paper's idealisations directly:
///
/// * loop-closing branches are removed, so iterations simply follow each
///   other in program order;
/// * perfect renaming means only true data dependences are produced —
///   [`Operand::Local`] becomes a dependence on this iteration's instance of
///   the producer, [`Operand::Carried`] on the instance `distance`
///   iterations back (or no dependence at all in the first `distance`
///   iterations, where the value exists before the loop), and
///   [`Operand::Invariant`] never produces a dependence;
/// * memory operations receive their effective address from the statement's
///   [`AddressPattern`](dae_isa::AddressPattern) evaluated at the iteration
///   number.
///
/// Dependence roles follow the convention documented on
/// [`DepRole`](crate::DepRole): all load operands are addresses; a store's
/// first operand is the stored data and the rest are addresses; all other
/// operands are data.
///
/// # Example
///
/// ```
/// use dae_isa::{KernelBuilder, Operand};
/// use dae_trace::expand;
///
/// let mut b = KernelBuilder::new("copy");
/// let i = b.induction();
/// let x = b.load_strided(&[Operand::Local(i)], 0, 8);
/// b.store_strided(&[Operand::Local(x), Operand::Local(i)], 0x1000, 8);
/// let kernel = b.build()?;
///
/// let trace = expand(&kernel, 4);
/// assert_eq!(trace.len(), 12);
/// // The second iteration's induction update depends on the first's.
/// assert_eq!(trace[3].deps[0].producer, 0);
/// # Ok::<(), dae_isa::KernelError>(())
/// ```
#[must_use]
pub fn expand(kernel: &Kernel, iterations: u64) -> Trace {
    let stmts = kernel.statements();
    let per_iter = stmts.len();
    let mut insts = Vec::with_capacity(per_iter * iterations as usize);

    for iter in 0..iterations {
        for (stmt_idx, stmt) in stmts.iter().enumerate() {
            let id = iter as usize * per_iter + stmt_idx;
            let mut deps = Vec::with_capacity(stmt.inputs.len());
            for (operand_idx, operand) in stmt.inputs.iter().enumerate() {
                let producer = match *operand {
                    Operand::Local(target) => Some(iter as usize * per_iter + target),
                    Operand::Carried {
                        stmt: target,
                        distance,
                    } => {
                        if iter >= u64::from(distance) {
                            Some((iter - u64::from(distance)) as usize * per_iter + target)
                        } else {
                            None
                        }
                    }
                    Operand::Invariant(_) => None,
                };
                if let Some(producer) = producer {
                    deps.push(DepEdge {
                        producer,
                        role: operand_role(stmt.op, operand_idx),
                    });
                }
            }
            let addr = stmt.address.map(|spec| spec.pattern.address_at(iter));
            insts.push(DynInst {
                id,
                op: stmt.op,
                unit_hint: stmt.unit,
                deps,
                addr,
                stmt: stmt_idx,
                iteration: iter,
            });
        }
    }

    Trace::from_parts(kernel.name(), iterations, per_iter, insts)
}

/// The dependence role of operand `index` of an operation of kind `op`.
///
/// * loads use every operand to form the address;
/// * stores consume operand 0 as the stored data and the rest as address
///   inputs;
/// * every other operation consumes data.
#[must_use]
pub fn operand_role(op: OpKind, index: usize) -> DepRole {
    match op {
        OpKind::Load => DepRole::Address,
        OpKind::Store => {
            if index == 0 {
                DepRole::Data
            } else {
                DepRole::Address
            }
        }
        _ => DepRole::Data,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_isa::{AddressPattern, KernelBuilder};

    fn daxpy() -> Kernel {
        let mut b = KernelBuilder::new("daxpy");
        let i = b.induction();
        let x = b.load_strided(&[Operand::Local(i)], 0x0, 8);
        let y = b.load_strided(&[Operand::Local(i)], 0x10_000, 8);
        let ax = b.fp_mul(&[Operand::Local(x), Operand::Invariant(0)]);
        let s = b.fp_add(&[Operand::Local(ax), Operand::Local(y)]);
        b.store_strided(&[Operand::Local(s), Operand::Local(i)], 0x10_000, 8);
        b.build().unwrap()
    }

    #[test]
    fn expansion_size_is_iterations_times_kernel_len() {
        let k = daxpy();
        for iters in [1u64, 2, 17, 100] {
            let t = expand(&k, iters);
            assert_eq!(t.len(), k.len() * iters as usize);
            assert_eq!(t.iterations(), iters);
            assert_eq!(t.kernel_len(), k.len());
        }
    }

    #[test]
    fn local_deps_stay_within_iteration() {
        let k = daxpy();
        let t = expand(&k, 3);
        for inst in t.iter() {
            for dep in &inst.deps {
                let producer = &t[dep.producer];
                // A local or carried dependence never points forward and
                // never crosses more than one iteration for this kernel.
                assert!(producer.iteration <= inst.iteration);
                assert!(inst.iteration - producer.iteration <= 1);
            }
        }
    }

    #[test]
    fn carried_deps_skip_the_first_iterations() {
        let k = daxpy();
        let t = expand(&k, 3);
        // Statement 0 is the induction update (self-carried, distance 1).
        assert!(t[0].deps.is_empty(), "first iteration has no producer");
        assert_eq!(t[k.len()].deps[0].producer, 0);
        assert_eq!(t[2 * k.len()].deps[0].producer, k.len());
    }

    #[test]
    fn invariants_produce_no_dependence() {
        let k = daxpy();
        let t = expand(&k, 2);
        // Statement 3 (fp_mul) has two operands but only one dependence: the
        // invariant scalar never becomes an edge.
        assert_eq!(t[3].deps.len(), 1);
    }

    #[test]
    fn addresses_follow_the_pattern() {
        let k = daxpy();
        let t = expand(&k, 5);
        for iter in 0..5u64 {
            let load_x = &t[iter as usize * k.len() + 1];
            assert_eq!(load_x.addr, Some(iter * 8));
            let store = &t[iter as usize * k.len() + 5];
            assert_eq!(store.addr, Some(0x10_000 + iter * 8));
        }
    }

    #[test]
    fn store_roles_follow_convention() {
        let k = daxpy();
        let t = expand(&k, 1);
        let store = &t[5];
        assert_eq!(store.deps.len(), 2);
        assert_eq!(store.deps[0].role, DepRole::Data);
        assert_eq!(store.deps[1].role, DepRole::Address);
        let load = &t[1];
        assert!(load.deps.iter().all(|d| d.role == DepRole::Address));
    }

    #[test]
    fn operand_role_table() {
        assert_eq!(operand_role(OpKind::Load, 0), DepRole::Address);
        assert_eq!(operand_role(OpKind::Load, 3), DepRole::Address);
        assert_eq!(operand_role(OpKind::Store, 0), DepRole::Data);
        assert_eq!(operand_role(OpKind::Store, 1), DepRole::Address);
        assert_eq!(operand_role(OpKind::FpAdd, 0), DepRole::Data);
        assert_eq!(operand_role(OpKind::IntAlu, 1), DepRole::Data);
    }

    #[test]
    fn indirect_loads_keep_their_index_dependence() {
        let mut b = KernelBuilder::new("gather");
        let i = b.induction();
        let idx = b.load_strided(&[Operand::Local(i)], 0, 8);
        let g = b.load_indirect(&[Operand::Local(idx)], 0x100_000, 1 << 16, 0);
        let _use = b.fp_add(&[Operand::Local(g)]);
        let k = b.build().unwrap();
        let t = expand(&k, 2);
        let gather = &t[2];
        assert_eq!(gather.deps.len(), 1);
        assert_eq!(gather.deps[0].producer, 1);
        assert_eq!(gather.deps[0].role, DepRole::Address);
        match k.statements()[2].address.unwrap().pattern {
            AddressPattern::Indirect { base, .. } => assert!(gather.addr.unwrap() >= base),
            _ => panic!("expected indirect pattern"),
        }
    }

    #[test]
    fn zero_iterations_gives_empty_trace() {
        let k = daxpy();
        let t = expand(&k, 0);
        assert!(t.is_empty());
        assert_eq!(t.stats().instructions, 0);
    }
}
