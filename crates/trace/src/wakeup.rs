//! Precomputed wakeup lists for the event-driven scheduler.
//!
//! The event-driven out-of-order unit in `dae-ooo` wakes the *consumers* of
//! an instruction when it completes instead of re-polling every resident
//! instruction every cycle.  That requires the dependence graph inverted —
//! producer → consumers — which this module builds **once per lowered
//! stream** in compressed sparse row form, so a wake is a contiguous slice
//! walk with no per-cycle allocation.
//!
//! Two flavours exist:
//!
//! * [`WakeupList::local`] — consumers within the same stream
//!   (local [`Dep`] edges), used by the unit itself;
//! * [`WakeupList::cross`] — consumers in *this* stream of producers in the
//!   *other* unit's stream (cross [`Dep`] edges), used by the decoupled
//!   machine to forward issue events between its two units.

use crate::{Dep, MachineInst};
use serde::{Deserialize, Serialize};

/// An inverted dependence graph in compressed sparse row form: for each
/// producer index, the consumer indices it must wake.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WakeupList {
    /// `offsets[p]..offsets[p + 1]` delimits producer `p`'s consumers in
    /// [`WakeupList::targets`].
    offsets: Vec<u32>,
    /// Consumer indices, grouped by producer.
    targets: Vec<u32>,
}

impl WakeupList {
    /// Builds the local wakeup list of `stream`: for every instruction, the
    /// later instructions of the *same* stream that name it in a
    /// local [`Dep`] edge.  Duplicate edges are preserved — the scheduler's
    /// remaining-operand counters count edges, not distinct producers.
    #[must_use]
    pub fn local(stream: &[MachineInst]) -> Self {
        Self::build(stream, stream.len(), false)
    }

    /// Builds the cross wakeup list of `stream` against a producer stream of
    /// `producer_len` instructions: for every index of the *other* stream,
    /// the instructions of `stream` that name it in a cross [`Dep`] edge.
    #[must_use]
    pub fn cross(stream: &[MachineInst], producer_len: usize) -> Self {
        Self::build(stream, producer_len, true)
    }

    fn build(stream: &[MachineInst], producer_len: usize, cross: bool) -> Self {
        let matches =
            |dep: &Dep| -> Option<usize> { (dep.is_cross() == cross).then(|| dep.index()) };

        let mut counts = vec![0u32; producer_len];
        for inst in stream {
            for dep in &inst.deps {
                if let Some(p) = matches(dep) {
                    counts[p] += 1;
                }
            }
        }

        let mut offsets = Vec::with_capacity(producer_len + 1);
        let mut running: u32 = 0;
        offsets.push(0);
        for &c in &counts {
            running += c;
            offsets.push(running);
        }

        let mut cursor: Vec<u32> = offsets[..producer_len].to_vec();
        let mut targets = vec![0u32; running as usize];
        for (consumer, inst) in stream.iter().enumerate() {
            for dep in &inst.deps {
                if let Some(p) = matches(dep) {
                    targets[cursor[p] as usize] = u32::try_from(consumer).expect("stream too long");
                    cursor[p] += 1;
                }
            }
        }

        WakeupList { offsets, targets }
    }

    /// The consumers woken by producer `p`.
    #[must_use]
    #[inline]
    pub fn of(&self, p: usize) -> &[u32] {
        let lo = self.offsets[p] as usize;
        let hi = self.offsets[p + 1] as usize;
        &self.targets[lo..hi]
    }

    /// The number of producers covered.
    #[must_use]
    pub fn producers(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total dependence edges recorded.
    #[must_use]
    pub fn edges(&self) -> usize {
        self.targets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_isa::OpKind;

    fn arith(i: usize, deps: Vec<Dep>) -> MachineInst {
        MachineInst::arith(i, OpKind::IntAlu, deps)
    }

    #[test]
    fn local_lists_invert_the_dependence_graph() {
        let stream = vec![
            arith(0, vec![]),
            arith(1, vec![Dep::local(0)]),
            arith(2, vec![Dep::local(0), Dep::local(1)]),
            arith(3, vec![Dep::cross(0)]),
        ];
        let wl = WakeupList::local(&stream);
        assert_eq!(wl.producers(), 4);
        assert_eq!(wl.of(0), &[1, 2]);
        assert_eq!(wl.of(1), &[2]);
        assert_eq!(wl.of(2), &[] as &[u32]);
        assert_eq!(wl.edges(), 3, "cross edges are excluded");
    }

    #[test]
    fn duplicate_edges_are_preserved() {
        let stream = vec![
            arith(0, vec![]),
            arith(1, vec![Dep::local(0), Dep::local(0)]),
        ];
        let wl = WakeupList::local(&stream);
        assert_eq!(wl.of(0), &[1, 1]);
    }

    #[test]
    fn cross_lists_key_by_the_other_stream() {
        let stream = vec![
            arith(0, vec![Dep::cross(2)]),
            arith(1, vec![Dep::cross(2), Dep::local(0)]),
            arith(2, vec![Dep::cross(5)]),
        ];
        let wl = WakeupList::cross(&stream, 7);
        assert_eq!(wl.producers(), 7);
        assert_eq!(wl.of(2), &[0, 1]);
        assert_eq!(wl.of(5), &[2]);
        assert_eq!(wl.of(0), &[] as &[u32]);
    }

    #[test]
    fn empty_streams_build_empty_lists() {
        let wl = WakeupList::local(&[]);
        assert_eq!(wl.producers(), 0);
        assert_eq!(wl.edges(), 0);
    }
}
