//! Lowering for the single-window superscalar machine (SWSM): the hybrid
//! prefetch expansion.

use crate::{Dep, DepList, DepRole, ExecKind, MachineInst, MemTag, Trace, WakeupList};
use dae_isa::OpKind;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Counters describing an SWSM-lowered program.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwsmStats {
    /// Architectural instructions in the source trace.
    pub trace_instructions: usize,
    /// Lowered instructions.
    pub machine_instructions: usize,
    /// Prefetch instructions inserted (one per memory operation).
    pub prefetches: usize,
    /// Access instructions (the second half of each memory operation).
    pub accesses: usize,
}

impl SwsmStats {
    /// Ratio of lowered to architectural instructions.  The paper's hybrid
    /// scheme doubles every memory operation, so this is
    /// `1 + memory_fraction` of the original trace.
    #[must_use]
    pub fn expansion_ratio(&self) -> f64 {
        if self.trace_instructions == 0 {
            0.0
        } else {
            self.machine_instructions as f64 / self.trace_instructions as f64
        }
    }
}

/// A trace lowered for the single-window superscalar machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwsmProgram {
    /// The single instruction stream, in program order (reference counted
    /// so sweep drivers can share one lowering across simulation points).
    pub insts: Arc<Vec<MachineInst>>,
    /// Producer → consumers wakeup lists for the event-driven scheduler,
    /// built once per lowering.
    pub wakeups: Arc<WakeupList>,
    /// Structural statistics gathered during lowering.
    pub stats: SwsmStats,
    /// The number of memory transactions (prefetch/access pairs).
    pub transactions: u32,
}

/// Expands `trace` for the SWSM's hybrid prefetch scheme.
///
/// Every memory operation becomes two instructions (section 2 of the paper):
///
/// * a **prefetch** ([`ExecKind::LoadRequest`]) that carries the address
///   dependences, begins execution as soon as run-time resources allow, and
///   fills the fully-associative prefetch buffer `memory differential`
///   cycles later; and
/// * an **access** — for loads a [`ExecKind::LoadConsume`] that waits for
///   the prefetched data and then completes as a one-cycle prefetch-buffer
///   hit; for stores a fire-and-forget [`ExecKind::StoreOp`] carrying both
///   the data and the address dependences.
///
/// Consumers of a load's value depend on the *access* instruction, exactly
/// as they would on an ordinary load.  Arithmetic passes through unchanged.
///
/// # Example
///
/// ```
/// use dae_isa::{KernelBuilder, Operand};
/// use dae_trace::{expand, expand_swsm};
///
/// let mut b = KernelBuilder::new("scale");
/// let i = b.induction();
/// let x = b.load_strided(&[Operand::Local(i)], 0, 8);
/// let y = b.fp_mul(&[Operand::Local(x), Operand::Invariant(0)]);
/// b.store_strided(&[Operand::Local(y), Operand::Local(i)], 0x1000, 8);
/// let trace = expand(&b.build()?, 10);
///
/// let swsm = expand_swsm(&trace);
/// // 4 architectural instructions, 2 of which are memory ops -> 6 lowered.
/// assert_eq!(swsm.insts.len() / 10, 6);
/// assert!((swsm.stats.expansion_ratio() - 1.5).abs() < 1e-9);
/// # Ok::<(), dae_isa::KernelError>(())
/// ```
#[must_use]
pub fn expand_swsm(trace: &Trace) -> SwsmProgram {
    let mut insts: Vec<MachineInst> = Vec::with_capacity(trace.len() * 2);
    // Where each architectural instruction's value lives in the lowered
    // stream.
    let mut value_of: Vec<Option<usize>> = vec![None; trace.len()];
    let mut stats = SwsmStats {
        trace_instructions: trace.len(),
        ..SwsmStats::default()
    };
    let mut next_tag: MemTag = 0;

    for inst in trace.iter() {
        match inst.op {
            OpKind::Load => {
                let tag = next_tag;
                next_tag += 1;
                let addr_deps: DepList = inst
                    .deps
                    .iter()
                    .filter(|d| d.role == DepRole::Address)
                    .map(|d| Dep::local(value_of[d.producer].expect("producer lowered")))
                    .collect();
                let prefetch_idx = insts.len();
                insts.push(MachineInst::memory(
                    inst.id,
                    OpKind::Load,
                    ExecKind::LoadRequest,
                    addr_deps.clone(),
                    tag,
                    inst.addr,
                ));
                stats.prefetches += 1;
                let mut access_deps = addr_deps;
                access_deps.push(Dep::local(prefetch_idx));
                let access_idx = insts.len();
                insts.push(MachineInst::memory(
                    inst.id,
                    OpKind::Load,
                    ExecKind::LoadConsume,
                    access_deps,
                    tag,
                    inst.addr,
                ));
                stats.accesses += 1;
                value_of[inst.id] = Some(access_idx);
            }
            OpKind::Store => {
                let tag = next_tag;
                next_tag += 1;
                let addr_deps: DepList = inst
                    .deps
                    .iter()
                    .filter(|d| d.role == DepRole::Address)
                    .map(|d| Dep::local(value_of[d.producer].expect("producer lowered")))
                    .collect();
                insts.push(MachineInst::memory(
                    inst.id,
                    OpKind::Store,
                    ExecKind::LoadRequest,
                    addr_deps,
                    tag,
                    inst.addr,
                ));
                stats.prefetches += 1;
                let all_deps: DepList = inst
                    .deps
                    .iter()
                    .map(|d| Dep::local(value_of[d.producer].expect("producer lowered")))
                    .collect();
                insts.push(MachineInst::memory(
                    inst.id,
                    OpKind::Store,
                    ExecKind::StoreOp,
                    all_deps,
                    tag,
                    inst.addr,
                ));
                stats.accesses += 1;
            }
            _ => {
                let deps: DepList = inst
                    .deps
                    .iter()
                    .map(|d| Dep::local(value_of[d.producer].expect("producer lowered")))
                    .collect();
                let idx = insts.len();
                insts.push(MachineInst::arith(inst.id, inst.op, deps));
                value_of[inst.id] = Some(idx);
            }
        }
    }

    stats.machine_instructions = insts.len();
    let wakeups = Arc::new(WakeupList::local(&insts));
    SwsmProgram {
        insts: Arc::new(insts),
        wakeups,
        stats,
        transactions: next_tag,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{expand, stream_stats};
    use dae_isa::{KernelBuilder, Operand};

    fn scale_trace(iters: u64) -> Trace {
        let mut b = KernelBuilder::new("scale");
        let i = b.induction();
        let x = b.load_strided(&[Operand::Local(i)], 0, 8);
        let y = b.fp_mul(&[Operand::Local(x), Operand::Invariant(0)]);
        b.store_strided(&[Operand::Local(y), Operand::Local(i)], 0x1000, 8);
        expand(&b.build().unwrap(), iters)
    }

    #[test]
    fn every_memory_op_is_doubled() {
        let trace = scale_trace(20);
        let swsm = expand_swsm(&trace);
        let st = stream_stats(&swsm.insts);
        assert_eq!(st.load_requests, 40, "prefetches for loads and stores");
        assert_eq!(st.load_consumes, 20);
        assert_eq!(st.stores, 20);
        assert_eq!(swsm.stats.prefetches, 40);
        assert_eq!(swsm.stats.accesses, 40);
        assert_eq!(swsm.transactions, 40);
    }

    #[test]
    fn access_depends_on_its_prefetch() {
        let trace = scale_trace(5);
        let swsm = expand_swsm(&trace);
        for (pos, inst) in swsm.insts.iter().enumerate() {
            if inst.kind == ExecKind::LoadConsume {
                let prefetch = &swsm.insts[pos - 1];
                assert_eq!(prefetch.kind, ExecKind::LoadRequest);
                assert_eq!(prefetch.tag, inst.tag);
                assert!(inst.deps.contains(&Dep::local(pos - 1)));
            }
        }
    }

    #[test]
    fn consumers_depend_on_the_access_not_the_prefetch() {
        let trace = scale_trace(3);
        let swsm = expand_swsm(&trace);
        for inst in swsm.insts.iter() {
            if inst.kind == ExecKind::Arith && inst.op == OpKind::FpMul {
                // The multiply's only dependence must be a LoadConsume.
                assert_eq!(inst.deps.len(), 1);
                let producer = &swsm.insts[inst.deps[0].index()];
                assert_eq!(producer.kind, ExecKind::LoadConsume);
            }
        }
    }

    #[test]
    fn deps_point_backwards_and_are_local() {
        let trace = scale_trace(10);
        let swsm = expand_swsm(&trace);
        for (pos, inst) in swsm.insts.iter().enumerate() {
            for dep in &inst.deps {
                assert!(!dep.is_cross());
                assert!(dep.index() < pos);
            }
        }
    }

    #[test]
    fn expansion_ratio_is_one_plus_memory_fraction() {
        let trace = scale_trace(10);
        let memory_fraction = trace.stats().memory_fraction();
        let swsm = expand_swsm(&trace);
        assert!((swsm.stats.expansion_ratio() - (1.0 + memory_fraction)).abs() < 1e-9);
    }

    #[test]
    fn program_order_is_preserved() {
        let trace = scale_trace(10);
        let swsm = expand_swsm(&trace);
        for pair in swsm.insts.windows(2) {
            assert!(pair[0].trace_pos <= pair[1].trace_pos);
        }
    }

    #[test]
    fn empty_trace_lowers_to_empty_program() {
        let trace = scale_trace(0);
        let swsm = expand_swsm(&trace);
        assert!(swsm.insts.is_empty());
        assert_eq!(swsm.stats.expansion_ratio(), 0.0);
    }
}
