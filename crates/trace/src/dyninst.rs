//! Dynamic (architectural) instructions.

use dae_isa::{Address, OpKind, UnitClass};
use serde::{Deserialize, Serialize};

/// Identifier of a dynamic instruction: its position in program order within
/// a [`Trace`](crate::Trace).
pub type InstId = usize;

/// The role a dependence edge plays at its consumer.
///
/// The decoupled-machine partitioner needs to know whether a value feeds an
/// *address* (in which case its producer belongs to the access stream) or is
/// consumed as *data*.  Memory operations are the only instructions that
/// distinguish the two: every operand of a load is an address input, while a
/// store consumes the value it writes as data and everything else as address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DepRole {
    /// The value is used to form an effective address.
    Address,
    /// The value is consumed as ordinary data.
    Data,
}

/// A true data dependence of a dynamic instruction on an earlier one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DepEdge {
    /// The producing instruction (always earlier in program order).
    pub producer: InstId,
    /// How the consumer uses the value.
    pub role: DepRole,
}

impl DepEdge {
    /// An address-role dependence on `producer`.
    #[must_use]
    pub fn address(producer: InstId) -> Self {
        DepEdge {
            producer,
            role: DepRole::Address,
        }
    }

    /// A data-role dependence on `producer`.
    #[must_use]
    pub fn data(producer: InstId) -> Self {
        DepEdge {
            producer,
            role: DepRole::Data,
        }
    }
}

/// One dynamic instruction of the architectural trace.
///
/// The trace is the idealised program the paper simulates: only true data
/// dependences remain (renaming removed false dependences), there are no
/// branches, and every memory operation carries its effective address.  Each
/// instruction also carries the workload generator's intended unit class
/// (`unit_hint`), which the partitioner may use directly or cross-check
/// against its own classification.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DynInst {
    /// Program-order position.
    pub id: InstId,
    /// Operation kind.
    pub op: OpKind,
    /// The unit class the workload generator intended for this instruction.
    pub unit_hint: UnitClass,
    /// True data dependences on earlier instructions.
    pub deps: Vec<DepEdge>,
    /// Effective address for loads and stores.
    pub addr: Option<Address>,
    /// The kernel statement this instruction was expanded from.
    pub stmt: usize,
    /// The loop iteration this instruction belongs to.
    pub iteration: u64,
}

impl DynInst {
    /// Returns `true` if this is a load or store.
    #[must_use]
    pub fn is_memory(&self) -> bool {
        self.op.is_memory()
    }

    /// Iterates over the producers of this instruction's address-role
    /// dependences.
    pub fn address_deps(&self) -> impl Iterator<Item = InstId> + '_ {
        self.deps
            .iter()
            .filter(|d| d.role == DepRole::Address)
            .map(|d| d.producer)
    }

    /// Iterates over the producers of this instruction's data-role
    /// dependences.
    pub fn data_deps(&self) -> impl Iterator<Item = InstId> + '_ {
        self.deps
            .iter()
            .filter(|d| d.role == DepRole::Data)
            .map(|d| d.producer)
    }

    /// Iterates over all producers regardless of role.
    pub fn all_deps(&self) -> impl Iterator<Item = InstId> + '_ {
        self.deps.iter().map(|d| d.producer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(id: InstId, op: OpKind, deps: Vec<DepEdge>) -> DynInst {
        DynInst {
            id,
            op,
            unit_hint: UnitClass::Access,
            deps,
            addr: None,
            stmt: 0,
            iteration: 0,
        }
    }

    #[test]
    fn dep_role_filters() {
        let i = inst(
            3,
            OpKind::Store,
            vec![DepEdge::data(1), DepEdge::address(2), DepEdge::address(0)],
        );
        assert_eq!(i.address_deps().collect::<Vec<_>>(), vec![2, 0]);
        assert_eq!(i.data_deps().collect::<Vec<_>>(), vec![1]);
        assert_eq!(i.all_deps().count(), 3);
    }

    #[test]
    fn constructors_set_roles() {
        assert_eq!(DepEdge::address(5).role, DepRole::Address);
        assert_eq!(DepEdge::data(5).role, DepRole::Data);
        assert_eq!(DepEdge::data(5).producer, 5);
    }

    #[test]
    fn memory_predicate() {
        assert!(inst(0, OpKind::Load, vec![]).is_memory());
        assert!(inst(0, OpKind::Store, vec![]).is_memory());
        assert!(!inst(0, OpKind::FpAdd, vec![]).is_memory());
    }
}
