//! Structural content hashing of lowered instruction streams.
//!
//! The sweep-result cache keys entries by *what program the machine runs*,
//! not by which `Arc` happens to hold the lowering: two lowerings of the
//! same trace — in the same process or across a server restart — must
//! produce the same key so cached figures survive re-lowering and can be
//! persisted to disk.  [`TraceHash`] is that key component: a 128-bit
//! digest over a canonical word encoding of the lowered streams.
//!
//! The encoding is hand-rolled (no serde — the workspace's serde is a
//! vendored stub with no real serialization) and deliberately exhaustive
//! over everything the simulators read: per instruction the trace
//! position, operation kind, execution kind, every dependence edge with
//! its cross-unit flag, and the memory tag / effective address when
//! present.  Wakeup lists and per-stream statistics are *derived* from
//! the instruction streams deterministically at lowering time, so hashing
//! the streams covers them.  Stream boundaries and lengths are folded in
//! explicitly so concatenations cannot collide with splits.
//!
//! The mix is the same multiply-rotate fold used by the workspace's
//! `FxHasher` (`dae-mem`), run as two independently-seeded lanes to get
//! 128 bits; it is a fast structural fingerprint, not a cryptographic
//! commitment.  `dae-trace` sits below `dae-mem` in the crate graph, so
//! the constant is restated here rather than imported.

use std::fmt;

use crate::machine_inst::{ExecKind, MachineInst};
use dae_isa::OpKind;

/// The Fx multiply constant (shared with `dae-mem`'s `FxHasher`).
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Initial state of the second lane; any odd constant unequal to the
/// first lane's zero start decorrelates the two folds.
const LANE_B_INIT: u64 = 0x9e37_79b9_7f4a_7c15;

/// A 128-bit structural digest of a lowered program.
///
/// Equal hashes are produced by structurally identical lowerings
/// regardless of when or in which process they were computed; the cache
/// differential suite pins hash-equal ⇒ bit-for-bit-equal sweep results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceHash(u64, u64);

impl TraceHash {
    /// Reconstructs a hash from its two words (used by the on-disk cache
    /// store when reloading persisted records).
    #[must_use]
    pub fn from_words(hi: u64, lo: u64) -> Self {
        TraceHash(hi, lo)
    }

    /// The two words of the digest, in `(hi, lo)` order.
    #[must_use]
    pub fn words(self) -> (u64, u64) {
        (self.0, self.1)
    }
}

impl fmt::Display for TraceHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.0, self.1)
    }
}

/// Incremental canonical encoder producing a [`TraceHash`].
///
/// Callers fold in instruction streams with [`stream`](Self::stream) and
/// any extra scalar parameters with [`word`](Self::word), then call
/// [`finish`](Self::finish).  The order of calls is part of the encoding.
#[derive(Debug)]
pub struct ContentHasher {
    lane_a: u64,
    lane_b: u64,
}

impl Default for ContentHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// Stable ordinal for the operation kind (the enum's declaration order is
/// matched exactly; a new variant forces a compile error here).
fn op_ordinal(op: OpKind) -> u64 {
    match op {
        OpKind::IntAlu => 0,
        OpKind::FpAdd => 1,
        OpKind::FpMul => 2,
        OpKind::FpDiv => 3,
        OpKind::Load => 4,
        OpKind::Store => 5,
    }
}

/// Stable ordinal for the execution kind.
fn exec_ordinal(kind: ExecKind) -> u64 {
    match kind {
        ExecKind::Arith => 0,
        ExecKind::LoadRequest => 1,
        ExecKind::LoadConsume => 2,
        ExecKind::LoadBlocking => 3,
        ExecKind::StoreOp => 4,
        ExecKind::CopySend => 5,
    }
}

impl ContentHasher {
    /// Creates a fresh encoder.
    #[must_use]
    pub fn new() -> Self {
        ContentHasher {
            lane_a: 0,
            lane_b: LANE_B_INIT,
        }
    }

    /// Folds one canonical word into both lanes.
    pub fn word(&mut self, word: u64) {
        self.lane_a = (self.lane_a.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
        self.lane_b = (self.lane_b.rotate_left(9) ^ word).wrapping_mul(FX_SEED);
    }

    /// Folds an entire instruction stream: a length prefix followed by the
    /// full canonical encoding of each instruction.  Optional fields are
    /// encoded presence-first so an absent tag can never collide with a
    /// present one.
    pub fn stream(&mut self, insts: &[MachineInst]) {
        self.word(insts.len() as u64);
        for inst in insts {
            self.word(inst.trace_pos as u64);
            self.word(op_ordinal(inst.op));
            self.word(exec_ordinal(inst.kind));
            self.word(inst.deps.len() as u64);
            for dep in inst.deps.iter() {
                self.word(((dep.index() as u64) << 1) | u64::from(dep.is_cross()));
            }
            match inst.tag {
                Some(tag) => {
                    self.word(1);
                    self.word(u64::from(tag));
                }
                None => self.word(0),
            }
            match inst.addr {
                Some(addr) => {
                    self.word(1);
                    self.word(addr);
                }
                None => self.word(0),
            }
        }
    }

    /// Finalizes the digest.
    #[must_use]
    pub fn finish(mut self) -> TraceHash {
        // One closing round per lane so trailing zero words still perturb
        // the state relative to an early stop.
        self.word(FX_SEED);
        TraceHash(self.lane_a, self.lane_b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{expand, expand_swsm, partition, PartitionMode};
    use dae_isa::{KernelBuilder, Operand};

    fn sample_streams() -> (Vec<MachineInst>, Vec<MachineInst>, Vec<MachineInst>) {
        let mut b = KernelBuilder::new("content-hash");
        let i = b.induction();
        let x = b.load_strided(&[Operand::Local(i)], 0, 8);
        let y = b.fp_mul(&[Operand::Local(x), Operand::Invariant(0)]);
        b.store_strided(&[Operand::Local(y), Operand::Local(i)], 0x1000, 8);
        let trace = expand(&b.build().expect("kernel builds"), 40);
        let dm = partition(&trace, PartitionMode::Tagged);
        let swsm = expand_swsm(&trace);
        (dm.au.to_vec(), dm.du.to_vec(), swsm.insts.to_vec())
    }

    fn hash_of(streams: &[&[MachineInst]]) -> TraceHash {
        let mut h = ContentHasher::new();
        for s in streams {
            h.stream(s);
        }
        h.finish()
    }

    #[test]
    fn identical_streams_hash_identically() {
        let (au, du, scalar) = sample_streams();
        let a = hash_of(&[&au, &du, &scalar]);
        let b = hash_of(&[&au, &du, &scalar]);
        assert_eq!(a, b);
        assert_eq!(a.to_string().len(), 32);
    }

    #[test]
    fn relowering_the_same_trace_hashes_identically() {
        let (au1, du1, _) = sample_streams();
        let (au2, du2, _) = sample_streams();
        let a = hash_of(&[&au1, &du1]);
        let b = hash_of(&[&au2, &du2]);
        assert_eq!(a, b);
    }

    #[test]
    fn every_field_perturbs_the_hash() {
        let (au, du, _) = sample_streams();
        let base = hash_of(&[&au, &du]);
        let idx = au
            .iter()
            .position(|i| i.tag.is_some() && i.addr.is_some())
            .expect("tagged memory instruction exists");

        let mut m = au.clone();
        m[idx].trace_pos += 1;
        assert_ne!(hash_of(&[&m, &du]), base, "trace_pos");

        let mut m = au.clone();
        m[idx].op = if m[idx].op == OpKind::Load {
            OpKind::Store
        } else {
            OpKind::Load
        };
        assert_ne!(hash_of(&[&m, &du]), base, "op");

        let mut m = au.clone();
        m[idx].kind = ExecKind::Arith;
        assert_ne!(hash_of(&[&m, &du]), base, "kind");

        let mut m = au.clone();
        m[idx].tag = m[idx].tag.map(|t| t + 1);
        assert_ne!(hash_of(&[&m, &du]), base, "tag value");

        let mut m = au.clone();
        m[idx].tag = None;
        assert_ne!(hash_of(&[&m, &du]), base, "tag presence");

        let mut m = au.clone();
        m[idx].addr = m[idx].addr.map(|a| a ^ 8);
        assert_ne!(hash_of(&[&m, &du]), base, "addr");

        // Dropping the last instruction of a stream changes the digest
        // even though the prefix is identical.
        let m = au[..au.len() - 1].to_vec();
        assert_ne!(hash_of(&[&m, &du]), base, "stream length");
    }

    #[test]
    fn stream_boundaries_are_part_of_the_encoding() {
        let (au, du, _) = sample_streams();
        let split = hash_of(&[&au, &du]);
        let joined: Vec<MachineInst> = au.iter().chain(du.iter()).cloned().collect();
        assert_ne!(hash_of(&[&joined]), split);
        assert_ne!(hash_of(&[&du, &au]), split, "stream order matters");
    }

    #[test]
    fn extra_words_perturb_the_hash() {
        let (au, _, _) = sample_streams();
        let mut h = ContentHasher::new();
        h.stream(&au);
        let plain = h.finish();
        let mut h = ContentHasher::new();
        h.stream(&au);
        h.word(7);
        assert_ne!(h.finish(), plain);
    }
}
