//! The decoupled-machine partition: lowering a trace into AU and DU streams.

use crate::{classify, Dep, DepList, DepRole, ExecKind, MachineInst, MemTag, Trace, WakeupList};
use dae_isa::{OpKind, UnitClass};
use serde::{Deserialize, Serialize};
use smallvec::SmallVec;
use std::sync::Arc;

/// How the partitioner decides which unit an instruction belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PartitionMode {
    /// Use the workload generator's per-statement unit tags (the "static
    /// partition by the compiler" of the paper).
    #[default]
    Tagged,
    /// Ignore the tags and re-derive the partition from the dependence
    /// structure (the backward slice of addresses) — see
    /// [`classify`](crate::classify).
    Automatic,
}

/// Counters describing the structure of a partitioned program.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionStats {
    /// Architectural instructions in the source trace.
    pub trace_instructions: usize,
    /// Lowered instructions on the address unit.
    pub au_instructions: usize,
    /// Lowered instructions on the data unit.
    pub du_instructions: usize,
    /// Architectural loads.
    pub loads: usize,
    /// Loads whose value is consumed (also) by the address unit itself
    /// ("AU self loads" in the paper — index loads, pointer chasing).
    pub au_self_loads: usize,
    /// Loads whose value is consumed by the data unit (the common case the
    /// decoupled memory exists for).
    pub du_consumed_loads: usize,
    /// Architectural stores.
    pub stores: usize,
    /// Copy instructions sending a value from the AU to the DU.
    pub copies_au_to_du: usize,
    /// Copy instructions sending a value from the DU to the AU.  Each one is
    /// a *loss-of-decoupling* event: the address unit must wait for compute
    /// results before it can continue prefetching.
    pub copies_du_to_au: usize,
}

impl PartitionStats {
    /// Total cross-unit copy instructions.
    #[must_use]
    pub fn total_copies(&self) -> usize {
        self.copies_au_to_du + self.copies_du_to_au
    }

    /// Loss-of-decoupling events per architectural load (a measure of how
    /// badly a program decouples; 0 for perfectly decoupled code).
    #[must_use]
    pub fn loss_of_decoupling_rate(&self) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            self.copies_du_to_au as f64 / self.loads as f64
        }
    }

    /// Ratio of lowered to architectural instructions (the code expansion
    /// caused by the request/consume split and the copies).
    #[must_use]
    pub fn expansion_ratio(&self) -> f64 {
        if self.trace_instructions == 0 {
            0.0
        } else {
            (self.au_instructions + self.du_instructions) as f64 / self.trace_instructions as f64
        }
    }
}

/// A trace lowered onto the two units of the access decoupled machine.
///
/// The streams and their wakeup lists are reference counted so that sweep
/// drivers can lower a trace once and share the result across every
/// (window, memory-differential) simulation point without re-partitioning
/// or deep-copying per run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecoupledProgram {
    /// The address-unit instruction stream, in program order.
    pub au: Arc<Vec<MachineInst>>,
    /// The data-unit instruction stream, in program order.
    pub du: Arc<Vec<MachineInst>>,
    /// Producer → same-stream consumers for the AU stream (the event-driven
    /// scheduler's wakeup lists, built once per partition).
    pub au_wakeups: Arc<WakeupList>,
    /// Producer → same-stream consumers for the DU stream.
    pub du_wakeups: Arc<WakeupList>,
    /// AU producer index → DU instructions waiting on it through a
    /// cross ([`Dep::cross`]) edge.
    pub cross_to_du: Arc<WakeupList>,
    /// DU producer index → AU instructions waiting on it.
    pub cross_to_au: Arc<WakeupList>,
    /// Structural statistics gathered during partitioning.
    pub stats: PartitionStats,
    /// The number of memory transactions (tags) issued by the AU.
    pub transactions: u32,
}

impl DecoupledProgram {
    /// The stream for `unit`.
    #[must_use]
    pub fn stream(&self, unit: UnitClass) -> &[MachineInst] {
        match unit {
            UnitClass::Access => &self.au,
            UnitClass::Compute => &self.du,
        }
    }
}

/// Where the value of an architectural instruction lives after lowering.
#[derive(Clone, Copy, Default)]
struct ValueSites {
    /// Index (in the AU stream) of a producer of the value, if any.
    au: Option<usize>,
    /// Index (in the DU stream) of a producer of the value, if any.
    du: Option<usize>,
    /// Index (in the *producing* unit's stream) of a copy instruction that
    /// already forwards the value to the other unit.
    copy_to_au: Option<usize>,
    /// See `copy_to_au`, in the other direction.
    copy_to_du: Option<usize>,
}

/// Splits `trace` into AU and DU streams for the decoupled machine.
///
/// Lowering rules (section 2 of the paper):
///
/// * a **load** becomes a `LoadRequest` on the AU (carrying the address
///   dependences) plus a `LoadConsume` on every unit that uses the value —
///   usually the DU (the decoupled memory buffers the value until the DU
///   asks for it), but also the AU itself for *self loads* such as index
///   loads;
/// * a **store** becomes a `StoreOp` on the AU for the address and a
///   `StoreOp` on the DU for the data;
/// * arithmetic stays on its assigned unit;
/// * whenever a value produced on one unit is needed on the other, a
///   `CopySend` is emitted on the producing unit and the consumer carries a
///   cross-unit dependence on it.  DU→AU copies are counted as
///   loss-of-decoupling events.
///
/// # Example
///
/// ```
/// use dae_isa::{KernelBuilder, Operand};
/// use dae_trace::{expand, partition, PartitionMode};
///
/// let mut b = KernelBuilder::new("axpy");
/// let i = b.induction();
/// let x = b.load_strided(&[Operand::Local(i)], 0, 8);
/// let y = b.fp_mul(&[Operand::Local(x), Operand::Invariant(0)]);
/// b.store_strided(&[Operand::Local(y), Operand::Local(i)], 0x1000, 8);
/// let trace = expand(&b.build()?, 10);
///
/// let dm = partition(&trace, PartitionMode::Tagged);
/// assert_eq!(dm.stats.loads, 10);
/// assert_eq!(dm.stats.du_consumed_loads, 10);
/// assert_eq!(dm.stats.copies_du_to_au, 0); // decouples perfectly
/// # Ok::<(), dae_isa::KernelError>(())
/// ```
#[must_use]
pub fn partition(trace: &Trace, mode: PartitionMode) -> DecoupledProgram {
    let assignment: Vec<UnitClass> = match mode {
        PartitionMode::Tagged => trace
            .iter()
            .map(|inst| {
                // Memory operations always live on the AU regardless of tag.
                if inst.op.is_memory() {
                    UnitClass::Access
                } else {
                    inst.unit_hint
                }
            })
            .collect(),
        PartitionMode::Automatic => classify(trace),
    };

    // For every architectural instruction, the set of units that will need
    // its *value*.  (Address-role consumers need it on the AU; data-role
    // consumers need it wherever the consumer runs, except stores whose data
    // side always runs on the DU.)
    let mut needed_on_au = vec![false; trace.len()];
    let mut needed_on_du = vec![false; trace.len()];
    for inst in trace.iter() {
        for dep in &inst.deps {
            let target = consumer_unit(inst.op, dep.role, assignment[inst.id]);
            match target {
                UnitClass::Access => needed_on_au[dep.producer] = true,
                UnitClass::Compute => needed_on_du[dep.producer] = true,
            }
        }
    }

    let mut au: Vec<MachineInst> = Vec::with_capacity(trace.len());
    let mut du: Vec<MachineInst> = Vec::with_capacity(trace.len());
    let mut sites: Vec<ValueSites> = vec![ValueSites::default(); trace.len()];
    let mut stats = PartitionStats {
        trace_instructions: trace.len(),
        ..PartitionStats::default()
    };
    let mut next_tag: MemTag = 0;

    for inst in trace.iter() {
        match inst.op {
            OpKind::Load => {
                stats.loads += 1;
                let tag = next_tag;
                next_tag += 1;
                // Address request on the AU.
                let addr_deps = resolve_deps(
                    inst,
                    DepRole::Address,
                    UnitClass::Access,
                    &mut au,
                    &mut du,
                    &mut sites,
                    &mut stats,
                );
                let request_idx = au.len();
                au.push(MachineInst::memory(
                    inst.id,
                    OpKind::Load,
                    ExecKind::LoadRequest,
                    addr_deps,
                    tag,
                    inst.addr,
                ));
                // Data consumes on every unit that needs the value.
                if needed_on_du[inst.id] {
                    stats.du_consumed_loads += 1;
                    let idx = du.len();
                    let consume_deps = DepList::one(Dep::cross(request_idx));
                    du.push(MachineInst::memory(
                        inst.id,
                        OpKind::Load,
                        ExecKind::LoadConsume,
                        consume_deps,
                        tag,
                        inst.addr,
                    ));
                    sites[inst.id].du = Some(idx);
                }
                if needed_on_au[inst.id] {
                    stats.au_self_loads += 1;
                    let idx = au.len();
                    let consume_deps = DepList::one(Dep::local(request_idx));
                    au.push(MachineInst::memory(
                        inst.id,
                        OpKind::Load,
                        ExecKind::LoadConsume,
                        consume_deps,
                        tag,
                        inst.addr,
                    ));
                    sites[inst.id].au = Some(idx);
                }
            }
            OpKind::Store => {
                stats.stores += 1;
                let tag = next_tag;
                next_tag += 1;
                let addr_deps = resolve_deps(
                    inst,
                    DepRole::Address,
                    UnitClass::Access,
                    &mut au,
                    &mut du,
                    &mut sites,
                    &mut stats,
                );
                au.push(MachineInst::memory(
                    inst.id,
                    OpKind::Store,
                    ExecKind::StoreOp,
                    addr_deps,
                    tag,
                    inst.addr,
                ));
                let data_deps = resolve_deps(
                    inst,
                    DepRole::Data,
                    UnitClass::Compute,
                    &mut au,
                    &mut du,
                    &mut sites,
                    &mut stats,
                );
                du.push(MachineInst::memory(
                    inst.id,
                    OpKind::Store,
                    ExecKind::StoreOp,
                    data_deps,
                    tag,
                    inst.addr,
                ));
            }
            _ => {
                let unit = assignment[inst.id];
                let deps = resolve_all_deps(inst, unit, &mut au, &mut du, &mut sites, &mut stats);
                let (stream, site) = match unit {
                    UnitClass::Access => (&mut au, &mut sites[inst.id].au),
                    UnitClass::Compute => (&mut du, &mut sites[inst.id].du),
                };
                *site = Some(stream.len());
                stream.push(MachineInst::arith(inst.id, inst.op, deps));
            }
        }
    }

    stats.au_instructions = au.len();
    stats.du_instructions = du.len();

    let au_wakeups = Arc::new(WakeupList::local(&au));
    let du_wakeups = Arc::new(WakeupList::local(&du));
    let cross_to_du = Arc::new(WakeupList::cross(&du, au.len()));
    let cross_to_au = Arc::new(WakeupList::cross(&au, du.len()));

    DecoupledProgram {
        au: Arc::new(au),
        du: Arc::new(du),
        au_wakeups,
        du_wakeups,
        cross_to_du,
        cross_to_au,
        stats,
        transactions: next_tag,
    }
}

/// The unit on which a value consumed by `(consumer_op, role)` is needed.
fn consumer_unit(consumer_op: OpKind, role: DepRole, consumer_unit: UnitClass) -> UnitClass {
    match consumer_op {
        // All load operands form the address: needed on the AU.
        OpKind::Load => UnitClass::Access,
        // Store addresses are formed on the AU, store data is delivered by
        // the DU.
        OpKind::Store => match role {
            DepRole::Address => UnitClass::Access,
            DepRole::Data => UnitClass::Compute,
        },
        // Everything else consumes the value wherever it executes.
        _ => consumer_unit,
    }
}

/// Resolves the dependences of `inst` with the given role so that they can be
/// attached to a lowered instruction running on `target`.
fn resolve_deps(
    inst: &crate::DynInst,
    role: DepRole,
    target: UnitClass,
    au: &mut Vec<MachineInst>,
    du: &mut Vec<MachineInst>,
    sites: &mut [ValueSites],
    stats: &mut PartitionStats,
) -> DepList {
    let producers: SmallVec<[usize; 2]> = inst
        .deps
        .iter()
        .filter(|d| d.role == role)
        .map(|d| d.producer)
        .collect();
    producers
        .iter()
        .map(|&p| resolve_value(p, target, au, du, sites, stats))
        .collect()
}

/// Resolves every dependence of `inst` (both roles) for a consumer on
/// `target`.
fn resolve_all_deps(
    inst: &crate::DynInst,
    target: UnitClass,
    au: &mut Vec<MachineInst>,
    du: &mut Vec<MachineInst>,
    sites: &mut [ValueSites],
    stats: &mut PartitionStats,
) -> DepList {
    let producers: SmallVec<[usize; 2]> = inst.deps.iter().map(|d| d.producer).collect();
    producers
        .iter()
        .map(|&p| resolve_value(p, target, au, du, sites, stats))
        .collect()
}

/// Returns a dependence usable by a consumer on `target` for the value of
/// architectural instruction `producer`, inserting a cross-unit copy if the
/// value only exists on the other unit.
fn resolve_value(
    producer: usize,
    target: UnitClass,
    au: &mut Vec<MachineInst>,
    du: &mut Vec<MachineInst>,
    sites: &mut [ValueSites],
    stats: &mut PartitionStats,
) -> Dep {
    let site = sites[producer];
    match target {
        UnitClass::Access => {
            if let Some(idx) = site.au {
                return Dep::local(idx);
            }
            if let Some(copy_idx) = site.copy_to_au {
                return Dep::cross(copy_idx);
            }
            let du_idx = site
                .du
                .expect("value must exist on at least one unit before it is consumed");
            // Emit a copy on the DU (the producing unit): a loss of
            // decoupling, since the AU now waits on compute results.
            let copy_idx = du.len();
            let copy_deps = DepList::one(Dep::local(du_idx));
            du.push(MachineInst::copy(du[du_idx].trace_pos, copy_deps));
            sites[producer].copy_to_au = Some(copy_idx);
            stats.copies_du_to_au += 1;
            Dep::cross(copy_idx)
        }
        UnitClass::Compute => {
            if let Some(idx) = site.du {
                return Dep::local(idx);
            }
            if let Some(copy_idx) = site.copy_to_du {
                return Dep::cross(copy_idx);
            }
            let au_idx = site
                .au
                .expect("value must exist on at least one unit before it is consumed");
            let copy_idx = au.len();
            let copy_deps = DepList::one(Dep::local(au_idx));
            au.push(MachineInst::copy(au[au_idx].trace_pos, copy_deps));
            sites[producer].copy_to_du = Some(copy_idx);
            stats.copies_au_to_du += 1;
            Dep::cross(copy_idx)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{expand, stream_stats};
    use dae_isa::{KernelBuilder, Operand};

    fn axpy_trace(iters: u64) -> Trace {
        let mut b = KernelBuilder::new("axpy");
        let i = b.induction();
        let x = b.load_strided(&[Operand::Local(i)], 0, 8);
        let y = b.load_strided(&[Operand::Local(i)], 0x10_000, 8);
        let ax = b.fp_mul(&[Operand::Local(x), Operand::Invariant(0)]);
        let s = b.fp_add(&[Operand::Local(ax), Operand::Local(y)]);
        b.store_strided(&[Operand::Local(s), Operand::Local(i)], 0x10_000, 8);
        expand(&b.build().unwrap(), iters)
    }

    #[test]
    fn every_load_becomes_request_plus_consume() {
        let trace = axpy_trace(20);
        let dm = partition(&trace, PartitionMode::Tagged);
        let au = stream_stats(&dm.au);
        let du = stream_stats(&dm.du);
        assert_eq!(au.load_requests, 40);
        assert_eq!(du.load_consumes, 40);
        assert_eq!(au.load_consumes, 0, "no AU self loads in axpy");
        assert_eq!(dm.stats.loads, 40);
        assert_eq!(dm.stats.du_consumed_loads, 40);
        assert_eq!(dm.stats.au_self_loads, 0);
    }

    #[test]
    fn stores_appear_on_both_units() {
        let trace = axpy_trace(20);
        let dm = partition(&trace, PartitionMode::Tagged);
        let au = stream_stats(&dm.au);
        let du = stream_stats(&dm.du);
        assert_eq!(au.stores, 20);
        assert_eq!(du.stores, 20);
        assert_eq!(dm.stats.stores, 20);
    }

    #[test]
    fn well_decoupled_code_has_no_du_to_au_copies() {
        let trace = axpy_trace(50);
        let dm = partition(&trace, PartitionMode::Tagged);
        assert_eq!(dm.stats.copies_du_to_au, 0);
        assert_eq!(dm.stats.loss_of_decoupling_rate(), 0.0);
    }

    #[test]
    fn data_dependent_addresses_cause_loss_of_decoupling() {
        // index = int(fp value); load a[index]   — the DU must feed the AU.
        let mut b = KernelBuilder::new("lod");
        let i = b.induction();
        let x = b.load_strided(&[Operand::Local(i)], 0, 8);
        let f = b.fp_mul(&[Operand::Local(x), Operand::Invariant(0)]);
        let idx = b.int_on(dae_isa::UnitClass::Compute, &[Operand::Local(f)]);
        let g = b.load_indirect(&[Operand::Local(idx)], 0x100_000, 1 << 14, 0);
        b.fp_add(&[Operand::Local(g)]);
        let trace = expand(&b.build().unwrap(), 10);
        let dm = partition(&trace, PartitionMode::Tagged);
        assert_eq!(dm.stats.copies_du_to_au, 10);
        assert!(dm.stats.loss_of_decoupling_rate() > 0.0);
    }

    #[test]
    fn index_loads_become_au_self_loads() {
        // load idx[i]; load a[idx]  — the index load's value is needed on the
        // AU itself.
        let mut b = KernelBuilder::new("gather");
        let i = b.induction();
        let idx = b.load_strided(&[Operand::Local(i)], 0, 8);
        let g = b.load_indirect(&[Operand::Local(idx)], 0x100_000, 1 << 14, 0);
        b.fp_add(&[Operand::Local(g)]);
        let trace = expand(&b.build().unwrap(), 25);
        let dm = partition(&trace, PartitionMode::Tagged);
        assert_eq!(dm.stats.au_self_loads, 25);
        assert_eq!(dm.stats.du_consumed_loads, 25);
        assert_eq!(dm.stats.copies_du_to_au, 0);
    }

    #[test]
    fn au_to_du_copies_are_shared_between_consumers() {
        // An integer value computed on the AU consumed by two DU statements:
        // only one copy should be emitted per dynamic value.
        let mut b = KernelBuilder::new("shared-copy");
        let i = b.induction();
        let v = b.int(&[Operand::Local(i)]);
        let x = b.load_strided(&[Operand::Local(i)], 0, 8);
        let f1 = b.fp_add(&[Operand::Local(x), Operand::Local(v)]);
        let _f2 = b.fp_mul(&[Operand::Local(x), Operand::Local(v)]);
        b.store_strided(&[Operand::Local(f1), Operand::Local(i)], 0x100, 8);
        let trace = expand(&b.build().unwrap(), 10);
        let dm = partition(&trace, PartitionMode::Tagged);
        assert_eq!(dm.stats.copies_au_to_du, 10, "one copy per iteration");
    }

    #[test]
    fn cross_deps_reference_valid_indices() {
        let trace = axpy_trace(30);
        let dm = partition(&trace, PartitionMode::Tagged);
        for (unit, other) in [(&dm.au, &dm.du), (&dm.du, &dm.au)] {
            for inst in unit.iter() {
                for dep in &inst.deps {
                    let bound = if dep.is_cross() {
                        other.len()
                    } else {
                        unit.len()
                    };
                    assert!(dep.index() < bound);
                }
            }
        }
    }

    #[test]
    fn local_deps_point_backwards() {
        let trace = axpy_trace(30);
        let dm = partition(&trace, PartitionMode::Tagged);
        for stream in [&dm.au, &dm.du] {
            for (pos, inst) in stream.iter().enumerate() {
                for dep in &inst.deps {
                    if !dep.is_cross() {
                        assert!(dep.index() < pos, "local dep must be earlier in the stream");
                    }
                }
            }
        }
    }

    #[test]
    fn trace_positions_are_monotone_per_stream() {
        let trace = axpy_trace(15);
        let dm = partition(&trace, PartitionMode::Tagged);
        for stream in [&dm.au, &dm.du] {
            for pair in stream.windows(2) {
                assert!(pair[0].trace_pos <= pair[1].trace_pos);
            }
        }
    }

    #[test]
    fn automatic_and_tagged_modes_agree_on_clean_kernels() {
        let trace = axpy_trace(10);
        let tagged = partition(&trace, PartitionMode::Tagged);
        let auto = partition(&trace, PartitionMode::Automatic);
        assert_eq!(tagged.stats, auto.stats);
        assert_eq!(tagged.au.len(), auto.au.len());
        assert_eq!(tagged.du.len(), auto.du.len());
    }

    #[test]
    fn expansion_ratio_reflects_split_memory_ops() {
        let trace = axpy_trace(10);
        let dm = partition(&trace, PartitionMode::Tagged);
        // 6 architectural instructions per iteration become 9 lowered ones
        // (2 loads and 1 store each split in two).
        assert!((dm.stats.expansion_ratio() - 9.0 / 6.0).abs() < 1e-9);
        assert_eq!(dm.transactions, 30);
    }

    #[test]
    fn stream_accessor_matches_fields() {
        let trace = axpy_trace(5);
        let dm = partition(&trace, PartitionMode::Tagged);
        assert_eq!(dm.stream(UnitClass::Access).len(), dm.au.len());
        assert_eq!(dm.stream(UnitClass::Compute).len(), dm.du.len());
    }
}
