//! Machine configurations.

use dae_isa::{Cycle, LatencyModel};
use dae_mem::{DecoupledMemoryConfig, PrefetchBufferConfig};
use dae_ooo::UnitConfig;
use dae_trace::PartitionMode;
use serde::{Deserialize, Serialize};

/// Issue widths used throughout the paper: a combined issue width of 9,
/// split 4/5 between the AU and DU of the decoupled machine (the paper's
/// optimal configuration; the exact split is configurable).
pub const PAPER_AU_ISSUE_WIDTH: usize = 4;
/// The DU's share of the combined issue width of 9.
pub const PAPER_DU_ISSUE_WIDTH: usize = 5;
/// The SWSM's issue width (the full combined width is available every
/// cycle).
pub const PAPER_SWSM_ISSUE_WIDTH: usize = 9;

/// Configuration of the access decoupled machine (DM).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DmConfig {
    /// The Address Unit (access stream) pipeline.
    pub au: UnitConfig,
    /// The Data Unit (compute stream) pipeline.
    pub du: UnitConfig,
    /// The memory differential (extra cycles per memory access).
    pub memory_differential: Cycle,
    /// Functional-unit latencies.
    pub latencies: LatencyModel,
    /// Extra cycles a value takes to cross between the units' register
    /// files.
    pub transfer_latency: Cycle,
    /// Decoupled-memory behaviour (capacity, bypass).
    pub decoupled_memory: DecoupledMemoryConfig,
    /// How the access / compute partition is derived.
    pub partition_mode: PartitionMode,
}

impl DmConfig {
    /// The paper's configuration: each unit gets its own `window_size`-entry
    /// window, the AU issues 4 and the DU 5 instructions per cycle, and the
    /// decoupled memory is unlimited.
    #[must_use]
    pub fn paper(window_size: usize, memory_differential: Cycle) -> Self {
        DmConfig {
            au: UnitConfig::new(window_size, PAPER_AU_ISSUE_WIDTH),
            du: UnitConfig::new(window_size, PAPER_DU_ISSUE_WIDTH),
            memory_differential,
            latencies: LatencyModel::paper_default(),
            transfer_latency: 1,
            decoupled_memory: DecoupledMemoryConfig::default(),
            partition_mode: PartitionMode::Tagged,
        }
    }

    /// The paper's configuration with unlimited windows on both units.
    #[must_use]
    pub fn paper_unlimited(memory_differential: Cycle) -> Self {
        DmConfig {
            au: UnitConfig::unlimited_window(PAPER_AU_ISSUE_WIDTH),
            du: UnitConfig::unlimited_window(PAPER_DU_ISSUE_WIDTH),
            ..DmConfig::paper(32, memory_differential)
        }
    }

    /// Returns this configuration with a different per-unit window size.
    #[must_use]
    pub fn with_window(mut self, window_size: usize) -> Self {
        self.au.window_size = Some(window_size);
        self.du.window_size = Some(window_size);
        self
    }

    /// Returns this configuration with a different memory differential.
    #[must_use]
    pub fn with_memory_differential(mut self, memory_differential: Cycle) -> Self {
        self.memory_differential = memory_differential;
        self
    }

    /// Validates both unit configurations.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid parameter.
    pub fn validate(&self) -> Result<(), String> {
        self.au.validate().map_err(|e| format!("AU: {e}"))?;
        self.du.validate().map_err(|e| format!("DU: {e}"))?;
        self.latencies
            .validate()
            .map_err(|op| format!("zero latency for {op}"))?;
        Ok(())
    }
}

impl Default for DmConfig {
    fn default() -> Self {
        DmConfig::paper(32, 60)
    }
}

/// Configuration of the single-window superscalar machine (SWSM).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwsmConfig {
    /// The single out-of-order pipeline.
    pub unit: UnitConfig,
    /// The memory differential (extra cycles per memory access).
    pub memory_differential: Cycle,
    /// Functional-unit latencies.
    pub latencies: LatencyModel,
    /// Prefetch-buffer behaviour (capacity).
    pub prefetch_buffer: PrefetchBufferConfig,
}

impl SwsmConfig {
    /// The paper's configuration: a single `window_size`-entry window with
    /// the full issue width of 9 and an unbounded prefetch buffer.
    #[must_use]
    pub fn paper(window_size: usize, memory_differential: Cycle) -> Self {
        SwsmConfig {
            unit: UnitConfig::new(window_size, PAPER_SWSM_ISSUE_WIDTH),
            memory_differential,
            latencies: LatencyModel::paper_default(),
            prefetch_buffer: PrefetchBufferConfig::default(),
        }
    }

    /// The paper's configuration with an unlimited window.
    #[must_use]
    pub fn paper_unlimited(memory_differential: Cycle) -> Self {
        SwsmConfig {
            unit: UnitConfig::unlimited_window(PAPER_SWSM_ISSUE_WIDTH),
            ..SwsmConfig::paper(32, memory_differential)
        }
    }

    /// Returns this configuration with a different window size.
    #[must_use]
    pub fn with_window(mut self, window_size: usize) -> Self {
        self.unit.window_size = Some(window_size);
        self
    }

    /// Returns this configuration with a different memory differential.
    #[must_use]
    pub fn with_memory_differential(mut self, memory_differential: Cycle) -> Self {
        self.memory_differential = memory_differential;
        self
    }

    /// Validates the unit configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid parameter.
    pub fn validate(&self) -> Result<(), String> {
        self.unit.validate()?;
        self.latencies
            .validate()
            .map_err(|op| format!("zero latency for {op}"))?;
        Ok(())
    }
}

impl Default for SwsmConfig {
    fn default() -> Self {
        SwsmConfig::paper(32, 60)
    }
}

/// Configuration of the scalar reference machine used as the speedup
/// denominator (1-wide, in-order, window of one, no prefetching).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalarConfig {
    /// The memory differential (extra cycles per memory access).
    pub memory_differential: Cycle,
    /// Functional-unit latencies.
    pub latencies: LatencyModel,
}

impl ScalarConfig {
    /// A scalar reference with the given memory differential and the paper's
    /// latencies.
    #[must_use]
    pub fn new(memory_differential: Cycle) -> Self {
        ScalarConfig {
            memory_differential,
            latencies: LatencyModel::paper_default(),
        }
    }
}

impl Default for ScalarConfig {
    fn default() -> Self {
        ScalarConfig::new(60)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_widths_sum_to_the_combined_issue_width() {
        assert_eq!(
            PAPER_AU_ISSUE_WIDTH + PAPER_DU_ISSUE_WIDTH,
            PAPER_SWSM_ISSUE_WIDTH
        );
    }

    #[test]
    fn dm_builders_set_windows_and_md() {
        let cfg = DmConfig::paper(16, 30)
            .with_window(64)
            .with_memory_differential(10);
        assert_eq!(cfg.au.window_size, Some(64));
        assert_eq!(cfg.du.window_size, Some(64));
        assert_eq!(cfg.memory_differential, 10);
        assert!(cfg.validate().is_ok());
        let unlimited = DmConfig::paper_unlimited(60);
        assert_eq!(unlimited.au.window_size, None);
        assert_eq!(unlimited.du.window_size, None);
    }

    #[test]
    fn swsm_builders_set_windows_and_md() {
        let cfg = SwsmConfig::paper(16, 30)
            .with_window(128)
            .with_memory_differential(0);
        assert_eq!(cfg.unit.window_size, Some(128));
        assert_eq!(cfg.unit.issue_width, 9);
        assert_eq!(cfg.memory_differential, 0);
        assert!(cfg.validate().is_ok());
        assert_eq!(SwsmConfig::paper_unlimited(0).unit.window_size, None);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let mut cfg = DmConfig::paper(16, 60);
        cfg.au.issue_width = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = SwsmConfig::paper(16, 60);
        cfg.unit.window_size = Some(0);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn defaults_use_the_paper_parameters() {
        let dm = DmConfig::default();
        assert_eq!(dm.memory_differential, 60);
        assert_eq!(dm.au.issue_width, PAPER_AU_ISSUE_WIDTH);
        assert_eq!(dm.du.issue_width, PAPER_DU_ISSUE_WIDTH);
        assert_eq!(dm.transfer_latency, 1);
        let swsm = SwsmConfig::default();
        assert_eq!(swsm.unit.issue_width, PAPER_SWSM_ISSUE_WIDTH);
        let scalar = ScalarConfig::default();
        assert_eq!(scalar.memory_differential, 60);
    }
}
