//! Cooperative mid-simulation abort.
//!
//! A simulation point can run for many milliseconds; cancellation that only
//! skips *pending* points leaves the in-flight one burning a worker until it
//! finishes.  This module threads a shared abort flag into the run engine
//! without touching any machine API: the caller installs an [`AbortToken`]
//! in thread-local storage around the run ([`with_abort_token`]), the engine
//! reads the flag once at loop entry and polls it every
//! [`ABORT_POLL_INTERVAL`] iterations.  When the flag is set the engine
//! unwinds with an [`AbortedSimulation`] payload — callers that installed a
//! token are expected to `catch_unwind` and downcast to tell a cooperative
//! abort apart from a genuine panic.
//!
//! The unwind travels through [`std::panic::resume_unwind`], which skips the
//! panic hook: an abort is a normal control transfer, not an error worth a
//! backtrace on stderr.
//!
//! Runs with no installed token pay one pointer-null check per engine
//! iteration and never unwind.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// How many engine loop iterations pass between abort-flag polls.
///
/// An iteration advances the clock by at least one cycle (usually many, via
/// time skips), so 512 iterations bound the abort latency to well under a
/// millisecond of wall time while keeping the hot loop's common case to a
/// single predictable branch.
pub const ABORT_POLL_INTERVAL: u32 = 512;

/// A shared flag that requests cooperative abort of any simulation run with
/// this token installed (see [`with_abort_token`]).
///
/// Cloning shares the flag; aborting through any clone aborts them all.
#[derive(Clone, Debug, Default)]
pub struct AbortToken {
    flag: Arc<AtomicBool>,
}

impl AbortToken {
    /// A fresh, unsignalled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an existing shared flag (lets a higher layer reuse one atomic
    /// for both "skip pending points" and "abort the running point").
    pub fn from_flag(flag: Arc<AtomicBool>) -> Self {
        Self { flag }
    }

    /// Requests abort: every simulation running under this token unwinds
    /// with [`AbortedSimulation`] at its next poll.
    pub fn abort(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether abort has been requested.
    pub fn is_aborted(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// The panic payload carried by a cooperative abort.  Catch the unwind and
/// downcast to this type to distinguish an abort from a real panic.
#[derive(Debug)]
pub struct AbortedSimulation;

thread_local! {
    static CURRENT: Cell<Option<Arc<AtomicBool>>> = const { Cell::new(None) };
}

/// Runs `f` with `token` installed as this thread's abort token; any engine
/// loop entered inside `f` polls it.  The previous token (if any) is
/// restored afterwards, including when `f` unwinds — which is exactly what
/// an abort does.
pub fn with_abort_token<R>(token: &AbortToken, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<AtomicBool>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT.with(|c| c.set(self.0.take()));
        }
    }
    let _restore = Restore(CURRENT.with(|c| c.replace(Some(Arc::clone(&token.flag)))));
    f()
}

/// The engine-side poller: captures the thread's installed token (if any)
/// once at run start, then [`poll`](AbortChecker::poll)s it cheaply from the
/// run loop.
pub(crate) struct AbortChecker {
    flag: Option<Arc<AtomicBool>>,
    countdown: u32,
}

impl AbortChecker {
    /// Snapshots the thread-local token at loop entry.  The first poll
    /// fires on the very first loop iteration (a token that is already set
    /// when the run starts aborts before any simulation work); subsequent
    /// polls are [`ABORT_POLL_INTERVAL`] iterations apart.
    pub(crate) fn install() -> Self {
        let flag = CURRENT.with(|c| {
            let current = c.take();
            let copy = current.clone();
            c.set(current);
            copy
        });
        Self { flag, countdown: 1 }
    }

    /// One loop iteration's worth of abort accounting.  With no installed
    /// token this is a single branch; with one, the atomic is read every
    /// [`ABORT_POLL_INTERVAL`] calls and a set flag unwinds with
    /// [`AbortedSimulation`].
    #[inline]
    pub(crate) fn poll(&mut self) {
        let Some(flag) = &self.flag else { return };
        self.countdown -= 1;
        if self.countdown == 0 {
            self.countdown = ABORT_POLL_INTERVAL;
            if flag.load(Ordering::Relaxed) {
                std::panic::resume_unwind(Box::new(AbortedSimulation));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn tokens_share_their_flag_across_clones() {
        let token = AbortToken::new();
        let peer = token.clone();
        assert!(!peer.is_aborted());
        token.abort();
        assert!(peer.is_aborted());
    }

    #[test]
    fn the_installed_token_is_restored_after_an_unwind() {
        let outer = AbortToken::new();
        with_abort_token(&outer, || {
            let inner = AbortToken::new();
            inner.abort();
            let hit = catch_unwind(AssertUnwindSafe(|| {
                with_abort_token(&inner, || {
                    let mut checker = AbortChecker::install();
                    for _ in 0..=ABORT_POLL_INTERVAL {
                        checker.poll();
                    }
                })
            }));
            let payload = hit.expect_err("a set token must unwind at the poll");
            assert!(payload.downcast_ref::<AbortedSimulation>().is_some());
            // The outer (unset) token is back: a full poll interval passes
            // without unwinding.
            let mut checker = AbortChecker::install();
            for _ in 0..=ABORT_POLL_INTERVAL {
                checker.poll();
            }
        });
    }

    #[test]
    fn polling_without_a_token_never_unwinds() {
        let mut checker = AbortChecker::install();
        for _ in 0..(4 * ABORT_POLL_INTERVAL) {
            checker.poll();
        }
    }
}
