//! The scalar reference machine (the speedup denominator).

use crate::{ExecutionSummary, ScalarConfig, ScalarResult};
use dae_isa::Cycle;
use dae_mem::FixedLatencyMemory;
use dae_ooo::{ExecContext, NaiveUnitSim, UnitConfig, UnitSim};
use dae_trace::{lower_scalar, ExecKind, MachineInst, ScalarProgram, Trace};

/// The scalar reference: a single-issue, in-order machine with a one-entry
/// window and no prefetching, so every load exposes the full memory
/// differential.
///
/// The paper plots "speedup" without stating the baseline (it lives in the
/// companion technical report); this reproduction uses the scalar reference
/// at the *same* memory differential as the machine under test, which leaves
/// every comparative claim between the DM and the SWSM unchanged (see
/// DESIGN.md).
///
/// The run loop time-skips through every blocking-load stall (a 60-cycle
/// memory wait is one loop iteration), which matters because sweeps
/// simulate this machine for every (program, MD) point.
/// [`ScalarReference::run_reference`] keeps the cycle-by-cycle naive loop.
///
/// # Example
///
/// ```
/// use dae_isa::{KernelBuilder, Operand};
/// use dae_machines::{ScalarConfig, ScalarReference};
/// use dae_trace::expand;
///
/// let mut b = KernelBuilder::new("sum");
/// let i = b.induction();
/// let x = b.load_strided(&[Operand::Local(i)], 0, 8);
/// b.fp_add_carried_self(&[Operand::Local(x)]);
/// let trace = expand(&b.build()?, 10);
///
/// let result = ScalarReference::new(ScalarConfig::new(60)).run(&trace);
/// // Each iteration pays 1 (int) + 61 (load) + 2 (fp) cycles, fully serial.
/// assert_eq!(result.cycles(), 640);
/// # Ok::<(), dae_isa::KernelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ScalarReference {
    config: ScalarConfig,
}

struct ScalarContext {
    memory: FixedLatencyMemory,
}

impl ExecContext for ScalarContext {
    fn execute_memory(&mut self, inst: &MachineInst, now: Cycle) -> Cycle {
        let addr = inst.addr.unwrap_or(0);
        match inst.kind {
            ExecKind::LoadBlocking => self.memory.request_load(addr, now),
            ExecKind::StoreOp => {
                self.memory.request_store(addr, now);
                now + 1
            }
            ExecKind::LoadRequest | ExecKind::LoadConsume => now + 1,
            ExecKind::Arith | ExecKind::CopySend => unreachable!("handled by the unit"),
        }
    }
}

fn scalar_unit_config() -> UnitConfig {
    UnitConfig {
        window_size: Some(1),
        issue_width: 1,
        dispatch_width: Some(1),
        ..UnitConfig::default()
    }
}

impl ScalarReference {
    /// Creates a scalar reference machine.
    #[must_use]
    pub fn new(config: ScalarConfig) -> Self {
        ScalarReference { config }
    }

    /// The machine configuration.
    #[must_use]
    pub fn config(&self) -> &ScalarConfig {
        &self.config
    }

    /// Runs `trace` to completion.
    ///
    /// # Panics
    ///
    /// Panics if the simulation exceeds the deadlock safety bound.
    #[must_use]
    pub fn run(&self, trace: &Trace) -> ScalarResult {
        let program = lower_scalar(trace);
        self.run_lowered(&program, trace.len())
    }

    /// Runs an already-lowered program (sweep / benchmark path; no
    /// per-run lowering).
    ///
    /// # Panics
    ///
    /// Panics if the simulation exceeds the deadlock safety bound.
    #[must_use]
    pub fn run_lowered(&self, program: &ScalarProgram, trace_instructions: usize) -> ScalarResult {
        let machine_instructions = program.insts.len();
        let mut unit = UnitSim::with_wakeups(
            std::sync::Arc::clone(&program.insts),
            std::sync::Arc::clone(&program.wakeups),
            scalar_unit_config(),
            self.config.latencies,
        );
        let mut ctx = ScalarContext {
            memory: FixedLatencyMemory::new(self.config.memory_differential),
        };

        let safety_bound = crate::dm::safety_bound(
            machine_instructions,
            self.config.memory_differential,
            self.config.latencies.max_arith_latency(),
        );

        let mut now: Cycle = 0;
        while !unit.is_done() {
            unit.step(now, &mut ctx);
            let next = unit.next_activity(now).unwrap_or(now + 1);
            debug_assert!(next > now);
            unit.idle_advance(next - now - 1);
            now = next;
            assert!(
                now < safety_bound,
                "scalar simulation exceeded {safety_bound} cycles — likely a deadlock"
            );
        }

        ScalarResult {
            summary: ExecutionSummary {
                cycles: unit.max_completion(),
                trace_instructions,
                machine_instructions,
            },
            unit: *unit.stats(),
        }
    }

    /// Runs `trace` on the retained naive reference scheduler with the
    /// original cycle-by-cycle loop (the differential-testing oracle and
    /// benchmark baseline).
    ///
    /// # Panics
    ///
    /// Panics if the simulation exceeds the deadlock safety bound.
    #[must_use]
    pub fn run_reference(&self, trace: &Trace) -> ScalarResult {
        let program = lower_scalar(trace);
        self.run_reference_lowered(&program, trace.len())
    }

    /// [`ScalarReference::run_reference`] over an already-lowered program.
    ///
    /// # Panics
    ///
    /// Panics if the simulation exceeds the deadlock safety bound.
    #[must_use]
    pub fn run_reference_lowered(
        &self,
        program: &ScalarProgram,
        trace_instructions: usize,
    ) -> ScalarResult {
        let machine_instructions = program.insts.len();
        let mut unit = NaiveUnitSim::new(
            std::sync::Arc::clone(&program.insts),
            scalar_unit_config(),
            self.config.latencies,
        );
        let mut ctx = ScalarContext {
            memory: FixedLatencyMemory::new(self.config.memory_differential),
        };

        let safety_bound = crate::dm::safety_bound(
            machine_instructions,
            self.config.memory_differential,
            self.config.latencies.max_arith_latency(),
        );

        let mut now: Cycle = 0;
        while !unit.is_done() {
            unit.step(now, &mut ctx);
            now += 1;
            assert!(
                now < safety_bound,
                "scalar simulation exceeded {safety_bound} cycles — likely a deadlock"
            );
        }

        ScalarResult {
            summary: ExecutionSummary {
                cycles: unit.max_completion(),
                trace_instructions,
                machine_instructions,
            },
            unit: *unit.stats(),
        }
    }

    /// The analytic execution time of the scalar reference: the sum of every
    /// instruction's latency, with loads costing `1 + MD`.
    ///
    /// Useful for tests (the simulated result must match) and for cheap
    /// speedup denominators in large sweeps.
    #[must_use]
    pub fn analytic_cycles(&self, trace: &Trace) -> Cycle {
        trace
            .iter()
            .map(|inst| {
                if inst.op.is_load() {
                    self.config.latencies.latency_of(inst.op) + self.config.memory_differential
                } else {
                    self.config.latencies.latency_of(inst.op)
                }
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_isa::{KernelBuilder, Operand};
    use dae_trace::expand;

    fn small_trace(iters: u64) -> Trace {
        let mut b = KernelBuilder::new("axpy");
        let i = b.induction();
        let x = b.load_strided(&[Operand::Local(i)], 0, 8);
        let y = b.fp_mul(&[Operand::Local(x), Operand::Invariant(0)]);
        b.store_strided(&[Operand::Local(y), Operand::Local(i)], 0x1000, 8);
        expand(&b.build().unwrap(), iters)
    }

    #[test]
    fn simulated_time_matches_the_analytic_sum_of_latencies() {
        for md in [0, 10, 60] {
            let trace = small_trace(25);
            let machine = ScalarReference::new(ScalarConfig::new(md));
            let result = machine.run(&trace);
            assert_eq!(result.cycles(), machine.analytic_cycles(&trace), "md={md}");
        }
    }

    #[test]
    fn analytic_cycles_formula() {
        let trace = small_trace(10);
        let machine = ScalarReference::new(ScalarConfig::new(60));
        // Per iteration: 1 (int) + 61 (load) + 2 (fmul) + 1 (store) = 65.
        assert_eq!(machine.analytic_cycles(&trace), 650);
    }

    #[test]
    fn the_scalar_reference_never_overlaps_anything() {
        let trace = small_trace(30);
        let result = ScalarReference::new(ScalarConfig::new(20)).run(&trace);
        assert!(result.summary.ipc() < 1.0);
        assert_eq!(result.unit.occupancy_max, 1);
    }

    #[test]
    fn zero_length_traces_are_handled() {
        let trace = small_trace(0);
        let result = ScalarReference::new(ScalarConfig::new(60)).run(&trace);
        assert_eq!(result.cycles(), 0);
        assert_eq!(result.summary.trace_instructions, 0);
    }

    #[test]
    fn event_driven_run_matches_the_reference_exactly() {
        for md in [0, 10, 60] {
            let trace = small_trace(40);
            let machine = ScalarReference::new(ScalarConfig::new(md));
            assert_eq!(machine.run(&trace), machine.run_reference(&trace));
        }
    }
}
