//! The scalar reference machine (the speedup denominator).

use crate::engine::{self, MachineSpec};
use crate::{ExecutionSummary, ScalarConfig, ScalarResult, SimPool};
use dae_isa::Cycle;
use dae_mem::FixedLatencyMemory;
use dae_ooo::{ExecContext, NaiveUnitSim, SchedulerUnit, UnitConfig, UnitSim};
use dae_trace::{lower_scalar, ExecKind, MachineInst, ScalarProgram, Trace};

/// The scalar reference: a single-issue, in-order machine with a one-entry
/// window and no prefetching, so every load exposes the full memory
/// differential.
///
/// The paper plots "speedup" without stating the baseline (it lives in the
/// companion technical report); this reproduction uses the scalar reference
/// at the *same* memory differential as the machine under test, which leaves
/// every comparative claim between the DM and the SWSM unchanged (see
/// DESIGN.md).
///
/// The run loop is the shared time-skipping engine (see `crate::engine`),
/// which jumps straight through every blocking-load stall (a 60-cycle memory
/// wait is one engine iteration) — that matters because sweeps simulate this
/// machine for every (program, MD) point.
/// [`ScalarReference::run_reference`] keeps the cycle-by-cycle lockstep
/// loop.
///
/// # Example
///
/// ```
/// use dae_isa::{KernelBuilder, Operand};
/// use dae_machines::{ScalarConfig, ScalarReference};
/// use dae_trace::expand;
///
/// let mut b = KernelBuilder::new("sum");
/// let i = b.induction();
/// let x = b.load_strided(&[Operand::Local(i)], 0, 8);
/// b.fp_add_carried_self(&[Operand::Local(x)]);
/// let trace = expand(&b.build()?, 10);
///
/// let result = ScalarReference::new(ScalarConfig::new(60)).run(&trace);
/// // Each iteration pays 1 (int) + 61 (load) + 2 (fp) cycles, fully serial.
/// assert_eq!(result.cycles(), 640);
/// # Ok::<(), dae_isa::KernelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ScalarReference {
    config: ScalarConfig,
}

/// The scalar machine as seen by the shared engine; doubles as the unit's
/// execution context (a fixed-latency memory is the only structure).
struct ScalarSpec {
    memory: FixedLatencyMemory,
}

impl ExecContext for ScalarSpec {
    fn execute_memory(&mut self, inst: &MachineInst, now: Cycle) -> Cycle {
        let addr = inst.addr.unwrap_or(0);
        match inst.kind {
            ExecKind::LoadBlocking => self.memory.request_load(addr, now),
            ExecKind::StoreOp => {
                self.memory.request_store(addr, now);
                now + 1
            }
            ExecKind::LoadRequest | ExecKind::LoadConsume => now + 1,
            ExecKind::Arith | ExecKind::CopySend => unreachable!("handled by the unit"),
        }
    }
}

impl<U: SchedulerUnit> MachineSpec<U> for ScalarSpec {
    fn step_unit(&mut self, units: &mut [U], u: usize, now: Cycle) {
        units[u].step(now, self);
    }
}

fn scalar_unit_config() -> UnitConfig {
    UnitConfig {
        window_size: Some(1),
        issue_width: 1,
        dispatch_width: Some(1),
        ..UnitConfig::default()
    }
}

impl ScalarReference {
    /// Creates a scalar reference machine.
    #[must_use]
    pub fn new(config: ScalarConfig) -> Self {
        ScalarReference { config }
    }

    /// The machine configuration.
    #[must_use]
    pub fn config(&self) -> &ScalarConfig {
        &self.config
    }

    /// Runs `trace` to completion.
    ///
    /// # Panics
    ///
    /// Panics if the simulation exceeds the deadlock safety bound.
    #[must_use]
    pub fn run(&self, trace: &Trace) -> ScalarResult {
        let program = lower_scalar(trace);
        self.run_lowered(&program, trace.len())
    }

    /// Runs an already-lowered program (sweep / benchmark path; no
    /// per-run lowering).
    ///
    /// # Panics
    ///
    /// Panics if the simulation exceeds the deadlock safety bound.
    #[must_use]
    pub fn run_lowered(&self, program: &ScalarProgram, trace_instructions: usize) -> ScalarResult {
        self.run_pooled(program, trace_instructions, &mut SimPool::new())
    }

    /// [`ScalarReference::run_lowered`] over a recycled unit working set
    /// checked out of `pool` (the fixed-latency memory holds no per-run
    /// buffers worth pooling).  Results are bit-for-bit identical to the
    /// fresh path (`tests/pool_reuse.rs`).
    ///
    /// # Panics
    ///
    /// Panics if the simulation exceeds the deadlock safety bound.
    #[must_use]
    pub fn run_pooled(
        &self,
        program: &ScalarProgram,
        trace_instructions: usize,
        pool: &mut SimPool,
    ) -> ScalarResult {
        let mut units = [UnitSim::with_wakeups_scratch(
            std::sync::Arc::clone(&program.insts),
            std::sync::Arc::clone(&program.wakeups),
            scalar_unit_config(),
            self.config.latencies,
            pool.take_unit(),
        )];
        let mut spec = ScalarSpec {
            memory: FixedLatencyMemory::new(self.config.memory_differential),
        };
        engine::run_event(&mut units, &mut spec, self.safety_bound(program), "scalar");
        let result = self.assemble(&units, program, trace_instructions);
        let [unit] = units;
        pool.put_unit(unit.into_scratch());
        result
    }

    /// Runs `trace` on the retained naive reference scheduler with the
    /// original cycle-by-cycle lockstep loop (the differential-testing
    /// oracle and benchmark baseline).
    ///
    /// # Panics
    ///
    /// Panics if the simulation exceeds the deadlock safety bound.
    #[must_use]
    pub fn run_reference(&self, trace: &Trace) -> ScalarResult {
        let program = lower_scalar(trace);
        self.run_reference_lowered(&program, trace.len())
    }

    /// [`ScalarReference::run_reference`] over an already-lowered program.
    ///
    /// # Panics
    ///
    /// Panics if the simulation exceeds the deadlock safety bound.
    #[must_use]
    pub fn run_reference_lowered(
        &self,
        program: &ScalarProgram,
        trace_instructions: usize,
    ) -> ScalarResult {
        let mut units = [NaiveUnitSim::new(
            std::sync::Arc::clone(&program.insts),
            scalar_unit_config(),
            self.config.latencies,
        )];
        let mut spec = ScalarSpec {
            memory: FixedLatencyMemory::new(self.config.memory_differential),
        };
        engine::run_lockstep(&mut units, &mut spec, self.safety_bound(program), "scalar");
        self.assemble(&units, program, trace_instructions)
    }

    fn safety_bound(&self, program: &ScalarProgram) -> Cycle {
        engine::safety_bound(
            program.insts.len(),
            self.config.memory_differential,
            self.config.latencies.max_arith_latency(),
        )
    }

    fn assemble<U: SchedulerUnit>(
        &self,
        units: &[U; 1],
        program: &ScalarProgram,
        trace_instructions: usize,
    ) -> ScalarResult {
        ScalarResult {
            summary: ExecutionSummary {
                cycles: units[0].max_completion(),
                trace_instructions,
                machine_instructions: program.insts.len(),
            },
            unit: *units[0].stats(),
        }
    }

    /// The analytic execution time of the scalar reference: the sum of every
    /// instruction's latency, with loads costing `1 + MD`.
    ///
    /// Useful for tests (the simulated result must match) and for cheap
    /// speedup denominators in large sweeps.
    #[must_use]
    pub fn analytic_cycles(&self, trace: &Trace) -> Cycle {
        trace
            .iter()
            .map(|inst| {
                if inst.op.is_load() {
                    self.config.latencies.latency_of(inst.op) + self.config.memory_differential
                } else {
                    self.config.latencies.latency_of(inst.op)
                }
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_isa::{KernelBuilder, Operand};
    use dae_trace::expand;

    fn small_trace(iters: u64) -> Trace {
        let mut b = KernelBuilder::new("axpy");
        let i = b.induction();
        let x = b.load_strided(&[Operand::Local(i)], 0, 8);
        let y = b.fp_mul(&[Operand::Local(x), Operand::Invariant(0)]);
        b.store_strided(&[Operand::Local(y), Operand::Local(i)], 0x1000, 8);
        expand(&b.build().unwrap(), iters)
    }

    #[test]
    fn simulated_time_matches_the_analytic_sum_of_latencies() {
        for md in [0, 10, 60] {
            let trace = small_trace(25);
            let machine = ScalarReference::new(ScalarConfig::new(md));
            let result = machine.run(&trace);
            assert_eq!(result.cycles(), machine.analytic_cycles(&trace), "md={md}");
        }
    }

    #[test]
    fn analytic_cycles_formula() {
        let trace = small_trace(10);
        let machine = ScalarReference::new(ScalarConfig::new(60));
        // Per iteration: 1 (int) + 61 (load) + 2 (fmul) + 1 (store) = 65.
        assert_eq!(machine.analytic_cycles(&trace), 650);
    }

    #[test]
    fn the_scalar_reference_never_overlaps_anything() {
        let trace = small_trace(30);
        let result = ScalarReference::new(ScalarConfig::new(20)).run(&trace);
        assert!(result.summary.ipc() < 1.0);
        assert_eq!(result.unit.occupancy_max, 1);
    }

    #[test]
    fn zero_length_traces_are_handled() {
        let trace = small_trace(0);
        let result = ScalarReference::new(ScalarConfig::new(60)).run(&trace);
        assert_eq!(result.cycles(), 0);
        assert_eq!(result.summary.trace_instructions, 0);
    }

    #[test]
    fn event_driven_run_matches_the_reference_exactly() {
        for md in [0, 10, 60] {
            let trace = small_trace(40);
            let machine = ScalarReference::new(ScalarConfig::new(md));
            assert_eq!(machine.run(&trace), machine.run_reference(&trace));
        }
    }
}
