//! The single-window superscalar machine (SWSM).

use crate::engine::{self, MachineSpec};
use crate::{ExecutionSummary, SimPool, SwsmConfig, SwsmResult};
use dae_isa::{Address, Cycle};
use dae_mem::{FxHashMap, PrefetchBuffer};
use dae_ooo::{ExecContext, GateWait, NaiveUnitSim, SchedulerUnit, UnitSim};
use dae_trace::{expand_swsm, ExecKind, MachineInst, SwsmProgram, Trace};

/// The single-window out-of-order superscalar machine of the paper
/// (figure 2), with the hybrid prefetch scheme: every memory operation is a
/// prefetch instruction (which fills the fully associative prefetch buffer)
/// followed by an access instruction (a single-cycle buffer hit once the
/// data has arrived).
///
/// Unlike the decoupled machine, the full issue width is available to a
/// single instruction window every cycle — but prefetches, accesses and
/// compute all compete for the same window slots, which is exactly the
/// effect the paper studies.
///
/// The run loop is the shared time-skipping engine (see `crate::engine`)
/// over one unit; [`SuperscalarMachine::run_reference`] retains the original
/// cycle-by-cycle lockstep loop as the differential-testing oracle.
///
/// # Example
///
/// ```
/// use dae_isa::{KernelBuilder, Operand};
/// use dae_machines::{SuperscalarMachine, SwsmConfig};
/// use dae_trace::expand;
///
/// let mut b = KernelBuilder::new("scale");
/// let i = b.induction();
/// let x = b.load_strided(&[Operand::Local(i)], 0, 8);
/// let y = b.fp_mul(&[Operand::Local(x), Operand::Invariant(0)]);
/// b.store_strided(&[Operand::Local(y), Operand::Local(i)], 0x10000, 8);
/// let trace = expand(&b.build()?, 200);
///
/// let machine = SuperscalarMachine::new(SwsmConfig::paper(64, 60));
/// let result = machine.run(&trace);
/// assert!(result.cycles() > 0);
/// assert_eq!(result.lowering.prefetches, 400);
/// # Ok::<(), dae_isa::KernelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SuperscalarMachine {
    config: SwsmConfig,
}

/// The SWSM as seen by the shared engine; doubles as the single unit's
/// execution context (the prefetch buffer is the machine's only memory
/// structure).
struct SwsmSpec {
    buffer: PrefetchBuffer,
    memory_differential: Cycle,
    /// Whether LRU replacement can evict entries (finite capacity): if so,
    /// a reported arrival time may be invalidated by an eviction, so closed
    /// gates fall back to polling.
    can_evict: bool,
}

impl SwsmSpec {
    fn new(config: &SwsmConfig) -> Self {
        Self::with_scratch(config, FxHashMap::default())
    }

    /// [`SwsmSpec::new`] over a recycled prefetch-buffer map (cleared and
    /// reused when the buffer is unbounded — the sweep configuration).
    fn with_scratch(config: &SwsmConfig, scratch: FxHashMap<Address, Cycle>) -> Self {
        SwsmSpec {
            buffer: PrefetchBuffer::with_scratch(
                config.memory_differential,
                config.prefetch_buffer,
                scratch,
            ),
            memory_differential: config.memory_differential,
            can_evict: config.prefetch_buffer.capacity.is_some(),
        }
    }
}

impl ExecContext for SwsmSpec {
    fn data_ready(&self, inst: &MachineInst, now: Cycle) -> bool {
        match inst.kind {
            ExecKind::LoadConsume => {
                let addr = inst.addr.unwrap_or(0);
                match self.buffer.available_at(addr) {
                    // Prefetched: wait until the data has actually arrived,
                    // then the access is a single-cycle buffer hit.
                    Some(arrival) => arrival <= now,
                    // Evicted or never prefetched (only possible with a
                    // finite buffer): the access is free to issue and will
                    // pay the full memory latency itself.
                    None => true,
                }
            }
            _ => true,
        }
    }

    fn gate_wait(&self, inst: &MachineInst, now: Cycle) -> GateWait {
        match inst.kind {
            ExecKind::LoadConsume => {
                let addr = inst.addr.unwrap_or(0);
                match self.buffer.available_at(addr) {
                    Some(arrival) if arrival <= now => GateWait::Open,
                    Some(_) if self.can_evict => {
                        // An eviction between now and the arrival would open
                        // the gate *early* (the access becomes a miss that
                        // is free to issue), which a timed sleep would skip
                        // over.  Finite buffers only appear in ablations, so
                        // polling there keeps the common case fast and the
                        // rare case naive-exact.
                        GateWait::Poll
                    }
                    Some(arrival) => GateWait::At(arrival),
                    None => GateWait::Open,
                }
            }
            _ => GateWait::Open,
        }
    }

    fn execute_memory(&mut self, inst: &MachineInst, now: Cycle) -> Cycle {
        let addr = inst.addr.unwrap_or(0);
        match inst.kind {
            ExecKind::LoadRequest => {
                self.buffer.prefetch(addr, now);
                now + 1
            }
            ExecKind::LoadConsume => match self.buffer.access(addr, now) {
                Some(_arrival) => now + 1,
                None => now + 1 + self.memory_differential,
            },
            ExecKind::StoreOp => now + 1,
            ExecKind::LoadBlocking => now + 1 + self.memory_differential,
            ExecKind::Arith | ExecKind::CopySend => unreachable!("handled by the unit"),
        }
    }
}

impl<U: SchedulerUnit> MachineSpec<U> for SwsmSpec {
    fn step_unit(&mut self, units: &mut [U], u: usize, now: Cycle) {
        units[u].step(now, self);
    }
}

impl SuperscalarMachine {
    /// Creates a superscalar machine with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[must_use]
    pub fn new(config: SwsmConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|msg| panic!("invalid SWSM configuration: {msg}"));
        SuperscalarMachine { config }
    }

    /// The machine configuration.
    #[must_use]
    pub fn config(&self) -> &SwsmConfig {
        &self.config
    }

    /// Runs `trace` to completion and returns the detailed result.
    ///
    /// # Panics
    ///
    /// Panics if the simulation exceeds the deadlock safety bound.
    #[must_use]
    pub fn run(&self, trace: &Trace) -> SwsmResult {
        let program = expand_swsm(trace);
        self.run_lowered(&program, trace.len())
    }

    /// Runs an already-lowered program (the sweep drivers lower each trace
    /// once and reuse it across every window / memory-differential point).
    ///
    /// # Panics
    ///
    /// Panics if the simulation exceeds the deadlock safety bound.
    #[must_use]
    pub fn run_lowered(&self, program: &SwsmProgram, trace_instructions: usize) -> SwsmResult {
        self.run_pooled(program, trace_instructions, &mut SimPool::new())
    }

    /// [`SuperscalarMachine::run_lowered`] over recycled simulation buffers
    /// (the unit's working set and the prefetch-buffer map are checked out
    /// of `pool` and returned after the run).  Results are bit-for-bit
    /// identical to the fresh path (`tests/pool_reuse.rs`).
    ///
    /// # Panics
    ///
    /// Panics if the simulation exceeds the deadlock safety bound.
    #[must_use]
    pub fn run_pooled(
        &self,
        program: &SwsmProgram,
        trace_instructions: usize,
        pool: &mut SimPool,
    ) -> SwsmResult {
        let mut units = [UnitSim::with_wakeups_scratch(
            std::sync::Arc::clone(&program.insts),
            std::sync::Arc::clone(&program.wakeups),
            self.config.unit,
            self.config.latencies,
            pool.take_unit(),
        )];
        let mut spec = SwsmSpec::with_scratch(&self.config, std::mem::take(&mut pool.prefetch));
        engine::run_event(&mut units, &mut spec, self.safety_bound(program), "SWSM");
        let result = self.assemble(&units, &spec, program, trace_instructions);
        pool.prefetch = spec.buffer.into_scratch();
        let [unit] = units;
        pool.put_unit(unit.into_scratch());
        result
    }

    /// Runs `trace` on the retained naive reference scheduler with the
    /// original cycle-by-cycle lockstep loop (the differential-testing
    /// oracle and benchmark baseline).
    ///
    /// # Panics
    ///
    /// Panics if the simulation exceeds the deadlock safety bound.
    #[must_use]
    pub fn run_reference(&self, trace: &Trace) -> SwsmResult {
        let program = expand_swsm(trace);
        self.run_reference_lowered(&program, trace.len())
    }

    /// [`SuperscalarMachine::run_reference`] over an already-expanded
    /// program — used by the throughput benchmark to compare scheduler
    /// against scheduler without per-run lowering on either side.
    ///
    /// # Panics
    ///
    /// Panics if the simulation exceeds the deadlock safety bound.
    #[must_use]
    pub fn run_reference_lowered(
        &self,
        program: &SwsmProgram,
        trace_instructions: usize,
    ) -> SwsmResult {
        let mut units = [NaiveUnitSim::new(
            std::sync::Arc::clone(&program.insts),
            self.config.unit,
            self.config.latencies,
        )];
        let mut spec = SwsmSpec::new(&self.config);
        engine::run_lockstep(&mut units, &mut spec, self.safety_bound(program), "SWSM");
        self.assemble(&units, &spec, program, trace_instructions)
    }

    fn safety_bound(&self, program: &SwsmProgram) -> Cycle {
        engine::safety_bound(
            program.insts.len(),
            self.config.memory_differential,
            self.config.latencies.max_arith_latency(),
        )
    }

    fn assemble<U: SchedulerUnit>(
        &self,
        units: &[U; 1],
        spec: &SwsmSpec,
        program: &SwsmProgram,
        trace_instructions: usize,
    ) -> SwsmResult {
        SwsmResult {
            summary: ExecutionSummary {
                cycles: units[0].max_completion(),
                trace_instructions,
                machine_instructions: program.insts.len(),
            },
            unit: *units[0].stats(),
            lowering: program.stats,
            buffer: spec.buffer.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_isa::{KernelBuilder, Operand};
    use dae_mem::PrefetchBufferConfig;
    use dae_trace::expand;

    fn streaming_trace(iters: u64) -> Trace {
        let mut b = KernelBuilder::new("daxpy");
        let i = b.induction();
        let x = b.load_strided(&[Operand::Local(i)], 0, 8);
        let y = b.load_strided(&[Operand::Local(i)], 0x100_000, 8);
        let ax = b.fp_mul(&[Operand::Local(x), Operand::Invariant(0)]);
        let s = b.fp_add(&[Operand::Local(ax), Operand::Local(y)]);
        b.store_strided(&[Operand::Local(s), Operand::Local(i)], 0x100_000, 8);
        expand(&b.build().unwrap(), iters)
    }

    #[test]
    fn bigger_windows_hide_more_of_the_latency() {
        // The SWSM's prefetching ability is bounded by its window: the
        // window must hold every instruction between a prefetch and its
        // access for the prefetch to run ahead.  A 128-entry window hides a
        // good part of a 60-cycle differential; an 8-entry window hides very
        // little.  (It takes a window of several hundred entries to hide it
        // completely — exactly the paper's point.)
        let trace = streaming_trace(200);
        let near = SuperscalarMachine::new(SwsmConfig::paper(128, 0)).run(&trace);
        let far_small = SuperscalarMachine::new(SwsmConfig::paper(8, 60)).run(&trace);
        let far_large = SuperscalarMachine::new(SwsmConfig::paper(128, 60)).run(&trace);
        let slowdown_small = far_small.cycles() as f64 / near.cycles() as f64;
        let slowdown_large = far_large.cycles() as f64 / near.cycles() as f64;
        assert!(
            slowdown_large < 6.0,
            "a 128-entry window should hide a useful part of the latency, slowdown = {slowdown_large:.2}"
        );
        assert!(
            slowdown_small > 2.0 * slowdown_large,
            "an 8-entry window should hide far less: {slowdown_small:.2} vs {slowdown_large:.2}"
        );
    }

    #[test]
    fn small_windows_expose_the_latency() {
        let trace = streaming_trace(100);
        let small = SuperscalarMachine::new(SwsmConfig::paper(4, 60)).run(&trace);
        let large = SuperscalarMachine::new(SwsmConfig::paper(128, 60)).run(&trace);
        assert!(
            small.cycles() > 2 * large.cycles(),
            "small window {} vs large window {}",
            small.cycles(),
            large.cycles()
        );
    }

    #[test]
    fn every_access_hits_the_unbounded_buffer() {
        let trace = streaming_trace(80);
        let result = SuperscalarMachine::new(SwsmConfig::paper(64, 30)).run(&trace);
        // 2 loads per iteration hit; stores never query the buffer.
        assert_eq!(result.buffer.hits, 160);
        assert_eq!(result.buffer.misses, 0);
        assert_eq!(result.buffer.prefetches, 240);
    }

    #[test]
    fn a_tiny_buffer_causes_misses_but_still_terminates() {
        let trace = streaming_trace(80);
        let mut cfg = SwsmConfig::paper(64, 30);
        cfg.prefetch_buffer = PrefetchBufferConfig { capacity: Some(2) };
        let result = SuperscalarMachine::new(cfg).run(&trace);
        assert!(result.buffer.misses > 0, "evictions should cause misses");
        let unbounded = SuperscalarMachine::new(SwsmConfig::paper(64, 30)).run(&trace);
        assert!(result.cycles() >= unbounded.cycles());
    }

    #[test]
    fn result_counters_are_consistent() {
        let trace = streaming_trace(50);
        let result = SuperscalarMachine::new(SwsmConfig::paper(32, 20)).run(&trace);
        assert_eq!(result.summary.trace_instructions, trace.len());
        assert_eq!(
            result.summary.machine_instructions as u64,
            result.unit.dispatched
        );
        assert_eq!(result.unit.dispatched, result.unit.issued);
        assert!((result.lowering.expansion_ratio() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn zero_md_runs_fast() {
        let trace = streaming_trace(100);
        let result = SuperscalarMachine::new(SwsmConfig::paper(64, 0)).run(&trace);
        assert!(result.summary.ipc() > 1.5, "ipc = {}", result.summary.ipc());
    }

    #[test]
    fn event_driven_run_matches_the_reference_exactly() {
        for (window, md) in [(8, 60), (64, 30), (32, 0)] {
            let trace = streaming_trace(60);
            let machine = SuperscalarMachine::new(SwsmConfig::paper(window, md));
            assert_eq!(machine.run(&trace), machine.run_reference(&trace));
        }
        // Finite buffer: the polling fallback must stay exact too.
        let trace = streaming_trace(50);
        let mut cfg = SwsmConfig::paper(32, 40);
        cfg.prefetch_buffer = PrefetchBufferConfig { capacity: Some(4) };
        let machine = SuperscalarMachine::new(cfg);
        assert_eq!(machine.run(&trace), machine.run_reference(&trace));
    }
}
