//! The shared multi-unit run engine.
//!
//! Every machine of the paper is "one or more out-of-order units around some
//! memory structure", and before this module existed each machine carried
//! its own copy of the run loop — clock management, time-skip bookkeeping
//! and the idle-advance fallback boilerplate, three times over.  The engine
//! owns all of that once.  A machine reduces to a [`MachineSpec`]: how to
//! step one unit (building its [`ExecContext`](dae_ooo::ExecContext) against
//! the shared memory structures and the peer units), how to forward
//! cross-unit wakeups after a step, and what to sample per cycle.
//!
//! Two clocking disciplines exist:
//!
//! * [`run_event`] — the production loop over
//!   [`EventUnit`](dae_ooo::EventUnit)s with **asymmetric per-unit clocks**:
//!   every unit keeps its own next-activity horizon and is stepped only when
//!   its own horizon arrives.  A unit sleeping through a 60-cycle memory
//!   stall costs nothing even while its peer is stepping every cycle — the
//!   decoupled machine no longer steps the DU on the AU's schedule or vice
//!   versa (the old loop stepped both units on the *union* of their active
//!   cycles).
//! * [`run_lockstep`] — the reference loop over any
//!   [`SchedulerUnit`](dae_ooo::SchedulerUnit): every unit steps every
//!   cycle.  Driving [`NaiveUnitSim`](dae_ooo::NaiveUnitSim) through it
//!   reproduces the seed simulator exactly; the differential suites hold
//!   [`run_event`] to bit-for-bit equality against it.
//!
//! ## Why asymmetric clocks stay cycle-exact
//!
//! Stepping a unit on a cycle its own `next_activity` did not name is, by
//! that method's contract, indistinguishable from `idle_advance(1)` — same
//! counters, same state.  So each unit's statistics may be settled lazily:
//! the engine tracks how far each unit's accounting has advanced and pays
//! the accumulated idle span immediately before the unit's next real step
//! (and once more at termination).  Observable cross-unit state (completion
//! times, window probes) is frozen between a unit's steps, so a peer
//! stepping in between reads exactly what the lockstep loop would read.
//!
//! The one way this could go wrong is a peer creating work for a sleeping
//! unit *earlier* than its current horizon — a cross-unit wakeup, a transfer
//! arrival.  Three invariants close that hole:
//!
//! 1. every cross-unit influence travels through
//!    [`schedule_reeval`](dae_ooo::EventUnit::schedule_reeval) or through
//!    completion times that are immutable once written, and always lands at
//!    least one cycle in the future;
//! 2. after any unit steps, the engine re-arms **every** unit's horizon
//!    (`next_activity` reflects newly injected events), so a skip in
//!    progress is interrupted by the peer's wakeup rather than slept
//!    through;
//! 3. gates that can open early without an event (finite-capacity polls)
//!    pin their unit's horizon to the very next cycle, so a polling unit is
//!    never asleep in the first place.

use crate::abort::AbortChecker;
use dae_isa::Cycle;
use dae_ooo::{EventUnit, SchedulerUnit};

/// Machine-specific glue driven by the engine: unit stepping (with whatever
/// memory structures and peer visibility the machine wires into its
/// [`ExecContext`](dae_ooo::ExecContext)), cross-unit wakeup forwarding, and
/// per-cycle sampling.
pub(crate) trait MachineSpec<U: SchedulerUnit> {
    /// Steps unit `u` at cycle `now`, building its execution context.
    fn step_unit(&mut self, units: &mut [U], u: usize, now: Cycle);

    /// Forwards the cross-unit wakeups implied by what unit `u` issued in
    /// the step that just ran.  Single-unit machines keep the default no-op.
    fn forward_wakeups(&mut self, units: &mut [U], u: usize)
    where
        U: EventUnit,
    {
        let _ = (units, u);
    }

    /// Accounts `cycles` cycles of per-cycle machine-level sampling (ESW /
    /// slippage for the DM) against the units' current — frozen — state.
    fn sample(&mut self, units: &[U], cycles: u64) {
        let _ = (units, cycles);
    }
}

/// The event-driven run loop with asymmetric per-unit clocks (see the
/// module docs).  Runs until every unit is done.
///
/// The unit count is a compile-time constant (every machine knows its
/// shape), so the per-unit bookkeeping lives in stack arrays — the loop
/// performs no allocation at all — and the single-unit machines (SWSM,
/// scalar) monomorphise straight into [`run_event_single`], which has no
/// multi-unit bookkeeping to begin with.
///
/// Both event loops poll the thread's installed abort token (see
/// [`crate::with_abort_token`]) every [`crate::ABORT_POLL_INTERVAL`]
/// iterations, so a cancelled point unwinds mid-run instead of burning its
/// worker to completion.  The lockstep reference loop is deliberately left
/// uninstrumented: it is the oracle the event loops are differentially held
/// to, and it never runs under a server token.
///
/// # Panics
///
/// Panics if the clock reaches `safety_bound` cycles, which indicates a
/// machine deadlock (e.g. a cross wakeup that can never arrive) rather than
/// a slow program.  Unwinds with [`crate::AbortedSimulation`] when the
/// installed abort token is signalled.
pub(crate) fn run_event<U, S, const N: usize>(
    units: &mut [U; N],
    spec: &mut S,
    safety_bound: Cycle,
    machine: &str,
) where
    U: EventUnit,
    S: MachineSpec<U>,
{
    if N == 1 {
        return run_event_single(units, spec, safety_bound, machine);
    }
    if units.iter().all(U::is_done) {
        return;
    }
    let n = N;
    let mut aborts = AbortChecker::install();
    // Cycles already settled into each unit's statistics: cycles
    // `[0, synced[u])` are accounted, via steps or bulk idle advances.
    let mut synced = [0 as Cycle; N];
    // Units whose horizon is the current cycle.  Everyone steps at cycle 0.
    let mut due = [true; N];
    let mut horizon: [Option<Cycle>; N] = [None; N];
    let mut now: Cycle = 0;
    loop {
        aborts.poll();
        for u in 0..n {
            if due[u] {
                let lag = now - synced[u];
                if lag > 0 {
                    units[u].idle_advance(lag);
                }
                spec.step_unit(units, u, now);
                synced[u] = now + 1;
                spec.forward_wakeups(units, u);
            }
        }
        spec.sample(units, 1);

        if units.iter().all(U::is_done) {
            // The machine finished at the end of cycle `now`: settle every
            // unit's accounting to the common total (the lockstep loop keeps
            // stepping finished units until the last one is done, and an
            // idle advance is exactly such a step).
            let total = now + 1;
            for u in 0..n {
                let lag = total - synced[u];
                if lag > 0 {
                    units[u].idle_advance(lag);
                }
            }
            return;
        }

        // Re-arm every horizon: a step above may have injected events into
        // a peer (cross wakeups), moving its next activity earlier than the
        // skip it was sleeping through.
        let mut next = Cycle::MAX;
        for u in 0..n {
            horizon[u] = units[u].next_activity(now);
            if let Some(at) = horizon[u] {
                debug_assert!(at > now);
                next = next.min(at);
            }
        }
        if next == Cycle::MAX {
            // No unit can name a horizon but the machine is not done: only
            // an external event could help, and none is coming.  Limp
            // forward cycle by cycle so the safety bound turns this into a
            // diagnosable deadlock panic instead of a silent hang.
            next = now + 1;
            for u in 0..n {
                due[u] = !units[u].is_done();
            }
        } else {
            for u in 0..n {
                due[u] = horizon[u] == Some(next);
            }
        }
        let skipped = next - now - 1;
        if skipped > 0 {
            // Machine-level per-cycle samples cover the skipped span with
            // the frozen window state, exactly as the lockstep loop would
            // have sampled it.
            spec.sample(units, skipped);
        }
        now = next;
        assert!(
            now < safety_bound,
            "{machine} simulation exceeded {safety_bound} cycles — likely a deadlock"
        );
    }
}

/// The single-unit specialisation of [`run_event`].
///
/// With one unit the general loop's machinery is pure overhead: there is no
/// peer to inject events, so no horizon needs re-arming after a step (the
/// unit's own `next_activity` is the whole schedule), no `synced` lag can
/// accumulate (the unit is stepped at every advance), and the `due`
/// bookkeeping collapses to "step at the horizon".  The calendar-queue
/// generality cost the scalar machine ~10% per step through exactly this
/// bookkeeping; the specialisation restores the straight-line loop.
///
/// Accounting equivalence with the general loop: after a step at `now` the
/// unit's statistics cover `[0, now + 1)`; a skip to `next` pays
/// `idle_advance(next - now - 1)` immediately (the general loop defers it
/// until just before the next step, but no one can observe the difference —
/// there is no peer), and machine-level samples cover the skipped span with
/// the same frozen state.
fn run_event_single<U, S>(units: &mut [U], spec: &mut S, safety_bound: Cycle, machine: &str)
where
    U: EventUnit,
    S: MachineSpec<U>,
{
    debug_assert_eq!(units.len(), 1);
    if units[0].is_done() {
        return;
    }
    let mut aborts = AbortChecker::install();
    let mut now: Cycle = 0;
    loop {
        aborts.poll();
        spec.step_unit(units, 0, now);
        spec.sample(units, 1);
        if units[0].is_done() {
            return;
        }
        // No peer exists to move the horizon, so the unit's own answer is
        // final; `None` (only external events could help, and none can
        // come) limps forward cycle by cycle into the safety bound.
        let next = units[0].next_activity(now).unwrap_or(now + 1);
        debug_assert!(next > now);
        let skipped = next - now - 1;
        if skipped > 0 {
            units[0].idle_advance(skipped);
            spec.sample(units, skipped);
        }
        now = next;
        assert!(
            now < safety_bound,
            "{machine} simulation exceeded {safety_bound} cycles — likely a deadlock"
        );
    }
}

/// The reference run loop: every unit steps every cycle, in unit order.
/// Drives the naive scheduler for `run_reference` (and works over any
/// [`SchedulerUnit`]); this is the oracle the event-driven loop is held to.
///
/// # Panics
///
/// Panics if the clock reaches `safety_bound` cycles (deadlock).
pub(crate) fn run_lockstep<U, S>(units: &mut [U], spec: &mut S, safety_bound: Cycle, machine: &str)
where
    U: SchedulerUnit,
    S: MachineSpec<U>,
{
    let mut now: Cycle = 0;
    while !units.iter().all(U::is_done) {
        for u in 0..units.len() {
            spec.step_unit(units, u, now);
        }
        spec.sample(units, 1);
        now += 1;
        assert!(
            now < safety_bound,
            "{machine} simulation exceeded {safety_bound} cycles — likely a deadlock"
        );
    }
}

/// A generous upper bound on how long any legitimate simulation can take:
/// every instruction fully serialised at the worst-case latency, doubled,
/// plus slack.
pub(crate) fn safety_bound(instructions: usize, md: Cycle, max_latency: Cycle) -> Cycle {
    (instructions as Cycle + 16) * (md + max_latency + 4) * 2 + 10_000
}
