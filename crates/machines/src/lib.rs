//! # dae-machines — the machine models of the paper
//!
//! Three machines execute the same architectural traces:
//!
//! * [`DecoupledMachine`] (DM) — two out-of-order units (Address Unit and
//!   Data Unit) joined by a decoupled memory; the AU slips ahead of the DU
//!   and prefetches by construction (paper figure 1);
//! * [`SuperscalarMachine`] (SWSM) — a single-window out-of-order machine
//!   with the hybrid prefetch scheme and a fully associative prefetch
//!   buffer (paper figure 2);
//! * [`ScalarReference`] — the 1-wide in-order machine with blocking loads
//!   used as the common speedup denominator.
//!
//! Each `run` consumes a [`Trace`](dae_trace::Trace) and returns a detailed
//! result ([`DmResult`], [`SwsmResult`], [`ScalarResult`]) containing the
//! execution time, per-unit pipeline statistics, memory-structure counters
//! and — for the DM — the slippage / effective-single-window measurements
//! that back the paper's §3 discussion.
//!
//! ## Example: the paper's core comparison on one kernel
//!
//! ```
//! use dae_isa::{KernelBuilder, Operand};
//! use dae_machines::{DecoupledMachine, DmConfig, SuperscalarMachine, SwsmConfig};
//! use dae_trace::expand;
//!
//! let mut b = KernelBuilder::new("daxpy");
//! let i = b.induction();
//! let x = b.load_strided(&[Operand::Local(i)], 0, 8);
//! let y = b.load_strided(&[Operand::Local(i)], 0x100_000, 8);
//! let ax = b.fp_mul(&[Operand::Local(x), Operand::Invariant(0)]);
//! let s = b.fp_add(&[Operand::Local(ax), Operand::Local(y)]);
//! b.store_strided(&[Operand::Local(s), Operand::Local(i)], 0x100_000, 8);
//! let trace = expand(&b.build()?, 300);
//!
//! // Small windows, large memory latency: the decoupled machine wins.
//! let dm = DecoupledMachine::new(DmConfig::paper(16, 60)).run(&trace);
//! let swsm = SuperscalarMachine::new(SwsmConfig::paper(16, 60)).run(&trace);
//! assert!(dm.cycles() < swsm.cycles());
//! # Ok::<(), dae_isa::KernelError>(())
//! ```

mod abort;
mod config;
mod dm;
mod engine;
mod pool;
mod result;
mod scalar;
mod swsm;

pub use abort::{with_abort_token, AbortToken, AbortedSimulation, ABORT_POLL_INTERVAL};
pub use config::{
    DmConfig, ScalarConfig, SwsmConfig, PAPER_AU_ISSUE_WIDTH, PAPER_DU_ISSUE_WIDTH,
    PAPER_SWSM_ISSUE_WIDTH,
};
pub use dm::DecoupledMachine;
pub use pool::{pool_diagnostics, with_thread_pool, PoolDiagnostics, SimPool};
pub use result::{DmResult, EswStats, ExecutionSummary, ScalarResult, SwsmResult};
pub use scalar::ScalarReference;
pub use swsm::SuperscalarMachine;
