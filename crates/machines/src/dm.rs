//! The access decoupled machine (DM).

use crate::engine::{self, MachineSpec};
use crate::{DmConfig, DmResult, EswStats, ExecutionSummary, SimPool};
use dae_isa::Cycle;
use dae_mem::DecoupledMemory;
use dae_ooo::{EventUnit, ExecContext, GateWait, NaiveUnitSim, SchedulerUnit, UnitSim};
use dae_trace::{partition, DecoupledProgram, ExecKind, MachineInst, Trace, WakeupList};
use std::sync::Arc;

/// The access decoupled machine of the paper (figure 1): two out-of-order
/// superscalar units — the Address Unit executing the access stream and the
/// Data Unit executing the compute stream — joined by the decoupled memory.
///
/// The AU runs ahead of the DU ("slips"), sending load addresses to the
/// memory system long before the DU needs the values; the decoupled memory
/// buffers returned values until the DU requests them with a single-cycle
/// latency.  Cross-unit register traffic travels over explicit copy
/// instructions with a configurable transfer latency.
///
/// The run loop is the shared multi-unit engine (see `crate::engine`) with
/// **asymmetric per-unit clocks**: each unit is stepped only when its own
/// horizon arrives, so the DU sleeps through the memory stalls the AU is
/// busy prefetching across, and a 60-cycle stall costs one engine iteration
/// instead of sixty.  [`DecoupledMachine::run_reference`] retains the
/// original cycle-by-cycle lockstep loop over the naive scheduler; the two
/// paths produce bit-for-bit identical results (see `tests/differential.rs`).
///
/// # Example
///
/// ```
/// use dae_isa::{KernelBuilder, Operand};
/// use dae_machines::{DecoupledMachine, DmConfig};
/// use dae_trace::expand;
///
/// let mut b = KernelBuilder::new("scale");
/// let i = b.induction();
/// let x = b.load_strided(&[Operand::Local(i)], 0, 8);
/// let y = b.fp_mul(&[Operand::Local(x), Operand::Invariant(0)]);
/// b.store_strided(&[Operand::Local(y), Operand::Local(i)], 0x10000, 8);
/// let trace = expand(&b.build()?, 200);
///
/// let machine = DecoupledMachine::new(DmConfig::paper(32, 60));
/// let result = machine.run(&trace);
/// // The AU prefetches far ahead: execution time is a small multiple of the
/// // iteration count, not of the 60-cycle memory latency.
/// assert!(result.cycles() < 1_000);
/// assert!(result.esw.max_slip > 32);
/// # Ok::<(), dae_isa::KernelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DecoupledMachine {
    config: DmConfig,
}

/// Execution context for one unit of the DM: resolves cross-unit
/// dependences against the other unit's completion times and talks to the
/// decoupled memory.  Generic over the peer's scheduler so both the
/// event-driven and the naive reference run share one context.
struct DmUnitContext<'a, U> {
    other: &'a U,
    transfer_latency: Cycle,
    memory: &'a mut DecoupledMemory,
    consumers_remaining: &'a mut [u32],
}

impl<U: SchedulerUnit> ExecContext for DmUnitContext<'_, U> {
    #[inline]
    fn cross_ready_at(&self, idx: usize) -> Option<Cycle> {
        self.other
            .completion(idx)
            .map(|t| t + self.transfer_latency)
    }

    fn data_ready(&self, inst: &MachineInst, now: Cycle) -> bool {
        match inst.kind {
            ExecKind::LoadConsume => {
                let tag = inst.tag.expect("load consume carries a tag");
                self.memory.data_ready(tag, now)
            }
            ExecKind::LoadRequest => self.memory.can_accept(),
            _ => true,
        }
    }

    fn gate_wait(&self, inst: &MachineInst, now: Cycle) -> GateWait {
        match inst.kind {
            ExecKind::LoadConsume => {
                let tag = inst.tag.expect("load consume carries a tag");
                match self.memory.arrival(tag) {
                    Some(arrival) if arrival <= now => GateWait::Open,
                    // The transaction is in flight; sleep until it lands.
                    Some(arrival) => GateWait::At(arrival),
                    // Not requested yet — unreachable in practice because
                    // the consume's dependence on its request gates the
                    // evaluation, but stay safe (and naive-exact) if a
                    // lowering ever breaks that invariant.
                    None => GateWait::Poll,
                }
            }
            ExecKind::LoadRequest => {
                if self.memory.can_accept() {
                    GateWait::Open
                } else {
                    // Capacity frees when some consume issues; no crystal
                    // ball for that, so poll (finite capacities only appear
                    // in the ablation studies).
                    GateWait::Poll
                }
            }
            _ => GateWait::Open,
        }
    }

    fn execute_memory(&mut self, inst: &MachineInst, now: Cycle) -> Cycle {
        let tag = inst.tag.expect("memory instruction carries a tag");
        match inst.kind {
            ExecKind::LoadRequest => {
                self.memory.request_load(tag, inst.addr.unwrap_or(0), now);
                now + 1
            }
            ExecKind::LoadConsume => {
                let remaining = &mut self.consumers_remaining[tag as usize];
                *remaining = remaining.saturating_sub(1);
                if *remaining == 0 {
                    self.memory.consume(tag, now + 1);
                }
                now + 1
            }
            ExecKind::StoreOp => {
                self.memory.request_store(inst.addr.unwrap_or(0), now);
                now + 1
            }
            ExecKind::LoadBlocking => {
                // The DM lowering never produces blocking loads, but handle
                // the kind anyway for robustness.
                now + 1 + self.memory.differential()
            }
            ExecKind::Arith | ExecKind::CopySend => unreachable!("handled by the unit"),
        }
    }
}

/// Accumulates the per-cycle effective-single-window / slippage samples,
/// including in bulk over skipped idle spans (window contents are frozen
/// while idle, so the sample repeats verbatim).
#[derive(Default)]
struct EswAccumulator {
    // u64 sums: esw/slip are bounded by the trace length and cycle counts
    // by the deadlock safety bound, so the products stay far below 2^64
    // for any simulation that terminates.
    esw_sum: u64,
    esw_max: usize,
    slip_sum: u64,
    slip_max: usize,
    samples: u64,
}

impl EswAccumulator {
    fn sample(&mut self, oldest_du: Option<usize>, youngest_au: Option<usize>, cycles: u64) {
        if let (Some(oldest_du), Some(youngest_au)) = (oldest_du, youngest_au) {
            if youngest_au >= oldest_du {
                let esw = youngest_au - oldest_du + 1;
                let slip = youngest_au - oldest_du;
                self.esw_sum += esw as u64 * cycles;
                self.slip_sum += slip as u64 * cycles;
                self.esw_max = self.esw_max.max(esw);
                self.slip_max = self.slip_max.max(slip);
                self.samples += cycles;
            }
        }
    }

    fn finish(&self) -> EswStats {
        EswStats {
            max_esw: self.esw_max,
            avg_esw: if self.samples == 0 {
                0.0
            } else {
                self.esw_sum as f64 / self.samples as f64
            },
            max_slip: self.slip_max,
            avg_slip: if self.samples == 0 {
                0.0
            } else {
                self.slip_sum as f64 / self.samples as f64
            },
            samples: self.samples,
        }
    }
}

/// Per-run preparation shared by both run loops: how many LoadConsume
/// instructions read each transaction, so the decoupled-memory entry can be
/// released after its last consumer.  Fills (and re-sizes) a recycled
/// buffer rather than allocating one per run.
fn consumer_counts_into(program: &DecoupledProgram, counts: &mut Vec<u32>) {
    counts.clear();
    counts.resize(program.transactions as usize, 0);
    for inst in program.au.iter().chain(program.du.iter()) {
        if inst.kind == ExecKind::LoadConsume {
            counts[inst.tag.expect("tagged") as usize] += 1;
        }
    }
}

/// Index of the AU in the engine's unit slice.
const AU: usize = 0;
/// Index of the DU in the engine's unit slice.
const DU: usize = 1;

/// The DM as seen by the shared engine: the decoupled memory and
/// consumer-reference counts behind both units' execution contexts, the
/// cross wakeup lists, and the ESW/slippage sampler.
struct DmSpec<'a> {
    memory: DecoupledMemory,
    consumers_remaining: Vec<u32>,
    transfer: Cycle,
    /// AU producer index → DU instructions waiting on it through a
    /// cross `Dep` edge (prebuilt by the partitioner; each issue forwards a
    /// wakeup to exactly its consumers).
    cross_to_du: &'a WakeupList,
    /// DU producer index → AU instructions waiting on it.
    cross_to_au: &'a WakeupList,
    esw: EswAccumulator,
}

impl<'a> DmSpec<'a> {
    fn new(config: &DmConfig, program: &'a DecoupledProgram) -> Self {
        let mut counts = Vec::new();
        consumer_counts_into(program, &mut counts);
        Self::with_scratch(config, program, Vec::new(), counts)
    }

    /// [`DmSpec::new`] over recycled buffers: `arrivals` backs the
    /// decoupled memory's tag table and `counts` carries the
    /// already-populated consumer reference counts.
    fn with_scratch(
        config: &DmConfig,
        program: &'a DecoupledProgram,
        arrivals: Vec<Cycle>,
        counts: Vec<u32>,
    ) -> Self {
        debug_assert_eq!(counts.len(), program.transactions as usize);
        DmSpec {
            memory: DecoupledMemory::with_scratch(
                config.memory_differential,
                config.decoupled_memory,
                arrivals,
            ),
            consumers_remaining: counts,
            transfer: config.transfer_latency,
            cross_to_du: &program.cross_to_du,
            cross_to_au: &program.cross_to_au,
            esw: EswAccumulator::default(),
        }
    }
}

impl<U: SchedulerUnit> MachineSpec<U> for DmSpec<'_> {
    fn step_unit(&mut self, units: &mut [U], u: usize, now: Cycle) {
        let (au, du) = units.split_at_mut(1);
        let (unit, other) = match u {
            AU => (&mut au[0], &du[0]),
            _ => (&mut du[0], &au[0]),
        };
        let mut ctx = DmUnitContext {
            other,
            transfer_latency: self.transfer,
            memory: &mut self.memory,
            consumers_remaining: &mut self.consumers_remaining,
        };
        unit.step(now, &mut ctx);
    }

    // Forward the step's issues as cross-dependence wakeups for the peer
    // instructions waiting on them.  Data arrivals need no separate wakeup:
    // a consume is only evaluated once its request dependence is satisfied,
    // at which point the decoupled memory can name the arrival cycle
    // (`GateWait::At`).
    fn forward_wakeups(&mut self, units: &mut [U], u: usize)
    where
        U: EventUnit,
    {
        let (au, du) = units.split_at_mut(1);
        let (source, peer, waiters) = match u {
            AU => (&au[0], &mut du[0], self.cross_to_du),
            _ => (&du[0], &mut au[0], self.cross_to_au),
        };
        for &(idx, completion) in source.issued_this_step() {
            for &waiter in waiters.of(idx) {
                peer.schedule_reeval(waiter as usize, completion + self.transfer);
            }
        }
    }

    fn sample(&mut self, units: &[U], cycles: u64) {
        self.esw.sample(
            units[DU].oldest_inflight_trace_pos(),
            units[AU].youngest_dispatched_trace_pos(),
            cycles,
        );
    }
}

impl DecoupledMachine {
    /// Creates a decoupled machine with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[must_use]
    pub fn new(config: DmConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|msg| panic!("invalid DM configuration: {msg}"));
        DecoupledMachine { config }
    }

    /// The machine configuration.
    #[must_use]
    pub fn config(&self) -> &DmConfig {
        &self.config
    }

    /// Runs `trace` to completion and returns the detailed result.
    ///
    /// # Panics
    ///
    /// Panics if the simulation exceeds a generous safety bound on the cycle
    /// count, which would indicate a deadlock bug rather than a slow
    /// program.
    #[must_use]
    pub fn run(&self, trace: &Trace) -> DmResult {
        let program = partition(trace, self.config.partition_mode);
        self.run_lowered(&program, trace.len())
    }

    /// Runs an already-partitioned program (the sweep drivers lower each
    /// trace once and reuse it across every window / memory-differential
    /// point).
    ///
    /// # Panics
    ///
    /// Panics if the simulation exceeds the deadlock safety bound.
    #[must_use]
    pub fn run_lowered(&self, program: &DecoupledProgram, trace_instructions: usize) -> DmResult {
        self.run_pooled(program, trace_instructions, &mut SimPool::new())
    }

    /// [`DecoupledMachine::run_lowered`] over recycled simulation buffers:
    /// the two units' working sets, the decoupled memory's tag table and
    /// the consumer counts are checked out of `pool`, reset for this
    /// program, and returned when the run finishes — a warm pool makes the
    /// whole run allocation-free.  Results are bit-for-bit identical to the
    /// fresh path (`tests/pool_reuse.rs`).
    ///
    /// # Panics
    ///
    /// Panics if the simulation exceeds the deadlock safety bound.
    #[must_use]
    pub fn run_pooled(
        &self,
        program: &DecoupledProgram,
        trace_instructions: usize,
        pool: &mut SimPool,
    ) -> DmResult {
        let mut units = [
            UnitSim::with_wakeups_scratch(
                Arc::clone(&program.au),
                Arc::clone(&program.au_wakeups),
                self.config.au,
                self.config.latencies,
                pool.take_unit(),
            ),
            UnitSim::with_wakeups_scratch(
                Arc::clone(&program.du),
                Arc::clone(&program.du_wakeups),
                self.config.du,
                self.config.latencies,
                pool.take_unit(),
            ),
        ];
        let mut counts = std::mem::take(&mut pool.tag_counts);
        pool.consumer_counts(&program.au, &mut counts, |counts| {
            consumer_counts_into(program, counts);
        });
        let mut spec = DmSpec::with_scratch(
            &self.config,
            program,
            std::mem::take(&mut pool.arrivals),
            counts,
        );
        engine::run_event(&mut units, &mut spec, self.safety_bound(program), "DM");
        let result = assemble(&units, &spec, program, trace_instructions);
        pool.arrivals = spec.memory.into_scratch();
        pool.tag_counts = spec.consumers_remaining;
        // Reverse unit order, so the next run's AU pops the AU scratch
        // (keeping each scratch's cached stream template on its stream).
        let [au, du] = units;
        pool.put_unit(du.into_scratch());
        pool.put_unit(au.into_scratch());
        result
    }

    /// Runs `trace` on the retained naive reference scheduler with the
    /// original cycle-by-cycle lockstep loop.  Slow; exists as the oracle
    /// for the differential tests and the baseline for the throughput
    /// benchmarks.
    ///
    /// # Panics
    ///
    /// Panics if the simulation exceeds the deadlock safety bound.
    #[must_use]
    pub fn run_reference(&self, trace: &Trace) -> DmResult {
        let program = partition(trace, self.config.partition_mode);
        self.run_reference_lowered(&program, trace.len())
    }

    /// [`DecoupledMachine::run_reference`] over an already-partitioned
    /// program — used by the throughput benchmark to compare scheduler
    /// against scheduler without per-run lowering on either side.
    ///
    /// # Panics
    ///
    /// Panics if the simulation exceeds the deadlock safety bound.
    #[must_use]
    pub fn run_reference_lowered(
        &self,
        program: &DecoupledProgram,
        trace_instructions: usize,
    ) -> DmResult {
        let mut units = [
            NaiveUnitSim::new(
                Arc::clone(&program.au),
                self.config.au,
                self.config.latencies,
            ),
            NaiveUnitSim::new(
                Arc::clone(&program.du),
                self.config.du,
                self.config.latencies,
            ),
        ];
        let mut spec = DmSpec::new(&self.config, program);
        engine::run_lockstep(&mut units, &mut spec, self.safety_bound(program), "DM");
        assemble(&units, &spec, program, trace_instructions)
    }

    fn safety_bound(&self, program: &DecoupledProgram) -> Cycle {
        engine::safety_bound(
            program.au.len() + program.du.len(),
            self.config.memory_differential,
            self.config.latencies.max_arith_latency(),
        )
    }
}

/// Collects the result of a finished run, whichever scheduler drove it.
fn assemble<U: SchedulerUnit>(
    units: &[U; 2],
    spec: &DmSpec<'_>,
    program: &DecoupledProgram,
    trace_instructions: usize,
) -> DmResult {
    DmResult {
        summary: ExecutionSummary {
            cycles: units[AU].max_completion().max(units[DU].max_completion()),
            trace_instructions,
            machine_instructions: program.au.len() + program.du.len(),
        },
        au: *units[AU].stats(),
        du: *units[DU].stats(),
        esw: spec.esw.finish(),
        partition: program.stats,
        memory: spec.memory.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_isa::{KernelBuilder, Operand};
    use dae_trace::expand;

    fn streaming_trace(iters: u64) -> Trace {
        // y[i] = a*x[i] + y[i]: independent iterations, decouples perfectly.
        let mut b = KernelBuilder::new("daxpy");
        let i = b.induction();
        let x = b.load_strided(&[Operand::Local(i)], 0, 8);
        let y = b.load_strided(&[Operand::Local(i)], 0x100_000, 8);
        let ax = b.fp_mul(&[Operand::Local(x), Operand::Invariant(0)]);
        let s = b.fp_add(&[Operand::Local(ax), Operand::Local(y)]);
        b.store_strided(&[Operand::Local(s), Operand::Local(i)], 0x100_000, 8);
        expand(&b.build().unwrap(), iters)
    }

    fn pointer_chase_trace(iters: u64) -> Trace {
        // Each load's address depends on the previous load's *value*: the
        // serial chain runs through memory and no decoupling is possible.
        let mut b = KernelBuilder::new("chase");
        let p_id = b.len();
        let p = b.load_indirect(
            &[Operand::Carried {
                stmt: p_id,
                distance: 1,
            }],
            0x100_000,
            1 << 16,
            0,
        );
        assert_eq!(p, p_id);
        b.fp_add_carried_self(&[Operand::Local(p)]);
        expand(&b.build().unwrap(), iters)
    }

    #[test]
    fn zero_md_equals_fast_execution() {
        let trace = streaming_trace(100);
        let result = DecoupledMachine::new(DmConfig::paper(32, 0)).run(&trace);
        // 6 architectural instructions per iteration, combined width 9 and a
        // short dependence chain: a few cycles per iteration at most.
        assert!(result.cycles() < 400, "cycles = {}", result.cycles());
        assert_eq!(result.summary.trace_instructions, 600);
        assert!(result.summary.ipc() > 1.5);
    }

    #[test]
    fn large_md_is_mostly_hidden_for_streaming_code() {
        let trace = streaming_trace(200);
        let near = DecoupledMachine::new(DmConfig::paper(64, 0)).run(&trace);
        let far = DecoupledMachine::new(DmConfig::paper(64, 60)).run(&trace);
        // Latency hiding: the md=60 run should cost far less than one full
        // memory latency per iteration more than the md=0 run.
        let slowdown = far.cycles() as f64 / near.cycles() as f64;
        assert!(
            slowdown < 2.5,
            "expected most of the latency to be hidden, slowdown = {slowdown:.2}"
        );
    }

    #[test]
    fn pointer_chasing_cannot_hide_latency() {
        let trace = pointer_chase_trace(50);
        let near = DecoupledMachine::new(DmConfig::paper(32, 0)).run(&trace);
        let far = DecoupledMachine::new(DmConfig::paper(32, 60)).run(&trace);
        // Every iteration must wait for the previous load: the md=60 run pays
        // close to the full differential per iteration.
        assert!(far.cycles() > near.cycles() + 50 * 40);
    }

    #[test]
    fn au_slips_ahead_of_du() {
        let trace = streaming_trace(300);
        let result = DecoupledMachine::new(DmConfig::paper(16, 60)).run(&trace);
        assert!(result.esw.samples > 0);
        assert!(
            result.esw.max_slip > 16,
            "AU should run ahead of the DU by more than one window: slip = {}",
            result.esw.max_slip
        );
        assert!(result.esw.avg_esw > 16.0);
        assert!(result.esw.max_esw >= result.esw.max_slip);
    }

    #[test]
    fn bigger_windows_never_hurt_streaming_code() {
        let trace = streaming_trace(150);
        let small = DecoupledMachine::new(DmConfig::paper(4, 60)).run(&trace);
        let medium = DecoupledMachine::new(DmConfig::paper(16, 60)).run(&trace);
        let large = DecoupledMachine::new(DmConfig::paper(64, 60)).run(&trace);
        assert!(medium.cycles() <= small.cycles());
        assert!(large.cycles() <= medium.cycles());
    }

    #[test]
    fn unlimited_window_is_a_lower_bound() {
        let trace = streaming_trace(100);
        let limited = DecoupledMachine::new(DmConfig::paper(8, 60)).run(&trace);
        let unlimited = DecoupledMachine::new(DmConfig::paper_unlimited(60)).run(&trace);
        assert!(unlimited.cycles() <= limited.cycles());
    }

    #[test]
    fn result_counters_are_consistent() {
        let trace = streaming_trace(50);
        let result = DecoupledMachine::new(DmConfig::paper(32, 20)).run(&trace);
        assert_eq!(result.summary.trace_instructions, trace.len());
        assert_eq!(
            result.summary.machine_instructions as u64,
            result.au.dispatched + result.du.dispatched
        );
        assert_eq!(result.au.dispatched, result.au.issued);
        assert_eq!(result.du.dispatched, result.du.issued);
        assert_eq!(result.partition.loads, 100);
    }

    #[test]
    fn memory_counters_match_the_partition() {
        let trace = streaming_trace(40);
        let result = DecoupledMachine::new(DmConfig::paper(32, 20)).run(&trace);
        assert_eq!(result.memory.load_requests, 80);
        assert_eq!(result.memory.consumed, 80);
        // Store address + store data both notify the decoupled memory.
        assert_eq!(result.memory.store_requests, 80);
    }

    #[test]
    fn event_driven_run_matches_the_reference_exactly() {
        for (iters, window, md) in [(60, 16, 60), (60, 8, 0), (40, 32, 20)] {
            let trace = streaming_trace(iters);
            let machine = DecoupledMachine::new(DmConfig::paper(window, md));
            assert_eq!(machine.run(&trace), machine.run_reference(&trace));
        }
        let chase = pointer_chase_trace(30);
        let machine = DecoupledMachine::new(DmConfig::paper(16, 60));
        assert_eq!(machine.run(&chase), machine.run_reference(&chase));
    }
}
