//! The access decoupled machine (DM).

use crate::{DmConfig, DmResult, EswStats, ExecutionSummary};
use dae_isa::Cycle;
use dae_mem::DecoupledMemory;
use dae_ooo::{ExecContext, GateWait, NaiveUnitSim, UnitSim};
use dae_trace::{partition, DecoupledProgram, ExecKind, MachineInst, Trace};
use std::sync::Arc;

/// The access decoupled machine of the paper (figure 1): two out-of-order
/// superscalar units — the Address Unit executing the access stream and the
/// Data Unit executing the compute stream — joined by the decoupled memory.
///
/// The AU runs ahead of the DU ("slips"), sending load addresses to the
/// memory system long before the DU needs the values; the decoupled memory
/// buffers returned values until the DU requests them with a single-cycle
/// latency.  Cross-unit register traffic travels over explicit copy
/// instructions with a configurable transfer latency.
///
/// The run loop is event driven with **time-skipping**: when neither unit
/// can issue, dispatch or retire before the next pending completion or
/// memory arrival, the clock jumps straight to that event and the skipped
/// idle cycles are bulk-accounted, so a 60-cycle memory stall costs one loop
/// iteration instead of sixty.  [`DecoupledMachine::run_reference`] retains
/// the original cycle-by-cycle loop over the naive scheduler; the two paths
/// produce bit-for-bit identical results (see `tests/differential.rs`).
///
/// # Example
///
/// ```
/// use dae_isa::{KernelBuilder, Operand};
/// use dae_machines::{DecoupledMachine, DmConfig};
/// use dae_trace::expand;
///
/// let mut b = KernelBuilder::new("scale");
/// let i = b.induction();
/// let x = b.load_strided(&[Operand::Local(i)], 0, 8);
/// let y = b.fp_mul(&[Operand::Local(x), Operand::Invariant(0)]);
/// b.store_strided(&[Operand::Local(y), Operand::Local(i)], 0x10000, 8);
/// let trace = expand(&b.build()?, 200);
///
/// let machine = DecoupledMachine::new(DmConfig::paper(32, 60));
/// let result = machine.run(&trace);
/// // The AU prefetches far ahead: execution time is a small multiple of the
/// // iteration count, not of the 60-cycle memory latency.
/// assert!(result.cycles() < 1_000);
/// assert!(result.esw.max_slip > 32);
/// # Ok::<(), dae_isa::KernelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DecoupledMachine {
    config: DmConfig,
}

/// Execution context for one unit of the DM: resolves cross-unit
/// dependences against the other unit's completion times and talks to the
/// decoupled memory.
struct DmUnitContext<'a> {
    other_completions: &'a [Option<Cycle>],
    transfer_latency: Cycle,
    memory: &'a mut DecoupledMemory,
    consumers_remaining: &'a mut [u32],
}

impl ExecContext for DmUnitContext<'_> {
    fn cross_ready_at(&self, idx: usize) -> Option<Cycle> {
        self.other_completions[idx].map(|t| t + self.transfer_latency)
    }

    fn data_ready(&self, inst: &MachineInst, now: Cycle) -> bool {
        match inst.kind {
            ExecKind::LoadConsume => {
                let tag = inst.tag.expect("load consume carries a tag");
                self.memory.data_ready(tag, now)
            }
            ExecKind::LoadRequest => self.memory.can_accept(),
            _ => true,
        }
    }

    fn gate_wait(&self, inst: &MachineInst, now: Cycle) -> GateWait {
        match inst.kind {
            ExecKind::LoadConsume => {
                let tag = inst.tag.expect("load consume carries a tag");
                match self.memory.arrival(tag) {
                    Some(arrival) if arrival <= now => GateWait::Open,
                    // The transaction is in flight; sleep until it lands.
                    Some(arrival) => GateWait::At(arrival),
                    // Not requested yet — unreachable in practice because
                    // the consume's dependence on its request gates the
                    // evaluation, but stay safe (and naive-exact) if a
                    // lowering ever breaks that invariant.
                    None => GateWait::Poll,
                }
            }
            ExecKind::LoadRequest => {
                if self.memory.can_accept() {
                    GateWait::Open
                } else {
                    // Capacity frees when some consume issues; no crystal
                    // ball for that, so poll (finite capacities only appear
                    // in the ablation studies).
                    GateWait::Poll
                }
            }
            _ => GateWait::Open,
        }
    }

    fn execute_memory(&mut self, inst: &MachineInst, now: Cycle) -> Cycle {
        let tag = inst.tag.expect("memory instruction carries a tag");
        match inst.kind {
            ExecKind::LoadRequest => {
                self.memory.request_load(tag, inst.addr.unwrap_or(0), now);
                now + 1
            }
            ExecKind::LoadConsume => {
                let remaining = &mut self.consumers_remaining[tag as usize];
                *remaining = remaining.saturating_sub(1);
                if *remaining == 0 {
                    self.memory.consume(tag, now + 1);
                }
                now + 1
            }
            ExecKind::StoreOp => {
                self.memory.request_store(inst.addr.unwrap_or(0), now);
                now + 1
            }
            ExecKind::LoadBlocking => {
                // The DM lowering never produces blocking loads, but handle
                // the kind anyway for robustness.
                now + 1 + self.memory.differential()
            }
            ExecKind::Arith | ExecKind::CopySend => unreachable!("handled by the unit"),
        }
    }
}

/// Accumulates the per-cycle effective-single-window / slippage samples,
/// including in bulk over skipped idle spans (window contents are frozen
/// while idle, so the sample repeats verbatim).
#[derive(Default)]
struct EswAccumulator {
    esw_sum: u128,
    esw_max: usize,
    slip_sum: u128,
    slip_max: usize,
    samples: u64,
}

impl EswAccumulator {
    fn sample(&mut self, oldest_du: Option<usize>, youngest_au: Option<usize>, cycles: u64) {
        if let (Some(oldest_du), Some(youngest_au)) = (oldest_du, youngest_au) {
            if youngest_au >= oldest_du {
                let esw = youngest_au - oldest_du + 1;
                let slip = youngest_au - oldest_du;
                self.esw_sum += esw as u128 * u128::from(cycles);
                self.slip_sum += slip as u128 * u128::from(cycles);
                self.esw_max = self.esw_max.max(esw);
                self.slip_max = self.slip_max.max(slip);
                self.samples += cycles;
            }
        }
    }

    fn finish(self) -> EswStats {
        EswStats {
            max_esw: self.esw_max,
            avg_esw: if self.samples == 0 {
                0.0
            } else {
                self.esw_sum as f64 / self.samples as f64
            },
            max_slip: self.slip_max,
            avg_slip: if self.samples == 0 {
                0.0
            } else {
                self.slip_sum as f64 / self.samples as f64
            },
            samples: self.samples,
        }
    }
}

/// Per-run preparation shared by both run loops.
fn consumer_counts(program: &DecoupledProgram) -> Vec<u32> {
    // How many LoadConsume instructions read each transaction, so the
    // decoupled-memory entry can be released after its last consumer.
    let mut consumers_remaining = vec![0u32; program.transactions as usize];
    for inst in program.au.iter().chain(program.du.iter()) {
        if inst.kind == ExecKind::LoadConsume {
            consumers_remaining[inst.tag.expect("tagged") as usize] += 1;
        }
    }
    consumers_remaining
}

impl DecoupledMachine {
    /// Creates a decoupled machine with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[must_use]
    pub fn new(config: DmConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|msg| panic!("invalid DM configuration: {msg}"));
        DecoupledMachine { config }
    }

    /// The machine configuration.
    #[must_use]
    pub fn config(&self) -> &DmConfig {
        &self.config
    }

    /// Runs `trace` to completion and returns the detailed result.
    ///
    /// # Panics
    ///
    /// Panics if the simulation exceeds a generous safety bound on the cycle
    /// count, which would indicate a deadlock bug rather than a slow
    /// program.
    #[must_use]
    pub fn run(&self, trace: &Trace) -> DmResult {
        let program = partition(trace, self.config.partition_mode);
        self.run_lowered(&program, trace.len())
    }

    /// Runs an already-partitioned program (the sweep drivers lower each
    /// trace once and reuse it across every window / memory-differential
    /// point).
    ///
    /// # Panics
    ///
    /// Panics if the simulation exceeds the deadlock safety bound.
    #[must_use]
    pub fn run_lowered(&self, program: &DecoupledProgram, trace_instructions: usize) -> DmResult {
        let partition_stats = program.stats;
        let machine_instructions = program.au.len() + program.du.len();
        let mut consumers_remaining = consumer_counts(program);

        // Cross wakeup lists: for every producer index of one stream, the
        // instructions of the *other* stream waiting on it through a
        // `Dep::Cross` edge.  Prebuilt by the partitioner; each issue
        // forwards a wakeup to exactly its consumers.
        let du_waiters_on_au = &program.cross_to_du;
        let au_waiters_on_du = &program.cross_to_au;

        let mut au = UnitSim::with_wakeups(
            Arc::clone(&program.au),
            Arc::clone(&program.au_wakeups),
            self.config.au,
            self.config.latencies,
        );
        let mut du = UnitSim::with_wakeups(
            Arc::clone(&program.du),
            Arc::clone(&program.du_wakeups),
            self.config.du,
            self.config.latencies,
        );
        let mut memory = DecoupledMemory::new(
            self.config.memory_differential,
            self.config.decoupled_memory,
        );

        let mut esw = EswAccumulator::default();
        let safety_bound = safety_bound(
            machine_instructions,
            self.config.memory_differential,
            self.config.latencies.max_arith_latency(),
        );
        let transfer = self.config.transfer_latency;

        let mut now: Cycle = 0;
        while !(au.is_done() && du.is_done()) {
            {
                let mut ctx = DmUnitContext {
                    other_completions: du.completions(),
                    transfer_latency: transfer,
                    memory: &mut memory,
                    consumers_remaining: &mut consumers_remaining,
                };
                au.step(now, &mut ctx);
            }
            // Forward this cycle's AU issues as cross-dependence wakeups for
            // the DU instructions waiting on them.  Data arrivals need no
            // separate wakeup: a consume is only evaluated once its request
            // dependence is satisfied, at which point the decoupled memory
            // can name the arrival cycle (GateWait::At).
            for i in 0..au.issued_this_step().len() {
                let (idx, completion) = au.issued_this_step()[i];
                for &waiter in du_waiters_on_au.of(idx) {
                    du.schedule_reeval(waiter as usize, completion + transfer);
                }
            }
            {
                let mut ctx = DmUnitContext {
                    other_completions: au.completions(),
                    transfer_latency: transfer,
                    memory: &mut memory,
                    consumers_remaining: &mut consumers_remaining,
                };
                du.step(now, &mut ctx);
            }
            for i in 0..du.issued_this_step().len() {
                let (idx, completion) = du.issued_this_step()[i];
                for &waiter in au_waiters_on_du.of(idx) {
                    au.schedule_reeval(waiter as usize, completion + transfer);
                }
            }

            esw.sample(
                du.oldest_inflight_trace_pos(),
                au.youngest_dispatched_trace_pos(),
                1,
            );

            // Time-skip: jump to the earliest cycle either unit can act.
            // A unit may report no local activity while parked on the other
            // unit's progress, so fall back to the other unit's horizon —
            // and to single-stepping when neither knows (the safety bound
            // catches genuine deadlocks).
            let next = match (au.next_activity(now), du.next_activity(now)) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => now + 1,
            };
            debug_assert!(next > now);
            let idle = next - now - 1;
            if idle > 0 {
                au.idle_advance(idle);
                du.idle_advance(idle);
                esw.sample(
                    du.oldest_inflight_trace_pos(),
                    au.youngest_dispatched_trace_pos(),
                    idle,
                );
            }
            now = next;
            assert!(
                now < safety_bound,
                "DM simulation exceeded {safety_bound} cycles — likely a deadlock"
            );
        }

        let cycles = au.max_completion().max(du.max_completion());
        DmResult {
            summary: ExecutionSummary {
                cycles,
                trace_instructions,
                machine_instructions,
            },
            au: *au.stats(),
            du: *du.stats(),
            esw: esw.finish(),
            partition: partition_stats,
            memory: memory.stats(),
        }
    }

    /// Runs `trace` on the retained naive reference scheduler with the
    /// original cycle-by-cycle loop.  Slow; exists as the oracle for the
    /// differential tests and the baseline for the throughput benchmarks.
    ///
    /// # Panics
    ///
    /// Panics if the simulation exceeds the deadlock safety bound.
    #[must_use]
    pub fn run_reference(&self, trace: &Trace) -> DmResult {
        let program = partition(trace, self.config.partition_mode);
        self.run_reference_lowered(&program, trace.len())
    }

    /// [`DecoupledMachine::run_reference`] over an already-partitioned
    /// program — used by the throughput benchmark to compare scheduler
    /// against scheduler without per-run lowering on either side.
    ///
    /// # Panics
    ///
    /// Panics if the simulation exceeds the deadlock safety bound.
    #[must_use]
    pub fn run_reference_lowered(
        &self,
        program: &DecoupledProgram,
        trace_instructions: usize,
    ) -> DmResult {
        let partition_stats = program.stats;
        let machine_instructions = program.au.len() + program.du.len();
        let mut consumers_remaining = consumer_counts(program);

        let mut au = NaiveUnitSim::new(
            Arc::clone(&program.au),
            self.config.au,
            self.config.latencies,
        );
        let mut du = NaiveUnitSim::new(
            Arc::clone(&program.du),
            self.config.du,
            self.config.latencies,
        );
        let mut memory = DecoupledMemory::new(
            self.config.memory_differential,
            self.config.decoupled_memory,
        );

        let mut esw = EswAccumulator::default();
        let safety_bound = safety_bound(
            machine_instructions,
            self.config.memory_differential,
            self.config.latencies.max_arith_latency(),
        );

        let mut now: Cycle = 0;
        while !(au.is_done() && du.is_done()) {
            {
                let mut ctx = DmUnitContext {
                    other_completions: du.completions(),
                    transfer_latency: self.config.transfer_latency,
                    memory: &mut memory,
                    consumers_remaining: &mut consumers_remaining,
                };
                au.step(now, &mut ctx);
            }
            {
                let mut ctx = DmUnitContext {
                    other_completions: au.completions(),
                    transfer_latency: self.config.transfer_latency,
                    memory: &mut memory,
                    consumers_remaining: &mut consumers_remaining,
                };
                du.step(now, &mut ctx);
            }

            esw.sample(
                du.oldest_inflight_trace_pos(),
                au.youngest_dispatched_trace_pos(),
                1,
            );

            now += 1;
            assert!(
                now < safety_bound,
                "DM simulation exceeded {safety_bound} cycles — likely a deadlock"
            );
        }

        let cycles = au.max_completion().max(du.max_completion());
        DmResult {
            summary: ExecutionSummary {
                cycles,
                trace_instructions,
                machine_instructions,
            },
            au: *au.stats(),
            du: *du.stats(),
            esw: esw.finish(),
            partition: partition_stats,
            memory: memory.stats(),
        }
    }
}

/// A generous upper bound on how long any legitimate simulation can take:
/// every instruction fully serialised at the worst-case latency, doubled,
/// plus slack.
pub(crate) fn safety_bound(instructions: usize, md: Cycle, max_latency: Cycle) -> Cycle {
    (instructions as Cycle + 16) * (md + max_latency + 4) * 2 + 10_000
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_isa::{KernelBuilder, Operand};
    use dae_trace::expand;

    fn streaming_trace(iters: u64) -> Trace {
        // y[i] = a*x[i] + y[i]: independent iterations, decouples perfectly.
        let mut b = KernelBuilder::new("daxpy");
        let i = b.induction();
        let x = b.load_strided(&[Operand::Local(i)], 0, 8);
        let y = b.load_strided(&[Operand::Local(i)], 0x100_000, 8);
        let ax = b.fp_mul(&[Operand::Local(x), Operand::Invariant(0)]);
        let s = b.fp_add(&[Operand::Local(ax), Operand::Local(y)]);
        b.store_strided(&[Operand::Local(s), Operand::Local(i)], 0x100_000, 8);
        expand(&b.build().unwrap(), iters)
    }

    fn pointer_chase_trace(iters: u64) -> Trace {
        // Each load's address depends on the previous load's *value*: the
        // serial chain runs through memory and no decoupling is possible.
        let mut b = KernelBuilder::new("chase");
        let p_id = b.len();
        let p = b.load_indirect(
            &[Operand::Carried {
                stmt: p_id,
                distance: 1,
            }],
            0x100_000,
            1 << 16,
            0,
        );
        assert_eq!(p, p_id);
        b.fp_add_carried_self(&[Operand::Local(p)]);
        expand(&b.build().unwrap(), iters)
    }

    #[test]
    fn zero_md_equals_fast_execution() {
        let trace = streaming_trace(100);
        let result = DecoupledMachine::new(DmConfig::paper(32, 0)).run(&trace);
        // 6 architectural instructions per iteration, combined width 9 and a
        // short dependence chain: a few cycles per iteration at most.
        assert!(result.cycles() < 400, "cycles = {}", result.cycles());
        assert_eq!(result.summary.trace_instructions, 600);
        assert!(result.summary.ipc() > 1.5);
    }

    #[test]
    fn large_md_is_mostly_hidden_for_streaming_code() {
        let trace = streaming_trace(200);
        let near = DecoupledMachine::new(DmConfig::paper(64, 0)).run(&trace);
        let far = DecoupledMachine::new(DmConfig::paper(64, 60)).run(&trace);
        // Latency hiding: the md=60 run should cost far less than one full
        // memory latency per iteration more than the md=0 run.
        let slowdown = far.cycles() as f64 / near.cycles() as f64;
        assert!(
            slowdown < 2.5,
            "expected most of the latency to be hidden, slowdown = {slowdown:.2}"
        );
    }

    #[test]
    fn pointer_chasing_cannot_hide_latency() {
        let trace = pointer_chase_trace(50);
        let near = DecoupledMachine::new(DmConfig::paper(32, 0)).run(&trace);
        let far = DecoupledMachine::new(DmConfig::paper(32, 60)).run(&trace);
        // Every iteration must wait for the previous load: the md=60 run pays
        // close to the full differential per iteration.
        assert!(far.cycles() > near.cycles() + 50 * 40);
    }

    #[test]
    fn au_slips_ahead_of_du() {
        let trace = streaming_trace(300);
        let result = DecoupledMachine::new(DmConfig::paper(16, 60)).run(&trace);
        assert!(result.esw.samples > 0);
        assert!(
            result.esw.max_slip > 16,
            "AU should run ahead of the DU by more than one window: slip = {}",
            result.esw.max_slip
        );
        assert!(result.esw.avg_esw > 16.0);
        assert!(result.esw.max_esw >= result.esw.max_slip);
    }

    #[test]
    fn bigger_windows_never_hurt_streaming_code() {
        let trace = streaming_trace(150);
        let small = DecoupledMachine::new(DmConfig::paper(4, 60)).run(&trace);
        let medium = DecoupledMachine::new(DmConfig::paper(16, 60)).run(&trace);
        let large = DecoupledMachine::new(DmConfig::paper(64, 60)).run(&trace);
        assert!(medium.cycles() <= small.cycles());
        assert!(large.cycles() <= medium.cycles());
    }

    #[test]
    fn unlimited_window_is_a_lower_bound() {
        let trace = streaming_trace(100);
        let limited = DecoupledMachine::new(DmConfig::paper(8, 60)).run(&trace);
        let unlimited = DecoupledMachine::new(DmConfig::paper_unlimited(60)).run(&trace);
        assert!(unlimited.cycles() <= limited.cycles());
    }

    #[test]
    fn result_counters_are_consistent() {
        let trace = streaming_trace(50);
        let result = DecoupledMachine::new(DmConfig::paper(32, 20)).run(&trace);
        assert_eq!(result.summary.trace_instructions, trace.len());
        assert_eq!(
            result.summary.machine_instructions as u64,
            result.au.dispatched + result.du.dispatched
        );
        assert_eq!(result.au.dispatched, result.au.issued);
        assert_eq!(result.du.dispatched, result.du.issued);
        assert_eq!(result.partition.loads, 100);
    }

    #[test]
    fn memory_counters_match_the_partition() {
        let trace = streaming_trace(40);
        let result = DecoupledMachine::new(DmConfig::paper(32, 20)).run(&trace);
        assert_eq!(result.memory.load_requests, 80);
        assert_eq!(result.memory.consumed, 80);
        // Store address + store data both notify the decoupled memory.
        assert_eq!(result.memory.store_requests, 80);
    }

    #[test]
    fn event_driven_run_matches_the_reference_exactly() {
        for (iters, window, md) in [(60, 16, 60), (60, 8, 0), (40, 32, 20)] {
            let trace = streaming_trace(iters);
            let machine = DecoupledMachine::new(DmConfig::paper(window, md));
            assert_eq!(machine.run(&trace), machine.run_reference(&trace));
        }
        let chase = pointer_chase_trace(30);
        let machine = DecoupledMachine::new(DmConfig::paper(16, 60));
        assert_eq!(machine.run(&chase), machine.run_reference(&chase));
    }
}
