//! Reusable simulation buffers for allocation-free parameter sweeps.
//!
//! Every figure of the paper is a sweep — (window size × memory
//! differential × workload) — and every sweep point used to rebuild the
//! whole simulator working set from nothing: two `UnitSim`s' worth of
//! window links, ready bitsets, event rings and completion arrays for a DM
//! point, plus the decoupled memory's tag table and the consumer reference
//! counts.  That construction is ~5% of a DM run, paid at every point.
//!
//! A [`SimPool`] keeps those buffers between runs.  The `run_pooled`
//! methods on the three machines check buffers out, run, and check them
//! back in; a construction from a warm pool performs no allocation (until
//! a stream outgrows the recycled capacity, after which the grown buffer
//! is what gets recycled).  Pooled and fresh runs are bit-for-bit
//! identical — `tests/pool_reuse.rs` interleaves machines, window shapes
//! and stream lengths on one pool and holds every result to the fresh and
//! reference paths.
//!
//! [`with_thread_pool`] supplies a per-thread pool, which is how the sweep
//! drivers in `dae-core` cooperate with their rayon-style parallel points:
//! each worker thread owns one pool, points running on the same worker
//! share it, and no locking or cross-thread hand-off exists anywhere.  The
//! take-and-replace discipline (the pool is moved out of the thread-local
//! slot while in use) makes a re-entrant call safe: it simply finds an
//! empty slot and allocates fresh.

use dae_isa::{Address, Cycle};
use dae_mem::FxHashMap;
use dae_ooo::UnitScratch;
use dae_trace::MachineInst;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// Process-wide reuse counters aggregated across every [`SimPool`] on every
/// thread (diagnostics; the lifecycle tests use them to prove that pooled
/// scratch stays *warm* across separate sweep invocations now that the
/// worker threads persist).  All counters are monotone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolDiagnostics {
    /// Unit-scratch checkouts served from a recycled buffer.
    pub warm_unit_takes: u64,
    /// Unit-scratch checkouts that had to allocate fresh.
    pub fresh_unit_takes: u64,
    /// Consumer-count requests served from the cached stream template.
    pub template_hits: u64,
}

impl PoolDiagnostics {
    /// The counter movement since an earlier snapshot (saturating, so a
    /// stale baseline can never underflow) — the shape every lifecycle
    /// assertion and service report wants: "what did *this* sweep do",
    /// independent of whatever concurrent work moved the process-wide
    /// counters before it.
    #[must_use]
    pub fn since(self, baseline: PoolDiagnostics) -> PoolDiagnostics {
        PoolDiagnostics {
            warm_unit_takes: self
                .warm_unit_takes
                .saturating_sub(baseline.warm_unit_takes),
            fresh_unit_takes: self
                .fresh_unit_takes
                .saturating_sub(baseline.fresh_unit_takes),
            template_hits: self.template_hits.saturating_sub(baseline.template_hits),
        }
    }
}

static WARM_UNIT_TAKES: AtomicU64 = AtomicU64::new(0);
static FRESH_UNIT_TAKES: AtomicU64 = AtomicU64::new(0);
static TEMPLATE_HITS: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the process-wide [`PoolDiagnostics`].
#[must_use]
pub fn pool_diagnostics() -> PoolDiagnostics {
    PoolDiagnostics {
        warm_unit_takes: WARM_UNIT_TAKES.load(Ordering::Relaxed),
        fresh_unit_takes: FRESH_UNIT_TAKES.load(Ordering::Relaxed),
        template_hits: TEMPLATE_HITS.load(Ordering::Relaxed),
    }
}

/// Recycled buffers for every structure the machines build per run: unit
/// scratch (one entry per concurrently live unit — two for the DM), the
/// decoupled memory's arrival table, the DM's per-transaction consumer
/// counts and the SWSM's prefetch-buffer map.
#[derive(Debug, Default)]
pub struct SimPool {
    units: Vec<UnitScratch>,
    pub(crate) tag_counts: Vec<u32>,
    pub(crate) arrivals: Vec<Cycle>,
    pub(crate) prefetch: FxHashMap<Address, Cycle>,
    /// Pristine consumer counts cached for repeated runs of one program
    /// (keyed by the AU stream's identity; a `Weak` so a dropped program
    /// can never alias a recycled allocation) — the sweep shape re-runs one
    /// lowered program across many machine parameters, and this turns the
    /// per-point two-stream walk into a memcpy.
    pub(crate) counts_template: Vec<u32>,
    pub(crate) counts_of: Weak<Vec<MachineInst>>,
}

impl SimPool {
    /// An empty pool; buffers materialise on first use.
    #[must_use]
    pub fn new() -> Self {
        SimPool::default()
    }

    /// Checks a unit scratch out of the pool (fresh if none is available).
    pub(crate) fn take_unit(&mut self) -> UnitScratch {
        match self.units.pop() {
            Some(scratch) => {
                WARM_UNIT_TAKES.fetch_add(1, Ordering::Relaxed);
                scratch
            }
            None => {
                FRESH_UNIT_TAKES.fetch_add(1, Ordering::Relaxed);
                UnitScratch::default()
            }
        }
    }

    /// Returns a unit scratch to the pool for the next run.
    ///
    /// The pool is a stack, so multi-unit machines return their scratches
    /// in *reverse* unit order — the next run's unit 0 then pops the
    /// scratch that previously served unit 0, keeping each scratch's
    /// cached stream template paired with the stream it was built from.
    pub(crate) fn put_unit(&mut self, scratch: UnitScratch) {
        self.units.push(scratch);
    }

    /// Fills `counts` with the pristine per-transaction consumer counts for
    /// the program identified by `stream`, from the cached template when
    /// the identity matches, otherwise via `compute` (whose result is then
    /// cached).
    pub(crate) fn consumer_counts(
        &mut self,
        stream: &Arc<Vec<MachineInst>>,
        counts: &mut Vec<u32>,
        compute: impl FnOnce(&mut Vec<u32>),
    ) {
        let cached = self
            .counts_of
            .upgrade()
            .is_some_and(|of| Arc::ptr_eq(&of, stream));
        if cached {
            TEMPLATE_HITS.fetch_add(1, Ordering::Relaxed);
            counts.clear();
            counts.extend_from_slice(&self.counts_template);
        } else {
            compute(counts);
            self.counts_template.clear();
            self.counts_template.extend_from_slice(counts);
            self.counts_of = Arc::downgrade(stream);
        }
    }
}

thread_local! {
    /// The per-thread pool behind [`with_thread_pool`].  `Cell<Option<..>>`
    /// rather than `RefCell`: the pool is *moved out* while a run uses it,
    /// so nested calls can never observe a half-updated pool (they just
    /// miss it and allocate fresh) and no borrow can panic.
    static THREAD_POOL: Cell<Option<SimPool>> = const { Cell::new(None) };
}

/// Runs `f` with this thread's [`SimPool`], creating it on first use.
///
/// Sweep drivers call this around each simulation point; points executed by
/// the same worker thread reuse one pool with no synchronisation.  The pool
/// lives for the thread's lifetime — the vendored rayon stub's workers are
/// *persistent* (spawned once, fed by a queue), so a worker's pool stays
/// warm across separate sweep invocations and figure generators, and the
/// main thread's pool lives for the process (the repeated-single-run shape
/// the benchmarks measure).
pub fn with_thread_pool<R>(f: impl FnOnce(&mut SimPool) -> R) -> R {
    THREAD_POOL.with(|slot| {
        let mut pool = slot.take().unwrap_or_default();
        let result = f(&mut pool);
        slot.set(Some(pool));
        result
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_pool_survives_across_calls_and_nesting() {
        let scratch = with_thread_pool(|pool| {
            pool.tag_counts.push(7);
            // A nested call must not see (or clobber) the checked-out pool.
            with_thread_pool(|inner| {
                assert!(inner.tag_counts.is_empty());
                inner.tag_counts.push(99);
            });
            pool.tag_counts.len()
        });
        assert_eq!(scratch, 1);
        // The outer pool (not the nested one) is what persisted.
        with_thread_pool(|pool| assert_eq!(pool.tag_counts, vec![7]));
        with_thread_pool(|pool| pool.tag_counts.clear());
    }

    #[test]
    fn diagnostics_deltas_saturate() {
        let early = PoolDiagnostics {
            warm_unit_takes: 10,
            fresh_unit_takes: 4,
            template_hits: 7,
        };
        let late = PoolDiagnostics {
            warm_unit_takes: 25,
            fresh_unit_takes: 4,
            template_hits: 9,
        };
        let delta = late.since(early);
        assert_eq!(delta.warm_unit_takes, 15);
        assert_eq!(delta.fresh_unit_takes, 0);
        assert_eq!(delta.template_hits, 2);
        // A stale (newer) baseline saturates to zero instead of wrapping.
        assert_eq!(early.since(late), PoolDiagnostics::default());
    }

    #[test]
    fn unit_scratch_check_out_and_in() {
        let mut pool = SimPool::new();
        let a = pool.take_unit();
        let b = pool.take_unit();
        pool.put_unit(a);
        pool.put_unit(b);
        assert_eq!(pool.units.len(), 2);
    }
}
