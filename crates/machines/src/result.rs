//! Simulation results.

use dae_isa::Cycle;
use dae_mem::{DecoupledMemoryStats, PrefetchBufferStats};
use dae_ooo::UnitStats;
use dae_trace::{PartitionStats, SwsmStats};
use serde::{Deserialize, Serialize};

/// The part of a simulation result every machine shares.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionSummary {
    /// Total execution time in cycles.
    pub cycles: Cycle,
    /// Architectural (trace) instructions executed.
    pub trace_instructions: usize,
    /// Lowered machine instructions executed (includes prefetches, copies,
    /// request/consume pairs).
    pub machine_instructions: usize,
}

impl ExecutionSummary {
    /// Architectural instructions completed per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.trace_instructions as f64 / self.cycles as f64
        }
    }

    /// Lowered machine instructions completed per cycle.
    #[must_use]
    pub fn machine_ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.machine_instructions as f64 / self.cycles as f64
        }
    }
}

/// Slippage / effective-single-window statistics of a decoupled-machine run.
///
/// The *effective single window* (ESW, §3 of the paper) is the span of
/// architectural program order between the oldest instruction still held by
/// the DU and the youngest instruction already fetched by the AU: the window
/// a single-window machine would need to cover the same set of in-flight
/// instructions.  Because the AU slips ahead of the DU, the ESW can be much
/// larger than the sum of the two physical windows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EswStats {
    /// Largest effective single window observed (architectural
    /// instructions).
    pub max_esw: usize,
    /// Mean effective single window over the sampled cycles.
    pub avg_esw: f64,
    /// Largest AU-ahead-of-DU slip observed, in architectural instructions.
    pub max_slip: usize,
    /// Mean slip over the sampled cycles.
    pub avg_slip: f64,
    /// Number of cycles sampled (cycles in which both units had work in
    /// flight).
    pub samples: u64,
}

/// Result of running the access decoupled machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DmResult {
    /// Shared execution summary.
    pub summary: ExecutionSummary,
    /// Address-unit pipeline statistics.
    pub au: UnitStats,
    /// Data-unit pipeline statistics.
    pub du: UnitStats,
    /// Slippage / effective-single-window statistics.
    pub esw: EswStats,
    /// Structure of the partitioned program.
    pub partition: PartitionStats,
    /// Decoupled-memory counters.
    pub memory: DecoupledMemoryStats,
}

impl DmResult {
    /// Total execution time in cycles.
    #[must_use]
    pub fn cycles(&self) -> Cycle {
        self.summary.cycles
    }
}

/// Result of running the single-window superscalar machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwsmResult {
    /// Shared execution summary.
    pub summary: ExecutionSummary,
    /// Pipeline statistics.
    pub unit: UnitStats,
    /// Structure of the prefetch-expanded program.
    pub lowering: SwsmStats,
    /// Prefetch-buffer counters.
    pub buffer: PrefetchBufferStats,
}

impl SwsmResult {
    /// Total execution time in cycles.
    #[must_use]
    pub fn cycles(&self) -> Cycle {
        self.summary.cycles
    }
}

/// Result of running the scalar reference machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalarResult {
    /// Shared execution summary.
    pub summary: ExecutionSummary,
    /// Pipeline statistics.
    pub unit: UnitStats,
}

impl ScalarResult {
    /// Total execution time in cycles.
    #[must_use]
    pub fn cycles(&self) -> Cycle {
        self.summary.cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_rates_handle_zero_cycles() {
        let s = ExecutionSummary::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.machine_ipc(), 0.0);
    }

    #[test]
    fn ipc_rates_compute_expected_values() {
        let s = ExecutionSummary {
            cycles: 100,
            trace_instructions: 250,
            machine_instructions: 325,
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.machine_ipc() - 3.25).abs() < 1e-12);
    }
}
