//! Differential guard for the simulation-buffer pool: a recycled
//! [`SimPool`] must be invisible in the results.
//!
//! The pool hands the same buffers to wildly different consumers — a DM
//! unit pair, then an SWSM unit, then a scalar unit, across mismatched
//! window sizes, stream lengths and memory differentials — so the reset
//! logic in `UnitSim::with_wakeups_scratch` (and the memory-structure
//! scratch constructors) must clear *everything* a previous run could have
//! left behind: stale window links, ready bits, queued events in a grown
//! event ring, poll flags, completion times, tag arrivals, prefetch
//! entries.  Every run here is compared against a fresh construction and
//! (spot-checked) against the naive reference oracle.

use dae_machines::{
    DecoupledMachine, DmConfig, ScalarConfig, ScalarReference, SimPool, SuperscalarMachine,
    SwsmConfig,
};
use dae_trace::{expand_swsm, lower_scalar, partition, PartitionMode, Trace};
use dae_workloads::{stream, PerfectProgram};

fn traces() -> Vec<Trace> {
    // Different lengths so pooled buffers must both shrink and grow between
    // runs, over kernels with different dependence shapes.
    vec![
        stream().trace(120),
        PerfectProgram::Adm.workload().trace(60),
        PerfectProgram::Dyfesm.workload().trace(90),
    ]
}

/// Interleaves all three machines on one pool across every (trace, window,
/// MD) combination and checks each pooled result against a fresh
/// construction.
#[test]
fn interleaved_pooled_runs_match_fresh_construction() {
    let pool = &mut SimPool::new();
    for trace in traces() {
        let dm_program = partition(&trace, PartitionMode::Tagged);
        let swsm_program = expand_swsm(&trace);
        let scalar_program = lower_scalar(&trace);
        for (window, md) in [(4, 60), (32, 20), (64, 0), (16, 300)] {
            let dm = DecoupledMachine::new(DmConfig::paper(window, md));
            assert_eq!(
                dm.run_pooled(&dm_program, trace.len(), pool),
                dm.run_lowered(&dm_program, trace.len()),
                "DM pooled/fresh mismatch at w{window}/md{md}"
            );
            // A different machine with a different window shape reuses the
            // buffers the DM just returned.
            let swsm = SuperscalarMachine::new(SwsmConfig::paper(window * 2, md));
            assert_eq!(
                swsm.run_pooled(&swsm_program, trace.len(), pool),
                swsm.run_lowered(&swsm_program, trace.len()),
                "SWSM pooled/fresh mismatch at w{}/md{md}",
                window * 2
            );
            let scalar = ScalarReference::new(ScalarConfig::new(md));
            assert_eq!(
                scalar.run_pooled(&scalar_program, trace.len(), pool),
                scalar.run_lowered(&scalar_program, trace.len()),
                "scalar pooled/fresh mismatch at md{md}"
            );
        }
    }
}

/// The pooled path must also stay bit-for-bit equal to the naive reference
/// oracle (not just to the fresh event-driven path) — the full differential
/// chain pooled → fresh → naive holds end to end.
#[test]
fn pooled_runs_match_the_naive_reference() {
    let pool = &mut SimPool::new();
    let trace = stream().trace(100);
    let dm_program = partition(&trace, PartitionMode::Tagged);
    let swsm_program = expand_swsm(&trace);
    let scalar_program = lower_scalar(&trace);
    for md in [0, 60] {
        let dm = DecoupledMachine::new(DmConfig::paper(16, md));
        assert_eq!(
            dm.run_pooled(&dm_program, trace.len(), pool),
            dm.run_reference_lowered(&dm_program, trace.len())
        );
        let swsm = SuperscalarMachine::new(SwsmConfig::paper(16, md));
        assert_eq!(
            swsm.run_pooled(&swsm_program, trace.len(), pool),
            swsm.run_reference_lowered(&swsm_program, trace.len())
        );
        let scalar = ScalarReference::new(ScalarConfig::new(md));
        assert_eq!(
            scalar.run_pooled(&scalar_program, trace.len(), pool),
            scalar.run_reference_lowered(&scalar_program, trace.len())
        );
    }
}

/// Unlimited windows and asymmetric AU/DU shapes exercise the unbounded
/// dispatch paths over recycled buffers.
#[test]
fn pooled_unlimited_and_asymmetric_windows_match() {
    let pool = &mut SimPool::new();
    let trace = PerfectProgram::Mdg.workload().trace(50);
    let dm_program = partition(&trace, PartitionMode::Tagged);
    for config in [
        DmConfig::paper_unlimited(60),
        DmConfig::paper(8, 60),
        DmConfig::paper_unlimited(0),
    ] {
        let dm = DecoupledMachine::new(config);
        assert_eq!(
            dm.run_pooled(&dm_program, trace.len(), pool),
            dm.run_lowered(&dm_program, trace.len())
        );
    }
    let swsm_program = expand_swsm(&trace);
    let swsm = SuperscalarMachine::new(SwsmConfig::paper_unlimited(60));
    assert_eq!(
        swsm.run_pooled(&swsm_program, trace.len(), pool),
        swsm.run_lowered(&swsm_program, trace.len())
    );
}

/// Repeated pooled runs of the same point are deterministic (the recycled
/// buffers carry no run-to-run state).
#[test]
fn pooled_runs_are_deterministic() {
    let pool = &mut SimPool::new();
    let trace = stream().trace(80);
    let dm_program = partition(&trace, PartitionMode::Tagged);
    let dm = DecoupledMachine::new(DmConfig::paper(32, 60));
    let first = dm.run_pooled(&dm_program, trace.len(), pool);
    for _ in 0..3 {
        assert_eq!(dm.run_pooled(&dm_program, trace.len(), pool), first);
    }
}
