//! Machine-level differential tests: the event-driven, time-skipping run
//! loops must produce *identical* results — execution time, every pipeline
//! statistic, memory counters, ESW/slippage measurements — to the retained
//! naive reference loops, on every PERFECT workload and on random kernels.
//!
//! This is the proof obligation behind the scheduler rewrite: all paper
//! tables and figures are bit-for-bit unchanged.

use dae_machines::{
    DecoupledMachine, DmConfig, ScalarConfig, ScalarReference, SuperscalarMachine, SwsmConfig,
};
use dae_mem::{DecoupledMemoryConfig, PrefetchBufferConfig};
use dae_trace::expand;
use dae_workloads::{random_kernel, PerfectProgram};
use proptest::prelude::*;

const WINDOWS: [usize; 3] = [4, 32, 64];
const MDS: [u64; 2] = [0, 60];

#[test]
fn every_perfect_program_matches_on_the_dm() {
    for program in PerfectProgram::ALL {
        let trace = program.workload().trace(60);
        for window in WINDOWS {
            for md in MDS {
                let machine = DecoupledMachine::new(DmConfig::paper(window, md));
                assert_eq!(
                    machine.run(&trace),
                    machine.run_reference(&trace),
                    "{program} w={window} md={md}"
                );
            }
        }
        let unlimited = DecoupledMachine::new(DmConfig::paper_unlimited(60));
        assert_eq!(
            unlimited.run(&trace),
            unlimited.run_reference(&trace),
            "{program} unlimited"
        );
    }
}

#[test]
fn every_perfect_program_matches_on_the_swsm() {
    for program in PerfectProgram::ALL {
        let trace = program.workload().trace(60);
        for window in WINDOWS {
            for md in MDS {
                let machine = SuperscalarMachine::new(SwsmConfig::paper(window, md));
                assert_eq!(
                    machine.run(&trace),
                    machine.run_reference(&trace),
                    "{program} w={window} md={md}"
                );
            }
        }
        let unlimited = SuperscalarMachine::new(SwsmConfig::paper_unlimited(60));
        assert_eq!(
            unlimited.run(&trace),
            unlimited.run_reference(&trace),
            "{program} unlimited"
        );
    }
}

#[test]
fn every_perfect_program_matches_on_the_scalar_reference() {
    for program in PerfectProgram::ALL {
        let trace = program.workload().trace(60);
        for md in MDS {
            let machine = ScalarReference::new(ScalarConfig::new(md));
            assert_eq!(
                machine.run(&trace),
                machine.run_reference(&trace),
                "{program} md={md}"
            );
        }
    }
}

#[test]
fn finite_memory_structures_stay_exact() {
    // Finite decoupled-memory capacity exercises the can_accept Poll gate;
    // a finite prefetch buffer exercises eviction-driven gate regression.
    let trace = PerfectProgram::Mdg.workload().trace(50);

    let mut dm_cfg = DmConfig::paper(16, 40);
    dm_cfg.decoupled_memory = DecoupledMemoryConfig {
        capacity: Some(8),
        bypass: None,
    };
    let dm = DecoupledMachine::new(dm_cfg);
    assert_eq!(dm.run(&trace), dm.run_reference(&trace));

    let mut swsm_cfg = SwsmConfig::paper(16, 40);
    swsm_cfg.prefetch_buffer = PrefetchBufferConfig { capacity: Some(8) };
    let swsm = SuperscalarMachine::new(swsm_cfg);
    assert_eq!(swsm.run(&trace), swsm.run_reference(&trace));
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random kernels: the DM agrees with its reference across windows and
    /// memory differentials (loss-of-decoupling copies, AU self loads and
    /// multi-consumer transactions all arise here).
    #[test]
    fn random_kernels_match_on_the_dm(
        seed in 0u64..5000,
        stmts in 6usize..32,
        window in 2usize..48,
        md in 0u64..80,
    ) {
        let kernel = random_kernel(seed, stmts);
        let trace = expand(&kernel, 20);
        let machine = DecoupledMachine::new(DmConfig::paper(window, md));
        prop_assert_eq!(machine.run(&trace), machine.run_reference(&trace));
    }

    /// Random kernels on the SWSM, including small windows where prefetches
    /// and accesses fight for slots.
    #[test]
    fn random_kernels_match_on_the_swsm(
        seed in 0u64..5000,
        stmts in 6usize..32,
        window in 2usize..48,
        md in 0u64..80,
    ) {
        let kernel = random_kernel(seed, stmts);
        let trace = expand(&kernel, 20);
        let machine = SuperscalarMachine::new(SwsmConfig::paper(window, md));
        prop_assert_eq!(machine.run(&trace), machine.run_reference(&trace));
    }

    /// Random kernels on the scalar reference.
    #[test]
    fn random_kernels_match_on_the_scalar_reference(
        seed in 0u64..5000,
        stmts in 6usize..32,
        md in 0u64..80,
    ) {
        let kernel = random_kernel(seed, stmts);
        let trace = expand(&kernel, 20);
        let machine = ScalarReference::new(ScalarConfig::new(md));
        prop_assert_eq!(machine.run(&trace), machine.run_reference(&trace));
    }
}
